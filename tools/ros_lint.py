#!/usr/bin/env python3
"""ros-lint: repo-specific static checks for Status and coroutine discipline.

A deliberately small "clang-AST-lite" checker (regex + brace matching over
preprocessed-ish text) that enforces the four invariants the ROS codebase
leans on but the compiler cannot fully check:

  discarded-status    A call to a Status / StatusOr / sim::Task<Status>
                      returning function whose result is dropped on the
                      floor (not returned, assigned, tested, wrapped in
                      ROS_RETURN_IF_ERROR / ROS_CO_RETURN_IF_ERROR, or
                      explicitly voided with `(void)`).

  coro-ref-param      A sim::Task coroutine *definition* taking a parameter
                      by reference or as std::string_view. Coroutine frames
                      capture references, not referents: once the coroutine
                      suspends at a co_await, a caller's temporary bound to
                      that reference may be gone when it resumes
                      (CP.53-style hazard). Parameters should be by value;
                      a justified exception carries an inline
                      `// ros-lint: allow(coro-ref-param): <why>` on the
                      signature line or the line above.

  coro-ref-lambda     A lambda with by-reference captures (`[&]` / `[&x]`)
                      that is itself a coroutine (its body co_awaits) or is
                      directly co_awaited. Same dangling shape as above:
                      the lambda object usually dies at the first
                      suspension point while the frame keeps the captures.

  raw-new-delete      Raw `new` / `delete` expressions. The codebase owns
                      memory through containers and std::unique_ptr only.

  list-size-only      `List(...)` immediately chained into `.size()` or
                      `.empty()`: the call materializes a vector of every
                      matching name just to count it (or test for one).
                      Volume offers CountPrefix / AnyWithPrefix that answer
                      the same question without the allocation.

  retry-unclassified  A retry loop (header or body names retry / attempt /
                      backoff / tries) that co_awaits Status-returning work
                      and branches only on `.ok()`, never classifying the
                      failure (`status.code()`, `sim::IsTransient`,
                      `Retrier::AwaitRetry`, `StatusCode::`). Retrying
                      without classification spins on permanent errors
                      (kDataLoss, kNotFound) that no backoff will cure;
                      transient-vs-permanent is the whole point of
                      src/sim/retry.h.

  acquire-bay         A direct MechController::AcquireBay call outside the
                      two components allowed to own bay scheduling: the
                      fetch scheduler (read path) and the burn manager
                      (write path). Direct acquisition bypasses tray
                      batching, the demand-aware unload victim policy and
                      the aging bound, so concurrent readers scramble for
                      bays FIFO-style again. Route reads through
                      FetchScheduler::AcquireForRead; a justified direct
                      call (bulk scans, legacy paths) carries an inline
                      `// ros-lint: allow(acquire-bay): <why>`.

  speculative-fetch   A direct FetchScheduler::AcquireForRead call outside
                      the demand path's owners (the fetch manager's lease
                      broker and the scheduler itself). Background work —
                      predictive prefetch, whole-tray readahead, scrubs —
                      that enqueues through the demand path competes with
                      real readers for bays and can evict demanded trays;
                      it must use FetchScheduler::EnqueueSpeculative,
                      which yields to demand and cancels cleanly. A
                      justified demand-priority call carries an inline
                      `// ros-lint: allow(speculative-fetch): <why>`.

Usage:
    tools/ros_lint.py [paths...]          # default: src/ of the repo root
    tools/ros_lint.py --list-status-fns   # debug: dump the Status fn set

Suppressions:
  - inline: `// ros-lint: allow(<rule>[, <rule>...]): justification`
    applies to its own line and the statement that starts on the next line.
  - file: tools/ros_lint_allow.txt, lines of `<path-suffix>:<rule>`; use
    sparingly — inline annotations keep the justification next to the code.
  - `--check-allows` inverts the relationship: it reports inline allow
    markers that no longer suppress anything (the code they excused was
    fixed or deleted), so justifications cannot rot in place.

Exit status: 0 when clean, 1 when findings were printed, 2 on usage error.

The lexing substrate (comment/string stripping, bracket matching) lives in
tools/cpptok.py, shared with tools/ros_analyze.py.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpptok
from cpptok import (  # noqa: F401  (re-exported for tests and callers)
    find_matching,
    line_of,
    split_top_level,
    strip_comments_and_strings,
)

RULES = (
    "discarded-status",
    "coro-ref-param",
    "coro-ref-lambda",
    "raw-new-delete",
    "list-size-only",
    "retry-unclassified",
    "acquire-bay",
    "speculative-fetch",
)

@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FileLint:
    def __init__(self, path: str, text: str, status_fns: set[str]):
        self.path = path
        self.text = text
        self.stripped = strip_comments_and_strings(text)
        self.lines = text.splitlines()
        self.status_fns = status_fns
        self.findings: list[Finding] = []
        self.allow = cpptok.make_allow_checker("ros-lint")

    # --- suppression -----------------------------------------------------

    def allowed(self, line: int, rule: str) -> bool:
        """True when an allow annotation covers `rule` (1-based line): on
        the line itself, or anywhere in the contiguous `//` comment block
        immediately above it (justifications often wrap to several lines).
        Consulted annotations are recorded on `self.allow.used` so
        `--check-allows` can report markers that stopped earning their
        keep."""
        return self.allow(self.lines, line, rule)

    def stale_allows(self) -> list[tuple[int, str]]:
        """(line, rule) for every inline allow marker that suppressed
        nothing during `run()`. Call after `run()`."""
        return [(line, rule)
                for line, rule in self.allow.annotations(self.lines)
                if rule in RULES and (line, rule) not in self.allow.used]

    def report(self, index: int, rule: str, message: str) -> None:
        line = line_of(self.stripped, index)
        if not self.allowed(line, rule):
            self.findings.append(Finding(self.path, line, rule, message))

    # --- rule: discarded-status -----------------------------------------

    STMT_CALL_RE = re.compile(
        r"(?m)^[ \t]*(?P<await>co_await[ \t]+)?"
        r"(?P<expr>[A-Za-z_][\w]*(?:(?:\.|->|::)[A-Za-z_]\w*)*)\s*\("
    )

    def check_discarded_status(self) -> None:
        for m in self.STMT_CALL_RE.finditer(self.stripped):
            callee = m.group("expr").split("::")[-1]
            callee = re.split(r"\.|->", callee)[-1]
            if callee not in self.status_fns:
                continue
            # A match at the start of a line is only a *statement* if the
            # previous token ended one: `auto x =\n  co_await Foo(...);`
            # puts the call at a line start but it is a continuation, not
            # a discard. Same for multi-line declarations.
            before = self.stripped[: m.start()].rstrip()
            if before and before[-1] not in ";{}":
                continue
            open_paren = self.stripped.index("(", m.end() - 1)
            end = find_matching(self.stripped, open_paren, "(", ")")
            if end < 0:
                continue
            rest = self.stripped[end:].lstrip()
            # Only a statement-terminating `;` means the value was dropped;
            # `.`, `->`, operators etc. mean the result is being consumed.
            if not rest.startswith(";"):
                continue
            # Control-flow keywords never reach here (they are not in the
            # status fn set), but a same-line prefix like `return` or an
            # assignment would not match ^\s* either.
            self.report(
                m.start(),
                "discarded-status",
                f"result of Status-returning '{callee}(...)' is discarded; "
                "propagate it (ROS_RETURN_IF_ERROR / ROS_CO_RETURN_IF_ERROR),"
                " handle it, or cast to (void) with a comment",
            )

    # --- rule: coro-ref-param -------------------------------------------

    TASK_FN_RE = re.compile(
        r"(?:sim::|ros::sim::)?Task<[^;{}()]*>\s+"
        r"(?P<name>[A-Za-z_][\w:]*)\s*\("
    )

    def check_coro_ref_param(self) -> None:
        for m in self.TASK_FN_RE.finditer(self.stripped):
            open_paren = self.stripped.index("(", m.end() - 1)
            params_end = find_matching(self.stripped, open_paren, "(", ")")
            if params_end < 0:
                continue
            # Definition? Look for `{` (allowing const / noexcept etc.).
            after = self.stripped[params_end:]
            brace_off = re.match(r"[\sA-Za-z&:]*\{", after)
            if not brace_off:
                continue  # declaration only
            body_start = params_end + brace_off.end() - 1
            body_end = find_matching(self.stripped, body_start, "{", "}")
            if body_end < 0:
                body_end = len(self.stripped)
            body = self.stripped[body_start:body_end]
            if "co_await" not in body and "co_return" not in body and \
                    "co_yield" not in body:
                continue  # Task-returning but not itself a coroutine
            params = self.stripped[open_paren + 1 : params_end - 1]
            for param in split_top_level(params):
                p = param.strip()
                if not p:
                    continue
                if "&" in p or "string_view" in p:
                    self.report(
                        m.start(),
                        "coro-ref-param",
                        f"coroutine '{m.group('name')}' takes "
                        f"'{' '.join(p.split())}' — references/string_views "
                        "can dangle across co_await; pass by value or "
                        "annotate with ros-lint: allow(coro-ref-param)",
                    )

    # --- rule: coro-ref-lambda ------------------------------------------

    REF_CAPTURE_RE = re.compile(r"\[\s*&")

    def check_coro_ref_lambda(self) -> None:
        for m in self.REF_CAPTURE_RE.finditer(self.stripped):
            # Must look like a lambda introducer: `[&...] (` or `[&...] {`
            # or `[&...] mutable` etc.
            close = self.stripped.find("]", m.start())
            if close < 0:
                continue
            after = self.stripped[close + 1 :].lstrip()
            if not after.startswith(("(", "{", "mutable", "->")):
                continue
            # Find the lambda body.
            idx = close + 1
            while idx < len(self.stripped) and self.stripped[idx] != "{":
                if self.stripped[idx] == "(":
                    idx = find_matching(self.stripped, idx, "(", ")")
                    if idx < 0:
                        return
                else:
                    idx += 1
            if idx >= len(self.stripped):
                continue
            body_end = find_matching(self.stripped, idx, "{", "}")
            if body_end < 0:
                continue
            body = self.stripped[idx:body_end]
            is_coroutine = "co_await" in body or "co_return" in body
            # co_awaited directly: `co_await [&]{...}()` style.
            stmt_start = max(
                self.stripped.rfind(";", 0, m.start()),
                self.stripped.rfind("{", 0, m.start()),
            )
            prefix = self.stripped[stmt_start + 1 : m.start()]
            directly_awaited = "co_await" in prefix
            if is_coroutine or directly_awaited:
                self.report(
                    m.start(),
                    "coro-ref-lambda",
                    "by-reference lambda capture in a co_await context — "
                    "the lambda object (and its captures) can die at the "
                    "first suspension point; capture by value or annotate "
                    "with ros-lint: allow(coro-ref-lambda)",
                )

    # --- rule: raw-new-delete -------------------------------------------

    NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_(:<]")
    DELETE_RE = re.compile(r"(?<![\w.])delete\s*(\[\s*\])?\s*[A-Za-z_*(]")

    def check_raw_new_delete(self) -> None:
        for m in self.NEW_RE.finditer(self.stripped):
            self.report(
                m.start(),
                "raw-new-delete",
                "raw 'new' — use std::make_unique / containers",
            )
        for m in self.DELETE_RE.finditer(self.stripped):
            # `= delete` / `= delete;` are declarations, not expressions.
            before = self.stripped[: m.start()].rstrip()
            if before.endswith("="):
                continue
            self.report(
                m.start(),
                "raw-new-delete",
                "raw 'delete' — owning pointers must be std::unique_ptr",
            )

    # --- rule: list-size-only -------------------------------------------

    LIST_CALL_RE = re.compile(r"(?:\.|->)\s*List\s*\(")

    def check_list_size_only(self) -> None:
        for m in self.LIST_CALL_RE.finditer(self.stripped):
            open_paren = self.stripped.index("(", m.end() - 1)
            end = find_matching(self.stripped, open_paren, "(", ")")
            if end < 0:
                continue
            rest = self.stripped[end:].lstrip()
            tail = re.match(r"(?:\.|->)\s*(size|empty)\s*\(\s*\)", rest)
            if not tail:
                continue
            self.report(
                m.start(),
                "list-size-only",
                f"List(...).{tail.group(1)}() materializes every matching "
                "name just to measure the result; use CountPrefix(...) for "
                "counts or AnyWithPrefix(...) for emptiness",
            )

    # --- rule: retry-unclassified ---------------------------------------

    LOOP_RE = re.compile(r"(?<![\w.])(?:while|for)\s*\(")
    # Whole identifiers only: `entries`/`num_tries` must not count as
    # `tries` (hence the explicit non-word-char lookarounds instead of \b,
    # which would let `_`-joined identifiers through).
    RETRYISH_RE = re.compile(
        r"(?i)(?<![a-z0-9])(?:retr(?:y|ies)\w*|attempts?\w*|backoff\w*"
        r"|tries)(?![a-z0-9])"
    )
    CLASSIFIED_RE = re.compile(
        r"\.code\s*\(|IsTransient|AwaitRetry|Retrier|RetryPolicy"
        r"|StatusCode::"
    )

    def check_retry_unclassified(self) -> None:
        for m in self.LOOP_RE.finditer(self.stripped):
            open_paren = self.stripped.index("(", m.end() - 1)
            header_end = find_matching(self.stripped, open_paren, "(", ")")
            if header_end < 0:
                continue
            after = self.stripped[header_end:]
            brace_off = len(after) - len(after.lstrip())
            if brace_off >= len(after) or after[brace_off] != "{":
                continue  # single-statement loop body: out of scope
            body_start = header_end + brace_off
            body_end = find_matching(self.stripped, body_start, "{", "}")
            if body_end < 0:
                continue
            loop = self.stripped[open_paren:body_end]
            if not self.RETRYISH_RE.search(loop):
                continue  # not a retry loop
            if "co_await" not in loop or ".ok(" not in loop:
                continue  # no awaited Status decision inside
            if self.CLASSIFIED_RE.search(loop):
                continue  # the failure is being classified
            self.report(
                m.start(),
                "retry-unclassified",
                "retry loop branches only on .ok() of a co_await-ed "
                "Status; classify the failure (status.code(), "
                "sim::IsTransient, Retrier::AwaitRetry) so permanent "
                "errors are not retried forever, or annotate with "
                "ros-lint: allow(retry-unclassified)",
            )

    # --- rule: acquire-bay ----------------------------------------------

    # Files that legitimately own bay scheduling: the scheduler itself, the
    # burn manager's write path, and the controller that defines the API.
    ACQUIRE_BAY_OWNERS = (
        "fetch_scheduler.cc",
        "burn_manager.cc",
        "mech_controller.cc",
        "mech_controller.h",
    )

    ACQUIRE_BAY_RE = re.compile(r"(?<![\w:])AcquireBay\s*\(")

    def check_acquire_bay(self) -> None:
        if os.path.basename(self.path) in self.ACQUIRE_BAY_OWNERS:
            return
        for m in self.ACQUIRE_BAY_RE.finditer(self.stripped):
            # Anchor at the start of the enclosing statement so an allow
            # annotation above a wrapped call (ROS_CO_ASSIGN_OR_RETURN
            # split across lines) still covers it.
            stmt = max(self.stripped.rfind(";", 0, m.start()),
                       self.stripped.rfind("{", 0, m.start()),
                       self.stripped.rfind("}", 0, m.start()))
            idx = stmt + 1
            while idx < m.start() and self.stripped[idx] in " \t\n":
                idx += 1
            self.report(
                idx,
                "acquire-bay",
                "direct AcquireBay bypasses the fetch scheduler's tray "
                "batching, victim policy and aging bound; route reads "
                "through FetchScheduler::AcquireForRead or annotate with "
                "ros-lint: allow(acquire-bay)",
            )

    # --- rule: speculative-fetch ----------------------------------------

    # Files that own the demand enqueue path: the fetch manager (the read
    # path's lease broker) and the scheduler itself. Anything else calling
    # AcquireForRead is almost always background work (prefetch, readahead,
    # scrubbing) jumping the demand queue.
    ACQUIRE_FOR_READ_OWNERS = (
        "fetch_manager.cc",
        "fetch_scheduler.cc",
        "fetch_scheduler.h",
    )

    ACQUIRE_FOR_READ_RE = re.compile(r"(?<![\w:])AcquireForRead\s*\(")

    def check_speculative_fetch(self) -> None:
        if os.path.basename(self.path) in self.ACQUIRE_FOR_READ_OWNERS:
            return
        for m in self.ACQUIRE_FOR_READ_RE.finditer(self.stripped):
            stmt = max(self.stripped.rfind(";", 0, m.start()),
                       self.stripped.rfind("{", 0, m.start()),
                       self.stripped.rfind("}", 0, m.start()))
            idx = stmt + 1
            while idx < m.start() and self.stripped[idx] in " \t\n":
                idx += 1
            self.report(
                idx,
                "speculative-fetch",
                "direct AcquireForRead competes with demand readers for "
                "bays; background/speculative loads must go through "
                "FetchScheduler::EnqueueSpeculative (yields to demand, "
                "never evicts demanded trays, cancels cleanly) or "
                "annotate with ros-lint: allow(speculative-fetch)",
            )

    def run(self) -> list[Finding]:
        self.check_discarded_status()
        self.check_coro_ref_param()
        self.check_coro_ref_lambda()
        self.check_raw_new_delete()
        self.check_list_size_only()
        self.check_retry_unclassified()
        self.check_acquire_bay()
        self.check_speculative_fetch()
        return self.findings


# --- status function inventory ------------------------------------------

STATUS_DECL_RE = re.compile(
    r"(?:^|[;{}\n])\s*(?:static\s+|inline\s+|friend\s+|virtual\s+|constexpr\s+)*"
    r"(?:ros::)?(?:Status|StatusOr<[^;{}]*>|(?:sim::)?Task<\s*(?:ros::)?Status"
    r"(?:Or<[^;{}]*>)?\s*>)\s+"
    r"(?:[A-Za-z_]\w*::)*(?P<name>[A-Za-z_]\w*)\s*\("
)

# Builders that *produce* a Status value: discarding those is just building
# a temporary, so they are excluded from the callee set.
STATUS_FACTORIES = {
    "Ok", "OkStatus", "NotFoundError", "AlreadyExistsError",
    "InvalidArgumentError", "OutOfRangeError", "ResourceExhaustedError",
    "FailedPreconditionError", "UnavailableError", "DataLossError",
    "InternalError", "Status", "StatusOr", "status", "ToString",
}


# Any function-shaped declaration; used to find names that are ALSO
# declared with a non-Status return type (e.g. FileCache::Put returns void
# while MetadataVolume::Put returns Task<Status>). The checker matches
# callees by name only, so such ambiguous names must be dropped from the
# Status set or every `cache->Put(...)` would be a false positive.
ANY_DECL_RE = re.compile(
    r"(?:^|[;{}\n])\s*(?:static\s+|inline\s+|friend\s+|virtual\s+|constexpr\s+)*"
    r"(?P<ret>(?:[A-Za-z_][\w:]*)(?:<[^;{}()]*>)?(?:\s*[*&])?)\s+"
    r"(?:[A-Za-z_]\w*::)*(?P<name>[A-Za-z_]\w*)\s*\("
)

CPP_KEYWORDS = {
    "if", "while", "for", "switch", "return", "co_return", "co_await",
    "case", "else", "do", "new", "delete", "sizeof", "throw", "using",
    "typedef", "template", "typename", "class", "struct", "enum", "goto",
}


def collect_status_fns(files: dict[str, str]) -> set[str]:
    fns: set[str] = set()
    ambiguous: set[str] = set()
    for text in files.values():
        stripped = strip_comments_and_strings(text)
        for m in STATUS_DECL_RE.finditer(stripped):
            name = m.group("name")
            if name not in STATUS_FACTORIES:
                fns.add(name)
        for m in ANY_DECL_RE.finditer(stripped):
            ret = m.group("ret").strip()
            name = m.group("name")
            if ret in CPP_KEYWORDS or name in CPP_KEYWORDS:
                continue
            if re.search(r"\b(Status|StatusOr|Task)\b", ret):
                continue
            ambiguous.add(name)
    return fns - ambiguous


def load_allowlist(path: str) -> set[tuple[str, str]]:
    entries: set[tuple[str, str]] = set()
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if ":" not in line:
                continue
            suffix, rule = line.rsplit(":", 1)
            entries.add((suffix, rule.strip()))
    return entries


def gather_files(paths: list[str]) -> dict[str, str]:
    files: dict[str, str] = {}
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith((".cc", ".h")):
                        full = os.path.join(root, name)
                        with open(full, encoding="utf-8") as fh:
                            files[full] = fh.read()
        else:
            with open(path, encoding="utf-8") as fh:
                files[path] = fh.read()
    return files


def main(argv: list[str]) -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        default=[os.path.join(repo_root, "src")])
    parser.add_argument("--allowlist",
                        default=os.path.join(repo_root, "tools",
                                             "ros_lint_allow.txt"))
    parser.add_argument("--list-status-fns", action="store_true")
    parser.add_argument("--check-allows", action="store_true",
                        help="report inline allow() markers that no longer "
                             "suppress any finding")
    args = parser.parse_args(argv)

    files = gather_files(args.paths)
    status_fns = collect_status_fns(files)
    if args.list_status_fns:
        for name in sorted(status_fns):
            print(name)
        return 0

    allow = load_allowlist(args.allowlist)
    findings: list[Finding] = []
    stale: list[tuple[str, int, str]] = []
    for path, text in sorted(files.items()):
        lint = FileLint(path, text, status_fns)
        rel = os.path.relpath(path, repo_root)
        for finding in lint.run():
            if any(rel.endswith(suffix) and rule == finding.rule
                   for suffix, rule in allow):
                continue
            finding.path = rel
            findings.append(finding)
        if args.check_allows:
            stale.extend((rel, line, rule)
                         for line, rule in lint.stale_allows())

    for finding in findings:
        print(finding.render())
    for rel, line, rule in stale:
        print(f"{rel}:{line}: [stale-allow] 'ros-lint: allow({rule})' no "
              "longer suppresses any finding; delete the marker")
    if findings or stale:
        print(f"ros-lint: {len(findings)} finding(s), {len(stale)} stale "
              "allow(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
