#!/usr/bin/env python3
"""Unit tests for tools/cpptok.py (run via ctest or directly)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpptok
from cpptok import (BLOCK, CLASS, FUNCTION, INIT, LAMBDA, NAMESPACE,
                    ScopeTree, strip_comments_and_strings)


def tree_of(src):
    return ScopeTree(strip_comments_and_strings(src))


def kinds_of(src):
    """Kinds of every scope in source order (depth-first)."""
    out = []

    def walk(scope):
        for child in scope.children:
            out.append(child.kind)
            walk(child)

    walk(tree_of(src).root)
    return out


class StripTest(unittest.TestCase):
    def test_preserves_offsets_and_newlines(self):
        src = 'int x; // {{{\nconst char* s = "}{";\n/* } */ int y;\n'
        out = strip_comments_and_strings(src)
        self.assertEqual(len(out), len(src))
        self.assertEqual(out.count("\n"), src.count("\n"))
        self.assertEqual(out.count("{"), 0)
        self.assertEqual(out.count("}"), 0)

    def test_char_literal_with_escape(self):
        out = strip_comments_and_strings("char c = '\\'';\nint z;")
        self.assertIn("int z;", out)

    def test_raw_string(self):
        src = 'auto j = R"({ "k": [1, 2] })";\nint z;\n'
        out = strip_comments_and_strings(src)
        self.assertNotIn('"k"', out)
        self.assertIn("int z;", out)


class MatchingTest(unittest.TestCase):
    def test_find_matching_forward_and_back(self):
        text = "f(a(b), c)"
        end = cpptok.find_matching(text, 1, "(", ")")
        self.assertEqual(end, len(text))
        self.assertEqual(cpptok.find_matching_back(text, len(text) - 1,
                                                   "(", ")"), 1)

    def test_split_top_level(self):
        parts = cpptok.split_top_level("std::map<int, int> m, int x")
        self.assertEqual(len(parts), 2)
        self.assertIn("x", parts[1])


class ScopeTreeTest(unittest.TestCase):
    def test_namespace_class_function_block(self):
        src = (
            "namespace ros {\n"
            "class Foo {\n"
            " public:\n"
            "  int Bar(int x) {\n"
            "    if (x > 0) {\n"
            "      return x;\n"
            "    }\n"
            "    return 0;\n"
            "  }\n"
            "};\n"
            "}  // namespace ros\n"
        )
        self.assertEqual(kinds_of(src), [NAMESPACE, CLASS, FUNCTION, BLOCK])

    def test_lambda_and_init_braces(self):
        src = (
            "void F() {\n"
            "  auto f = [&](int x) { return x; };\n"
            "  std::vector<int> v = {1, 2, 3};\n"
            "  Foo foo{4};\n"
            "}\n"
        )
        self.assertEqual(kinds_of(src), [FUNCTION, LAMBDA, INIT, INIT])

    def test_control_blocks_not_functions(self):
        src = (
            "void F() {\n"
            "  while (true) {\n"
            "    break;\n"
            "  }\n"
            "  for (int i = 0; i < 3; ++i) {\n"
            "  }\n"
            "  switch (1) {\n"
            "  }\n"
            "  try {\n"
            "  } catch (...) {\n"
            "  }\n"
            "}\n"
        )
        self.assertEqual(kinds_of(src),
                         [FUNCTION, BLOCK, BLOCK, BLOCK, BLOCK, BLOCK])

    def test_enum_is_not_a_class_scope(self):
        src = "enum class E : int { kA, kB };\nstruct S { int x; };\n"
        self.assertEqual(kinds_of(src), [INIT, CLASS])

    def test_enclosing_function_and_class_scope(self):
        src = (
            "class C {\n"
            "  std::unordered_map<int, int> member_;\n"
            "  void F() {\n"
            "    int local;\n"
            "  }\n"
            "};\n"
        )
        tree = tree_of(src)
        member = tree.text.index("member_")
        local = tree.text.index("local")
        self.assertTrue(tree.at_class_scope(member))
        self.assertFalse(tree.at_class_scope(local))
        self.assertIsNone(tree.enclosing_function(member))
        fn = tree.enclosing_function(local)
        self.assertIsNotNone(fn)
        self.assertEqual(fn.kind, FUNCTION)

    def test_coroutine_detection_excludes_nested_lambdas(self):
        src = (
            "sim::Task<int> Coro() {\n"
            "  co_return 1;\n"
            "}\n"
            "void Plain() {\n"
            "  auto inner = []() -> sim::Task<int> { co_return 2; };\n"
            "}\n"
        )
        tree = tree_of(src)
        fns = tree.functions()
        self.assertEqual(len(fns), 3)  # Coro, Plain, inner
        flags = [tree.is_coroutine(fn) for fn in fns]
        self.assertEqual(flags, [True, False, True])

    def test_trailing_return_type_function(self):
        src = "auto F(int x) -> std::vector<int> {\n  return {};\n}\n"
        self.assertEqual(kinds_of(src)[0], FUNCTION)

    def test_constructor_with_init_list(self):
        src = (
            "class C {\n"
            "  explicit C(int x) : x_(x) {\n"
            "    Use(x_);\n"
            "  }\n"
            "  int x_;\n"
            "};\n"
        )
        self.assertEqual(kinds_of(src), [CLASS, FUNCTION])


class AllowCheckerTest(unittest.TestCase):
    SRC = (
        "int a;\n"
        "// ros_analyze: allow(wallclock): host-side timing\n"
        "auto t = Clock::now();\n"
        "// a plain comment\n"
        "// ros_analyze: allow(unordered-iter): order-insensitive sum\n"
        "for (const auto& kv : m) {}\n"
    )

    def test_allows_on_line_and_comment_block_above(self):
        allow = cpptok.make_allow_checker("ros_analyze")
        lines = self.SRC.splitlines()
        self.assertTrue(allow(lines, 3, "wallclock"))
        self.assertTrue(allow(lines, 6, "unordered-iter"))
        self.assertFalse(allow(lines, 3, "unordered-iter"))
        self.assertFalse(allow(lines, 1, "wallclock"))

    def test_usage_tracking_for_stale_detection(self):
        allow = cpptok.make_allow_checker("ros_analyze")
        lines = self.SRC.splitlines()
        allow(lines, 3, "wallclock")
        self.assertIn((2, "wallclock"), allow.used)
        annotations = allow.annotations(lines)
        self.assertIn((2, "wallclock"), annotations)
        self.assertIn((5, "unordered-iter"), annotations)
        stale = [a for a in annotations if a not in allow.used]
        self.assertEqual(stale, [(5, "unordered-iter")])

    def test_tag_isolation(self):
        lint_allow = cpptok.make_allow_checker("ros-lint")
        self.assertFalse(lint_allow(self.SRC.splitlines(), 3, "wallclock"))


if __name__ == "__main__":
    unittest.main()
