#!/usr/bin/env python3
"""Unit tests for tools/ros_analyze.py (run via ctest or directly).

Each rule gets seeded-violation fixtures (must be detected) and negative
fixtures (must stay quiet); the final test runs the analyzer over the
real src/ tree and asserts it is clean — the determinism contract says
the analyzer ships enforced with zero findings at HEAD.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ros_analyze

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def analyze_source(source, rel="src/foo/test.cc"):
    """Analyzes one in-memory translation unit; returns (rule, line)."""
    fa = ros_analyze.FileAnalyze("test.cc", source, rel)
    return [(f.rule, f.line) for f in fa.run()]


def rules_of(source, rel="src/foo/test.cc"):
    return [rule for rule, _line in analyze_source(source, rel)]


class WallclockTest(unittest.TestCase):
    def test_flags_chrono_clocks(self):
        for clock in ("system", "steady", "high_resolution"):
            src = ("void F() {\n"
                   f"  auto t = std::chrono::{clock}_clock::now();\n"
                   "}\n")
            self.assertIn(("wallclock", 2), analyze_source(src),
                          msg=clock)

    def test_flags_c_library_time_and_entropy(self):
        cases = [
            "auto t = time(nullptr);",
            "auto t = ::time(NULL);",
            "auto c = clock();",
            "gettimeofday(&tv, nullptr);",
            "std::random_device rd;",
            "int r = rand();",
            "srand(42);",
        ]
        for stmt in cases:
            src = "void F() {\n  " + stmt + "\n}\n"
            self.assertIn("wallclock", rules_of(src), msg=stmt)

    def test_sim_time_and_lookalikes_not_flagged(self):
        src = (
            "void F() {\n"
            "  auto t = sim_.now();\n"
            "  auto d = obj.time();\n"          # member named time
            "  auto r = rng_.Next();\n"
            "  int uptime(int x);\n"            # identifier suffix
            "  Rebrand(brand);\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])

    def test_sim_time_h_is_exempt(self):
        src = "inline double Wall() { return clock(); }\n"
        self.assertEqual(rules_of(src, rel="src/sim/time.h"), [])
        self.assertIn("wallclock", rules_of(src, rel="src/sim/other.h"))

    def test_allow_annotation_suppresses(self):
        src = (
            "void F() {\n"
            "  // ros_analyze: allow(wallclock): host-side bench timing\n"
            "  auto t = std::chrono::steady_clock::now();\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])


class UnorderedIterTest(unittest.TestCase):
    def test_flags_range_for_over_local(self):
        src = (
            "void F() {\n"
            "  std::unordered_map<int, int> m;\n"
            "  for (const auto& [k, v] : m) {\n"
            "    Use(k, v);\n"
            "  }\n"
            "}\n"
        )
        self.assertIn(("unordered-iter", 3), analyze_source(src))

    def test_flags_begin_call_and_alias(self):
        src = (
            "using Index = std::unordered_map<std::string, int>;\n"
            "void F() {\n"
            "  Index index;\n"
            "  auto it = index.begin();\n"
            "}\n"
        )
        self.assertIn(("unordered-iter", 4), analyze_source(src))

    def test_flags_member_iteration(self):
        src = (
            "class C {\n"
            "  void F() {\n"
            "    for (const auto& kv : map_) {\n"
            "    }\n"
            "  }\n"
            "  // ros_analyze: allow(unordered-member): point lookups\n"
            "  std::unordered_map<int, int> map_;\n"
            "};\n"
        )
        self.assertIn(("unordered-iter", 3), analyze_source(src))

    def test_point_lookups_and_ordered_iteration_not_flagged(self):
        src = (
            "void F() {\n"
            "  std::unordered_map<int, int> m;\n"
            "  std::map<int, int> ordered;\n"
            "  auto it = m.find(3);\n"
            "  m.erase(3);\n"
            "  for (const auto& kv : ordered) {\n"
            "  }\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])

    def test_allow_annotation_suppresses(self):
        src = (
            "void F() {\n"
            "  std::unordered_set<int> s;\n"
            "  // ros_analyze: allow(unordered-iter): order-insensitive\n"
            "  for (int v : s) {\n"
            "    total += v;\n"
            "  }\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])


class UnorderedMemberTest(unittest.TestCase):
    def test_flags_unannotated_member(self):
        src = (
            "class C {\n"
            "  std::unordered_map<std::string, int> index_;\n"
            "};\n"
        )
        self.assertIn(("unordered-member", 2), analyze_source(src))

    def test_annotated_member_and_local_not_flagged(self):
        src = (
            "class C {\n"
            "  // ros_analyze: allow(unordered-member): point lookups\n"
            "  // only; never iterated.\n"
            "  std::unordered_map<std::string, int> index_;\n"
            "  void F() {\n"
            "    std::unordered_map<int, int> local;\n"
            "    local.count(1);\n"
            "  }\n"
            "};\n"
        )
        self.assertEqual(rules_of(src), [])


class PointerOrderTest(unittest.TestCase):
    def test_flags_pointer_keyed_map_set_and_less(self):
        cases = [
            "std::map<Foo*, int> by_ptr;",
            "std::set<const Node*> visited;",
            "std::set<int, std::less<int*>> weird;",
        ]
        for stmt in cases:
            src = "void F() {\n  " + stmt + "\n}\n"
            self.assertIn("pointer-order", rules_of(src), msg=stmt)

    def test_flags_uintptr_casts(self):
        src = (
            "bool Less(const Foo* a, const Foo* b) {\n"
            "  return reinterpret_cast<uintptr_t>(a) <\n"
            "         reinterpret_cast<std::uintptr_t>(b);\n"
            "}\n"
        )
        self.assertIn("pointer-order", rules_of(src))

    def test_value_keyed_containers_not_flagged(self):
        src = (
            "void F() {\n"
            "  std::map<std::string, Foo*> by_name;\n"  # pointer VALUES ok
            "  std::set<int> ids;\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])


class ViewAcrossSuspendTest(unittest.TestCase):
    def test_flags_iterator_read_after_await(self):
        src = (
            "sim::Task<int> F() {\n"
            "  auto it = map_.find(key);\n"
            "  co_await sim_.Delay(1);\n"
            "  co_return it->second;\n"
            "}\n"
        )
        findings = analyze_source(src)
        self.assertIn(("view-across-suspend", 4), findings)

    def test_flags_string_view_and_borrowed_pointer(self):
        src = (
            "sim::Task<void> F() {\n"
            "  std::string_view view = Name();\n"
            "  co_await Work();\n"
            "  Use(view);\n"
            "  co_return;\n"
            "}\n"
            "sim::Task<void> G() {\n"
            "  const Image* image = mounted->second.get();\n"
            "  co_await Work();\n"
            "  image->Read();\n"
            "  co_return;\n"
            "}\n"
        )
        rules = [r for r, _l in analyze_source(src)]
        self.assertEqual(rules.count("view-across-suspend"), 2)

    def test_use_before_await_not_flagged(self):
        src = (
            "sim::Task<int> F() {\n"
            "  auto it = map_.find(key);\n"
            "  int v = it->second;\n"
            "  co_await sim_.Delay(1);\n"
            "  co_return v;\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])

    def test_same_statement_await_operand_not_flagged(self):
        # The read happens while building the co_await operand — before
        # the suspension — so it is safe.
        src = (
            "sim::Task<int> F() {\n"
            "  auto it = locks_.find(path);\n"
            "  co_return co_await it->second->Lock();\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])

    def test_reacquire_after_await_kills_liveness(self):
        # The re-acquire idiom: reassigning after the suspension makes
        # later reads safe.
        src = (
            "sim::Task<int> F() {\n"
            "  auto handle = handles_.find(path);\n"
            "  co_await sim_.Delay(cost);\n"
            "  handle = handles_.find(path);\n"
            "  co_return handle->second;\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])

    def test_non_coroutine_and_nested_lambda_not_flagged(self):
        src = (
            "int Plain() {\n"
            "  auto it = map_.find(key);\n"
            "  return it->second;\n"
            "}\n"
            "sim::Task<void> G() {\n"
            "  co_await Work();\n"
            "  auto fn = [this] {\n"
            "    auto it = map_.find(0);\n"
            "    Use(it);\n"
            "  };\n"
            "  fn();\n"
            "  co_return;\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])

    def test_allow_annotation_suppresses(self):
        src = (
            "sim::Task<int> F() {\n"
            "  // ros_analyze: allow(view-across-suspend): map is only\n"
            "  // mutated at shutdown, which cannot overlap this path.\n"
            "  auto it = map_.find(key);\n"
            "  co_await sim_.Delay(1);\n"
            "  co_return it->second;\n"
            "}\n"
        )
        self.assertEqual(rules_of(src), [])


class StaleAllowTest(unittest.TestCase):
    def test_unused_annotation_is_detected(self):
        src = (
            "void F() {\n"
            "  // ros_analyze: allow(wallclock): obsolete excuse\n"
            "  int x = 1;\n"
            "}\n"
        )
        fa = ros_analyze.FileAnalyze("test.cc", src, "src/foo/test.cc")
        fa.run()
        annotations = fa.allow.annotations(fa.lines)
        stale = [(l, r) for l, r in annotations
                 if r in ros_analyze.RULES and (l, r) not in fa.allow.used]
        self.assertEqual(stale, [(2, "wallclock")])

    def test_used_annotation_is_not_stale(self):
        src = (
            "void F() {\n"
            "  // ros_analyze: allow(wallclock): bench timing\n"
            "  auto t = std::chrono::steady_clock::now();\n"
            "}\n"
        )
        fa = ros_analyze.FileAnalyze("test.cc", src, "src/foo/test.cc")
        fa.run()
        stale = [(l, r) for l, r in fa.allow.annotations(fa.lines)
                 if r in ros_analyze.RULES and (l, r) not in fa.allow.used]
        self.assertEqual(stale, [])


class CorpusTest(unittest.TestCase):
    def test_source_tree_is_clean(self):
        """The determinism contract: zero findings (and zero stale
        allows) over src/, bench/ and tests/ at HEAD."""
        rc = ros_analyze.main(
            ["--check-allows"] +
            [os.path.join(REPO_ROOT, d) for d in ("src", "bench", "tests")])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
