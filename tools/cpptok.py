#!/usr/bin/env python3
"""cpptok: shared C++ lexing and scope machinery for the repo's checkers.

The repo carries two source-level checkers — tools/ros_lint.py (Status and
coroutine discipline) and tools/ros_analyze.py (determinism and
coroutine-lifetime flow analysis). Both need the same "clang-AST-lite"
substrate: comment/string stripping that preserves offsets, bracket
matching, and a structural view of the file (which braces open a
namespace, a class, a function, a lambda, a control block). That substrate
lives here so the two tools cannot drift apart.

Nothing in this module knows about any specific rule; it only answers
structural questions:

  strip_comments_and_strings(text)   offset-preserving blanking
  find_matching(text, i, "(", ")")   bracket matching on stripped text
  line_of(text, i)                   1-based line number of an offset
  split_top_level(params)            parameter-list splitting
  ScopeTree(stripped)                classified brace-block tree

ScopeTree classifies every `{...}` block by looking at the tokens before
the opening brace: `namespace N {` -> NAMESPACE, `class C : Base {` ->
CLASS, `Task<Status> F(...) {` / `[](...) {` -> FUNCTION / LAMBDA,
`if (...) {` / `else {` -> BLOCK, `= {...}` / `Foo{...}` -> INIT (brace
initializers, not scopes). Queries:

  innermost(pos)            the smallest scope containing `pos`
  enclosing_function(pos)   nearest FUNCTION or LAMBDA ancestor (None at
                            namespace/class scope)
  at_class_scope(pos)       True when the innermost non-INIT scope is a
                            class body (i.e. `pos` is a member decl site)
  functions()               every FUNCTION/LAMBDA scope, with coroutine
                            bodies marked (the body co_awaits at its own
                            nesting level, not inside a nested lambda)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

# --- lexing ---------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literal *contents*, preserving
    offsets and newlines so line numbers keep working. Checker `allow`
    annotations are read from the original text, not the stripped one."""
    out = list(text)
    i, n = 0, len(text)

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            blank(i, j + 2)
            i = j + 2
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\\ ]*)\(', text[i:])
            if not m:
                i += 1
                continue
            delim = m.group(1)
            close = ")" + delim + '"'
            j = text.find(close, i + m.end())
            j = n - len(close) if j < 0 else j
            blank(i + m.end(), j)
            i = j + len(close)
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j = j + 2 if text[j] == "\\" else j + 1
            blank(i + 1, j)
            i = j + 1
        else:
            i += 1
    return "".join(out)


def find_matching(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index just past the bracket matching text[start] (which must be
    open_ch), or -1. Call on stripped text only."""
    assert text[start] == open_ch
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def find_matching_back(text: str, end: int, open_ch: str,
                       close_ch: str) -> int:
    """Index of the bracket matching text[end] (which must be close_ch),
    scanning backwards, or -1. Call on stripped text only."""
    assert text[end] == close_ch
    depth = 0
    for i in range(end, -1, -1):
        if text[i] == close_ch:
            depth += 1
        elif text[i] == open_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def line_of(text: str, index: int) -> int:
    return text.count("\n", 0, index) + 1


def split_top_level(params: str) -> list[str]:
    """Splits a parameter list at commas not nested in <>, (), {} or []."""
    parts, depth, cur = [], 0, []
    for ch in params:
        if ch in "<({[":
            depth += 1
        elif ch in ">)}]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append("".join(cur))
    return parts


# --- scope tree -----------------------------------------------------------

NAMESPACE = "namespace"
CLASS = "class"
FUNCTION = "function"
LAMBDA = "lambda"
BLOCK = "block"
INIT = "init"

_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}
_CLASS_RE = re.compile(r"\b(class|struct|union)\b")
_ENUM_RE = re.compile(r"\benum\b")


@dataclass
class Scope:
    kind: str
    open: int       # index of '{' in the stripped text
    close: int      # index of the matching '}' (== len(text) if unclosed)
    parent: "Scope | None" = None
    children: list = field(default_factory=list)

    def contains(self, pos: int) -> bool:
        return self.open < pos < self.close

    def body(self, text: str) -> str:
        return text[self.open : self.close + 1]


class ScopeTree:
    """Classified brace-block tree over *stripped* text. The root is a
    synthetic namespace-kind scope spanning the whole file."""

    def __init__(self, stripped: str):
        self.text = stripped
        self.root = Scope(NAMESPACE, -1, len(stripped))
        self._build()

    def _build(self) -> None:
        stack = [self.root]
        for i, ch in enumerate(self.text):
            if ch == "{":
                scope = Scope(self._classify(i, stack[-1]), i,
                              len(self.text), parent=stack[-1])
                stack[-1].children.append(scope)
                stack.append(scope)
            elif ch == "}" and len(stack) > 1:
                stack[-1].close = i
                stack.pop()

    def _classify(self, brace: int, parent: Scope) -> str:
        """Decides what kind of scope the brace at `brace` opens from the
        tokens between the previous statement boundary and the brace."""
        text = self.text
        # The statement the brace belongs to starts after the last ; { }.
        stmt = max(text.rfind(";", 0, brace), text.rfind("{", 0, brace),
                   text.rfind("}", 0, brace)) + 1
        head = text[stmt:brace].strip()

        if not head:
            return BLOCK  # bare scoping block
        last = head[-1]
        if last in "=,(" or head.endswith("return") or last == "{":
            return INIT
        if re.search(r"\bnamespace\b", head):
            return NAMESPACE
        # `enum class E : int {` is a value list, not a member scope.
        if _ENUM_RE.search(head):
            return INIT
        if _CLASS_RE.search(head) and "(" not in head.split("=")[-1]:
            return CLASS
        if re.search(r"\b(else|do|try)\s*$", head):
            return BLOCK
        if last in ")&:" or re.search(
                r"(\bconst|\bnoexcept|\bmutable|\boverride|\bfinal"
                r"|->\s*[\w:<>,&*\s]+)\s*$", head):
            # A parenthesized header: control block, function definition,
            # or lambda. Find the '(' matching the last ')'.
            rp = text.rfind(")", stmt, brace)
            if rp < 0:
                # `: init_list {` without parens in view (rare) — treat a
                # constructor-ish header as a function.
                return FUNCTION
            lp = find_matching_back(text, rp, "(", ")")
            if lp < 0:
                return BLOCK
            if lp < stmt:
                # The last ';' sat inside this paren pair (a classic
                # for-header); the real statement head starts before it.
                stmt = max(text.rfind(";", 0, lp), text.rfind("{", 0, lp),
                           text.rfind("}", 0, lp)) + 1
            before = text[stmt:lp].rstrip()
            word = re.search(r"([A-Za-z_]\w*)\s*$", before)
            if word and word.group(1) in _CONTROL_KEYWORDS:
                return BLOCK
            if before.endswith("]"):
                return LAMBDA
            # Function-shaped. At function scope that would be a call
            # followed by an INIT brace, but `foo(...) {` as a statement
            # is not valid C++ at block scope, so FUNCTION is safe.
            return FUNCTION
        if head.endswith("]"):
            return LAMBDA  # capture-only lambda: `[x] {`
        return INIT

    # --- queries ---------------------------------------------------------

    def innermost(self, pos: int) -> Scope:
        scope = self.root
        descended = True
        while descended:
            descended = False
            for child in scope.children:
                if child.contains(pos):
                    scope = child
                    descended = True
                    break
        return scope

    def enclosing_function(self, pos: int) -> Scope | None:
        scope = self.innermost(pos)
        while scope is not None:
            if scope.kind in (FUNCTION, LAMBDA):
                return scope
            scope = scope.parent
        return None

    def at_class_scope(self, pos: int) -> bool:
        scope = self.innermost(pos)
        while scope is not None and scope.kind == INIT:
            scope = scope.parent
        return scope is not None and scope.kind == CLASS

    def functions(self) -> list[Scope]:
        out: list[Scope] = []

        def walk(scope: Scope) -> None:
            if scope.kind in (FUNCTION, LAMBDA):
                out.append(scope)
            for child in scope.children:
                walk(child)

        walk(self.root)
        return out

    def is_coroutine(self, fn: Scope) -> bool:
        """True when `fn`'s body uses co_await/co_return/co_yield at its
        own level (keywords inside nested lambdas belong to them)."""
        for m in re.finditer(r"\bco_(await|return|yield)\b",
                             self.text[fn.open : fn.close]):
            if self.enclosing_function(fn.open + 1 + m.start()) is fn:
                return True
        return False


# --- allow annotations ----------------------------------------------------


def make_allow_checker(tag: str):
    """Returns `allowed(lines, line, rule)` matching inline suppressions of
    the form `// <tag>: allow(<rule>[, <rule>...]): justification`, on the
    finding's own line or anywhere in the contiguous `//` comment block
    immediately above it. `lines` is the ORIGINAL text split into lines.

    The returned callable also records which (line, rule) annotations were
    consulted and which actually suppressed a finding, so callers can
    report stale markers (see `stale_allows`)."""
    allow_re = re.compile(re.escape(tag) + r":\s*allow\(([^)]*)\)")

    class Checker:
        def __init__(self):
            self.used: set[tuple[int, str]] = set()  # (line, rule) hits

        def annotations(self, lines: list[str]) -> list[tuple[int, str]]:
            """Every (1-based line, rule) allow marker in the file."""
            out = []
            for i, text in enumerate(lines, start=1):
                m = allow_re.search(text)
                if m:
                    for rule in m.group(1).split(","):
                        out.append((i, rule.strip()))
            return out

        def __call__(self, lines: list[str], line: int, rule: str) -> bool:
            candidates = [line]
            lineno = line - 1
            while lineno >= 1 and \
                    lines[lineno - 1].lstrip().startswith("//"):
                candidates.append(lineno)
                lineno -= 1
            for lineno in candidates:
                if 1 <= lineno <= len(lines):
                    m = allow_re.search(lines[lineno - 1])
                    if m and rule in [r.strip()
                                      for r in m.group(1).split(",")]:
                        self.used.add((lineno, rule))
                        return True
            return False

    return Checker()


if __name__ == "__main__":
    import sys

    for path in sys.argv[1:]:
        with open(path, encoding="utf-8") as fh:
            tree = ScopeTree(strip_comments_and_strings(fh.read()))
        for fn in tree.functions():
            print(f"{path}:{line_of(tree.text, fn.open)}: {fn.kind}"
                  f"{' coroutine' if tree.is_coroutine(fn) else ''}")
