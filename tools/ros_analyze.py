#!/usr/bin/env python3
"""ros-analyze: flow-aware determinism and coroutine-lifetime checks.

Every reproducibility guarantee in this repo — the seeded chaos storms,
the dispatch-log determinism probes, the byte-identity bench gates, the
double-run divergence oracle (bench --replay-check) — rests on the
simulation being perfectly deterministic. ros-lint is regex-level;
clang-tidy is advisory and toolchain-dependent. This checker sits in
between: it builds a scope tree over each translation unit (tools/cpptok)
and enforces the determinism contract (DESIGN.md §5h) with real scope and
dataflow awareness:

  wallclock            Wall-clock or entropy sources: std::chrono's
                       system/steady/high_resolution clocks, ::time(),
                       clock(), gettimeofday, std::random_device, rand(),
                       srand. Simulated time comes from sim::Simulator;
                       randomness from seeded ros::Rng. The only exempt
                       file is src/sim/time.h; host-side measurement shims
                       (bench timing loops) carry an allow annotation.

  unordered-iter       A range-for or a begin()/cbegin()/rbegin() call on
                       a variable whose declared type is a std::unordered_
                       map/set (local or member, through one `using`
                       alias). Hash-table iteration order depends on
                       libstdc++ version, seed, and allocation history —
                       it is exactly the kind of nondeterminism that works
                       today and diverges years later. Iterate a std::map,
                       sort a snapshot first, or annotate a provably
                       order-insensitive loop.

  unordered-member     Declaring a std::unordered_map/set *member* is a
                       standing temptation for the next iteration bug, so
                       every such declaration must carry an annotation
                       stating its contract (point lookups only, never
                       iterated). The annotation is load-bearing: it is
                       what the audit of a new unordered member reviews.

  pointer-order        Ordering keyed on raw pointer values: std::map/
                       std::set keyed by a pointer type, std::less<T*>,
                       or a comparator casting operands to uintptr_t.
                       Pointer values depend on allocator behaviour and
                       ASLR; any container order or sort order derived
                       from them differs run to run.

  view-across-suspend  Flow-aware: a local of view type — string_view,
                       span, an iterator (declared or from begin()/find()/
                       lower_bound()), a reference bound to a call result,
                       or a raw pointer from .get()/.data()/.c_str() —
                       that is used after a later co_await in the same
                       coroutine body. Across a suspension the referent
                       may be invalidated (container mutated by another
                       task, cache entry evicted, temporary gone); the
                       two ros-lint rules cover parameters and lambda
                       captures, this rule covers local dataflow.

Usage:
    tools/ros_analyze.py [paths...]      # default: src/ bench/ tests/
    tools/ros_analyze.py --check-allows  # also fail on stale allow()s
    tools/ros_analyze.py --list-unordered  # debug: dump the unordered set

Suppressions: `// ros_analyze: allow(<rule>[, <rule>...]): justification`
on the finding's line or the contiguous comment block above it. Stale
markers (ones that no longer suppress anything) fail --check-allows.

Exit status: 0 clean, 1 findings (or stale allows), 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpptok
from cpptok import ScopeTree, find_matching, line_of, strip_comments_and_strings

RULES = (
    "wallclock",
    "unordered-iter",
    "unordered-member",
    "pointer-order",
    "view-across-suspend",
)

# Files exempt from `wallclock` by design rather than annotation: the sim
# clock itself is the shim every other file must go through.
WALLCLOCK_EXEMPT = ("src/sim/time.h",)


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- rule: wallclock ------------------------------------------------------

WALLCLOCK_RES = (
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "std::chrono::{}_clock reads host time; simulated time must come "
     "from sim::Simulator::now()"),
    (re.compile(r"(?<![\w.:])(?:std\s*::\s*|::\s*)?(time|clock)"
                r"\s*\(\s*(nullptr|NULL|0|&\w+)?\s*\)"),
     "C library '{}()' reads the host clock; use sim::Simulator::now()"),
    (re.compile(r"(?<![\w.:])gettimeofday\s*\("),
     "'{}' reads the host clock; use sim::Simulator::now()"),
    (re.compile(r"std::random_device"),
     "std::random_device draws host entropy; all randomness must flow "
     "through a seeded ros::Rng"),
    (re.compile(r"(?<![\w.:])s?rand\s*\("),
     "'{}' is unseeded/global C randomness; use a seeded ros::Rng"),
)


# --- unordered container inventory ---------------------------------------

UNORDERED_TYPE_RE = re.compile(r"\bstd\s*::\s*unordered_(map|set|multimap"
                               r"|multiset)\s*<")
USING_ALIAS_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=")
DECL_NAME_RE = re.compile(r"\s*(?:[*&]\s*)?([A-Za-z_]\w*)\s*[;={(]")


class FileAnalyze:
    def __init__(self, path: str, text: str, rel: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.stripped = strip_comments_and_strings(text)
        self.lines = text.splitlines()
        self.tree = ScopeTree(self.stripped)
        self.allow = cpptok.make_allow_checker("ros_analyze")
        self.findings: list[Finding] = []

    def report(self, index: int, rule: str, message: str,
               extra_lines: tuple[int, ...] = ()) -> None:
        line = line_of(self.stripped, index)
        for candidate in (line, *extra_lines):
            if self.allow(self.lines, candidate, rule):
                return
        self.findings.append(Finding(self.rel, line, rule, message))

    # --- wallclock -------------------------------------------------------

    def check_wallclock(self) -> None:
        if any(self.rel.endswith(suffix) for suffix in WALLCLOCK_EXEMPT):
            return
        for regex, message in WALLCLOCK_RES:
            for m in regex.finditer(self.stripped):
                what = m.group(1) if m.groups() and m.group(1) else \
                    m.group(0).strip().rstrip("(").strip()
                self.report(m.start(), "wallclock", message.format(what))

    # --- unordered inventory --------------------------------------------

    def _unordered_aliases(self) -> set[str]:
        """Names introduced by `using X = std::unordered_...` (one level)."""
        aliases: set[str] = set()
        for m in USING_ALIAS_RE.finditer(self.stripped):
            rest = self.stripped[m.end():]
            if UNORDERED_TYPE_RE.match(rest.lstrip()):
                aliases.add(m.group(1))
        return aliases

    def _unordered_decls(self) -> list[tuple[str, int]]:
        """(variable name, declaration offset) of every variable declared
        with an unordered container type or a one-level alias of one."""
        decls: list[tuple[str, int]] = []
        seen: set[int] = set()

        def after_template(start: int) -> int:
            lt = self.stripped.index("<", start)
            end = find_matching(self.stripped, lt, "<", ">")
            return end

        for m in UNORDERED_TYPE_RE.finditer(self.stripped):
            # Skip `using X = std::unordered_map<...>` (the alias itself)
            # and occurrences inside a wider template argument list
            # (e.g. std::vector<std::unordered_map<...>> still counts —
            # the *outer* decl gets found from its own type name, so a
            # nested hit reporting the same variable is harmless).
            stmt = max(self.stripped.rfind(c, 0, m.start())
                       for c in ";{}") + 1
            if re.search(r"\busing\b", self.stripped[stmt:m.start()]):
                continue
            end = after_template(m.start())
            if end < 0:
                continue
            dm = DECL_NAME_RE.match(self.stripped, end)
            if dm and end not in seen:
                seen.add(end)
                decls.append((dm.group(1), m.start()))
        aliases = self._unordered_aliases()
        if aliases:
            alias_re = re.compile(
                r"(?<![\w:])(" + "|".join(re.escape(a) for a in aliases) +
                r")\s+([A-Za-z_]\w*)\s*[;={]")
            for m in alias_re.finditer(self.stripped):
                decls.append((m.group(2), m.start()))
        return decls

    # --- unordered-iter & unordered-member ------------------------------

    def check_unordered(self) -> None:
        decls = self._unordered_decls()
        if not decls:
            return
        members: set[str] = set()
        local_names: set[str] = set()
        for name, pos in decls:
            if self.tree.at_class_scope(pos):
                members.add(name)
                self.report(
                    pos, "unordered-member",
                    f"unordered container member '{name}' must carry a "
                    "'// ros_analyze: allow(unordered-member): <contract>' "
                    "annotation stating it is never iterated (point "
                    "lookups only) — or use std::map")
            else:
                local_names.add(name)
        names = members | local_names

        def is_unordered_expr(expr: str) -> bool:
            expr = expr.strip()
            expr = re.sub(r"^this\s*->\s*", "", expr)
            leaf = re.split(r"\.|->", expr)[-1].strip()
            return (re.fullmatch(r"[A-Za-z_]\w*", leaf) is not None
                    and leaf in names)

        # Range-for over an unordered variable.
        for m in re.finditer(r"\bfor\s*\(", self.stripped):
            open_paren = self.stripped.index("(", m.end() - 1)
            end = find_matching(self.stripped, open_paren, "(", ")")
            if end < 0:
                continue
            header = self.stripped[open_paren + 1 : end - 1]
            colon = self._range_for_colon(header)
            if colon < 0:
                continue
            if is_unordered_expr(header[colon + 1:]):
                self.report(
                    m.start(), "unordered-iter",
                    "range-for over an unordered container iterates in "
                    "hash order, which varies across library versions and "
                    "allocation histories; iterate a std::map, sort a "
                    "snapshot first, or annotate an order-insensitive "
                    "loop with ros_analyze: allow(unordered-iter)")
        # Ordered-iteration entry points on an unordered variable.
        for m in re.finditer(
                r"([A-Za-z_][\w.>\-]*?)\s*(\.|->)\s*"
                r"(c?r?begin|crbegin|rbegin|cbegin|begin)\s*\(\s*\)",
                self.stripped):
            if is_unordered_expr(m.group(1)):
                self.report(
                    m.start(), "unordered-iter",
                    f"'{m.group(3)}()' on an unordered container starts a "
                    "hash-order traversal (or picks a pseudo-arbitrary "
                    "element); both depend on allocation history — use an "
                    "ordered structure or annotate with "
                    "ros_analyze: allow(unordered-iter)")

    @staticmethod
    def _range_for_colon(header: str) -> int:
        """Offset of the range-for ':' in a for-header, or -1. Skips ::
        and colons nested in template args / parens."""
        depth = 0
        i = 0
        while i < len(header):
            ch = header[i]
            if ch in "<([{":
                depth += 1
            elif ch in ">)]}":
                depth -= 1
            elif ch == ":" and depth == 0:
                if i + 1 < len(header) and header[i + 1] == ":":
                    i += 2
                    continue
                if i > 0 and header[i - 1] == ":":
                    i += 1
                    continue
                return i
            i += 1
        return -1

    # --- pointer-order ---------------------------------------------------

    ORDERED_KEYED_RE = re.compile(r"\bstd\s*::\s*(map|set|multimap|multiset)"
                                  r"\s*<")
    LESS_PTR_RE = re.compile(r"\bstd\s*::\s*less\s*<[^<>]*\*\s*>")
    UINTPTR_CMP_RE = re.compile(
        r"(reinterpret_cast\s*<\s*(std\s*::\s*)?uintptr_t\s*>"
        r"|\bstd\s*::\s*bit_cast\s*<\s*(std\s*::\s*)?uintptr_t\s*>)")

    def check_pointer_order(self) -> None:
        for m in self.ORDERED_KEYED_RE.finditer(self.stripped):
            lt = self.stripped.index("<", m.end() - 1)
            end = find_matching(self.stripped, lt, "<", ">")
            if end < 0:
                continue
            args = cpptok.split_top_level(self.stripped[lt + 1 : end - 1])
            if args and args[0].strip().endswith("*"):
                self.report(
                    m.start(), "pointer-order",
                    f"std::{m.group(1)} keyed by a raw pointer orders "
                    "entries by address, which differs run to run (heap "
                    "layout, ASLR); key by a stable id instead")
        for m in self.LESS_PTR_RE.finditer(self.stripped):
            self.report(
                m.start(), "pointer-order",
                "std::less over a pointer type compares addresses; derive "
                "ordering from a stable id, not from where the allocator "
                "placed an object")
        for m in self.UINTPTR_CMP_RE.finditer(self.stripped):
            self.report(
                m.start(), "pointer-order",
                "casting a pointer to uintptr_t bakes allocator/ASLR "
                "state into a value; any ordering or hash derived from it "
                "is nondeterministic across runs")

    # --- view-across-suspend ---------------------------------------------

    # Declarations of locals with view/iterator/pointer-into semantics.
    VIEW_DECL_RES = (
        # std::string_view v = ..., std::span<T> s = ...
        re.compile(r"(?:\bconst\s+)?(?:std\s*::\s*)?(?:string_view|"
                   r"span\s*<[^;=]*>)\s+(?P<name>[A-Za-z_]\w*)\s*[=({]"),
        # SomeType::iterator / ::const_iterator it = ...
        re.compile(r"[\w>\s]::\s*(?:const_)?iterator\s+"
                   r"(?P<name>[A-Za-z_]\w*)\s*[=({]"),
        # auto it = expr.begin() / .find(...) / .lower_bound(...)
        re.compile(r"\bauto\s*&?\s+(?P<name>[A-Za-z_]\w*)\s*=\s*"
                   r"[^;]*?(?:\.|->)\s*"
                   r"(?:c?begin|c?end|find|lower_bound|upper_bound)"
                   r"\s*\([^;]*\)\s*;"),
        # pointer / auto* / reference from .get() / .data() / .c_str()
        re.compile(r"(?:\bauto\s*\*|[A-Za-z_][\w:<>]*\s*\*)\s*"
                   r"(?:const\s+)?(?P<name>[A-Za-z_]\w*)\s*=\s*"
                   r"[^;]*?(?:\.|->)\s*(?:get|data|c_str)\s*\(\s*\)\s*;"),
        # reference bound to a call result: auto& r = Foo(...);
        # (subscripts and plain member access bind to stable storage and
        # are intentionally not matched)
        re.compile(r"(?:\bconst\s+)?\bauto\s*&&?\s+(?P<name>[A-Za-z_]\w*)"
                   r"\s*=\s*[\w:]+(?:\.|->|::)[\w:<>.\->]*\(",),
    )

    def check_view_across_suspend(self) -> None:
        text = self.stripped
        # All co_await positions, bucketed by enclosing function scope.
        awaits: list[int] = [m.start() for m in
                             re.finditer(r"\bco_await\b", text)]
        if not awaits:
            return
        for regex in self.VIEW_DECL_RES:
            for m in regex.finditer(text):
                name = m.group("name")
                if name in ("auto", "const"):
                    continue
                self._track_view_local(name, m.start(), awaits)

    def _track_view_local(self, name: str, decl_pos: int,
                          awaits: list[int]) -> None:
        """Forward dataflow for one view-typed local: walk its uses in
        order, re-starting liveness at every plain reassignment (the
        re-acquire idiom), and flag the first read that crosses a
        suspension point. A co_await in the *same statement* as the read
        does not count — there the read is (part of) the co_await operand
        and is evaluated before suspending."""
        text = self.stripped
        fn = self.tree.enclosing_function(decl_pos)
        if fn is None:
            return
        # A view initialized by `co_await ...` is fine at the co_await in
        # its own initializer; only later suspensions count.
        live_from = text.find(";", decl_pos)
        if live_from < 0:
            return
        block = self.tree.innermost(decl_pos)
        scope_end = min(block.close, fn.close)
        fn_awaits = [a for a in awaits
                     if decl_pos < a < scope_end
                     and self.tree.enclosing_function(a) is fn]
        if not fn_awaits:
            return
        use_re = re.compile(r"(?<![\w.])" + re.escape(name) + r"(?![\w])")
        for use in use_re.finditer(text, live_from, scope_end):
            pos = use.start()
            if self.tree.enclosing_function(pos) is not fn:
                continue  # captured by a nested lambda: ros-lint's
                          # coro-ref-lambda territory
            after = text[use.end():].lstrip()
            if after.startswith("=") and not after.startswith("=="):
                # Plain reassignment: kills the old value and re-acquires;
                # liveness restarts at the end of this statement.
                nxt = text.find(";", pos)
                live_from = nxt if nxt >= 0 else scope_end
                continue
            crossed = [a for a in fn_awaits
                       if live_from < a < pos
                       and re.search(r"[;{}]", text[a:pos])]
            if not crossed:
                continue
            self.report(
                pos, "view-across-suspend",
                f"'{name}' (view/iterator/borrowed pointer declared on "
                f"line {line_of(text, decl_pos)}) is read after the "
                f"co_await on line {line_of(text, min(crossed))}; the "
                "referent can be invalidated while suspended — "
                "re-acquire it after resuming, copy the data, or "
                "annotate with ros_analyze: allow(view-across-suspend)",
                extra_lines=(line_of(text, decl_pos),))
            return  # one finding per declaration is enough

    def run(self) -> list[Finding]:
        self.check_wallclock()
        self.check_unordered()
        self.check_pointer_order()
        self.check_view_across_suspend()
        return self.findings


# --- driver ---------------------------------------------------------------


def gather_files(paths: list[str]) -> dict[str, str]:
    files: dict[str, str] = {}
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith((".cc", ".h")):
                        full = os.path.join(root, name)
                        with open(full, encoding="utf-8") as fh:
                            files[full] = fh.read()
        else:
            with open(path, encoding="utf-8") as fh:
                files[path] = fh.read()
    return files


def main(argv: list[str]) -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        default=[os.path.join(repo_root, d)
                                 for d in ("src", "bench", "tests")])
    parser.add_argument("--check-allows", action="store_true",
                        help="also fail on allow() markers that no longer "
                             "suppress any finding")
    parser.add_argument("--list-unordered", action="store_true")
    args = parser.parse_args(argv)

    files = gather_files(args.paths)
    findings: list[Finding] = []
    stale: list[str] = []
    for path in sorted(files):
        rel = os.path.relpath(path, repo_root)
        if rel.startswith(".."):
            rel = path
        analyze = FileAnalyze(path, files[path], rel)
        if args.list_unordered:
            for name, pos in analyze._unordered_decls():
                where = "member" if analyze.tree.at_class_scope(pos) \
                    else "local"
                print(f"{rel}:{line_of(analyze.stripped, pos)}: "
                      f"{where} {name}")
            continue
        findings.extend(analyze.run())
        if args.check_allows:
            for lineno, rule in analyze.allow.annotations(analyze.lines):
                if rule not in RULES:
                    continue  # other tools' markers share the file
                if (lineno, rule) not in analyze.allow.used:
                    stale.append(
                        f"{rel}:{lineno}: stale 'ros_analyze: "
                        f"allow({rule})' — the annotated line no longer "
                        "triggers the rule; delete the marker")
    if args.list_unordered:
        return 0

    for finding in findings:
        print(finding.render())
    for message in stale:
        print(message)
    if findings or stale:
        print(f"ros-analyze: {len(findings)} finding(s), "
              f"{len(stale)} stale allow(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
