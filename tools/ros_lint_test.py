#!/usr/bin/env python3
"""Unit tests for tools/ros_lint.py (run via ctest or directly)."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ros_lint


def lint_source(source, status_fns=None, extra_decls=""):
    """Lints a single in-memory translation unit; returns finding rules
    with line numbers. `extra_decls` participates in status-fn inventory
    without being linted (models a header elsewhere in the tree)."""
    files = {"test.cc": source}
    if extra_decls:
        files["decls.h"] = extra_decls
    fns = status_fns if status_fns is not None \
        else ros_lint.collect_status_fns(files)
    lint = ros_lint.FileLint("test.cc", source, fns)
    return [(f.rule, f.line) for f in lint.run()]


class StripTest(unittest.TestCase):
    def test_strips_comments_and_strings_preserving_offsets(self):
        src = 'int x; // new Foo\nconst char* s = "delete p";\n/* new */ int y;\n'
        out = ros_lint.strip_comments_and_strings(src)
        self.assertEqual(len(out), len(src))
        self.assertNotIn("new", out)
        self.assertNotIn("delete", out)
        self.assertEqual(out.count("\n"), src.count("\n"))

    def test_raw_string_contents_blanked(self):
        src = 'auto j = R"({"a": "new X"})";\nint z;\n'
        out = ros_lint.strip_comments_and_strings(src)
        self.assertNotIn("new X", out)
        self.assertIn("int z;", out)


class DiscardedStatusTest(unittest.TestCase):
    DECLS = "Status DoWork(int x);\nsim::Task<Status> AsyncWork();\n"

    def test_flags_bare_call(self):
        rules = lint_source("void f() {\n  DoWork(1);\n}\n",
                            extra_decls=self.DECLS)
        self.assertIn(("discarded-status", 2), rules)

    def test_flags_bare_co_await(self):
        src = "sim::Task<void> f() {\n  co_await AsyncWork();\n}\n"
        rules = lint_source(src, extra_decls=self.DECLS)
        self.assertIn(("discarded-status", 2), rules)

    def test_consumed_results_not_flagged(self):
        src = (
            "Status g() {\n"
            "  ROS_RETURN_IF_ERROR(DoWork(1));\n"
            "  Status s = DoWork(2);\n"
            "  if (!DoWork(3).ok()) { return s; }\n"
            "  (void)DoWork(4);\n"
            "  return DoWork(5);\n"
            "}\n"
        )
        rules = [r for r, _ in lint_source(src, extra_decls=self.DECLS)]
        self.assertNotIn("discarded-status", rules)

    def test_continuation_line_not_flagged(self):
        # `auto x =` on one line, the call on the next: consumed, not
        # discarded, even though the call starts its own line.
        src = (
            "sim::Task<void> f() {\n"
            "  auto s =\n"
            "      co_await AsyncWork();\n"
            "  (void)s;\n"
            "}\n"
        )
        rules = [r for r, _ in lint_source(src, extra_decls=self.DECLS)]
        self.assertNotIn("discarded-status", rules)

    def test_ambiguous_name_not_flagged(self):
        # Put returns void on one class and Status on another: the
        # name-matching checker must drop it rather than guess.
        decls = "Status Put(int x);\nvoid Put(double y);\n"
        rules = lint_source("void f() {\n  Put(1);\n}\n", extra_decls=decls)
        self.assertEqual(rules, [])

    def test_inline_allow_suppresses(self):
        src = (
            "void f() {\n"
            "  // ros-lint: allow(discarded-status): best-effort probe\n"
            "  DoWork(1);\n"
            "}\n"
        )
        self.assertEqual(lint_source(src, extra_decls=self.DECLS), [])


class CoroRefParamTest(unittest.TestCase):
    def test_flags_ref_and_string_view_params(self):
        src = (
            "sim::Task<Status> f(const std::string& name,\n"
            "                    std::string_view tag, int n) {\n"
            "  co_return OkStatus();\n"
            "}\n"
        )
        rules = [r for r, _ in lint_source(src)]
        self.assertEqual(rules.count("coro-ref-param"), 2)

    def test_by_value_params_clean(self):
        src = ("sim::Task<Status> f(std::string name, int n) {\n"
               "  co_return OkStatus();\n}\n")
        self.assertEqual(lint_source(src), [])

    def test_declaration_not_flagged(self):
        # Only definitions are coroutines; a declaration has no body.
        src = "sim::Task<Status> f(const std::string& name);\n"
        self.assertEqual(lint_source(src), [])

    def test_non_coroutine_task_wrapper_not_flagged(self):
        # Task-returning but no co_* in the body: plain forwarding
        # function, references are fine.
        src = ("sim::Task<Status> f(const std::string& name) {\n"
               "  return g(name);\n}\n")
        self.assertEqual(lint_source(src), [])

    def test_multiline_allow_comment_suppresses(self):
        src = (
            "// ros-lint: allow(coro-ref-param): sim outlives every task\n"
            "// it runs, so the reference cannot dangle.\n"
            "sim::Task<Status> f(Simulator& sim) {\n"
            "  co_return OkStatus();\n"
            "}\n"
        )
        self.assertEqual(lint_source(src), [])


class CoroRefLambdaTest(unittest.TestCase):
    def test_flags_ref_capture_coroutine_lambda(self):
        src = ("void f() {\n"
               "  auto t = [&]() -> sim::Task<void> {\n"
               "    co_await Tick();\n"
               "  };\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertIn("coro-ref-lambda", rules)

    def test_flags_directly_awaited_ref_lambda(self):
        src = ("sim::Task<void> f() {\n"
               "  co_await Run([&] { return x; });\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertIn("coro-ref-lambda", rules)

    def test_plain_callback_lambda_clean(self):
        # Synchronous visitor callbacks capture by reference all over the
        # tree; without co_await involvement they are fine.
        src = ("void f() {\n"
               "  image.Walk([&](const Node& n) { count += 1; });\n"
               "}\n")
        self.assertEqual(lint_source(src), [])


class RawNewDeleteTest(unittest.TestCase):
    def test_flags_new_and_delete(self):
        src = ("void f() {\n"
               "  auto* p = new Foo();\n"
               "  delete p;\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertEqual(rules.count("raw-new-delete"), 2)

    def test_deleted_functions_clean(self):
        src = ("struct Foo {\n"
               "  Foo(const Foo&) = delete;\n"
               "  Foo& operator=(const Foo&) = delete;\n"
               "};\n")
        self.assertEqual(lint_source(src), [])

    def test_make_unique_and_strings_clean(self):
        src = ('void f() {\n'
               '  auto p = std::make_unique<Foo>();\n'
               '  std::string s = "new and delete in a string";\n'
               '  // new in a comment\n'
               '}\n')
        self.assertEqual(lint_source(src), [])


class ListSizeOnlyTest(unittest.TestCase):
    def test_flags_chained_size_and_empty(self):
        src = ("void f() {\n"
               "  auto n = volume_->List(prefix).size();\n"
               "  if (volume.List(\"/idx/\").empty()) { return; }\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertEqual(rules.count("list-size-only"), 2)

    def test_multiline_chain_flagged(self):
        src = ("void f() {\n"
               "  auto n = volume_->List(LongPrefixExpression(a, b))\n"
               "               .size();\n"
               "}\n")
        rules = lint_source(src)
        self.assertIn(("list-size-only", 2), rules)

    def test_stored_or_iterated_result_clean(self):
        # Materializing the vector and *using* it is the point of List;
        # only size/emptiness-of-a-temporary is the smell.
        src = ("void f() {\n"
               "  auto names = volume_->List(prefix);\n"
               "  for (const auto& n : names) { Use(n); }\n"
               "  auto count = names.size();\n"
               "}\n")
        self.assertEqual(lint_source(src), [])

    def test_list_children_not_flagged(self):
        # Exact-name match only: ListChildren returns direct children and
        # has no CountPrefix analogue.
        src = ("void f() {\n"
               "  auto n = volume_->ListChildren(prefix).size();\n"
               "}\n")
        self.assertEqual(lint_source(src), [])

    def test_inline_allow_suppresses(self):
        src = ("void f() {\n"
               "  // ros-lint: allow(list-size-only): test asserts contents\n"
               "  auto n = volume_->List(prefix).size();\n"
               "}\n")
        self.assertEqual(lint_source(src), [])


class RetryUnclassifiedTest(unittest.TestCase):
    def test_flags_ok_only_retry_loop(self):
        src = (
            "sim::Task<Status> f() {\n"
            "  for (int attempt = 0; attempt < 3; ++attempt) {\n"
            "    Status s = co_await DoWork();\n"
            "    if (s.ok()) { co_return s; }\n"
            "    co_await sim_.Delay(backoff);\n"
            "  }\n"
            "  co_return UnavailableError(\"gave up\");\n"
            "}\n"
        )
        rules = lint_source(src)
        self.assertIn(("retry-unclassified", 2), rules)

    def test_flags_retry_named_while_loop(self):
        src = (
            "sim::Task<Status> f() {\n"
            "  while (retries_left > 0) {\n"
            "    auto s = co_await DoWork();\n"
            "    if (s.ok()) { co_return OkStatus(); }\n"
            "  }\n"
            "  co_return last;\n"
            "}\n"
        )
        rules = [r for r, _ in lint_source(src)]
        self.assertIn("retry-unclassified", rules)

    def test_code_classification_clean(self):
        src = (
            "sim::Task<Status> f() {\n"
            "  for (int attempt = 0; attempt < 3; ++attempt) {\n"
            "    Status s = co_await DoWork();\n"
            "    if (s.ok()) { co_return s; }\n"
            "    if (s.code() != StatusCode::kUnavailable) { co_return s; }\n"
            "  }\n"
            "  co_return UnavailableError(\"gave up\");\n"
            "}\n"
        )
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("retry-unclassified", rules)

    def test_retrier_await_retry_clean(self):
        src = (
            "sim::Task<Status> f() {\n"
            "  sim::Retrier retrier(sim_, policy, seed);\n"
            "  while (true) {\n"
            "    Status s = co_await DoWork();\n"
            "    if (s.ok()) { co_return s; }\n"
            "    if (!co_await retrier.AwaitRetry(s)) { co_return s; }\n"
            "  }\n"
            "}\n"
        )
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("retry-unclassified", rules)

    def test_non_retry_loop_clean(self):
        # Ordinary work loops co_await Status all over the tree; without a
        # retry-ish name there is nothing to classify.
        src = (
            "sim::Task<Status> f() {\n"
            "  for (const auto& entry : entries) {\n"
            "    Status s = co_await Process(entry);\n"
            "    if (!s.ok()) { co_return s; }\n"
            "  }\n"
            "  co_return OkStatus();\n"
            "}\n"
        )
        self.assertEqual(lint_source(src), [])

    def test_entries_identifier_is_not_tries(self):
        # `entries` / `num_tries` must not make a loop retry-ish.
        src = (
            "sim::Task<Status> f() {\n"
            "  while (entries > 0) {\n"
            "    Status s = co_await Pop();\n"
            "    if (!s.ok()) { co_return s; }\n"
            "    --entries;\n"
            "  }\n"
            "  co_return OkStatus();\n"
            "}\n"
        )
        self.assertEqual(lint_source(src), [])

    def test_synchronous_retry_loop_out_of_scope(self):
        # No co_await: not the coroutine-retry shape this rule targets.
        src = (
            "Status f() {\n"
            "  for (int attempt = 0; attempt < 3; ++attempt) {\n"
            "    Status s = TryOnce();\n"
            "    if (s.ok()) { return s; }\n"
            "  }\n"
            "  return UnavailableError(\"gave up\");\n"
            "}\n"
        )
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("retry-unclassified", rules)

    def test_inline_allow_suppresses(self):
        src = (
            "sim::Task<Status> f() {\n"
            "  // ros-lint: allow(retry-unclassified): probe loop, any\n"
            "  // failure is worth one more poll\n"
            "  for (int attempt = 0; attempt < 3; ++attempt) {\n"
            "    Status s = co_await DoWork();\n"
            "    if (s.ok()) { co_return s; }\n"
            "  }\n"
            "  co_return UnavailableError(\"gave up\");\n"
            "}\n"
        )
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("retry-unclassified", rules)


class AcquireBayTest(unittest.TestCase):
    CALL = ("sim::Task<void> f() {\n"
            "  auto bay = co_await mech_->AcquireBay(tray, true);\n"
            "  (void)bay;\n"
            "}\n")

    def test_flags_direct_call(self):
        self.assertIn(("acquire-bay", 2), lint_source(self.CALL))

    def test_owner_files_exempt(self):
        # The scheduler, burn manager and the defining controller are the
        # components allowed to touch bays directly.
        for name in ("src/olfs/fetch_scheduler.cc",
                     "src/olfs/burn_manager.cc",
                     "src/olfs/mech_controller.cc",
                     "src/olfs/mech_controller.h"):
            lint = ros_lint.FileLint(name, self.CALL, set())
            rules = [f.rule for f in lint.run()]
            self.assertNotIn("acquire-bay", rules, name)

    def test_inline_allow_suppresses(self):
        src = ("sim::Task<void> f() {\n"
               "  // ros-lint: allow(acquire-bay): sequential rebuild scan\n"
               "  auto bay = co_await mech_->AcquireBay(tray, true);\n"
               "  (void)bay;\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("acquire-bay", rules)

    def test_allow_above_wrapped_macro_call_suppresses(self):
        # The call sits on a continuation line of the macro; the finding
        # must anchor at the statement start so the annotation covers it.
        src = ("sim::Task<void> f() {\n"
               "  // ros-lint: allow(acquire-bay): legacy FIFO baseline\n"
               "  ROS_CO_ASSIGN_OR_RETURN(\n"
               "      bay, co_await mech_->AcquireBay(tray, true));\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("acquire-bay", rules)

    def test_similar_names_and_comments_clean(self):
        src = ("sim::Task<void> f() {\n"
               "  // callers go through AcquireBay(...) eventually\n"
               "  auto a = mech_->TryAcquireBay(tray);\n"
               "  auto b = co_await sched_->AcquireForRead(address);\n"
               "  (void)a; (void)b;\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("acquire-bay", rules)


class SpeculativeFetchTest(unittest.TestCase):
    CALL = ("sim::Task<void> Prefetch() {\n"
            "  auto bay = co_await scheduler_->AcquireForRead(address);\n"
            "  (void)bay;\n"
            "}\n")

    def test_flags_direct_call(self):
        self.assertIn(("speculative-fetch", 2), lint_source(self.CALL))

    def test_owner_files_exempt(self):
        # The fetch manager brokers demand leases; the scheduler defines
        # the API. Both enqueue demand legitimately.
        for name in ("src/olfs/fetch_manager.cc",
                     "src/olfs/fetch_scheduler.cc",
                     "src/olfs/fetch_scheduler.h"):
            lint = ros_lint.FileLint(name, self.CALL, set())
            rules = [f.rule for f in lint.run()]
            self.assertNotIn("speculative-fetch", rules, name)

    def test_inline_allow_suppresses(self):
        src = ("sim::Task<void> Prefetch() {\n"
               "  // ros-lint: allow(speculative-fetch): demand-priority "
               "restore\n"
               "  auto bay = co_await scheduler_->AcquireForRead(address);\n"
               "  (void)bay;\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("speculative-fetch", rules)

    def test_allow_above_wrapped_macro_call_suppresses(self):
        src = ("sim::Task<void> Prefetch() {\n"
               "  // ros-lint: allow(speculative-fetch): repair path\n"
               "  ROS_CO_ASSIGN_OR_RETURN(\n"
               "      bay, co_await scheduler_->AcquireForRead(address));\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("speculative-fetch", rules)

    def test_background_class_and_comments_clean(self):
        src = ("sim::Task<void> Prefetch() {\n"
               "  // readers go through AcquireForRead(...) eventually\n"
               "  scheduler_->EnqueueSpeculative(tray);\n"
               "  co_return;\n"
               "}\n")
        rules = [r for r, _ in lint_source(src)]
        self.assertNotIn("speculative-fetch", rules)


class AllowlistTest(unittest.TestCase):
    def test_allowlist_file_filters_by_suffix_and_rule(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "gen.cc")
            with open(src, "w") as fh:
                fh.write("void f() {\n  auto* p = new Foo();\n  (void)p;\n}\n")
            allow = os.path.join(tmp, "allow.txt")
            with open(allow, "w") as fh:
                fh.write("# generated code\ngen.cc:raw-new-delete\n")
            rc = ros_lint.main([src, "--allowlist", allow])
            self.assertEqual(rc, 0)
            rc = ros_lint.main([src, "--allowlist",
                                os.path.join(tmp, "missing.txt")])
            self.assertEqual(rc, 1)


if __name__ == "__main__":
    unittest.main()
