#include "src/disk/raid.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "src/common/gf256.h"
#include "src/sim/join.h"

namespace ros::disk {

namespace {

constexpr std::uint64_t kDiscard = ~0ull;

// Index of data chunk k within stripe s for GF Q-parity coefficients: the
// coefficient is g^k regardless of which physical device holds the chunk.
std::span<const std::uint8_t> SpanOf(const std::vector<std::uint8_t>& v) {
  return {v.data(), v.size()};
}

}  // namespace

RaidVolume::RaidVolume(sim::Simulator& sim, RaidLevel level,
                       std::vector<StorageDevice*> devices,
                       std::uint64_t stripe_unit)
    : sim_(sim), level_(level), devices_(std::move(devices)),
      stripe_unit_(stripe_unit) {
  const int n = num_devices();
  ROS_CHECK(n >= 1);
  switch (level_) {
    case RaidLevel::kRaid0:
      data_n_ = n;
      break;
    case RaidLevel::kRaid1:
      ROS_CHECK(n >= 2);
      data_n_ = 1;
      break;
    case RaidLevel::kRaid5:
      ROS_CHECK(n >= 3);
      data_n_ = n - 1;
      break;
    case RaidLevel::kRaid6:
      ROS_CHECK(n >= 4);
      data_n_ = n - 2;
      break;
  }
  std::uint64_t min_cap = devices_[0]->capacity();
  for (StorageDevice* device : devices_) {
    min_cap = std::min(min_cap, device->capacity());
  }
  stripe_bytes_ = stripe_unit_ * static_cast<std::uint64_t>(data_n_);
  num_stripes_ = min_cap / stripe_unit_;
  capacity_ = num_stripes_ * stripe_bytes_;
  drained_ = std::make_unique<sim::ConditionVariable>(sim_);
}

int RaidVolume::PDevice(std::uint64_t stripe) const {
  const int n = num_devices();
  return n - 1 - static_cast<int>(stripe % n);
}

int RaidVolume::QDevice(std::uint64_t stripe) const {
  return (PDevice(stripe) + 1) % num_devices();
}

RaidVolume::ChunkLoc RaidVolume::DataChunk(std::uint64_t stripe,
                                           int k) const {
  const int n = num_devices();
  const std::uint64_t dev_offset = stripe * stripe_unit_;
  switch (level_) {
    case RaidLevel::kRaid0:
      return {k, dev_offset};
    case RaidLevel::kRaid1:
      return {0, dev_offset};  // canonical copy; mirrors handled separately
    case RaidLevel::kRaid5:
      return {(PDevice(stripe) + 1 + k) % n, dev_offset};
    case RaidLevel::kRaid6:
      return {(QDevice(stripe) + 1 + k) % n, dev_offset};
  }
  ROS_CHECK(false);
  return {0, 0};
}

int RaidVolume::failed_devices() const {
  int failed = 0;
  for (const StorageDevice* device : devices_) {
    if (device->failed()) {
      ++failed;
    }
  }
  return failed;
}

bool RaidVolume::operational() const {
  const int failed = failed_devices();
  switch (level_) {
    case RaidLevel::kRaid0: return failed == 0;
    case RaidLevel::kRaid1: return failed < num_devices();
    case RaidLevel::kRaid5: return failed <= 1;
    case RaidLevel::kRaid6: return failed <= 2;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Writes

sim::Task<Status> RaidVolume::Write(std::uint64_t offset,
                                    std::vector<std::uint8_t> data) {
  if (offset + data.size() > capacity_) {
    co_return OutOfRangeError("write beyond RAID volume");
  }
  if (!operational()) {
    co_return UnavailableError("RAID volume lost too many devices");
  }
  if (data.empty()) {
    co_return OkStatus();
  }

  // Controller write-back cache path: small writes on a healthy volume
  // acknowledge from controller DRAM and destage in the background.
  if (write_cache_ && data.size() <= kCacheMaxWrite &&
      failed_devices() == 0) {
    co_return co_await WriteCached(offset, std::move(data));
  }

  if (level_ == RaidLevel::kRaid1) {
    std::vector<sim::Task<Status>> writes;
    for (StorageDevice* device : devices_) {
      if (!device->failed()) {
        writes.push_back(device->Write(offset, data));
      }
    }
    bytes_written_ += data.size();
    co_return co_await sim::AllOk(sim_, std::move(writes));
  }

  // Align the request to whole stripes, merging with existing data at the
  // partially-covered head/tail stripes (read-modify-write).
  const std::uint64_t first = offset / stripe_bytes_;
  const std::uint64_t last = (offset + data.size() + stripe_bytes_ - 1) /
                             stripe_bytes_;
  std::vector<std::uint8_t> buffer((last - first) * stripe_bytes_, 0);
  const bool head_partial = offset % stripe_bytes_ != 0;
  const bool tail_partial = (offset + data.size()) % stripe_bytes_ != 0;
  if (head_partial) {
    std::vector<std::uint8_t> old;
    ROS_CO_RETURN_IF_ERROR(co_await ReadStripeData(first, &old));
    std::memcpy(buffer.data(), old.data(), stripe_bytes_);
  }
  if (tail_partial && (last - 1 != first || !head_partial)) {
    std::vector<std::uint8_t> old;
    ROS_CO_RETURN_IF_ERROR(co_await ReadStripeData(last - 1, &old));
    std::memcpy(buffer.data() + (last - 1 - first) * stripe_bytes_,
                old.data(), stripe_bytes_);
  }
  std::memcpy(buffer.data() + (offset - first * stripe_bytes_), data.data(),
              data.size());
  bytes_written_ += data.size();
  co_return co_await WriteStripes(first, last, buffer);
}

void RaidVolume::ComputeStripeParity(const std::uint8_t* base,
                                     std::span<std::uint8_t> p,
                                     std::span<std::uint8_t> q) const {
  if (parity_count() >= 2) {
    // Fused single sweep: every data chunk feeds P and Q at once. The
    // Horner recurrence (q = 2q ^ d) wants the highest-coefficient chunk
    // first, so walk the stripe back-to-front.
    for (int k = data_n_ - 1; k >= 0; --k) {
      gf256::PQAcc(p, q, {base + k * stripe_unit_, stripe_unit_});
    }
  } else if (parity_count() == 1) {
    for (int k = 0; k < data_n_; ++k) {
      gf256::XorAcc(p, {base + k * stripe_unit_, stripe_unit_});
    }
  }
}

sim::Task<Status> RaidVolume::WriteStripes(
    std::uint64_t first, std::uint64_t last,
    std::vector<std::uint8_t> data) {
  ROS_CHECK(data.size() >= (last - first) * stripe_bytes_);
  // Per-device vectored segments across all stripes in the request.
  std::map<int, std::vector<StorageDevice::Segment>> segments;

  std::uint64_t parity_bytes = 0;
  for (std::uint64_t stripe = first; stripe < last; ++stripe) {
    const std::uint8_t* base =
        data.data() + (stripe - first) * stripe_bytes_;
    std::vector<std::uint8_t> p(stripe_unit_, 0);
    std::vector<std::uint8_t> q(stripe_unit_, 0);
    for (int k = 0; k < data_n_; ++k) {
      std::span<const std::uint8_t> chunk{base + k * stripe_unit_,
                                          stripe_unit_};
      ChunkLoc loc = DataChunk(stripe, k);
      segments[loc.device].push_back(
          {loc.dev_offset,
           std::vector<std::uint8_t>(chunk.begin(), chunk.end())});
    }
    ComputeStripeParity(base, p, q);
    if (parity_count() >= 1) {
      segments[PDevice(stripe)].push_back(
          {stripe * stripe_unit_, std::move(p)});
      parity_bytes += stripe_bytes_;
    }
    if (parity_count() >= 2) {
      segments[QDevice(stripe)].push_back(
          {stripe * stripe_unit_, std::move(q)});
      parity_bytes += stripe_bytes_;
    }
  }

  // Parity computation at memory bandwidth.
  if (parity_bytes > 0) {
    co_await sim_.Delay(
        sim::TransferTime(parity_bytes, kParityComputeBytesPerSec));
  }

  std::vector<sim::Task<Status>> ops;
  for (auto& [device, segs] : segments) {
    if (!devices_[device]->failed()) {
      ops.push_back(devices_[device]->WriteMulti(std::move(segs)));
    }
  }
  co_return co_await sim::AllOk(sim_, std::move(ops));
}

sim::Task<Status> RaidVolume::WriteDiscard(std::uint64_t offset,
                                           std::uint64_t length) {
  if (offset + length > capacity_) {
    co_return OutOfRangeError("write beyond RAID volume");
  }
  if (!operational()) {
    co_return UnavailableError("RAID volume lost too many devices");
  }
  if (length == 0) {
    co_return OkStatus();
  }
  bytes_written_ += length;
  if (level_ == RaidLevel::kRaid1) {
    std::vector<sim::Task<Status>> writes;
    for (StorageDevice* device : devices_) {
      if (!device->failed()) {
        writes.push_back(device->WriteDiscard(offset, length));
      }
    }
    co_return co_await sim::AllOk(sim_, std::move(writes));
  }
  // Parity compute for the covered bytes, then an even per-device share
  // (data + rotated parity pass-over). The per-device byte range
  // [offset/data_n, end/data_n) tiles exactly across consecutive calls,
  // so sequential streams stay sequential on every spindle.
  co_await sim_.Delay(sim::TransferTime(
      length * static_cast<std::uint64_t>(parity_count()),
      kParityComputeBytesPerSec));
  const std::uint64_t dev_start = offset / data_n_;
  const std::uint64_t dev_end = (offset + length) / data_n_;
  std::vector<sim::Task<Status>> writes;
  for (StorageDevice* device : devices_) {
    if (!device->failed() && dev_end > dev_start) {
      writes.push_back(device->WriteDiscard(dev_start, dev_end - dev_start));
    }
  }
  co_return co_await sim::AllOk(sim_, std::move(writes));
}

sim::Task<Status> RaidVolume::ReadDiscard(std::uint64_t offset,
                                          std::uint64_t length) {
  if (offset + length > capacity_) {
    co_return OutOfRangeError("read beyond RAID volume");
  }
  if (!operational()) {
    co_return UnavailableError("RAID volume lost too many devices");
  }
  if (length == 0) {
    co_return OkStatus();
  }
  bytes_read_ += length;
  if (write_cache_ && failed_devices() == 0 && RangeInCache(offset, length)) {
    co_await sim_.Delay(sim::Micros(300) +
                        sim::TransferTime(length, kCacheAckBytesPerSec));
    co_return OkStatus();
  }
  if (level_ == RaidLevel::kRaid1) {
    for (int attempt = 0; attempt < num_devices(); ++attempt) {
      StorageDevice* device = devices_[next_mirror_read_++ % devices_.size()];
      if (!device->failed()) {
        co_return co_await device->ReadDiscard(offset, length);
      }
    }
    co_return UnavailableError("all mirrors failed");
  }
  // Even per-device share including the rotated-parity pass-over; the
  // range tiles exactly across consecutive sequential calls.
  const std::uint64_t dev_start = offset / data_n_;
  const std::uint64_t dev_end = (offset + length) / data_n_;
  std::vector<sim::Task<Status>> reads;
  for (StorageDevice* device : devices_) {
    if (!device->failed() && dev_end > dev_start) {
      reads.push_back(device->ReadDiscard(dev_start, dev_end - dev_start));
    }
  }
  co_return co_await sim::AllOk(sim_, std::move(reads));
}

bool RaidVolume::RangeInCache(std::uint64_t offset,
                              std::uint64_t length) const {
  for (const auto& [start, len] : cache_ranges_) {
    if (offset >= start && offset + length <= start + len) {
      return true;
    }
  }
  return false;
}

void RaidVolume::RememberRange(std::uint64_t offset, std::uint64_t length) {
  cache_ranges_.emplace_back(offset, length);
  cache_range_bytes_ += length;
  while (cache_range_bytes_ > kCacheDirtyLimit ||
         cache_ranges_.size() > 1024) {
    cache_range_bytes_ -= cache_ranges_.front().second;
    cache_ranges_.pop_front();
  }
}

sim::Task<Status> RaidVolume::WriteCached(std::uint64_t offset,
                                          std::vector<std::uint8_t> data) {
  // Honour the dirty limit: writers stall while destaging catches up,
  // which converges sustained throughput to the spindle rate.
  while (dirty_ + data.size() > kCacheDirtyLimit) {
    co_await drained_->Wait();
  }
  const std::uint64_t size = data.size();
  bytes_written_ += size;
  dirty_ += size;

  std::uint64_t first = 0;
  std::uint64_t stripes = 1;
  if (level_ == RaidLevel::kRaid1) {
    for (StorageDevice* device : devices_) {
      device->StoreDirect(offset, data);
    }
  } else {
    first = offset / stripe_bytes_;
    const std::uint64_t last =
        (offset + size + stripe_bytes_ - 1) / stripe_bytes_;
    stripes = last - first;
    // Read-merge partial head/tail stripes from the cache-coherent view,
    // overlay, recompute parity, store — all in controller DRAM.
    std::vector<std::uint8_t> buffer(stripes * stripe_bytes_, 0);
    for (std::uint64_t stripe = first; stripe < last; ++stripe) {
      for (int k = 0; k < data_n_; ++k) {
        ChunkLoc loc = DataChunk(stripe, k);
        devices_[loc.device]->LoadDirect(
            loc.dev_offset,
            {buffer.data() + (stripe - first) * stripe_bytes_ +
                 static_cast<std::uint64_t>(k) * stripe_unit_,
             stripe_unit_});
      }
    }
    std::memcpy(buffer.data() + (offset - first * stripe_bytes_),
                data.data(), size);
    StoreStripesDirect(first, first + stripes, buffer);
  }

  RememberRange(offset, size);
  sim_.Spawn(Destage(first, stripes, size));
  co_await sim_.Delay(sim::Micros(300) +
                      sim::TransferTime(size, kCacheAckBytesPerSec));
  co_return OkStatus();
}

void RaidVolume::StoreStripesDirect(std::uint64_t first, std::uint64_t last,
                                    const std::vector<std::uint8_t>& data) {
  for (std::uint64_t stripe = first; stripe < last; ++stripe) {
    const std::uint8_t* base = data.data() + (stripe - first) * stripe_bytes_;
    std::vector<std::uint8_t> p(stripe_unit_, 0);
    std::vector<std::uint8_t> q(stripe_unit_, 0);
    for (int k = 0; k < data_n_; ++k) {
      std::span<const std::uint8_t> chunk{base + k * stripe_unit_,
                                          stripe_unit_};
      ChunkLoc loc = DataChunk(stripe, k);
      devices_[loc.device]->StoreDirect(loc.dev_offset, chunk);
    }
    ComputeStripeParity(base, p, q);
    if (parity_count() >= 1) {
      devices_[PDevice(stripe)]->StoreDirect(stripe * stripe_unit_, p);
    }
    if (parity_count() >= 2) {
      devices_[QDevice(stripe)]->StoreDirect(stripe * stripe_unit_, q);
    }
  }
}

sim::Task<void> RaidVolume::Destage(std::uint64_t first_stripe,
                                    std::uint64_t stripes,
                                    std::uint64_t acked_bytes) {
  if (level_ == RaidLevel::kRaid1) {
    std::vector<sim::Task<Status>> writes;
    for (StorageDevice* device : devices_) {
      if (!device->failed()) {
        writes.push_back(
            device->WriteDiscard(first_stripe * stripe_unit_, acked_bytes));
      }
    }
    (void)co_await sim::AllOk(sim_, std::move(writes));
  } else {
    co_await sim_.Delay(sim::TransferTime(
        stripes * stripe_bytes_ * parity_count(), kParityComputeBytesPerSec));
    const std::uint64_t per_device = stripes * stripe_unit_;
    std::vector<sim::Task<Status>> writes;
    for (StorageDevice* device : devices_) {
      if (!device->failed()) {
        writes.push_back(
            device->WriteDiscard(first_stripe * stripe_unit_, per_device));
      }
    }
    (void)co_await sim::AllOk(sim_, std::move(writes));
  }
  dirty_ -= acked_bytes;
  drained_->NotifyAll();
}

// ---------------------------------------------------------------------------
// Reads

sim::Task<StatusOr<std::vector<std::uint8_t>>> RaidVolume::Read(
    std::uint64_t offset, std::uint64_t length) {
  if (offset + length > capacity_) {
    co_return OutOfRangeError("read beyond RAID volume");
  }
  if (!operational()) {
    co_return UnavailableError("RAID volume lost too many devices");
  }
  std::vector<std::uint8_t> out(length);
  if (length == 0) {
    co_return out;
  }

  if (level_ == RaidLevel::kRaid1) {
    // Round-robin across live mirrors.
    // ros-lint: allow(retry-unclassified): mirror failover, not backoff —
    // any per-device error means "try the next replica", and exhausting
    // the replica set is the classification.
    for (int attempt = 0; attempt < num_devices(); ++attempt) {
      StorageDevice* device =
          devices_[next_mirror_read_++ % devices_.size()];
      if (device->failed()) {
        continue;
      }
      auto result = co_await device->Read(offset, length);
      if (result.ok()) {
        bytes_read_ += length;
        co_return std::move(result).value();
      }
    }
    co_return UnavailableError("all mirrors failed");
  }

  if (write_cache_ && failed_devices() == 0 && RangeInCache(offset, length)) {
    // Controller cache hit: no spindle involvement.
    co_await sim_.Delay(sim::Micros(300) +
                        sim::TransferTime(length, kCacheAckBytesPerSec));
    for (std::uint64_t pos = 0; pos < length;) {
      const std::uint64_t stripe = (offset + pos) / stripe_bytes_;
      const std::uint64_t within = (offset + pos) % stripe_bytes_;
      const int k = static_cast<int>(within / stripe_unit_);
      const std::uint64_t chunk_off = within % stripe_unit_;
      const std::uint64_t n =
          std::min(stripe_unit_ - chunk_off, length - pos);
      ChunkLoc loc = DataChunk(stripe, k);
      devices_[loc.device]->LoadDirect(loc.dev_offset + chunk_off,
                                       {out.data() + pos, n});
      pos += n;
    }
    bytes_read_ += length;
    co_return out;
  }

  if (failed_devices() == 0) {
    ROS_CO_RETURN_IF_ERROR(co_await ReadHealthy(offset, length, &out));
    bytes_read_ += length;
    co_return out;
  }

  // Degraded path: stripe-granular reconstruct.
  const std::uint64_t first = offset / stripe_bytes_;
  const std::uint64_t last = (offset + length + stripe_bytes_ - 1) /
                             stripe_bytes_;
  for (std::uint64_t stripe = first; stripe < last; ++stripe) {
    std::vector<std::uint8_t> stripe_data;
    ROS_CO_RETURN_IF_ERROR(co_await ReadStripeData(stripe, &stripe_data));
    const std::uint64_t stripe_start = stripe * stripe_bytes_;
    const std::uint64_t copy_from = std::max(offset, stripe_start);
    const std::uint64_t copy_to =
        std::min(offset + length, stripe_start + stripe_bytes_);
    std::memcpy(out.data() + (copy_from - offset),
                stripe_data.data() + (copy_from - stripe_start),
                copy_to - copy_from);
  }
  bytes_read_ += length;
  co_return out;
}

sim::Task<Status> RaidVolume::ReadHealthy(std::uint64_t offset,
                                          std::uint64_t length,
                                          std::vector<std::uint8_t>* out) {
  // Map every touched chunk to its device; one vectored read per device.
  std::map<int, std::vector<StorageDevice::Segment>> segments;
  std::map<int, std::vector<std::uint64_t>> out_offsets;

  std::uint64_t pos = offset;
  while (pos < offset + length) {
    const std::uint64_t stripe = pos / stripe_bytes_;
    const std::uint64_t within = pos % stripe_bytes_;
    const int k = static_cast<int>(within / stripe_unit_);
    const std::uint64_t chunk_off = within % stripe_unit_;
    const std::uint64_t n =
        std::min(stripe_unit_ - chunk_off, offset + length - pos);
    ChunkLoc loc = DataChunk(stripe, k);
    segments[loc.device].push_back(
        {loc.dev_offset + chunk_off, std::vector<std::uint8_t>(n)});
    out_offsets[loc.device].push_back(pos - offset);

    // Sequential streams pass over the rotated parity chunks on every
    // device; charge that rotational transfer on fully-covered stripes so
    // a 7-HDD RAID-5 reads at 6x — not 7x — one device's rate (§3.3).
    if (k == 0 && chunk_off == 0 && within == 0 &&
        pos + stripe_bytes_ <= offset + length) {
      if (parity_count() >= 1) {
        segments[PDevice(stripe)].push_back(
            {stripe * stripe_unit_, std::vector<std::uint8_t>(stripe_unit_)});
        out_offsets[PDevice(stripe)].push_back(kDiscard);
      }
      if (parity_count() >= 2) {
        segments[QDevice(stripe)].push_back(
            {stripe * stripe_unit_, std::vector<std::uint8_t>(stripe_unit_)});
        out_offsets[QDevice(stripe)].push_back(kDiscard);
      }
    }
    pos += n;
  }

  std::vector<sim::Task<Status>> ops;
  std::vector<std::pair<int, std::vector<StorageDevice::Segment>*>> ptrs;
  for (auto& [device, segs] : segments) {
    ops.push_back(devices_[device]->ReadMulti(&segs));
  }
  ROS_CO_RETURN_IF_ERROR(co_await sim::AllOk(sim_, std::move(ops)));

  for (auto& [device, segs] : segments) {
    const auto& offsets = out_offsets[device];
    for (std::size_t i = 0; i < segs.size(); ++i) {
      if (offsets[i] == kDiscard) {
        continue;  // parity pass-over, timing only
      }
      std::memcpy(out->data() + offsets[i], segs[i].data.data(),
                  segs[i].data.size());
    }
  }
  co_return OkStatus();
}

sim::Task<Status> RaidVolume::ReadStripeData(std::uint64_t stripe,
                                             std::vector<std::uint8_t>* out,
                                             int exclude) {
  out->assign(stripe_bytes_, 0);
  const auto unavailable = [&](int device) {
    return devices_[device]->failed() || device == exclude;
  };

  // Figure out which chunks are readable.
  struct Piece {
    int k;  // data chunk index, or -1 for P, -2 for Q
    int device;
    std::vector<std::uint8_t> data;
    bool ok = false;
  };
  std::vector<Piece> pieces;
  std::vector<int> missing_data;
  for (int k = 0; k < data_n_; ++k) {
    ChunkLoc loc = DataChunk(stripe, k);
    if (unavailable(loc.device)) {
      missing_data.push_back(k);
    } else {
      pieces.push_back({k, loc.device, {}, false});
    }
  }
  bool p_ok = false;
  bool q_ok = false;
  if (parity_count() >= 1 && !unavailable(PDevice(stripe))) {
    pieces.push_back({-1, PDevice(stripe), {}, false});
    p_ok = true;
  }
  if (parity_count() >= 2 && !unavailable(QDevice(stripe))) {
    pieces.push_back({-2, QDevice(stripe), {}, false});
    q_ok = true;
  }
  if (missing_data.size() >
      static_cast<std::size_t>((p_ok ? 1 : 0) + (q_ok ? 1 : 0))) {
    co_return DataLossError("stripe unrecoverable: too many failures");
  }

  // Read all surviving chunks of the stripe in parallel.
  std::vector<sim::Task<Status>> ops;
  for (Piece& piece : pieces) {
    piece.data.resize(stripe_unit_);
    std::vector<StorageDevice::Segment> segs;
    segs.push_back({stripe * stripe_unit_,
                    std::vector<std::uint8_t>(stripe_unit_)});
    // Capture results through a small coroutine per piece.
    ops.push_back([](StorageDevice* device, std::uint64_t off,
                     std::vector<std::uint8_t>* dst) -> sim::Task<Status> {
      auto result = co_await device->Read(off, dst->size());
      if (!result.ok()) {
        co_return result.status();
      }
      *dst = std::move(result).value();
      co_return OkStatus();
    }(devices_[piece.device], stripe * stripe_unit_, &piece.data));
  }
  ROS_CO_RETURN_IF_ERROR(co_await sim::AllOk(sim_, std::move(ops)));

  // Place surviving data chunks; collect parity buffers.
  const std::vector<std::uint8_t>* p_buf = nullptr;
  const std::vector<std::uint8_t>* q_buf = nullptr;
  for (const Piece& piece : pieces) {
    if (piece.k >= 0) {
      std::memcpy(out->data() + piece.k * stripe_unit_, piece.data.data(),
                  stripe_unit_);
    } else if (piece.k == -1) {
      p_buf = &piece.data;
    } else {
      q_buf = &piece.data;
    }
  }

  if (missing_data.empty()) {
    co_return OkStatus();
  }

  // Reconstruction. Charge GF/XOR math at memory bandwidth.
  co_await sim_.Delay(sim::TransferTime(
      stripe_bytes_ * missing_data.size(), kParityComputeBytesPerSec));

  if (missing_data.size() == 1) {
    const int a = missing_data[0];
    std::span<std::uint8_t> da{out->data() + a * stripe_unit_, stripe_unit_};
    if (p_buf != nullptr) {
      // D_a = P ^ (xor of surviving data)
      gf256::XorAcc(da, SpanOf(*p_buf));
      for (const Piece& piece : pieces) {
        if (piece.k >= 0) {
          gf256::XorAcc(da, SpanOf(piece.data));
        }
      }
    } else {
      // Only Q available: D_a = g^-a * (Q ^ sum g^i D_i)
      ROS_CHECK(q_buf != nullptr);
      std::vector<std::uint8_t> acc(*q_buf);
      for (const Piece& piece : pieces) {
        if (piece.k >= 0) {
          gf256::MulAcc(acc, gf256::Pow2(static_cast<unsigned>(piece.k)),
                        SpanOf(piece.data));
        }
      }
      gf256::Scale(acc, gf256::Inv(gf256::Pow2(static_cast<unsigned>(a))));
      std::memcpy(da.data(), acc.data(), stripe_unit_);
    }
    co_return OkStatus();
  }

  // Two missing data chunks: needs both P and Q (RAID-6).
  ROS_CHECK(missing_data.size() == 2);
  if (p_buf == nullptr || q_buf == nullptr) {
    co_return DataLossError("two data chunks lost without both parities");
  }
  const int a = missing_data[0];
  const int b = missing_data[1];
  // P' = P ^ sum(surviving data); Q' = Q ^ sum(g^i * surviving data)
  std::vector<std::uint8_t> pp(*p_buf);
  std::vector<std::uint8_t> qp(*q_buf);
  for (const Piece& piece : pieces) {
    if (piece.k >= 0) {
      gf256::XorAcc(pp, SpanOf(piece.data));
      gf256::MulAcc(qp, gf256::Pow2(static_cast<unsigned>(piece.k)),
                    SpanOf(piece.data));
    }
  }
  // D_a = (Q' ^ g^b * P') / (g^a ^ g^b);  D_b = P' ^ D_a
  std::span<std::uint8_t> da{out->data() + a * stripe_unit_, stripe_unit_};
  std::span<std::uint8_t> db{out->data() + b * stripe_unit_, stripe_unit_};
  gf256::SolveTwo(da, db, pp, qp, gf256::Pow2(static_cast<unsigned>(a)),
                  gf256::Pow2(static_cast<unsigned>(b)));
  co_return OkStatus();
}

// ---------------------------------------------------------------------------
// Rebuild

sim::Task<Status> RaidVolume::Rebuild(int index) {
  if (index < 0 || index >= num_devices()) {
    co_return InvalidArgumentError("bad device index");
  }
  StorageDevice* target = devices_[index];
  if (target->failed()) {
    co_return FailedPreconditionError("replace the device before rebuilding");
  }

  if (level_ == RaidLevel::kRaid1) {
    // Copy from any live mirror in one streaming pass.
    for (StorageDevice* source : devices_) {
      if (source == target || source->failed()) {
        continue;
      }
      const std::uint64_t total = capacity_;
      constexpr std::uint64_t kBatch = 8 * kMiB;
      for (std::uint64_t off = 0; off < total; off += kBatch) {
        const std::uint64_t n = std::min(kBatch, total - off);
        auto data = co_await source->Read(off, n);
        if (!data.ok()) {
          co_return data.status();
        }
        ROS_CO_RETURN_IF_ERROR(
            co_await target->Write(off, std::move(data).value()));
      }
      co_return OkStatus();
    }
    co_return UnavailableError("no live mirror to rebuild from");
  }

  // Parity RAID: reconstruct this device's chunk for every stripe. We mark
  // the device failed for the duration of each stripe read so the
  // reconstruction path computes its contents, then write them back.
  for (std::uint64_t stripe = 0; stripe < num_stripes_; ++stripe) {
    // Identify what lives on `index` in this stripe.
    int role_k = -100;
    if (parity_count() >= 1 && PDevice(stripe) == index) {
      role_k = -1;
    } else if (parity_count() >= 2 && QDevice(stripe) == index) {
      role_k = -2;
    } else {
      for (int k = 0; k < data_n_; ++k) {
        if (DataChunk(stripe, k).device == index) {
          role_k = k;
          break;
        }
      }
    }
    if (role_k == -100) {
      continue;  // RAID-0 has no redundancy; nothing to rebuild from
    }

    std::vector<std::uint8_t> stripe_data;
    ROS_CO_RETURN_IF_ERROR(
        co_await ReadStripeData(stripe, &stripe_data, /*exclude=*/index));

    std::vector<std::uint8_t> chunk(stripe_unit_, 0);
    if (role_k >= 0) {
      std::memcpy(chunk.data(), stripe_data.data() + role_k * stripe_unit_,
                  stripe_unit_);
    } else if (role_k == -1) {
      for (int k = 0; k < data_n_; ++k) {
        gf256::XorAcc(chunk, {stripe_data.data() + k * stripe_unit_,
                              stripe_unit_});
      }
    } else {
      for (int k = 0; k < data_n_; ++k) {
        gf256::MulAcc(chunk, gf256::Pow2(static_cast<unsigned>(k)),
                      {stripe_data.data() + k * stripe_unit_, stripe_unit_});
      }
    }
    ROS_CO_RETURN_IF_ERROR(
        co_await target->Write(stripe * stripe_unit_, std::move(chunk)));
  }
  co_return OkStatus();
}

}  // namespace ros::disk
