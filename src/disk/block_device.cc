#include "src/disk/block_device.h"

#include <algorithm>
#include <cstring>

namespace ros::disk {

void StorageDevice::StoreBytes(std::uint64_t offset,
                               std::span<const std::uint8_t> data) {
  std::uint64_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t chunk_index = abs / kChunk;
    const std::uint64_t within = abs % kChunk;
    const std::uint64_t n =
        std::min<std::uint64_t>(kChunk - within, data.size() - pos);
    auto& chunk = chunks_[chunk_index];
    if (chunk.empty()) {
      chunk.resize(kChunk, 0);
    }
    std::memcpy(chunk.data() + within, data.data() + pos, n);
    pos += n;
  }
}

void StorageDevice::LoadBytes(std::uint64_t offset,
                              std::span<std::uint8_t> out) const {
  std::uint64_t pos = 0;
  while (pos < out.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t chunk_index = abs / kChunk;
    const std::uint64_t within = abs % kChunk;
    const std::uint64_t n =
        std::min<std::uint64_t>(kChunk - within, out.size() - pos);
    auto it = chunks_.find(chunk_index);
    if (it == chunks_.end()) {
      std::memset(out.data() + pos, 0, n);
    } else {
      std::memcpy(out.data() + pos, it->second.data() + within, n);
    }
    pos += n;
  }
}

Status StorageDevice::CheckInjectedFault(bool is_read) {
  if (faults_ == nullptr) {
    return OkStatus();
  }
  if (faults_->ShouldInject(sim::FaultKind::kHddFailure, name_)) {
    failed_ = true;
    return UnavailableError("device " + name_ + " failed (injected)");
  }
  if (is_read &&
      faults_->ShouldInject(sim::FaultKind::kHddReadError, name_)) {
    return DataLossError("injected latent read error on device " + name_);
  }
  return OkStatus();
}

sim::Task<Status> StorageDevice::Write(std::uint64_t offset,
                                       std::vector<std::uint8_t> data) {
  if (offset + data.size() > capacity_) {
    co_return OutOfRangeError("write beyond device " + name_);
  }
  sim::Mutex::ScopedLock lock = co_await queue_.Lock();
  if (failed_) {
    co_return UnavailableError("device " + name_ + " failed");
  }
  ROS_CO_RETURN_IF_ERROR(CheckInjectedFault(/*is_read=*/false));
  sim::TimePoint start = sim_.now();
  co_await sim_.Delay(WriteLatency(offset) +
                      sim::TransferTime(data.size(),
                                        perf_.write_bytes_per_sec));
  if (failed_) {  // failure injected mid-flight
    co_return UnavailableError("device " + name_ + " failed");
  }
  last_write_end_ = offset + data.size();
  StoreBytes(offset, data);
  bytes_written_ += data.size();
  busy_time_ += sim_.now() - start;
  co_return OkStatus();
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> StorageDevice::Read(
    std::uint64_t offset, std::uint64_t length) {
  if (offset + length > capacity_) {
    co_return OutOfRangeError("read beyond device " + name_);
  }
  sim::Mutex::ScopedLock lock = co_await queue_.Lock();
  if (failed_) {
    co_return UnavailableError("device " + name_ + " failed");
  }
  ROS_CO_RETURN_IF_ERROR(CheckInjectedFault(/*is_read=*/true));
  sim::TimePoint start = sim_.now();
  co_await sim_.Delay(ReadLatency(offset) +
                      sim::TransferTime(length, perf_.read_bytes_per_sec));
  if (failed_) {
    co_return UnavailableError("device " + name_ + " failed");
  }
  last_read_end_ = offset + length;
  std::vector<std::uint8_t> out(length);
  LoadBytes(offset, out);
  bytes_read_ += length;
  busy_time_ += sim_.now() - start;
  co_return out;
}

sim::Task<Status> StorageDevice::WriteDiscard(std::uint64_t offset,
                                              std::uint64_t length) {
  if (offset + length > capacity_) {
    co_return OutOfRangeError("write beyond device " + name_);
  }
  sim::Mutex::ScopedLock lock = co_await queue_.Lock();
  if (failed_) {
    co_return UnavailableError("device " + name_ + " failed");
  }
  ROS_CO_RETURN_IF_ERROR(CheckInjectedFault(/*is_read=*/false));
  sim::TimePoint start = sim_.now();
  co_await sim_.Delay(WriteLatency(offset) +
                      sim::TransferTime(length, perf_.write_bytes_per_sec));
  last_write_end_ = offset + length;
  bytes_written_ += length;
  busy_time_ += sim_.now() - start;
  co_return OkStatus();
}

sim::Task<Status> StorageDevice::ReadDiscard(std::uint64_t offset,
                                             std::uint64_t length) {
  if (offset + length > capacity_) {
    co_return OutOfRangeError("read beyond device " + name_);
  }
  sim::Mutex::ScopedLock lock = co_await queue_.Lock();
  if (failed_) {
    co_return UnavailableError("device " + name_ + " failed");
  }
  ROS_CO_RETURN_IF_ERROR(CheckInjectedFault(/*is_read=*/true));
  sim::TimePoint start = sim_.now();
  co_await sim_.Delay(ReadLatency(offset) +
                      sim::TransferTime(length, perf_.read_bytes_per_sec));
  last_read_end_ = offset + length;
  bytes_read_ += length;
  busy_time_ += sim_.now() - start;
  co_return OkStatus();
}

sim::Task<Status> StorageDevice::WriteMulti(std::vector<Segment> segments) {
  std::uint64_t total = 0;
  for (const Segment& segment : segments) {
    if (segment.offset + segment.data.size() > capacity_) {
      co_return OutOfRangeError("vectored write beyond device " + name_);
    }
    total += segment.data.size();
  }
  sim::Mutex::ScopedLock lock = co_await queue_.Lock();
  if (failed_) {
    co_return UnavailableError("device " + name_ + " failed");
  }
  ROS_CO_RETURN_IF_ERROR(CheckInjectedFault(/*is_read=*/false));
  sim::TimePoint start = sim_.now();
  co_await sim_.Delay(WriteLatency(segments.front().offset) +
                      sim::TransferTime(total, perf_.write_bytes_per_sec));
  if (failed_) {
    co_return UnavailableError("device " + name_ + " failed");
  }
  for (const Segment& segment : segments) {
    StoreBytes(segment.offset, segment.data);
  }
  last_write_end_ = segments.back().offset + segments.back().data.size();
  bytes_written_ += total;
  busy_time_ += sim_.now() - start;
  co_return OkStatus();
}

sim::Task<Status> StorageDevice::ReadMulti(std::vector<Segment>* segments) {
  std::uint64_t total = 0;
  for (const Segment& segment : *segments) {
    if (segment.offset + segment.data.size() > capacity_) {
      co_return OutOfRangeError("vectored read beyond device " + name_);
    }
    total += segment.data.size();
  }
  sim::Mutex::ScopedLock lock = co_await queue_.Lock();
  if (failed_) {
    co_return UnavailableError("device " + name_ + " failed");
  }
  ROS_CO_RETURN_IF_ERROR(CheckInjectedFault(/*is_read=*/true));
  sim::TimePoint start = sim_.now();
  co_await sim_.Delay(ReadLatency(segments->front().offset) +
                      sim::TransferTime(total, perf_.read_bytes_per_sec));
  if (failed_) {
    co_return UnavailableError("device " + name_ + " failed");
  }
  for (Segment& segment : *segments) {
    LoadBytes(segment.offset, segment.data);
  }
  last_read_end_ =
      segments->back().offset + segments->back().data.size();
  bytes_read_ += total;
  busy_time_ += sim_.now() - start;
  co_return OkStatus();
}

void StorageDevice::Replace() {
  failed_ = false;
  chunks_.clear();
}

}  // namespace ros::disk
