// Block devices of the disk tier (§3.3).
//
// BlockDevice is the timing+storage interface shared by raw devices (HDD,
// SSD) and composed RAID volumes. Devices store real bytes sparsely (64 KiB
// chunks allocated on first write) while charging transfer time from a
// sequential-throughput + per-request-latency performance model. Requests
// on one device are serialized FIFO, which is what makes concurrent I/O
// streams interfere (§4.7's four-stream problem).
#ifndef ROS_SRC_DISK_BLOCK_DEVICE_H_
#define ROS_SRC_DISK_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::disk {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual std::uint64_t capacity() const = 0;

  // Writes `data` at `offset`, charging simulated time.
  virtual sim::Task<Status> Write(std::uint64_t offset,
                                  std::vector<std::uint8_t> data) = 0;

  // Reads `length` bytes at `offset`, charging simulated time. Unwritten
  // ranges read as zeros.
  virtual sim::Task<StatusOr<std::vector<std::uint8_t>>> Read(
      std::uint64_t offset, std::uint64_t length) = 0;

  // Charges the time a write of `length` zero bytes would take without
  // storing anything (sparse payloads of PB-scale workloads).
  virtual sim::Task<Status> WriteDiscard(std::uint64_t offset,
                                         std::uint64_t length) = 0;

  // Charges the time a read of `length` bytes would take without
  // materializing a buffer (streaming sparse payloads).
  virtual sim::Task<Status> ReadDiscard(std::uint64_t offset,
                                        std::uint64_t length) = 0;

  // Cumulative traffic, for utilization reports.
  virtual std::uint64_t bytes_written() const = 0;
  virtual std::uint64_t bytes_read() const = 0;
};

struct DevicePerf {
  double read_bytes_per_sec = 0;
  double write_bytes_per_sec = 0;
  sim::Duration request_latency = 0;  // per-request fixed cost
};

// 4 TB nearline HDD: ~200 MB/s sequential (a RAID-5 of 7 then sustains the
// paper's ~1.2 GB/s volume read), 8 ms per-request positioning cost.
inline DevicePerf HddPerf() {
  return {.read_bytes_per_sec = 200e6,
          .write_bytes_per_sec = 200e6,
          .request_latency = sim::Millis(8)};
}

// 240 GB SATA SSD for the metadata volume.
inline DevicePerf SsdPerf() {
  return {.read_bytes_per_sec = 520e6,
          .write_bytes_per_sec = 450e6,
          .request_latency = sim::Micros(80)};
}

// A raw device: real sparse storage + the performance model above.
class StorageDevice : public BlockDevice {
 public:
  StorageDevice(sim::Simulator& sim, std::string name, std::uint64_t capacity,
                DevicePerf perf)
      : sim_(sim), name_(std::move(name)), capacity_(capacity), perf_(perf),
        queue_(sim) {}

  std::uint64_t capacity() const override { return capacity_; }

  sim::Task<Status> Write(std::uint64_t offset,
                          std::vector<std::uint8_t> data) override;
  sim::Task<StatusOr<std::vector<std::uint8_t>>> Read(
      std::uint64_t offset, std::uint64_t length) override;
  sim::Task<Status> WriteDiscard(std::uint64_t offset,
                                 std::uint64_t length) override;
  sim::Task<Status> ReadDiscard(std::uint64_t offset,
                                std::uint64_t length) override;

  // Vectored I/O: one request latency charge for the whole batch plus the
  // total transfer time. RAID volumes use these so striped sequential
  // streams do not pay a positioning cost per 64 KiB chunk.
  struct Segment {
    std::uint64_t offset;
    std::vector<std::uint8_t> data;  // for reads: sized, filled on return
  };
  sim::Task<Status> WriteMulti(std::vector<Segment> segments);
  // Fills each segment's pre-sized `data` in place.
  sim::Task<Status> ReadMulti(std::vector<Segment>* segments);

  // Cache-coherent direct access: stores/loads bytes with no timing
  // charge. Used by the RAID controller's write-back cache, which makes
  // bytes durable in controller DRAM instantly and destages them to the
  // spindles in the background.
  void StoreDirect(std::uint64_t offset, std::span<const std::uint8_t> data) {
    StoreBytes(offset, data);
  }
  void LoadDirect(std::uint64_t offset, std::span<std::uint8_t> out) const {
    LoadBytes(offset, out);
  }

  // Marks the device failed: all subsequent I/O returns kUnavailable.
  // RAID volumes use this for degraded-mode and rebuild testing.
  void Fail() { failed_ = true; }
  // Replaces the failed device with a fresh one (contents lost).
  void Replace();
  // Clears the failed flag, KEEPING contents — a power-cycle of an intact
  // device, as opposed to Replace()'s swap-in of blank media. Crash tests
  // use this to model "host died mid-write, storage survived": bytes the
  // interrupted request never stored stay unwritten (torn tail).
  void Revive() { failed_ = false; }
  bool failed() const { return failed_; }

  // Installs (or removes, with nullptr) the fault injector consulted at
  // each request: kHddFailure kills the device, kHddReadError fails one
  // read with kDataLoss. The hook site is the device name.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

  const std::string& name() const { return name_; }
  std::uint64_t bytes_written() const override { return bytes_written_; }
  std::uint64_t bytes_read() const override { return bytes_read_; }
  sim::Duration busy_time() const { return busy_time_; }

 private:
  static constexpr std::uint64_t kChunk = 64 * kKiB;

  void StoreBytes(std::uint64_t offset, std::span<const std::uint8_t> data);
  void LoadBytes(std::uint64_t offset, std::span<std::uint8_t> out) const;

  // Consults the fault injector (if any) at the head of a request.
  Status CheckInjectedFault(bool is_read);

  // Positioning cost applies only when the head moves: a request starting
  // where the previous one of the same kind ended streams for free.
  sim::Duration ReadLatency(std::uint64_t offset) const {
    return offset == last_read_end_ ? 0 : perf_.request_latency;
  }
  sim::Duration WriteLatency(std::uint64_t offset) const {
    return offset == last_write_end_ ? 0 : perf_.request_latency;
  }

  sim::Simulator& sim_;
  std::string name_;
  std::uint64_t capacity_;
  DevicePerf perf_;
  std::uint64_t last_read_end_ = ~0ull;
  std::uint64_t last_write_end_ = ~0ull;
  sim::Mutex queue_;  // FIFO request serialization
  bool failed_ = false;
  sim::FaultInjector* faults_ = nullptr;
  // ros_analyze: allow(unordered-member): point lookups by chunk id
  // only; never iterated.
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> chunks_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  sim::Duration busy_time_ = 0;
};

}  // namespace ros::disk

#endif  // ROS_SRC_DISK_BLOCK_DEVICE_H_
