#include "src/disk/volume.h"

#include <algorithm>
#include <cstring>

namespace ros::disk {

Volume::Volume(sim::Simulator& sim, BlockDevice* device, VolumeParams params)
    : sim_(sim), device_(device), params_(params) {
  ROS_CHECK(device != nullptr);
  ROS_CHECK(params_.block_size > 0);
  // Block 0 is the superblock; the rest is allocatable.
  total_blocks_ = device_->capacity() / params_.block_size;
  ROS_CHECK(total_blocks_ > 1);
  free_extents_[1] = total_blocks_ - 1;
  used_blocks_ = 1;
}

StatusOr<std::uint64_t> Volume::FileSize(const std::string& name) const {
  const FileMeta* meta = FindMeta(name);
  if (meta == nullptr) {
    return NotFoundError("no file " + name);
  }
  return meta->size;
}

StatusOr<Volume::FileStat> Volume::StatFile(const std::string& name) const {
  const FileMeta* meta = FindMeta(name);
  if (meta == nullptr) {
    return NotFoundError("no file " + name);
  }
  return FileStat{meta->size, meta->write_gen};
}

std::vector<std::string> Volume::List(const std::string& prefix) const {
  std::vector<std::string> out;
  // The map is ordered, so every match sits in one contiguous run starting
  // at lower_bound(prefix); stop at the first non-match.
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && NameHasPrefix(it->first, prefix); ++it) {
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t Volume::CountPrefix(const std::string& prefix) const {
  std::uint64_t count = 0;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && NameHasPrefix(it->first, prefix); ++it) {
    ++count;
  }
  return count;
}

bool Volume::AnyWithPrefix(const std::string& prefix) const {
  auto it = files_.lower_bound(prefix);
  return it != files_.end() && NameHasPrefix(it->first, prefix);
}

std::vector<std::string> Volume::ListChildren(const std::string& prefix,
                                              char delimiter) const {
  std::vector<std::string> children;
  auto it = files_.lower_bound(prefix);
  while (it != files_.end() && NameHasPrefix(it->first, prefix)) {
    const std::string_view rest =
        std::string_view(it->first).substr(prefix.size());
    const std::size_t cut = rest.find(delimiter);
    if (cut == std::string_view::npos) {
      if (!rest.empty()) {
        children.emplace_back(rest);
      }
      ++it;
      continue;
    }
    // A descendant below `prefix + head + delimiter`: seek past the whole
    // subtree in one lower_bound instead of filtering every entry in it.
    std::string skip = prefix;
    skip.append(rest.substr(0, cut));
    skip.push_back(static_cast<char>(delimiter + 1));
    it = files_.lower_bound(skip);
  }
  return children;
}

Status Volume::Allocate(std::uint64_t blocks, std::vector<Extent>* out) {
  std::uint64_t remaining = blocks;
  // First-fit across the free list; splits large extents.
  auto it = free_extents_.begin();
  std::vector<Extent> taken;
  while (remaining > 0 && it != free_extents_.end()) {
    const std::uint64_t take = std::min(remaining, it->second);
    taken.push_back({it->first, take});
    remaining -= take;
    if (take == it->second) {
      it = free_extents_.erase(it);
    } else {
      const std::uint64_t new_start = it->first + take;
      const std::uint64_t new_len = it->second - take;
      free_extents_.erase(it);
      it = free_extents_.emplace(new_start, new_len).first;
    }
  }
  if (remaining > 0) {
    // Roll back.
    for (const Extent& extent : taken) {
      free_extents_[extent.start_block] = extent.blocks;
    }
    return ResourceExhaustedError("volume out of space");
  }
  used_blocks_ += blocks;
  for (Extent& extent : taken) {
    // Coalesce with the file's trailing extent when contiguous, so
    // sequentially grown files map to few large runs.
    if (!out->empty() &&
        out->back().start_block + out->back().blocks == extent.start_block) {
      out->back().blocks += extent.blocks;
    } else {
      out->push_back(extent);
    }
  }
  return OkStatus();
}

void Volume::Free(const std::vector<Extent>& extents) {
  for (const Extent& extent : extents) {
    used_blocks_ -= extent.blocks;
    // Insert and coalesce with neighbours.
    auto [it, inserted] =
        free_extents_.emplace(extent.start_block, extent.blocks);
    ROS_CHECK(inserted);
    if (it != free_extents_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        free_extents_.erase(it);
        it = prev;
      }
    }
    auto next = std::next(it);
    if (next != free_extents_.end() &&
        it->first + it->second == next->first) {
      it->second += next->second;
      free_extents_.erase(next);
    }
  }
}

sim::Task<Status> Volume::WriteMetadata() {
  if (!params_.journal_metadata) {
    // Delayed-allocation mode: the inode update lands in the page cache
    // and batches into a later journal commit off the critical path.
    co_await sim_.Delay(sim::Micros(5));
    co_return OkStatus();
  }
  // Synchronous journaled metadata: journal record + in-place block.
  for (int i = 0; i < 2; ++i) {
    ROS_CO_RETURN_IF_ERROR(co_await device_->Write(
        0, std::vector<std::uint8_t>(params_.block_size, 0)));
  }
  co_return OkStatus();
}

sim::Task<Status> Volume::Create(std::string name) {
  auto [it, inserted] = files_.try_emplace(name);
  if (!inserted) {
    co_return AlreadyExistsError("file exists: " + name);
  }
  Touch(it->second);
  // Key the side-index on the map node's own string: both live and die
  // together, so the view can never dangle.
  by_name_.emplace(it->first, &it->second);
  NotifyMutation(name);
  co_return co_await WriteMetadata();
}

Status Volume::MapRange(
    const FileMeta& meta, std::uint64_t offset, std::uint64_t length,
    std::vector<std::pair<std::uint64_t, std::uint64_t>>* segs) const {
  // Walk extents translating [offset, offset+length) to device byte ranges.
  std::uint64_t pos = 0;          // logical byte cursor at extent starts
  std::uint64_t need = length;
  std::uint64_t cur = offset;
  for (const Extent& extent : meta.extents) {
    const std::uint64_t extent_bytes = extent.blocks * params_.block_size;
    if (need == 0) {
      break;
    }
    if (cur < pos + extent_bytes) {
      const std::uint64_t within = cur - pos;
      const std::uint64_t n = std::min(need, extent_bytes - within);
      const std::uint64_t dev_offset =
          extent.start_block * params_.block_size + within;
      if (!segs->empty() &&
          segs->back().first + segs->back().second == dev_offset) {
        segs->back().second += n;  // merge contiguous runs
      } else {
        segs->emplace_back(dev_offset, n);
      }
      cur += n;
      need -= n;
    }
    pos += extent_bytes;
  }
  if (need > 0) {
    return OutOfRangeError("range beyond allocated extents");
  }
  return OkStatus();
}

sim::Task<Status> Volume::Write(std::string name, std::uint64_t offset,
                                std::vector<std::uint8_t> data) {
  FileMeta* found = FindMeta(name);
  if (found == nullptr) {
    co_return NotFoundError("no file " + name);
  }
  FileMeta& meta = *found;
  Touch(meta);
  NotifyMutation(name);
  const std::uint64_t end = offset + data.size();

  // Grow allocation to cover the write.
  std::uint64_t have_blocks = 0;
  for (const Extent& extent : meta.extents) {
    have_blocks += extent.blocks;
  }
  const std::uint64_t need_blocks =
      (end + params_.block_size - 1) / params_.block_size;
  if (need_blocks > have_blocks) {
    ROS_CO_RETURN_IF_ERROR(
        Allocate(need_blocks - have_blocks, &meta.extents));
  }
  if (end > meta.size) {
    meta.size = end;
  }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> segs;
  ROS_CO_RETURN_IF_ERROR(MapRange(meta, offset, data.size(), &segs));
  std::uint64_t pos = 0;
  for (const auto& [dev_offset, n] : segs) {
    std::vector<std::uint8_t> piece(
        data.begin() + static_cast<std::ptrdiff_t>(pos),
        data.begin() + static_cast<std::ptrdiff_t>(pos + n));
    ROS_CO_RETURN_IF_ERROR(co_await device_->Write(dev_offset,
                                                   std::move(piece)));
    pos += n;
  }
  co_return co_await WriteMetadata();
}

sim::Task<Status> Volume::Append(std::string name,
                                 std::vector<std::uint8_t> data) {
  const FileMeta* meta = FindMeta(name);
  if (meta == nullptr) {
    co_return NotFoundError("no file " + name);
  }
  co_return co_await Write(name, meta->size, std::move(data));
}

sim::Task<Status> Volume::AppendBatch(
    std::string name, std::vector<std::vector<std::uint8_t>> pieces) {
  const FileMeta* meta = FindMeta(name);
  if (meta == nullptr) {
    co_return NotFoundError("no file " + name);
  }
  std::size_t total = 0;
  for (const std::vector<std::uint8_t>& piece : pieces) {
    total += piece.size();
  }
  if (total == 0) {
    co_return OkStatus();
  }
  // One concatenated write: the batch lands as a single mutation (one
  // generation step, one metadata update) and maps to contiguous device
  // requests, which is what makes coalescing N records cheaper than N
  // appends.
  std::vector<std::uint8_t> batch;
  batch.reserve(total);
  for (std::vector<std::uint8_t>& piece : pieces) {
    batch.insert(batch.end(), piece.begin(), piece.end());
  }
  pieces.clear();
  co_return co_await Write(name, meta->size, std::move(batch));
}

sim::Task<Status> Volume::Truncate(std::string name, std::uint64_t new_size) {
  FileMeta* found = FindMeta(name);
  if (found == nullptr) {
    co_return NotFoundError("no file " + name);
  }
  FileMeta& meta = *found;
  if (new_size > meta.size) {
    co_return OutOfRangeError("truncate would grow " + name);
  }
  if (new_size == meta.size) {
    co_return OkStatus();
  }
  Touch(meta);
  NotifyMutation(name);
  const std::uint64_t keep_blocks =
      (new_size + params_.block_size - 1) / params_.block_size;
  std::vector<Extent> kept;
  std::vector<Extent> freed;
  std::uint64_t have = 0;
  for (const Extent& extent : meta.extents) {
    if (have >= keep_blocks) {
      freed.push_back(extent);
      continue;
    }
    const std::uint64_t take = std::min(extent.blocks, keep_blocks - have);
    kept.push_back({extent.start_block, take});
    if (take < extent.blocks) {
      freed.push_back({extent.start_block + take, extent.blocks - take});
    }
    have += take;
  }
  Free(freed);
  meta.extents = std::move(kept);
  meta.size = new_size;
  co_return co_await WriteMetadata();
}

sim::Task<Status> Volume::AppendSparse(std::string name,
                                       std::vector<std::uint8_t> data,
                                       std::uint64_t logical_len) {
  ROS_CHECK(logical_len >= data.size());
  const std::uint64_t tail = logical_len - data.size();
  ROS_CO_RETURN_IF_ERROR(co_await Append(name, std::move(data)));
  if (tail == 0) {
    co_return OkStatus();
  }
  FileMeta* found = FindMeta(name);
  ROS_CHECK(found != nullptr);
  FileMeta& meta = *found;
  Touch(meta);
  NotifyMutation(name);
  // Allocate the covering blocks so space accounting stays honest, then
  // charge the device for the zero tail without storing it.
  std::uint64_t have_blocks = 0;
  for (const Extent& extent : meta.extents) {
    have_blocks += extent.blocks;
  }
  const std::uint64_t need_blocks =
      (meta.size + tail + params_.block_size - 1) / params_.block_size;
  if (need_blocks > have_blocks) {
    ROS_CO_RETURN_IF_ERROR(Allocate(need_blocks - have_blocks, &meta.extents));
  }
  const std::uint64_t tail_start = meta.size;
  meta.size += tail;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> segs;
  ROS_CO_RETURN_IF_ERROR(MapRange(meta, tail_start, tail, &segs));
  for (const auto& [dev_offset, n] : segs) {
    ROS_CO_RETURN_IF_ERROR(co_await device_->WriteDiscard(dev_offset, n));
  }
  co_return co_await WriteMetadata();
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> Volume::Read(
    std::string name, std::uint64_t offset,
    std::uint64_t length) const {
  const FileMeta* found = FindMeta(name);
  if (found == nullptr) {
    co_return NotFoundError("no file " + name);
  }
  const FileMeta& meta = *found;
  if (offset + length > meta.size) {
    co_return OutOfRangeError("read beyond end of " + name);
  }
  std::vector<std::uint8_t> out(length);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> segs;
  ROS_CO_RETURN_IF_ERROR(MapRange(meta, offset, length, &segs));
  std::uint64_t pos = 0;
  for (const auto& [dev_offset, n] : segs) {
    auto piece = co_await device_->Read(dev_offset, n);
    if (!piece.ok()) {
      co_return piece.status();
    }
    std::memcpy(out.data() + pos, piece->data(), n);
    pos += n;
  }
  co_return out;
}

sim::Task<Status> Volume::ReadDiscard(std::string name,
                                      std::uint64_t offset,
                                      std::uint64_t length) const {
  const FileMeta* meta = FindMeta(name);
  if (meta == nullptr) {
    co_return NotFoundError("no file " + name);
  }
  if (offset + length > meta->size) {
    co_return OutOfRangeError("read beyond end of " + name);
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> segs;
  ROS_CO_RETURN_IF_ERROR(MapRange(*meta, offset, length, &segs));
  for (const auto& [dev_offset, n] : segs) {
    ROS_CO_RETURN_IF_ERROR(co_await device_->ReadDiscard(dev_offset, n));
  }
  co_return OkStatus();
}

StatusOr<Volume::ByteSegments> Volume::MapFileRange(
    const std::string& name, std::uint64_t offset,
    std::uint64_t length) const {
  const FileMeta* meta = FindMeta(name);
  if (meta == nullptr) {
    return NotFoundError("no file " + name);
  }
  if (offset + length > meta->size) {
    return OutOfRangeError("range beyond end of " + name);
  }
  ByteSegments segments;
  ROS_RETURN_IF_ERROR(MapRange(*meta, offset, length, &segments));
  return segments;
}

sim::Task<Status> Volume::ReadDiscardSegments(ByteSegments segments) const {
  for (const auto& [dev_offset, n] : segments) {
    ROS_CO_RETURN_IF_ERROR(co_await device_->ReadDiscard(dev_offset, n));
  }
  co_return OkStatus();
}

sim::Task<Status> Volume::ReadDiscardSegment(std::uint64_t dev_offset,
                                             std::uint64_t length) const {
  // Plain forward (not a coroutine): the device's task is the whole job,
  // so the hot replay path pays no extra frame.
  return device_->ReadDiscard(dev_offset, length);
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> Volume::ReadAll(
    std::string name) const {
  auto size = FileSize(name);
  if (!size.ok()) {
    co_return size.status();
  }
  co_return co_await Read(name, 0, *size);
}

sim::Task<Status> Volume::WriteAll(std::string name,
                                   std::vector<std::uint8_t> data) {
  FileMeta* meta = FindMeta(name);
  if (meta == nullptr) {
    co_return NotFoundError("no file " + name);
  }
  // Truncate: release old extents, then write fresh.
  Free(meta->extents);
  meta->extents.clear();
  meta->size = 0;
  co_return co_await Write(name, 0, std::move(data));
}

sim::Task<Status> Volume::Delete(std::string name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    co_return NotFoundError("no file " + name);
  }
  Free(it->second.extents);
  by_name_.erase(it->first);
  files_.erase(it);
  NotifyMutation(name);
  co_return co_await WriteMetadata();
}

void Volume::FormatQuick() {
  by_name_.clear();
  files_.clear();
  free_extents_.clear();
  free_extents_[1] = total_blocks_ - 1;
  used_blocks_ = 1;
  NotifyMutation("");
}

}  // namespace ros::disk
