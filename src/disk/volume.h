// A simple extent-based file volume — the library's stand-in for ext4.
//
// OLFS keeps its Metadata Volume (MV) on an ext4-formatted SSD RAID-1 with
// 1 KiB blocks and 128-byte inodes (§4.2), and its buckets/disc images on
// HDD RAID-5 volumes. Volume provides the pieces OLFS relies on: named
// files with extent allocation, block-granular space accounting, a
// journaling write-amplification model, and crash-consistent metadata via
// a superblock flush.
//
// The file table lives in memory for lookup speed (ext4's dentry/inode
// caches, §4.2); every data or metadata mutation still charges device I/O.
#ifndef ROS_SRC_DISK_VOLUME_H_
#define ROS_SRC_DISK_VOLUME_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/disk/block_device.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ros::disk {

struct VolumeParams {
  std::uint64_t block_size = 4 * kKiB;
  std::uint64_t inode_size = 256;
  // Journaled metadata writes are doubled (journal + in-place), the default
  // ordered-mode behaviour.
  bool journal_metadata = true;
};

// Parameters the paper chooses for the MV (§4.2): 1 KiB blocks to keep
// ~15 version entries per index-file block, 128-byte inodes. ext4's
// journal commits batch asynchronously (the default 5 s commit interval),
// so individual metadata updates do not pay a second synchronous write.
inline VolumeParams MetadataVolumeParams() {
  return {.block_size = 1 * kKiB, .inode_size = 128,
          .journal_metadata = false};
}

class Volume {
 public:
  Volume(sim::Simulator& sim, BlockDevice* device, VolumeParams params = {});

  std::uint64_t block_size() const { return params_.block_size; }
  std::uint64_t capacity_blocks() const { return total_blocks_; }
  std::uint64_t used_blocks() const { return used_blocks_; }
  std::uint64_t free_bytes() const {
    return (total_blocks_ - used_blocks_) * params_.block_size;
  }
  std::uint64_t file_count() const { return files_.size(); }

  bool Exists(const std::string& name) const {
    return files_.count(name) > 0;
  }
  StatusOr<std::uint64_t> FileSize(const std::string& name) const;
  std::vector<std::string> List(const std::string& prefix = "") const;

  // Creates an empty file (one inode + a journaled metadata write).
  sim::Task<Status> Create(std::string name);

  // Writes at `offset` (extending the file as needed; holes read as zero).
  sim::Task<Status> Write(std::string name, std::uint64_t offset,
                          std::vector<std::uint8_t> data);

  sim::Task<Status> Append(std::string name,
                           std::vector<std::uint8_t> data);

  // Appends `data` followed by a zero tail up to `logical_len` total bytes.
  // The tail charges full write time but is not stored (sparse payloads of
  // PB-scale experiments; the tail reads back as zeros).
  sim::Task<Status> AppendSparse(std::string name,
                                 std::vector<std::uint8_t> data,
                                 std::uint64_t logical_len);

  sim::Task<StatusOr<std::vector<std::uint8_t>>> Read(
      std::string name, std::uint64_t offset,
      std::uint64_t length) const;

  // Charges the read time of [offset, offset+length) without materializing
  // a buffer (streaming a sparse file for parity or burning).
  sim::Task<Status> ReadDiscard(std::string name, std::uint64_t offset,
                                std::uint64_t length) const;

  // Reads the whole file.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadAll(
      std::string name) const;

  // Overwrites the file with exactly `data` (truncating).
  sim::Task<Status> WriteAll(std::string name,
                             std::vector<std::uint8_t> data);

  sim::Task<Status> Delete(std::string name);

  // Drops every file (mkfs). Instant bookkeeping; devices keep stale bytes.
  void FormatQuick();

 private:
  struct Extent {
    std::uint64_t start_block;
    std::uint64_t blocks;
  };
  struct FileMeta {
    std::uint64_t size = 0;
    std::vector<Extent> extents;
  };

  // Allocates `blocks` blocks, first-fit. Appends extents to `out`.
  Status Allocate(std::uint64_t blocks, std::vector<Extent>* out);
  void Free(const std::vector<Extent>& extents);

  // Charges a journaled inode/metadata update.
  sim::Task<Status> WriteMetadata();

  // Maps a byte range of a file onto device segments.
  Status MapRange(const FileMeta& meta, std::uint64_t offset,
                  std::uint64_t length,
                  std::vector<std::pair<std::uint64_t, std::uint64_t>>* segs)
      const;

  sim::Simulator& sim_;
  BlockDevice* device_;
  VolumeParams params_;
  std::uint64_t total_blocks_;
  std::uint64_t used_blocks_ = 0;
  std::map<std::string, FileMeta> files_;
  std::map<std::uint64_t, std::uint64_t> free_extents_;  // start -> length
};

}  // namespace ros::disk

#endif  // ROS_SRC_DISK_VOLUME_H_
