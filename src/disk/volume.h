// A simple extent-based file volume — the library's stand-in for ext4.
//
// OLFS keeps its Metadata Volume (MV) on an ext4-formatted SSD RAID-1 with
// 1 KiB blocks and 128-byte inodes (§4.2), and its buckets/disc images on
// HDD RAID-5 volumes. Volume provides the pieces OLFS relies on: named
// files with extent allocation, block-granular space accounting, a
// journaling write-amplification model, and crash-consistent metadata via
// a superblock flush.
//
// The file table lives in memory for lookup speed (ext4's dentry/inode
// caches, §4.2); every data or metadata mutation still charges device I/O.
#ifndef ROS_SRC_DISK_VOLUME_H_
#define ROS_SRC_DISK_VOLUME_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/disk/block_device.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ros::disk {

struct VolumeParams {
  std::uint64_t block_size = 4 * kKiB;
  std::uint64_t inode_size = 256;
  // Journaled metadata writes are doubled (journal + in-place), the default
  // ordered-mode behaviour.
  bool journal_metadata = true;
};

// Parameters the paper chooses for the MV (§4.2): 1 KiB blocks to keep
// ~15 version entries per index-file block, 128-byte inodes. ext4's
// journal commits batch asynchronously (the default 5 s commit interval),
// so individual metadata updates do not pay a second synchronous write.
inline VolumeParams MetadataVolumeParams() {
  return {.block_size = 1 * kKiB, .inode_size = 128,
          .journal_metadata = false};
}

class Volume {
 public:
  Volume(sim::Simulator& sim, BlockDevice* device, VolumeParams params = {});

  std::uint64_t block_size() const { return params_.block_size; }
  std::uint64_t capacity_blocks() const { return total_blocks_; }
  std::uint64_t used_blocks() const { return used_blocks_; }
  std::uint64_t free_bytes() const {
    return (total_blocks_ - used_blocks_) * params_.block_size;
  }
  std::uint64_t file_count() const { return files_.size(); }

  bool Exists(const std::string& name) const {
    return FindMeta(name) != nullptr;
  }
  StatusOr<std::uint64_t> FileSize(const std::string& name) const;

  // Size plus the file's write generation: a volume-wide monotonic counter
  // stamped on every mutation. Generations are never reused (not even
  // across Delete/Create or FormatQuick), so a caller that cached derived
  // state for a file can use `write_gen` as a coherence token.
  struct FileStat {
    std::uint64_t size = 0;
    std::uint64_t write_gen = 0;
  };
  StatusOr<FileStat> StatFile(const std::string& name) const;

  // Names with `prefix`, in lexicographic order. Range-bounded: seeks to
  // the first matching name and stops at the first non-match instead of
  // scanning the whole file table.
  std::vector<std::string> List(const std::string& prefix = "") const;

  // Number of names with `prefix`, without materializing them.
  std::uint64_t CountPrefix(const std::string& prefix) const;

  // True when at least one name has `prefix` (O(log n)).
  bool AnyWithPrefix(const std::string& prefix) const;

  // Calls fn(name, size) for every file whose name starts with `prefix`,
  // in lexicographic order, without building a vector of names. `fn` must
  // not mutate the volume.
  template <typename Fn>
  void ForEachPrefix(const std::string& prefix, Fn&& fn) const {
    for (auto it = files_.lower_bound(prefix);
         it != files_.end() && NameHasPrefix(it->first, prefix); ++it) {
      fn(it->first, it->second.size);
    }
  }

  // Distinct next path segments after `prefix` (S3-style delimiter
  // listing), in lexicographic order. A name `prefix + "x"` with no
  // delimiter in "x" yields "x"; names under `prefix + "x" + delimiter`
  // are skipped as a whole subtree with one seek rather than being
  // visited and filtered one by one.
  std::vector<std::string> ListChildren(const std::string& prefix,
                                        char delimiter = '/') const;

  // Creates an empty file (one inode + a journaled metadata write).
  sim::Task<Status> Create(std::string name);

  // Writes at `offset` (extending the file as needed; holes read as zero).
  sim::Task<Status> Write(std::string name, std::uint64_t offset,
                          std::vector<std::uint8_t> data);

  sim::Task<Status> Append(std::string name,
                           std::vector<std::uint8_t> data);

  // Appends every piece back-to-back as ONE file mutation: a single
  // generation step, one metadata update, and contiguous device requests
  // for the whole batch instead of per-piece inode churn. This is the
  // group-commit primitive: N coalesced WAL records cost one append.
  // An empty batch is a no-op.
  sim::Task<Status> AppendBatch(std::string name,
                                std::vector<std::vector<std::uint8_t>> pieces);

  // Shrinks the file to `new_size` bytes, releasing whole blocks past the
  // boundary (crash recovery uses this to discard a torn log tail).
  // Growing is not supported: kOutOfRange.
  sim::Task<Status> Truncate(std::string name, std::uint64_t new_size);

  // Appends `data` followed by a zero tail up to `logical_len` total bytes.
  // The tail charges full write time but is not stored (sparse payloads of
  // PB-scale experiments; the tail reads back as zeros).
  sim::Task<Status> AppendSparse(std::string name,
                                 std::vector<std::uint8_t> data,
                                 std::uint64_t logical_len);

  sim::Task<StatusOr<std::vector<std::uint8_t>>> Read(
      std::string name, std::uint64_t offset,
      std::uint64_t length) const;

  // Charges the read time of [offset, offset+length) without materializing
  // a buffer (streaming a sparse file for parity or burning).
  sim::Task<Status> ReadDiscard(std::string name, std::uint64_t offset,
                                std::uint64_t length) const;

  // Device byte ranges (offset, length) backing [offset, offset+length) of
  // the file. The mapping is stable exactly as long as the file's write
  // generation is unchanged, so per-generation caches can keep it alongside
  // their derived state and replay the device charge without another name
  // lookup.
  using ByteSegments = std::vector<std::pair<std::uint64_t, std::uint64_t>>;
  StatusOr<ByteSegments> MapFileRange(const std::string& name,
                                      std::uint64_t offset,
                                      std::uint64_t length) const;

  // Charges the read time of previously mapped segments — byte-for-byte the
  // same device requests ReadDiscard would issue for the range they came
  // from. The single-segment overload covers the common case (small files
  // map to one contiguous run) without a vector in flight.
  sim::Task<Status> ReadDiscardSegments(ByteSegments segments) const;
  sim::Task<Status> ReadDiscardSegment(std::uint64_t dev_offset,
                                       std::uint64_t length) const;

  // Reads the whole file.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadAll(
      std::string name) const;

  // Overwrites the file with exactly `data` (truncating).
  sim::Task<Status> WriteAll(std::string name,
                             std::vector<std::uint8_t> data);

  sim::Task<Status> Delete(std::string name);

  // Drops every file (mkfs). Instant bookkeeping; devices keep stale bytes.
  void FormatQuick();

  // Invoked synchronously (never across a suspension) whenever a file's
  // bytes, extents, or existence change — Create, Write, Append,
  // AppendSparse, WriteAll, Delete — with the file's name; FormatQuick
  // passes "" (everything changed). Caches layered above use this for
  // push invalidation instead of polling StatFile on every read. One
  // observer per volume; pass nullptr to unregister.
  using MutationObserver = std::function<void(const std::string& name)>;
  void SetMutationObserver(MutationObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  struct Extent {
    std::uint64_t start_block;
    std::uint64_t blocks;
  };
  struct FileMeta {
    std::uint64_t size = 0;
    std::uint64_t write_gen = 0;
    std::vector<Extent> extents;
  };

  static bool NameHasPrefix(const std::string& name,
                            const std::string& prefix) {
    return name.compare(0, prefix.size(), prefix) == 0;
  }

  // Stamps a fresh, never-reused generation on a mutated file.
  void Touch(FileMeta& meta) { meta.write_gen = ++next_write_gen_; }

  void NotifyMutation(const std::string& name) {
    if (observer_) {
      observer_(name);
    }
  }

  // O(1) point lookup via the hash side-index (the ordered map would pay an
  // O(log n) walk with long-common-prefix string compares on every stat of
  // a big namespace). Pointers stay valid until the file is deleted:
  // std::map nodes never move.
  FileMeta* FindMeta(const std::string& name) {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
  }
  const FileMeta* FindMeta(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
  }

  // Allocates `blocks` blocks, first-fit. Appends extents to `out`.
  Status Allocate(std::uint64_t blocks, std::vector<Extent>* out);
  void Free(const std::vector<Extent>& extents);

  // Charges a journaled inode/metadata update.
  sim::Task<Status> WriteMetadata();

  // Maps a byte range of a file onto device segments.
  Status MapRange(const FileMeta& meta, std::uint64_t offset,
                  std::uint64_t length,
                  std::vector<std::pair<std::uint64_t, std::uint64_t>>* segs)
      const;

  sim::Simulator& sim_;
  BlockDevice* device_;
  VolumeParams params_;
  std::uint64_t total_blocks_;
  std::uint64_t used_blocks_ = 0;
  std::uint64_t next_write_gen_ = 0;
  // Ordered by name for the range-bounded scans; the side-index below maps
  // each node's key (a stable string_view into the map node) to its meta
  // for O(1) point lookups. Both are maintained on Create/Delete/Format.
  std::map<std::string, FileMeta> files_;
  // ros_analyze: allow(unordered-member): point lookups by name only;
  // enumeration always walks the ordered files_ map.
  std::unordered_map<std::string_view, FileMeta*> by_name_;
  std::map<std::uint64_t, std::uint64_t> free_extents_;  // start -> length
  MutationObserver observer_;
};

}  // namespace ros::disk

#endif  // ROS_SRC_DISK_VOLUME_H_
