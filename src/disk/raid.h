// Software RAID over StorageDevices (§3.3).
//
// ROS configures its two SSDs as a RAID-1 metadata volume and its fourteen
// HDDs as two RAID-5 arrays. This is a real implementation: data is
// striped, parity is computed (XOR for RAID-5; P+Q Reed-Solomon over
// GF(2^8) for RAID-6), reads reconstruct around failed devices, and a
// replaced device can be rebuilt stripe by stripe.
//
// Layout is left-symmetric: for stripe s over n devices, the P chunk lives
// on device (n-1) - (s mod n) (Q, when present, on the next device), and
// data chunks follow round-robin. Large requests are batched into one
// vectored I/O per device, so sequential throughput scales with the number
// of data devices (7-HDD RAID-5 reads at ~1.2 GB/s, matching the paper's
// baseline volume).
#ifndef ROS_SRC_DISK_RAID_H_
#define ROS_SRC_DISK_RAID_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/disk/block_device.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::disk {

enum class RaidLevel { kRaid0, kRaid1, kRaid5, kRaid6 };

class RaidVolume : public BlockDevice {
 public:
  // Parity XOR/GF math runs at memory bandwidth; charging it is what
  // separates the volume's write throughput (~1.0 GB/s) from its read
  // throughput (~1.2 GB/s), as in the paper's ext4 baseline.
  static constexpr double kParityComputeBytesPerSec = 6e9;

  // Controller write-back cache (battery-backed DRAM): writes up to
  // kCacheMaxWrite acknowledge at controller speed and destage to the
  // spindles in the background, up to kCacheDirtyLimit of dirty data.
  // This is why the paper's 1 KiB direct-I/O operations complete in
  // ~2.5 ms on a 7-HDD RAID-5 (§5.3).
  static constexpr double kCacheAckBytesPerSec = 2.5e9;
  static constexpr std::uint64_t kCacheMaxWrite = 8 * kMiB;
  static constexpr std::uint64_t kCacheDirtyLimit = 256 * kMiB;

  RaidVolume(sim::Simulator& sim, RaidLevel level,
             std::vector<StorageDevice*> devices,
             std::uint64_t stripe_unit = 64 * kKiB);

  RaidLevel level() const { return level_; }
  int num_devices() const { return static_cast<int>(devices_.size()); }
  int data_devices() const { return data_n_; }
  std::uint64_t stripe_unit() const { return stripe_unit_; }
  std::uint64_t capacity() const override { return capacity_; }

  sim::Task<Status> Write(std::uint64_t offset,
                          std::vector<std::uint8_t> data) override;
  sim::Task<StatusOr<std::vector<std::uint8_t>>> Read(
      std::uint64_t offset, std::uint64_t length) override;
  sim::Task<Status> WriteDiscard(std::uint64_t offset,
                                 std::uint64_t length) override;
  sim::Task<Status> ReadDiscard(std::uint64_t offset,
                                std::uint64_t length) override;

  // Disables the controller write-back cache (every write takes the
  // synchronous spindle path). Used by write-through ablations.
  void set_write_cache(bool enabled) { write_cache_ = enabled; }
  std::uint64_t dirty_bytes() const { return dirty_; }

  // Number of currently failed member devices.
  int failed_devices() const;
  // True if reads/writes can still be served (enough redundancy).
  bool operational() const;

  // Reconstructs the contents of the (replaced) device at `index` from the
  // surviving members. The device must be healthy again (Replace() called).
  sim::Task<Status> Rebuild(int index);

  std::uint64_t bytes_written() const override { return bytes_written_; }
  std::uint64_t bytes_read() const override { return bytes_read_; }

 private:
  struct ChunkLoc {
    int device;
    std::uint64_t dev_offset;
  };

  int parity_count() const {
    switch (level_) {
      case RaidLevel::kRaid5: return 1;
      case RaidLevel::kRaid6: return 2;
      default: return 0;
    }
  }

  // Device index of the P chunk for a stripe.
  int PDevice(std::uint64_t stripe) const;
  int QDevice(std::uint64_t stripe) const;
  // Location of data chunk k (0-based) within a stripe.
  ChunkLoc DataChunk(std::uint64_t stripe, int k) const;

  // Reads a whole stripe's data chunks (reconstructing around failures)
  // into `out` (stripe_unit * data_n_ bytes). `exclude` treats one extra
  // device as unavailable (used while rebuilding onto it).
  sim::Task<Status> ReadStripeData(std::uint64_t stripe,
                                   std::vector<std::uint8_t>* out,
                                   int exclude = -1);

  // Writes full stripes [first, last) given a contiguous data buffer that
  // starts at stripe `first`. Computes and writes parity.
  sim::Task<Status> WriteStripes(std::uint64_t first, std::uint64_t last,
                                 std::vector<std::uint8_t> data);

  // Fills p (and, for RAID-6, q) with the parity of one stripe's data
  // chunks at `base` using the fused single-sweep P+Q kernel. Both spans
  // must be stripe_unit_ bytes and zero-initialized.
  void ComputeStripeParity(const std::uint8_t* base,
                           std::span<std::uint8_t> p,
                           std::span<std::uint8_t> q) const;

  // Fast path used when no device is failed.
  sim::Task<Status> ReadHealthy(std::uint64_t offset, std::uint64_t length,
                                std::vector<std::uint8_t>* out);

  // Controller cache contents: recently written ranges served to readers
  // at controller speed (bounded FIFO approximation of the cache).
  bool RangeInCache(std::uint64_t offset, std::uint64_t length) const;
  void RememberRange(std::uint64_t offset, std::uint64_t length);

  // Write-back cache: instant parity+store into controller DRAM, then a
  // background destage charging spindle time.
  sim::Task<Status> WriteCached(std::uint64_t offset,
                                std::vector<std::uint8_t> data);
  void StoreStripesDirect(std::uint64_t first, std::uint64_t last,
                          const std::vector<std::uint8_t>& data);
  sim::Task<void> Destage(std::uint64_t first_stripe, std::uint64_t stripes,
                          std::uint64_t acked_bytes);

  sim::Simulator& sim_;
  RaidLevel level_;
  std::vector<StorageDevice*> devices_;
  std::uint64_t stripe_unit_;
  int data_n_;
  std::uint64_t stripe_bytes_;
  std::uint64_t num_stripes_;
  std::uint64_t capacity_;
  std::uint64_t next_mirror_read_ = 0;  // RAID-1 round-robin
  bool write_cache_ = true;
  std::uint64_t dirty_ = 0;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> cache_ranges_;
  std::uint64_t cache_range_bytes_ = 0;
  std::unique_ptr<sim::ConditionVariable> drained_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace ros::disk

#endif  // ROS_SRC_DISK_RAID_H_
