#include "src/drive/speed_profile.h"

#include <algorithm>

#include "src/common/status.h"

namespace ros::drive {

namespace {

// 25 GB BD-R zoned P-CAV profile (Figure 8). Zone boundaries follow the
// figure's x-axis ticks (equal radial steps widen outward); speeds are
// calibrated so the byte-weighted average is 8.2X and a full burn takes
// ~675 s.
std::vector<SpeedZone> Zones25() {
  return {
      {0.020, 1.6},  // lead-in, inner tracks
      {0.098, 6.2},
      {0.230, 7.1},
      {0.382, 8.15},
      {0.555, 9.1},
      {0.749, 10.6},
      {0.964, 11.5},
      {1.000, 12.0},
  };
}

// 100 GB BDXL profile (Figure 10): constant 6X with fail-safe dips to 4X
// when servo-signal disturbance is detected. Calibrated so ~2.4% of bytes
// burn at 4X, giving an average of ~5.93X and ~3757 s per disc.
std::vector<SpeedZone> Zones100(std::uint64_t seed) {
  Rng rng(seed ^ 0xD15CB42Full);
  std::vector<SpeedZone> zones;
  // Average 3 dips per disc, each covering ~0.8% of capacity, placed
  // uniformly at random without overlap.
  constexpr int kDips = 3;
  constexpr double kDipWidth = 0.008;
  std::vector<double> starts;
  for (int i = 0; i < kDips; ++i) {
    starts.push_back(0.02 + rng.NextDouble() * 0.95);
  }
  std::sort(starts.begin(), starts.end());
  double cursor = 0.0;
  for (double start : starts) {
    if (start <= cursor) {
      start = cursor + 0.001;  // keep dips disjoint
    }
    if (start + kDipWidth >= 1.0) {
      break;
    }
    if (start > cursor) {
      zones.push_back({start, 6.0});
    }
    zones.push_back({start + kDipWidth, 4.0});
    cursor = start + kDipWidth;
  }
  if (cursor < 1.0) {
    zones.push_back({1.0, 6.0});
  }
  return zones;
}

}  // namespace

BurnSpeedProfile BurnSpeedProfile::For(DiscType type, std::uint64_t seed) {
  switch (type) {
    case DiscType::kBdr25:
      return BurnSpeedProfile(Zones25());
    case DiscType::kBdr100:
      return BurnSpeedProfile(Zones100(seed));
    case DiscType::kBdre25:
      return Rewritable();
  }
  ROS_CHECK(false);
  return BurnSpeedProfile({});
}

BurnSpeedProfile BurnSpeedProfile::Rewritable() {
  // §2.1: rewritable discs burn at a relatively low 2X.
  return BurnSpeedProfile({{1.0, 2.0}});
}

double BurnSpeedProfile::SpeedAt(double progress) const {
  for (const SpeedZone& zone : zones_) {
    if (progress < zone.progress_end) {
      return zone.speed_x;
    }
  }
  return zones_.back().speed_x;
}

double BurnSpeedProfile::BurnSeconds(std::uint64_t start, std::uint64_t bytes,
                                     std::uint64_t capacity) const {
  ROS_CHECK(capacity > 0);
  ROS_CHECK(start + bytes <= capacity);
  const double cap = static_cast<double>(capacity);
  double p = static_cast<double>(start) / cap;
  const double p_end = static_cast<double>(start + bytes) / cap;
  double seconds = 0.0;
  for (const SpeedZone& zone : zones_) {
    if (p >= p_end) {
      break;
    }
    if (zone.progress_end <= p) {
      continue;
    }
    const double slice_end = std::min(zone.progress_end, p_end);
    const double slice_bytes = (slice_end - p) * cap;
    seconds += slice_bytes / (zone.speed_x * kBluRay1xBytesPerSec);
    p = slice_end;
  }
  return seconds;
}

double BurnSpeedProfile::AverageSpeedX() const {
  // Byte-weighted harmonic mean: total bytes / total time, normalized to 1X.
  double total_time_per_byte = 0.0;
  double prev = 0.0;
  for (const SpeedZone& zone : zones_) {
    total_time_per_byte += (zone.progress_end - prev) / zone.speed_x;
    prev = zone.progress_end;
  }
  return 1.0 / total_time_per_byte;
}

}  // namespace ros::drive
