#include "src/drive/optical_drive.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace ros::drive {

Status OpticalDrive::InsertDisc(Disc* disc) {
  if (disc_ != nullptr) {
    return FailedPreconditionError("drive already holds a disc");
  }
  ROS_CHECK(disc != nullptr);
  disc_ = disc;
  state_ = DriveState::kSleeping;
  vfs_mounted_ = false;
  last_read_image_.clear();
  return OkStatus();
}

StatusOr<Disc*> OpticalDrive::EjectDisc() {
  if (disc_ == nullptr) {
    return FailedPreconditionError("drive is empty");
  }
  if (state_ == DriveState::kBurning || state_ == DriveState::kReading) {
    return FailedPreconditionError("drive is busy");
  }
  state_ = DriveState::kEmpty;
  vfs_mounted_ = false;
  Disc* out = disc_;
  disc_ = nullptr;
  return out;
}

void OpticalDrive::Sleep() {
  if (state_ == DriveState::kReady) {
    state_ = DriveState::kSleeping;
    vfs_mounted_ = false;
  }
}

sim::Task<Status> OpticalDrive::EnsureAwake() {
  if (disc_ == nullptr) {
    co_return FailedPreconditionError("no disc in drive");
  }
  if (state_ == DriveState::kSleeping) {
    co_await sim_.Delay(timings_.wake);
    state_ = DriveState::kReady;
  }
  co_return OkStatus();
}

sim::Task<Status> OpticalDrive::MountVfs() {
  ROS_CO_RETURN_IF_ERROR(co_await EnsureAwake());
  if (!vfs_mounted_) {
    co_await sim_.Delay(timings_.vfs_mount);
    vfs_mounted_ = true;
    last_read_image_.clear();
  }
  co_return OkStatus();
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> OpticalDrive::Read(
    std::string image_id, std::uint64_t offset, std::uint64_t length) {
  ROS_CO_RETURN_IF_ERROR(co_await MountVfs());
  if (state_ != DriveState::kReady) {
    co_return UnavailableError("drive busy");
  }
  state_ = DriveState::kReading;
  sim::TimePoint start = sim_.now();
  if (set_ != nullptr) {
    set_->AddReader();
  }

  // Media aging (§5j): materialize the latent errors this disc accrued
  // since it was last observed, then consult the injector with the
  // age-scaled extra read-fault rate. With aging disabled both calls are
  // byte-identical to the flat-rate path.
  double aging_boost = 0.0;
  if (aging_ != nullptr && aging_->enabled) {
    const int rotted = disc_->AdvanceAging(sim_.now(), *aging_);
    if (rotted > 0 && faults_ != nullptr) {
      faults_->RecordExternal(sim::FaultKind::kLatentSectorError,
                              fault_site_,
                              static_cast<std::uint64_t>(rotted));
    }
    aging_boost =
        aging_->read_boost(disc_->AgeYears(sim_.now()), disc_->type());
  }

  // Latent sector error: the media under this read has silently rotted.
  // Corrupting the disc (rather than failing the call) makes the fault
  // persistent and scrub-discoverable, exactly like real bit rot.
  if (faults_ != nullptr &&
      faults_->ShouldInjectAged(sim::FaultKind::kLatentSectorError,
                                fault_site_, aging_boost)) {
    auto session = disc_->FindSession(image_id);
    if (session.ok()) {
      disc_->CorruptSector(((*session)->start + offset) / kSectorSize);
    }
  }

  // Head movement: sequential continuation of the previous read is free; a
  // different file or a jump costs a seek.
  const bool sequential =
      image_id == last_read_image_ && offset == last_read_end_;
  if (!sequential && !last_read_image_.empty()) {
    co_await sim_.Delay(timings_.seek);
  }

  const double single = ReadSpeedBytesPerSec(disc_->type());
  const double rate =
      set_ != nullptr ? set_->EffectiveReadRate(single) : single;
  co_await sim_.Delay(sim::TransferTime(length, rate));

  if (set_ != nullptr) {
    set_->RemoveReader();
  }
  state_ = DriveState::kReady;
  busy_time_ += sim_.now() - start;

  auto data = disc_->ReadSession(image_id, offset, length);
  if (data.ok()) {
    bytes_read_ += length;
    last_read_image_ = image_id;
    last_read_end_ = offset + length;
  }
  co_return data;
}

sim::Task<StatusOr<BurnResult>> OpticalDrive::BurnImage(
    std::string image_id, std::uint64_t logical_size,
    std::vector<std::uint8_t> payload, BurnOptions options) {
  ROS_CO_RETURN_IF_ERROR(co_await EnsureAwake());
  if (state_ != DriveState::kReady) {
    co_return UnavailableError("drive busy");
  }
  if (payload.size() > logical_size) {
    co_return InvalidArgumentError("payload exceeds logical size");
  }
  // Injected burn failure: the write strategy aborts and the media must
  // be treated as suspect (kDataLoss => the burn manager re-burns the
  // whole array onto spare media rather than retrying in place).
  if (faults_ != nullptr &&
      faults_->ShouldInject(sim::FaultKind::kBurnFailure, fault_site_)) {
    co_return DataLossError("injected burn failure on " + fault_site_);
  }

  // Resume path: an open session for this image continues where it left
  // off; otherwise this is a fresh session.
  std::uint64_t already_burned = 0;
  bool resuming = false;
  if (!disc_->sessions().empty() && !disc_->sessions().back().closed) {
    const Session& open = disc_->sessions().back();
    if (open.image_id != image_id) {
      co_return FailedPreconditionError(
          "disc has an open session for a different image");
    }
    already_burned = open.logical_size;
    resuming = true;
  }

  state_ = DriveState::kBurning;
  interrupt_requested_ = false;
  sim::TimePoint start_time = sim_.now();

  // Append mode on a blank disc formats the reserved metadata zone first.
  std::uint64_t zone_offset = 0;
  if (options.append_mode) {
    const std::uint64_t zone = MetadataZoneBytes(disc_->capacity());
    zone_offset = zone;
    if (disc_->blank()) {
      co_await sim_.Delay(timings_.format_metadata_zone);
      Status status = disc_->AppendSession("<metadata-zone>", zone, {},
                                           true);
      if (!status.ok()) {
        state_ = DriveState::kReady;
        co_return status;
      }
    }
  } else if (resuming) {
    co_return FailedPreconditionError(
        "open session requires append_mode to resume");
  }

  const BurnSpeedProfile profile =
      BurnSpeedProfile::For(disc_->type(), Fnv1a64({
          reinterpret_cast<const std::uint8_t*>(disc_->id().data()),
          disc_->id().size()}));
  const std::uint64_t capacity = disc_->capacity();
  const std::uint64_t session_start =
      resuming ? disc_->sessions().back().start : disc_->burned_bytes();
  if (!resuming && logical_size > disc_->free_bytes()) {
    state_ = DriveState::kReady;
    co_return ResourceExhaustedError("image does not fit on disc");
  }
  (void)zone_offset;

  // Burn in 128 chunks, re-arbitrating shared bandwidth at each boundary
  // and honoring interrupts between chunks.
  constexpr int kChunks = 128;
  const std::uint64_t chunk = (logical_size + kChunks - 1) / kChunks;
  std::uint64_t burned = already_burned;
  bool interrupted = false;
  while (burned < logical_size) {
    if (interrupt_requested_) {
      interrupted = true;
      break;
    }
    const std::uint64_t n = std::min<std::uint64_t>(chunk,
                                                    logical_size - burned);
    const double progress =
        static_cast<double>(session_start + burned) /
        static_cast<double>(capacity);
    const double desired =
        profile.SpeedAt(progress) * kBluRay1xBytesPerSec;
    desired_burn_rate_ = desired;
    const double rate =
        set_ != nullptr ? set_->EffectiveBurnRate(desired) : desired;
    if (burn_observer) {
      burn_observer(static_cast<double>(burned) /
                        static_cast<double>(logical_size),
                    rate / kBluRay1xBytesPerSec);
    }
    co_await sim_.Delay(sim::TransferTime(n, rate));
    burned += n;
    bytes_burned_ += n;
  }
  desired_burn_rate_ = 0.0;
  state_ = DriveState::kReady;
  busy_time_ += sim_.now() - start_time;

  // Record the (possibly partial) session on the media.
  std::vector<std::uint8_t> stored(std::move(payload));
  if (burned < stored.size()) {
    stored.resize(burned);
  }
  const bool close_now = !interrupted && options.close_session;
  Status status =
      resuming ? disc_->ExtendOpenSession(image_id, burned, std::move(stored),
                                          close_now)
               : disc_->AppendSession(image_id, burned, std::move(stored),
                                      close_now);
  if (!status.ok()) {
    co_return status;
  }
  // The aging clock starts at the first successful burn (idempotent).
  disc_->StampBirth(sim_.now());
  // New sessions invalidate the mounted VFS view.
  vfs_mounted_ = false;

  ROS_LOG(kDebug) << "drive " << id_ << (interrupted ? " interrupted " :
                                         " burned ")
                  << image_id << " (" << burned << " bytes)";
  co_return BurnResult{.completed = !interrupted, .bytes_burned = burned};
}

DriveSet::DriveSet(sim::Simulator& sim, int id, DriveTimings timings)
    : sim_(sim), id_(id) {
  for (int i = 0; i < kDrivesPerSet; ++i) {
    drives_.push_back(
        std::make_unique<OpticalDrive>(sim, this, id * kDrivesPerSet + i,
                                       timings));
  }
}

OpticalDrive* DriveSet::FindImage(const std::string& image_id) {
  for (auto& drive : drives_) {
    if (drive->has_disc() && drive->disc()->FindSession(image_id).ok()) {
      return drive.get();
    }
  }
  return nullptr;
}

double DriveSet::EffectiveReadRate(double single_rate) const {
  // active_readers_ includes the caller by the time this is consulted.
  const int others = std::max(0, active_readers_ - 1);
  return single_rate * (1.0 - kReadContentionPerDrive * others);
}

int DriveSet::active_burners() const {
  int n = 0;
  for (const auto& drive : drives_) {
    if (drive->desired_burn_rate_ > 0) {
      ++n;
    }
  }
  return n;
}

double DriveSet::total_desired_burn_rate() const {
  double total = 0;
  for (const auto& drive : drives_) {
    total += drive->desired_burn_rate_;
  }
  return total;
}

double DriveSet::EffectiveBurnRate(double desired) const {
  const double total = total_desired_burn_rate();
  if (total <= kBurnBandwidthCap) {
    return desired;
  }
  // Proportional throttling when the shared write path saturates.
  return desired * kBurnBandwidthCap / total;
}

}  // namespace ros::drive
