// Optical drive model (§3.3, §5.4).
//
// Each drive holds at most one disc. Reading requires the drive to be awake
// (2 s wake/mount from the sleep state), the disc's session to be mounted
// into the local VFS (220 ms), and per-file seeks (~100 ms when the head
// moves between files). Burning follows the media's zoned speed profile
// (speed_profile.h) in chunks, can be interrupted between chunks (§4.8's
// append-burn policy), and shares the controller's HBA write bandwidth with
// the other drives of its set (drive_set.h), which produces Figure 9's
// aggregate curve.
#ifndef ROS_SRC_DRIVE_OPTICAL_DRIVE_H_
#define ROS_SRC_DRIVE_OPTICAL_DRIVE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/drive/disc.h"
#include "src/drive/speed_profile.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace ros::drive {

struct DriveTimings {
  sim::Duration wake = sim::Seconds(2.0);        // sleep -> disc mounted
  sim::Duration vfs_mount = sim::Millis(220);    // mount session into VFS
  sim::Duration seek = sim::Millis(100);         // head move between files
  // Formatting the reserved metadata zone ahead of time, required for the
  // append-burn (pseudo-overwrite) mode (§2.1: "tens of seconds").
  sim::Duration format_metadata_zone = sim::Seconds(30.0);
};

// Capacity sacrificed to the reserved metadata zone in append-burn mode:
// 256 MB on full-size media, proportionally less on capacity-overridden
// test media.
inline constexpr std::uint64_t kMetadataZoneBytes = 256 * kMB;
constexpr std::uint64_t MetadataZoneBytes(std::uint64_t capacity) {
  const std::uint64_t proportional = capacity / 64;
  return proportional < kMetadataZoneBytes ? proportional
                                           : kMetadataZoneBytes;
}

enum class DriveState { kEmpty, kSleeping, kReady, kReading, kBurning };

struct BurnOptions {
  bool close_session = true;  // write-all-once default
  bool append_mode = false;   // pre-format metadata zone, allow interrupt
};

struct BurnResult {
  bool completed = false;       // false => interrupted
  std::uint64_t bytes_burned = 0;
};

class DriveSet;

class OpticalDrive {
 public:
  OpticalDrive(sim::Simulator& sim, DriveSet* set, int id,
               DriveTimings timings = {})
      : sim_(sim), set_(set), id_(id), timings_(timings) {}

  int id() const { return id_; }
  DriveState state() const { return state_; }
  bool has_disc() const { return disc_ != nullptr; }
  Disc* disc() { return disc_; }
  const Disc* disc() const { return disc_; }

  // Mechanical insertion/removal; the separation/collection delay is
  // charged by mech::Library, so these are instantaneous bookkeeping.
  // The drive does not own the media: the rack inventory does.
  Status InsertDisc(Disc* disc);
  StatusOr<Disc*> EjectDisc();

  // Spins the drive down; the next access pays the wake delay.
  void Sleep();

  // Wakes the drive and mounts the disc (2 s if sleeping, else free).
  sim::Task<Status> EnsureAwake();

  // Mounts the disc's file system into the local VFS (220 ms, idempotent
  // until the disc changes or the drive sleeps).
  sim::Task<Status> MountVfs();

  bool vfs_mounted() const { return vfs_mounted_; }

  // Drops the VFS mount without spinning down (e.g. after a media change
  // or an unmount by the administrator); the next access pays the 220 ms
  // mount again.
  void InvalidateVfs() {
    vfs_mounted_ = false;
    last_read_image_.clear();
  }

  // Reads from a burned session. Charges wake/mount as needed, a seek when
  // the head moves between files, and the media transfer time (subject to
  // the drive set's shared-HBA read efficiency).
  sim::Task<StatusOr<std::vector<std::uint8_t>>> Read(std::string image_id,
                                                      std::uint64_t offset,
                                                      std::uint64_t length);

  // Burns one disc image as a session. Payload may be sparse (shorter than
  // `logical_size`); timing uses the logical size. In append mode the first
  // burn on a blank disc formats the metadata zone first, and the burn can
  // be interrupted between chunks via RequestInterrupt(), leaving an open
  // session that a later BurnImage on the same image resumes.
  sim::Task<StatusOr<BurnResult>> BurnImage(std::string image_id,
                                            std::uint64_t logical_size,
                                            std::vector<std::uint8_t> payload,
                                            BurnOptions options = {});

  // Asks an in-flight burn to stop at the next chunk boundary.
  void RequestInterrupt() { interrupt_requested_ = true; }

  // Installs the fault injector consulted per burn (kBurnFailure) and per
  // read (kLatentSectorError: the sector under the head rots, surfacing
  // as kDataLoss from the session CRC). Site: "drive:<id>".
  void set_fault_injector(sim::FaultInjector* faults) {
    faults_ = faults;
    fault_site_ = "drive:" + std::to_string(id_);
  }

  // Installs the media-aging model (DESIGN.md §5j): every read first
  // materializes the disc's accrued latent errors and feeds the age-scaled
  // extra read-fault rate into the injector hook. Not owned; the params
  // must outlive the drive. nullptr (or enabled=false) is byte-identical
  // to no model at all.
  void set_aging_model(const MediaAgingParams* aging) { aging_ = aging; }

  // Observer for burn progress, used by the figure benches:
  // called as (progress_fraction, instantaneous_speed_x).
  std::function<void(double, double)> burn_observer;

  // Telemetry.
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_burned() const { return bytes_burned_; }
  sim::Duration busy_time() const { return busy_time_; }

 private:
  friend class DriveSet;

  sim::Simulator& sim_;
  DriveSet* set_;  // may be null for a standalone drive
  int id_;
  DriveTimings timings_;
  DriveState state_ = DriveState::kEmpty;
  Disc* disc_ = nullptr;
  sim::FaultInjector* faults_ = nullptr;
  const MediaAgingParams* aging_ = nullptr;
  std::string fault_site_;
  bool vfs_mounted_ = false;
  bool interrupt_requested_ = false;
  std::string last_read_image_;
  std::uint64_t last_read_end_ = 0;

  // Current desired burn rate (bytes/s) while burning; used by DriveSet's
  // bandwidth arbiter.
  double desired_burn_rate_ = 0.0;

  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_burned_ = 0;
  sim::Duration busy_time_ = 0;
};

// A set of 12 drives sharing HBA bandwidth (§3.3). Reads lose a small
// fraction of per-drive speed as more drives read concurrently (Table 2:
// 12 x 24.1 MB/s -> 282.5 MB/s aggregate); burns share a write-path cap
// that shapes Figure 9's aggregate curve.
class DriveSet {
 public:
  static constexpr int kDrivesPerSet = 12;
  // Aggregate burn-path cap across one set (calibrated to Fig 9's ~380 MB/s
  // observed peak).
  static constexpr double kBurnBandwidthCap = 380e6;
  // Per-additional-reader efficiency loss (calibrated to Table 2).
  static constexpr double kReadContentionPerDrive = 0.00215;

  DriveSet(sim::Simulator& sim, int id, DriveTimings timings = {});

  int id() const { return id_; }
  OpticalDrive& drive(int i) { return *drives_.at(i); }
  const OpticalDrive& drive(int i) const { return *drives_.at(i); }
  int size() const { return static_cast<int>(drives_.size()); }

  // Finds the drive whose disc holds `image_id`, if any.
  OpticalDrive* FindImage(const std::string& image_id);

  // --- bandwidth arbitration (used by OpticalDrive) ---
  double EffectiveReadRate(double single_rate) const;
  double EffectiveBurnRate(double desired) const;
  void AddReader() { ++active_readers_; }
  void RemoveReader() { --active_readers_; }

  int active_readers() const { return active_readers_; }
  int active_burners() const;
  double total_desired_burn_rate() const;

 private:
  sim::Simulator& sim_;
  int id_;
  std::vector<std::unique_ptr<OpticalDrive>> drives_;
  int active_readers_ = 0;
};

}  // namespace ros::drive

#endif  // ROS_SRC_DRIVE_OPTICAL_DRIVE_H_
