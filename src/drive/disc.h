// Optical disc media model (§2.1).
//
// A disc is WORM (BD-R) or rewritable (BD-RE). Burned data lives in
// sessions (tracks); WORM media only ever appends new sessions
// ("pseudo-overwrite" — previously burned area is lost capacity), while RE
// media can be erased a limited number of times (~1000 cycles). Session
// payloads are stored sparsely: `data` may be shorter than `logical_size`,
// with the tail reading as zeros, so PB-scale experiments do not need
// PB-scale memory while timing still uses logical sizes.
//
// Sector bit-rot is modelled explicitly: sectors can be marked corrupted
// (archive-grade BD has a ~1e-16 sector error rate, §4.7), reads covering a
// corrupted sector fail with kDataLoss, and the scrubber enumerates them.
#ifndef ROS_SRC_DRIVE_DISC_H_
#define ROS_SRC_DRIVE_DISC_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace ros::drive {

inline constexpr std::uint64_t kSectorSize = 2 * kKiB;  // BD/UDF sector

enum class DiscType {
  kBdr25,    // 25 GB write-once
  kBdr100,   // 100 GB (BDXL) write-once
  kBdre25,   // 25 GB rewritable
};

constexpr std::uint64_t DiscCapacity(DiscType type) {
  switch (type) {
    case DiscType::kBdr25: return 25 * kGB;
    case DiscType::kBdr100: return 100 * kGB;
    case DiscType::kBdre25: return 25 * kGB;
  }
  return 0;
}

constexpr bool IsWorm(DiscType type) { return type != DiscType::kBdre25; }

// Maximum erase cycles for rewritable media (§2.1: "at most 1000").
inline constexpr int kMaxEraseCycles = 1000;

// Media aging model (§4.7, DESIGN.md §5j): latent sector errors accrue
// with *time*, not with access. Each disc materializes its accrued errors
// lazily, one fixed epoch at a time, from a per-(disc, epoch) seeded RNG —
// so the damage a disc carries at sim-time T is a pure function of
// (seed, disc id, burned area, T), independent of when or how often the
// disc is observed, and double runs replay bit-identically. Disabled
// (the default) the model consumes no randomness and touches nothing.
struct MediaAgingParams {
  bool enabled = false;
  // Expected latent sector errors per burned sector per sim-year on
  // new-generation reference media (age 0, factor 1.0).
  double lse_per_sector_year = 0.0;
  // Linear growth of that rate per year of media age: the effective rate
  // at age A is lse_per_sector_year * (1 + growth_per_year * A).
  double growth_per_year = 0.0;
  // Per-generation quality multipliers — later, higher-density archival
  // generations rot slower, which is what makes refresh-with-migration
  // worth the burn cost.
  double bdr25_factor = 1.0;
  double bdr100_factor = 0.25;
  double bdre25_factor = 2.0;
  // Extra per-read latent-sector-error probability per year of age, fed
  // to FaultInjector::ShouldInjectAged by the drive's read hook (models
  // marginal sectors that only fail under the read head).
  double read_fault_per_year = 0.0;
  // Accrual quantum: errors materialize per whole elapsed epoch.
  std::int64_t epoch_ns = 30LL * 24 * 3600 * 1000000000LL;  // ~1 month
  std::uint64_t seed = 1;

  double generation_factor(DiscType type) const {
    switch (type) {
      case DiscType::kBdr25: return bdr25_factor;
      case DiscType::kBdr100: return bdr100_factor;
      case DiscType::kBdre25: return bdre25_factor;
    }
    return 1.0;
  }

  // Extra read-fault rate for ShouldInjectAged at the given age.
  double read_boost(double age_years, DiscType type) const {
    if (!enabled || age_years <= 0.0) {
      return 0.0;
    }
    return read_fault_per_year * generation_factor(type) * age_years;
  }
};

inline constexpr double kNsPerYear = 365.0 * 24 * 3600 * 1e9;

// One burned track. `image_id` ties the session to an OLFS disc image.
struct Session {
  std::string image_id;
  std::uint64_t start = 0;         // byte offset of the session on disc
  std::uint64_t logical_size = 0;  // bytes the session occupies
  std::vector<std::uint8_t> data;  // real payload (may be < logical_size)
  bool closed = false;
};

class Disc {
 public:
  // `capacity_override` shrinks the media for laptop-scale experiments
  // (0 keeps the type's native capacity). Timing models scale with it.
  Disc(std::string id, DiscType type, std::uint64_t capacity_override = 0)
      : id_(std::move(id)), type_(type),
        capacity_(capacity_override != 0 ? capacity_override
                                         : DiscCapacity(type)) {}

  const std::string& id() const { return id_; }
  DiscType type() const { return type_; }
  std::uint64_t capacity() const { return capacity_; }

  // Bytes consumed by burned sessions (including abandoned pseudo-overwrite
  // areas on WORM media).
  std::uint64_t burned_bytes() const { return next_start_; }
  std::uint64_t free_bytes() const { return capacity() - next_start_; }
  bool blank() const { return sessions_.empty(); }
  int erase_cycles_used() const { return erase_cycles_; }
  const std::vector<Session>& sessions() const { return sessions_; }

  // Appends a session. The burn itself (and its delay) is driven by
  // OpticalDrive; this records the outcome on the media. Fails if the
  // payload does not fit in the remaining capacity.
  Status AppendSession(std::string image_id, std::uint64_t logical_size,
                       std::vector<std::uint8_t> data, bool closed);

  // Extends the open trailing session (append-burn resume after an
  // interrupt) to `new_logical_size`, replacing its payload and optionally
  // closing it. Keeps the burned-bytes accounting consistent.
  Status ExtendOpenSession(const std::string& image_id,
                           std::uint64_t new_logical_size,
                           std::vector<std::uint8_t> data, bool closed);

  // Erases a rewritable disc; fails on WORM media or exhausted cycles.
  Status Erase();

  // Looks up the session holding `image_id`.
  StatusOr<const Session*> FindSession(const std::string& image_id) const;

  // Reads `length` bytes at `offset` within the named session. Fails with
  // kDataLoss if the range covers a corrupted sector.
  StatusOr<std::vector<std::uint8_t>> ReadSession(const std::string& image_id,
                                                  std::uint64_t offset,
                                                  std::uint64_t length) const;

  // --- fault injection & scrubbing ---

  // Marks the sector at absolute disc offset `sector * kSectorSize` bad.
  void CorruptSector(std::uint64_t sector) { corrupted_.insert(sector); }
  // Enumerates corrupted sectors in burned area (what a scrub pass finds).
  std::vector<std::uint64_t> ScrubForErrors() const;
  bool HasCorruption() const { return !corrupted_.empty(); }

  // Flips bits in a session's stored payload *without* marking the sector
  // bad: reads succeed and return the tampered bytes, so only a checksum
  // audit can tell. Used to stage provable silent-corruption scenarios.
  Status TamperSessionData(const std::string& image_id, std::uint64_t offset,
                           std::uint8_t xor_mask);

  // --- media aging (DESIGN.md §5j) ---

  // Stamped by the drive at the disc's first successful burn; age is
  // measured from here. Idempotent: later burns keep the original birth.
  void StampBirth(std::int64_t now_ns) {
    if (birth_ns_ < 0) {
      birth_ns_ = now_ns;
    }
  }
  std::int64_t birth_time_ns() const { return birth_ns_; }
  double AgeYears(std::int64_t now_ns) const {
    return birth_ns_ < 0 ? 0.0
                         : static_cast<double>(now_ns - birth_ns_) /
                               kNsPerYear;
  }

  // Lazily materializes the latent sector errors the aging process accrued
  // up to `now_ns` (whole epochs since birth only). Returns the number of
  // newly corrupted sectors. No-op (and RNG-free) when aging is disabled,
  // the disc was never burned, or no new epoch has elapsed.
  int AdvanceAging(std::int64_t now_ns, const MediaAgingParams& params);
  std::uint64_t aged_errors() const { return aged_errors_; }

 private:
  std::string id_;
  DiscType type_;
  std::uint64_t capacity_;
  std::vector<Session> sessions_;
  std::uint64_t next_start_ = 0;
  int erase_cycles_ = 0;
  std::set<std::uint64_t> corrupted_;
  std::int64_t birth_ns_ = -1;      // first-burn sim time; -1 = blank
  std::int64_t aged_epochs_ = 0;    // whole epochs already materialized
  std::uint64_t aged_errors_ = 0;   // sectors corrupted by aging
};

}  // namespace ros::drive

#endif  // ROS_SRC_DRIVE_DISC_H_
