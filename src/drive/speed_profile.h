// Burn and read speed profiles, calibrated to §5.4 / Figures 8-10.
//
// 1X Blu-ray reference speed is 4.49 MB/s (§2.1). Burning a 25 GB disc uses
// a zoned P-CAV profile that ramps from 1.6X on the inner tracks to 12X on
// the outer tracks (average 8.2X, ~675 s per disc). Burning a 100 GB BDXL
// disc runs at a constant 6X but dips to 4X when the drive's fail-safe
// servo-disturbance detector fires (average 5.9X, ~3757 s per disc).
#ifndef ROS_SRC_DRIVE_SPEED_PROFILE_H_
#define ROS_SRC_DRIVE_SPEED_PROFILE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/drive/disc.h"

namespace ros::drive {

// 1X Blu-ray reference speed (§2.1).
inline constexpr double kBluRay1xBytesPerSec = 4.49e6;

// Single-drive sequential read speeds, Table 2.
constexpr double ReadSpeedBytesPerSec(DiscType type) {
  switch (type) {
    case DiscType::kBdr25:
    case DiscType::kBdre25:
      return 24.1e6;
    case DiscType::kBdr100:
      return 18.0e6;
  }
  return 0;
}

// A zone of constant burn speed ending at `progress_end` (fraction of the
// disc's capacity burned so far).
struct SpeedZone {
  double progress_end;  // in (0, 1]
  double speed_x;       // multiple of 1X
};

class BurnSpeedProfile {
 public:
  // Returns the zoned profile for burning `type` media. `seed` randomizes
  // the 100 GB fail-safe dips (deterministic per seed).
  static BurnSpeedProfile For(DiscType type, std::uint64_t seed = 0);

  // Returns the rewritable-media profile (constant 2X, §2.1).
  static BurnSpeedProfile Rewritable();

  const std::vector<SpeedZone>& zones() const { return zones_; }

  // Instantaneous speed (in X) at a burn progress fraction in [0, 1).
  double SpeedAt(double progress) const;

  // Simulated time to burn `bytes` of a disc with `capacity`, starting from
  // byte offset `start` (append burns start mid-profile).
  double BurnSeconds(std::uint64_t start, std::uint64_t bytes,
                     std::uint64_t capacity) const;

  // Byte-weighted average speed across the whole profile, in X.
  double AverageSpeedX() const;

 private:
  explicit BurnSpeedProfile(std::vector<SpeedZone> zones)
      : zones_(std::move(zones)) {}

  std::vector<SpeedZone> zones_;
};

}  // namespace ros::drive

#endif  // ROS_SRC_DRIVE_SPEED_PROFILE_H_
