#include "src/drive/disc.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "src/common/hash.h"
#include "src/common/rng.h"

namespace ros::drive {

Status Disc::AppendSession(std::string image_id, std::uint64_t logical_size,
                           std::vector<std::uint8_t> data, bool closed) {
  if (data.size() > logical_size) {
    return InvalidArgumentError("session payload larger than logical size");
  }
  if (logical_size > free_bytes()) {
    return ResourceExhaustedError("disc " + id_ + " lacks capacity for " +
                                  std::to_string(logical_size) + " bytes");
  }
  if (!sessions_.empty() && !sessions_.back().closed) {
    return FailedPreconditionError("previous session still open");
  }
  Session session;
  session.image_id = std::move(image_id);
  session.start = next_start_;
  session.logical_size = logical_size;
  session.data = std::move(data);
  session.closed = closed;
  next_start_ += logical_size;
  sessions_.push_back(std::move(session));
  return OkStatus();
}

Status Disc::ExtendOpenSession(const std::string& image_id,
                               std::uint64_t new_logical_size,
                               std::vector<std::uint8_t> data, bool closed) {
  if (sessions_.empty()) {
    return FailedPreconditionError("disc has no sessions");
  }
  Session& last = sessions_.back();
  if (last.closed) {
    return FailedPreconditionError(
        "last session closed; WORM media cannot reopen it");
  }
  if (last.image_id != image_id) {
    return FailedPreconditionError("open session belongs to another image");
  }
  if (new_logical_size < last.logical_size) {
    return InvalidArgumentError("cannot shrink a burned session");
  }
  const std::uint64_t grow = new_logical_size - last.logical_size;
  if (grow > free_bytes()) {
    return ResourceExhaustedError("no capacity to extend session");
  }
  last.logical_size = new_logical_size;
  last.data = std::move(data);
  last.closed = closed;
  next_start_ += grow;
  return OkStatus();
}

Status Disc::Erase() {
  if (IsWorm(type_)) {
    return FailedPreconditionError("cannot erase WORM disc " + id_);
  }
  if (erase_cycles_ >= kMaxEraseCycles) {
    return ResourceExhaustedError("disc " + id_ + " erase cycles exhausted");
  }
  ++erase_cycles_;
  sessions_.clear();
  next_start_ = 0;
  corrupted_.clear();
  // Erased media restarts its aging clock at the next burn.
  birth_ns_ = -1;
  aged_epochs_ = 0;
  return OkStatus();
}

StatusOr<const Session*> Disc::FindSession(const std::string& image_id) const {
  for (const Session& session : sessions_) {
    if (session.image_id == image_id) {
      return &session;
    }
  }
  return NotFoundError("image " + image_id + " not on disc " + id_);
}

StatusOr<std::vector<std::uint8_t>> Disc::ReadSession(
    const std::string& image_id, std::uint64_t offset,
    std::uint64_t length) const {
  ROS_ASSIGN_OR_RETURN(const Session* session, FindSession(image_id));
  if (offset + length > session->logical_size) {
    return OutOfRangeError("read beyond session end");
  }
  // Corruption check over the absolute sector range touched.
  if (!corrupted_.empty()) {
    std::uint64_t first = (session->start + offset) / kSectorSize;
    std::uint64_t last = (session->start + offset + length + kSectorSize - 1) /
                         kSectorSize;
    auto it = corrupted_.lower_bound(first);
    if (it != corrupted_.end() && *it < last) {
      return DataLossError("corrupted sector " + std::to_string(*it) +
                           " on disc " + id_);
    }
  }
  std::vector<std::uint8_t> out(length, 0);
  if (offset < session->data.size()) {
    std::uint64_t n = std::min<std::uint64_t>(length,
                                              session->data.size() - offset);
    std::copy_n(session->data.begin() + static_cast<std::ptrdiff_t>(offset),
                n, out.begin());
  }
  return out;
}

Status Disc::TamperSessionData(const std::string& image_id,
                               std::uint64_t offset, std::uint8_t xor_mask) {
  if (xor_mask == 0) {
    return InvalidArgumentError("xor mask must flip at least one bit");
  }
  for (Session& session : sessions_) {
    if (session.image_id != image_id) {
      continue;
    }
    if (offset >= session.data.size()) {
      return OutOfRangeError("tamper offset beyond stored payload");
    }
    session.data[offset] ^= xor_mask;
    return OkStatus();
  }
  return NotFoundError("image " + image_id + " not on disc " + id_);
}

int Disc::AdvanceAging(std::int64_t now_ns, const MediaAgingParams& params) {
  if (!params.enabled || birth_ns_ < 0 || params.epoch_ns <= 0 ||
      next_start_ == 0) {
    return 0;
  }
  const std::int64_t epochs = (now_ns - birth_ns_) / params.epoch_ns;
  if (epochs <= aged_epochs_) {
    return 0;
  }
  const double epoch_years =
      static_cast<double>(params.epoch_ns) / kNsPerYear;
  const double factor = params.generation_factor(type_);
  const std::uint64_t burned_sectors =
      (next_start_ + kSectorSize - 1) / kSectorSize;
  const std::uint64_t id_hash = Fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(id_.data()), id_.size()));
  int materialized = 0;
  for (std::int64_t e = aged_epochs_; e < epochs; ++e) {
    // Per-(disc, epoch) stream: the sectors an epoch rots are fixed at
    // seed time, so materialization order never depends on observation.
    Rng rng(params.seed ^ id_hash ^
            (static_cast<std::uint64_t>(e) * 0x9E3779B97F4A7C15ull));
    const double age_years = static_cast<double>(e) * epoch_years;
    const double rate = params.lse_per_sector_year * factor *
                        (1.0 + params.growth_per_year * age_years);
    const double expected =
        rate * epoch_years * static_cast<double>(burned_sectors);
    std::uint64_t errors = static_cast<std::uint64_t>(std::floor(expected));
    const double frac = expected - static_cast<double>(errors);
    if (frac > 0 && rng.Chance(frac)) {
      ++errors;
    }
    for (std::uint64_t i = 0; i < errors; ++i) {
      if (corrupted_.insert(rng.Below(burned_sectors)).second) {
        ++materialized;
      }
    }
  }
  aged_epochs_ = epochs;
  aged_errors_ += static_cast<std::uint64_t>(materialized);
  return materialized;
}

std::vector<std::uint64_t> Disc::ScrubForErrors() const {
  std::vector<std::uint64_t> bad;
  std::uint64_t burned_sectors = (next_start_ + kSectorSize - 1) / kSectorSize;
  for (std::uint64_t sector : corrupted_) {
    if (sector < burned_sectors) {
      bad.push_back(sector);
    }
  }
  return bad;
}

}  // namespace ros::drive
