#include "src/mech/library.h"

#include "src/common/logging.h"

namespace ros::mech {

Library::Library(sim::Simulator& sim, const LibraryConfig& config)
    : sim_(sim), config_(config),
      plc_(sim, config.timing, config.rollers, config.seed) {
  ROS_CHECK(config.drive_sets >= 1 && config.drive_sets <= 4);
  for (int i = 0; i < config.rollers; ++i) {
    arm_mutex_.push_back(std::make_unique<sim::Mutex>(sim_));
  }
  for (int i = 0; i < config.drive_sets; ++i) {
    bay_mutex_.push_back(std::make_unique<sim::Mutex>(sim_));
    bays_.push_back(DriveBayState{});
  }
  // A factory-fresh rack ships with every tray populated.
  tray_occupied_.assign(
      static_cast<std::size_t>(config.rollers) * kTraysPerRoller, true);
}

bool Library::TrayOccupied(TrayAddress tray) const {
  ROS_CHECK(tray.IsValid(config_.rollers));
  return tray_occupied_[tray.ToIndex()];
}

void Library::SetTrayOccupied(TrayAddress tray, bool occupied) {
  ROS_CHECK(tray.IsValid(config_.rollers));
  tray_occupied_[tray.ToIndex()] = occupied;
}

sim::Task<Status> Library::LoadArray(TrayAddress tray, int bay) {
  if (!tray.IsValid(config_.rollers)) {
    co_return InvalidArgumentError("invalid tray address " + tray.ToString());
  }
  if (bay < 0 || bay >= num_bays()) {
    co_return InvalidArgumentError("invalid drive bay");
  }
  sim::Mutex::ScopedLock bay_lock = co_await bay_mutex_[bay]->Lock();
  sim::Mutex::ScopedLock arm_lock = co_await arm_mutex_[tray.roller]->Lock();
  bays_[bay].busy = true;
  Status status = co_await LoadArrayLocked(tray, bay);
  bays_[bay].busy = false;
  co_return status;
}

sim::Task<Status> Library::LoadArrayLocked(TrayAddress tray, int bay) {
  if (!tray_occupied_[tray.ToIndex()]) {
    co_return FailedPreconditionError("tray " + tray.ToString() +
                                      " holds no disc array");
  }
  if (bays_[bay].loaded_from.has_value()) {
    co_return FailedPreconditionError("drive bay already loaded");
  }

  int discs_in_drives = 0;
  Status status = co_await LoadArraySteps(tray, &discs_in_drives);
  if (status.ok()) {
    bays_[bay].loaded_from = tray;
    ++loads_;
    ROS_LOG(kDebug) << "loaded array " << tray.ToString() << " into bay "
                    << bay;
    co_return OkStatus();
  }

  // A mid-load fault leaves the array split between the arm, the drives and
  // possibly a fanned-out tray. Re-seat everything onto the home tray so the
  // caller can simply retry LoadArray, then surface the original error.
  const ArmState& arm = plc_.arm_state(tray.roller);
  const bool disturbed =
      discs_in_drives > 0 || arm.carrying || arm.discs_held > 0 ||
      plc_.roller_state(tray.roller).fanned_out.has_value();
  if (disturbed) {
    Status reseat = co_await ReseatAfterFault(tray, discs_in_drives);
    if (reseat.ok()) {
      ++fault_recoveries_;
      ROS_LOG(kWarning) << "load of " << tray.ToString()
                        << " failed and was re-seated: " << status.ToString();
    } else {
      ++reseat_failures_;
      ROS_LOG(kWarning) << "load recovery for " << tray.ToString()
                        << " failed: " << reseat.ToString();
    }
  }
  co_return status;
}

sim::Task<Status> Library::LoadArraySteps(TrayAddress tray,
                                          int* discs_in_drives) {
  const int roller = tray.roller;
  const RollerState& rstate = plc_.roller_state(roller);

  // Rotate the target slot to face the arm (no-op if already facing, or if
  // PrepareLoad already fanned this tray out).
  const bool prepared =
      rstate.fanned_out.has_value() && *rstate.fanned_out == tray.slot &&
      rstate.facing_slot == tray.slot;
  if (!prepared) {
    ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
        {.op = PlcOp::kRotateRoller, .roller = roller, .slot = tray.slot}));
  }
  // Sensor-guided descent to the tray's layer.
  ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
      {.op = PlcOp::kMoveArm, .roller = roller, .layer = tray.layer}));
  if (!prepared) {
    ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
        {.op = PlcOp::kFanOutTray, .roller = roller, .slot = tray.slot}));
  }
  ROS_CO_RETURN_IF_ERROR(
      co_await plc_.Execute({.op = PlcOp::kGrabArray, .roller = roller}));
  tray_occupied_[tray.ToIndex()] = false;

  // The fast return ascent overlaps the tray fan-in and the drive-tray
  // opening (see timing.h); run it concurrently and join before separating.
  sim::Event arm_up(sim_);
  Status ascent_status = OkStatus();
  sim_.Spawn([](Library* self, int r, sim::Event* done,
                Status* out) -> sim::Task<void> {
    *out = co_await self->plc_.Execute({.op = PlcOp::kReturnArm, .roller = r});
    done->Set();
  }(this, roller, &arm_up, &ascent_status));

  // Join the ascent before any early return: the spawned task writes into
  // this frame's locals, so the frame must outlive it even on a fault.
  Status fan_in =
      co_await plc_.Execute({.op = PlcOp::kFanInTray, .roller = roller});
  Status open_trays = OkStatus();
  if (fan_in.ok()) {
    open_trays = co_await plc_.Execute(
        {.op = PlcOp::kOpenDriveTrays, .roller = roller});
  }
  co_await arm_up.Wait();
  ROS_CO_RETURN_IF_ERROR(fan_in);
  ROS_CO_RETURN_IF_ERROR(open_trays);
  ROS_CO_RETURN_IF_ERROR(ascent_status);

  // Separate the 12 discs into the 12 drives, bottom disc first.
  for (int disc = 0; disc < kDiscsPerTray; ++disc) {
    ROS_CO_RETURN_IF_ERROR(
        co_await plc_.Execute({.op = PlcOp::kSeparateDisc, .roller = roller}));
    ++*discs_in_drives;
  }
  co_return OkStatus();
}

sim::Task<Status> Library::UnloadArray(int bay) {
  if (bay < 0 || bay >= num_bays()) {
    co_return InvalidArgumentError("invalid drive bay");
  }
  sim::Mutex::ScopedLock bay_lock = co_await bay_mutex_[bay]->Lock();
  if (!bays_[bay].loaded_from.has_value()) {
    co_return FailedPreconditionError("drive bay is empty");
  }
  const TrayAddress tray = *bays_[bay].loaded_from;
  sim::Mutex::ScopedLock arm_lock = co_await arm_mutex_[tray.roller]->Lock();
  bays_[bay].busy = true;
  Status status = co_await UnloadArrayLocked(tray, bay);
  bays_[bay].busy = false;
  co_return status;
}

sim::Task<Status> Library::UnloadArrayLocked(TrayAddress tray, int bay) {
  const int roller = tray.roller;
  if (tray_occupied_[tray.ToIndex()]) {
    co_return FailedPreconditionError("home tray unexpectedly occupied");
  }

  int discs_in_drives = kDiscsPerTray;
  Status status = co_await UnloadArraySteps(tray, &discs_in_drives);
  if (status.ok()) {
    tray_occupied_[tray.ToIndex()] = true;
    bays_[bay].loaded_from.reset();
    ++unloads_;
    ROS_LOG(kDebug) << "unloaded bay " << bay << " back to "
                    << tray.ToString();
    // The empty arm returns to park off the critical path, still holding
    // the arm mutex so the next operation finds it parked.
    sim_.Spawn(ReturnArmInBackground(roller));
    co_return OkStatus();
  }

  // A mid-unload fault is recovered in place: the re-seat sequence finishes
  // the job (collect the stragglers, place the array, fan in, park), so a
  // successful recovery *completes* the unload.
  Status reseat = co_await ReseatAfterFault(tray, discs_in_drives);
  if (!reseat.ok()) {
    ++reseat_failures_;
    ROS_LOG(kWarning) << "unload recovery for bay " << bay
                      << " failed: " << reseat.ToString();
    co_return status;
  }
  ++fault_recoveries_;
  tray_occupied_[tray.ToIndex()] = true;
  bays_[bay].loaded_from.reset();
  ++unloads_;
  ROS_LOG(kWarning) << "unload of bay " << bay << " self-healed after fault: "
                    << status.ToString();
  co_return OkStatus();
}

sim::Task<Status> Library::UnloadArraySteps(TrayAddress tray,
                                            int* discs_in_drives) {
  const int roller = tray.roller;

  // Eject all 12 drive trays, then collect the discs one by one, top drive
  // first, rebuilding the array on the arm.
  ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
      {.op = PlcOp::kEjectDriveTrays, .roller = roller}));
  for (int disc = 0; disc < kDiscsPerTray; ++disc) {
    ROS_CO_RETURN_IF_ERROR(
        co_await plc_.Execute({.op = PlcOp::kCollectDisc, .roller = roller}));
    --*discs_in_drives;
  }

  // Carry the array down to its home layer; the roller cannot rotate while
  // the loaded arm travels between layers, so these are sequential.
  ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
      {.op = PlcOp::kMoveArm, .roller = roller, .layer = tray.layer}));
  ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
      {.op = PlcOp::kRotateRoller, .roller = roller, .slot = tray.slot}));
  ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
      {.op = PlcOp::kFanOutTray, .roller = roller, .slot = tray.slot}));
  ROS_CO_RETURN_IF_ERROR(
      co_await plc_.Execute({.op = PlcOp::kPlaceArray, .roller = roller}));
  ROS_CO_RETURN_IF_ERROR(
      co_await plc_.Execute({.op = PlcOp::kFanInTray, .roller = roller}));
  co_return OkStatus();
}

sim::Task<Status> Library::ReseatAfterFault(TrayAddress tray,
                                            int discs_in_drives) {
  const int roller = tray.roller;
  // Live views: the PLC updates these as recovery instructions execute.
  const ArmState& arm = plc_.arm_state(roller);
  const RollerState& rstate = plc_.roller_state(roller);

  // Pull back any discs already seated in drives.
  if (discs_in_drives > 0) {
    ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
        {.op = PlcOp::kEjectDriveTrays, .roller = roller}, /*recovery=*/true));
    for (int i = 0; i < discs_in_drives; ++i) {
      ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
          {.op = PlcOp::kCollectDisc, .roller = roller}, /*recovery=*/true));
    }
  }

  // Carry the rebuilt array back to its home tray.
  if (arm.carrying || arm.discs_held > 0) {
    if (rstate.fanned_out.has_value() && *rstate.fanned_out != tray.slot) {
      ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
          {.op = PlcOp::kFanInTray, .roller = roller}, /*recovery=*/true));
    }
    if (!rstate.fanned_out.has_value()) {
      if (rstate.facing_slot != tray.slot) {
        ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
            {.op = PlcOp::kRotateRoller, .roller = roller, .slot = tray.slot},
            /*recovery=*/true));
      }
      ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
          {.op = PlcOp::kFanOutTray, .roller = roller, .slot = tray.slot},
          /*recovery=*/true));
    }
    if (arm.layer != tray.layer) {
      ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
          {.op = PlcOp::kMoveArm, .roller = roller, .layer = tray.layer},
          /*recovery=*/true));
    }
    ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
        {.op = PlcOp::kPlaceArray, .roller = roller}, /*recovery=*/true));
    tray_occupied_[tray.ToIndex()] = true;
  }

  // Leave the roller neutral and the arm parked.
  if (rstate.fanned_out.has_value()) {
    ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
        {.op = PlcOp::kFanInTray, .roller = roller}, /*recovery=*/true));
  }
  co_return co_await plc_.Execute({.op = PlcOp::kReturnArm, .roller = roller},
                                  /*recovery=*/true);
}

sim::Task<void> Library::ReturnArmInBackground(int roller) {
  sim::Mutex::ScopedLock arm_lock = co_await arm_mutex_[roller]->Lock();
  Status status =
      co_await plc_.Execute({.op = PlcOp::kReturnArm, .roller = roller});
  if (!status.ok()) {
    ROS_LOG(kWarning) << "background arm return failed: " << status.ToString();
  }
}

sim::Task<Status> Library::PrepareLoad(TrayAddress tray) {
  if (!tray.IsValid(config_.rollers)) {
    co_return InvalidArgumentError("invalid tray address");
  }
  sim::Mutex::ScopedLock arm_lock = co_await arm_mutex_[tray.roller]->Lock();
  const RollerState& rstate = plc_.roller_state(tray.roller);
  if (rstate.fanned_out.has_value()) {
    if (*rstate.fanned_out == tray.slot) {
      co_return OkStatus();  // already prepared
    }
    co_return FailedPreconditionError("another tray is fanned out");
  }
  ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
      {.op = PlcOp::kRotateRoller, .roller = tray.roller, .slot = tray.slot}));
  ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
      {.op = PlcOp::kFanOutTray, .roller = tray.roller, .slot = tray.slot}));
  // Pre-position the arm at the target layer as well.
  ROS_CO_RETURN_IF_ERROR(co_await plc_.Execute(
      {.op = PlcOp::kMoveArm, .roller = tray.roller, .layer = tray.layer}));
  co_return OkStatus();
}

}  // namespace ros::mech
