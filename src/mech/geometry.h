// Physical geometry of the ROS rack (§3.2).
//
// A 42U rack holds 1 or 2 rollers. Each roller is a 1.67 m rotatable
// cylinder with 85 layers; each layer has 6 lotus-arranged trays; each tray
// holds a vertical stack of 12 discs (a "disc array"). 85 * 6 = 510 trays,
// 6120 discs per roller, 12240 per rack.
#ifndef ROS_SRC_MECH_GEOMETRY_H_
#define ROS_SRC_MECH_GEOMETRY_H_

#include <compare>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace ros::mech {

inline constexpr int kLayersPerRoller = 85;
inline constexpr int kSlotsPerLayer = 6;
inline constexpr int kDiscsPerTray = 12;
inline constexpr int kTraysPerRoller = kLayersPerRoller * kSlotsPerLayer;  // 510
inline constexpr int kDiscsPerRoller = kTraysPerRoller * kDiscsPerTray;   // 6120
inline constexpr int kMaxRollers = 2;
inline constexpr int kMaxDiscsPerRack = kMaxRollers * kDiscsPerRoller;    // 12240

// Layer 0 is the uppermost layer (where the robotic arm parks).
struct TrayAddress {
  int roller = 0;
  int layer = 0;
  int slot = 0;

  auto operator<=>(const TrayAddress&) const = default;

  bool IsValid(int rollers = kMaxRollers) const {
    return roller >= 0 && roller < rollers && layer >= 0 &&
           layer < kLayersPerRoller && slot >= 0 && slot < kSlotsPerLayer;
  }

  // Dense index within the rack, used for DAindex bookkeeping.
  int ToIndex() const {
    return (roller * kLayersPerRoller + layer) * kSlotsPerLayer + slot;
  }

  static TrayAddress FromIndex(int index) {
    TrayAddress addr;
    addr.slot = index % kSlotsPerLayer;
    index /= kSlotsPerLayer;
    addr.layer = index % kLayersPerRoller;
    addr.roller = index / kLayersPerRoller;
    return addr;
  }

  std::string ToString() const {
    return "r" + std::to_string(roller) + "/L" + std::to_string(layer) + "/s" +
           std::to_string(slot);
  }
};

// One disc within a tray; index 0 is the bottom disc (separated first).
struct DiscAddress {
  TrayAddress tray;
  int index = 0;

  auto operator<=>(const DiscAddress&) const = default;

  bool IsValid(int rollers = kMaxRollers) const {
    return tray.IsValid(rollers) && index >= 0 && index < kDiscsPerTray;
  }

  int ToIndex() const { return tray.ToIndex() * kDiscsPerTray + index; }

  static DiscAddress FromIndex(int index) {
    DiscAddress addr;
    addr.index = index % kDiscsPerTray;
    addr.tray = TrayAddress::FromIndex(index / kDiscsPerTray);
    return addr;
  }

  std::string ToString() const {
    return tray.ToString() + "/d" + std::to_string(index);
  }
};

// Angular distance, in slots, the roller must rotate so `slot` faces the
// robotic arm when `current` currently faces it. The roller rotates both
// ways, so the worst case is 3 of 6 slots (a half turn).
constexpr int SlotDistance(int current, int slot) {
  int d = slot - current;
  if (d < 0) {
    d = -d;
  }
  if (d > kSlotsPerLayer / 2) {
    d = kSlotsPerLayer - d;
  }
  return d;
}

}  // namespace ros::mech

#endif  // ROS_SRC_MECH_GEOMETRY_H_
