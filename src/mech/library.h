// High-level mechanical library operations (§3.2).
//
// Library composes the PLC, rollers and robotic arms into the two operations
// the rest of ROS needs: loading a 12-disc array from a tray into a set of
// 12 drives, and unloading it back. It tracks where every disc array
// physically is (tray / carried / drive bay) and serializes access to each
// arm and drive bay.
//
// Timing follows Table 3 of the paper: the operation's latency is the span
// from the first PLC instruction to the last disc seated (load) or the tray
// fanned back in (unload); the arm's fast return ascent overlaps other
// actuations and is never on the critical path.
#ifndef ROS_SRC_MECH_LIBRARY_H_
#define ROS_SRC_MECH_LIBRARY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/mech/geometry.h"
#include "src/mech/plc.h"
#include "src/mech/timing.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::mech {

struct LibraryConfig {
  int rollers = 2;
  int drive_sets = 2;  // 1-4 sets of 12 drives each (§3.2)
  MechTimingModel timing;
  std::uint64_t seed = 1;
};

// Where a drive set's discs came from, when occupied.
struct DriveBayState {
  std::optional<TrayAddress> loaded_from;
  bool busy = false;  // a load/unload operation is in flight
};

class Library {
 public:
  Library(sim::Simulator& sim, const LibraryConfig& config);

  // Moves the disc array in `tray` into drive set `bay`. The tray must hold
  // an array and the bay must be empty. Completes when all 12 discs are
  // seated in drives.
  sim::Task<Status> LoadArray(TrayAddress tray, int bay);

  // Returns the disc array in drive set `bay` to the tray it came from.
  // Completes when the tray has fanned back in.
  sim::Task<Status> UnloadArray(int bay);

  // Pipelining optimization (§3.2): pre-rotate the roller, fan the tray out
  // and pre-position the arm while the drives are still busy, so a
  // subsequent LoadArray of the same tray skips those steps (saves up to
  // ~10 s). The arm of tray.roller is held briefly during preparation.
  sim::Task<Status> PrepareLoad(TrayAddress tray);

  bool TrayOccupied(TrayAddress tray) const;
  const DriveBayState& bay(int index) const { return bays_.at(index); }
  int num_bays() const { return static_cast<int>(bays_.size()); }
  int num_rollers() const { return config_.rollers; }
  Plc& plc() { return plc_; }

  // Marks a tray as holding / not holding a disc array. Used when
  // initializing a partially-populated rack in tests.
  void SetTrayOccupied(TrayAddress tray, bool occupied);

  // Telemetry.
  std::uint64_t loads_completed() const { return loads_; }
  std::uint64_t unloads_completed() const { return unloads_; }
  // Mid-operation mechanical faults recovered by re-seating the disc array
  // onto its home tray, and recoveries that themselves failed (wedged arm;
  // needs operator attention).
  std::uint64_t fault_recoveries() const { return fault_recoveries_; }
  std::uint64_t reseat_failures() const { return reseat_failures_; }

 private:
  sim::Task<Status> LoadArrayLocked(TrayAddress tray, int bay);
  sim::Task<Status> UnloadArrayLocked(TrayAddress tray, int bay);
  // The raw PLC sequences, without precondition checks or bookkeeping.
  // `*discs_in_drives` always reflects how many discs of the array are
  // currently seated in drives, so a failure can be recovered precisely.
  sim::Task<Status> LoadArraySteps(TrayAddress tray, int* discs_in_drives);
  sim::Task<Status> UnloadArraySteps(TrayAddress tray, int* discs_in_drives);
  // Recovery sequence after a mid-operation fault: collect any discs left
  // in drives, carry the array back to its home tray, place it, fan in and
  // park the arm. Runs the PLC in recovery mode (slow, sensor-checked, no
  // fault injection), so it models an automated re-seat cycle.
  sim::Task<Status> ReseatAfterFault(TrayAddress tray, int discs_in_drives);
  // Spawned after an unload: returns the arm to its park position.
  sim::Task<void> ReturnArmInBackground(int roller);

  sim::Simulator& sim_;
  LibraryConfig config_;
  Plc plc_;
  std::vector<std::unique_ptr<sim::Mutex>> arm_mutex_;  // one per roller
  std::vector<std::unique_ptr<sim::Mutex>> bay_mutex_;  // one per drive set
  std::vector<bool> tray_occupied_;
  std::vector<DriveBayState> bays_;

  std::uint64_t loads_ = 0;
  std::uint64_t unloads_ = 0;
  std::uint64_t fault_recoveries_ = 0;
  std::uint64_t reseat_failures_ = 0;
};

}  // namespace ros::mech

#endif  // ROS_SRC_MECH_LIBRARY_H_
