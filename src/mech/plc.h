// The Programmable Logic Controller (PLC) of ROS (§3.3).
//
// The PLC "defines an instruction set to execute basic mechanical
// operations": rotating the roller, moving the robotic arm, fanning trays
// out/in, grabbing/placing disc arrays, separating/collecting individual
// discs, and actuating drive trays. Every instruction runs in a feedback
// control loop against simulated range sensors; a miscalibrated reading
// triggers a recalibration retry with a fixed penalty.
//
// The system controller (olfs::MechController) talks to the PLC exactly the
// way the paper describes — command in, delayed status out — so the rest of
// the stack never sees simulated internals.
#ifndef ROS_SRC_MECH_PLC_H_
#define ROS_SRC_MECH_PLC_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/mech/geometry.h"
#include "src/mech/timing.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ros::mech {

// PLC instruction opcodes, one per basic mechanical operation.
enum class PlcOp {
  kRotateRoller,   // bring a slot to face the robotic arm
  kMoveArm,        // vertical travel to a layer (descent, sensor-guided)
  kReturnArm,      // fast ascent back to the park/drive position
  kFanOutTray,     // hook + partial rotation: tray swings out
  kFanInTray,      // reverse rotation: tray swings back
  kGrabArray,      // lift the 12-disc array off the fanned-out tray
  kPlaceArray,     // put the carried array onto the fanned-out tray
  kSeparateDisc,   // drop the bottom disc of the carried array into a drive
  kCollectDisc,    // take one disc from a drive onto the carried array
  kOpenDriveTrays, // open all 12 trays of a drive set
  kEjectDriveTrays // eject all 12 trays of a drive set (discs visible)
};

std::string_view PlcOpName(PlcOp op);

struct PlcInstruction {
  PlcOp op;
  int roller = 0;
  int layer = 0;  // kMoveArm target
  int slot = 0;   // kRotateRoller / kFanOutTray target
};

// Per-roller mechanical state tracked by the PLC's sensors.
struct RollerState {
  int facing_slot = 0;              // slot currently facing the arm
  std::optional<int> fanned_out;    // slot of the fanned-out tray, if any
};

struct ArmState {
  int layer = 0;          // current vertical position (0 = uppermost/park)
  bool carrying = false;  // holding a disc array
  int discs_held = 0;     // discs currently on the carried array
};

// Sensor/actuator fault model. `miscalibration_rate` is the per-instruction
// probability that the feedback loop detects an out-of-tolerance position
// and re-seats (costing MechTimingModel::recalibration_delay each retry).
struct PlcFaultModel {
  double miscalibration_rate = 0.0;
  int max_retries = 3;
};

class Plc {
 public:
  Plc(sim::Simulator& sim, MechTimingModel timing, int rollers,
      std::uint64_t seed = 1)
      : sim_(sim), timing_(timing), rng_(seed), rollers_(rollers),
        arms_(rollers) {
    ROS_CHECK(rollers >= 1 && rollers <= kMaxRollers);
  }

  // Executes one instruction, charging its mechanical delay to simulated
  // time and updating sensor state. Returns FailedPrecondition if the
  // instruction is illegal in the current state (e.g. grabbing with a full
  // arm), or Unavailable if recalibration retries are exhausted or a
  // mechanical fault is injected. State only mutates after a successful
  // actuation, so a failed instruction leaves the sensors consistent with
  // the op never having run. `recovery` marks the slow, operator-style
  // re-seat sequences (Library::ReseatAfterFault): those run with fault
  // injection and miscalibration disabled.
  sim::Task<Status> Execute(PlcInstruction instruction,
                            bool recovery = false);

  const MechTimingModel& timing() const { return timing_; }
  const RollerState& roller_state(int roller) const {
    return rollers_.at(roller);
  }
  const ArmState& arm_state(int roller) const { return arms_.at(roller); }
  int num_rollers() const { return static_cast<int>(rollers_.size()); }

  void set_fault_model(PlcFaultModel model) { faults_ = model; }

  // Deterministic mech-fault injection (kMechFault); the hook site is the
  // instruction's opcode name, so plans can target e.g. "GRAB_ARRAY".
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
  }

  // Telemetry.
  std::uint64_t instructions_executed() const { return instructions_; }
  std::uint64_t recalibrations() const { return recalibrations_; }
  sim::Duration busy_time() const { return busy_time_; }

 private:
  // Runs the feedback loop for one actuation of duration `motion`.
  sim::Task<Status> Actuate(sim::Duration motion, bool recovery = false);

  sim::Simulator& sim_;
  MechTimingModel timing_;
  Rng rng_;
  PlcFaultModel faults_;
  sim::FaultInjector* injector_ = nullptr;
  std::vector<RollerState> rollers_;
  std::vector<ArmState> arms_;

  std::uint64_t instructions_ = 0;
  std::uint64_t recalibrations_ = 0;
  sim::Duration busy_time_ = 0;
};

}  // namespace ros::mech

#endif  // ROS_SRC_MECH_PLC_H_
