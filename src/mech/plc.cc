#include "src/mech/plc.h"

#include "src/common/logging.h"
#include "src/sim/event_hasher.h"

namespace ros::mech {

std::string_view PlcOpName(PlcOp op) {
  switch (op) {
    case PlcOp::kRotateRoller: return "ROTATE_ROLLER";
    case PlcOp::kMoveArm: return "MOVE_ARM";
    case PlcOp::kReturnArm: return "RETURN_ARM";
    case PlcOp::kFanOutTray: return "FAN_OUT_TRAY";
    case PlcOp::kFanInTray: return "FAN_IN_TRAY";
    case PlcOp::kGrabArray: return "GRAB_ARRAY";
    case PlcOp::kPlaceArray: return "PLACE_ARRAY";
    case PlcOp::kSeparateDisc: return "SEPARATE_DISC";
    case PlcOp::kCollectDisc: return "COLLECT_DISC";
    case PlcOp::kOpenDriveTrays: return "OPEN_DRIVE_TRAYS";
    case PlcOp::kEjectDriveTrays: return "EJECT_DRIVE_TRAYS";
  }
  return "UNKNOWN";
}

sim::Task<Status> Plc::Actuate(sim::Duration motion, bool recovery) {
  ++instructions_;
  sim::TimePoint start = sim_.now();
  co_await sim_.Delay(motion);
  // Feedback loop: the range sensors verify the final position to 0.05 mm;
  // a miscalibrated seat re-actuates with a fixed penalty. Recovery-mode
  // actuations run slow and sensor-checked, so they never miscalibrate.
  int retries = 0;
  while (!recovery && faults_.miscalibration_rate > 0 &&
         rng_.Chance(faults_.miscalibration_rate)) {
    if (++retries > faults_.max_retries) {
      busy_time_ += sim_.now() - start;
      co_return UnavailableError("PLC recalibration retries exhausted");
    }
    ++recalibrations_;
    co_await sim_.Delay(timing_.recalibration_delay);
  }
  busy_time_ += sim_.now() - start;
  co_return OkStatus();
}

sim::Task<Status> Plc::Execute(PlcInstruction instruction, bool recovery) {
  if (instruction.roller < 0 || instruction.roller >= num_rollers()) {
    co_return InvalidArgumentError("bad roller id");
  }
  if (sim::EventHasher* hasher = sim_.event_hasher(); hasher != nullptr) {
    // Pack the geometry operands; layer and slot are small non-negatives.
    hasher->Fold("plc", PlcOpName(instruction.op),
                 (static_cast<std::uint64_t>(instruction.roller) << 32) |
                     (static_cast<std::uint64_t>(instruction.layer) << 16) |
                     static_cast<std::uint64_t>(instruction.slot),
                 static_cast<std::uint64_t>(sim_.now()));
  }
  // Injected pick/place fault: the feedback loop detects an out-of-
  // tolerance seat it cannot correct, charges its full retry budget and
  // aborts the instruction before any state changes.
  if (!recovery && injector_ != nullptr &&
      injector_->ShouldInject(sim::FaultKind::kMechFault,
                              PlcOpName(instruction.op))) {
    co_await sim_.Delay(timing_.recalibration_delay * faults_.max_retries);
    co_return UnavailableError(
        std::string("injected mech fault: ") +
        std::string(PlcOpName(instruction.op)));
  }
  RollerState& roller = rollers_[instruction.roller];
  ArmState& arm = arms_[instruction.roller];

  switch (instruction.op) {
    case PlcOp::kRotateRoller: {
      if (instruction.slot < 0 || instruction.slot >= kSlotsPerLayer) {
        co_return InvalidArgumentError("bad slot");
      }
      if (roller.fanned_out.has_value()) {
        co_return FailedPreconditionError(
            "cannot rotate with a tray fanned out");
      }
      sim::Duration t =
          timing_.RotateTime(roller.facing_slot, instruction.slot);
      ROS_CO_RETURN_IF_ERROR(co_await Actuate(t, recovery));
      roller.facing_slot = instruction.slot;
      co_return OkStatus();
    }

    case PlcOp::kMoveArm: {
      if (instruction.layer < 0 || instruction.layer >= kLayersPerRoller) {
        co_return InvalidArgumentError("bad layer");
      }
      sim::Duration t =
          timing_.ArmTravelTime(arm.layer, instruction.layer, arm.carrying);
      ROS_CO_RETURN_IF_ERROR(co_await Actuate(t, recovery));
      arm.layer = instruction.layer;
      co_return OkStatus();
    }

    case PlcOp::kReturnArm: {
      // Fast straight ascent to the park position (layer 0, atop drives).
      sim::Duration t = timing_.arm_full_travel_return * arm.layer /
                        (kLayersPerRoller - 1);
      ROS_CO_RETURN_IF_ERROR(co_await Actuate(t, recovery));
      arm.layer = 0;
      co_return OkStatus();
    }

    case PlcOp::kFanOutTray: {
      if (roller.fanned_out.has_value()) {
        co_return FailedPreconditionError("another tray is fanned out");
      }
      if (roller.facing_slot != instruction.slot) {
        co_return FailedPreconditionError("slot not facing the arm");
      }
      ROS_CO_RETURN_IF_ERROR(co_await Actuate(timing_.tray_fan_out, recovery));
      roller.fanned_out = instruction.slot;
      co_return OkStatus();
    }

    case PlcOp::kFanInTray: {
      if (!roller.fanned_out.has_value()) {
        co_return FailedPreconditionError("no tray fanned out");
      }
      ROS_CO_RETURN_IF_ERROR(co_await Actuate(timing_.tray_fan_in, recovery));
      roller.fanned_out.reset();
      co_return OkStatus();
    }

    case PlcOp::kGrabArray: {
      if (arm.carrying) {
        co_return FailedPreconditionError("arm already carrying an array");
      }
      if (!roller.fanned_out.has_value()) {
        co_return FailedPreconditionError("no tray fanned out to grab from");
      }
      ROS_CO_RETURN_IF_ERROR(co_await Actuate(timing_.grab_array, recovery));
      arm.carrying = true;
      arm.discs_held = kDiscsPerTray;
      co_return OkStatus();
    }

    case PlcOp::kPlaceArray: {
      if (!arm.carrying) {
        co_return FailedPreconditionError("arm not carrying an array");
      }
      if (!roller.fanned_out.has_value()) {
        co_return FailedPreconditionError("no tray fanned out to place onto");
      }
      ROS_CO_RETURN_IF_ERROR(co_await Actuate(timing_.place_array, recovery));
      arm.carrying = false;
      arm.discs_held = 0;
      co_return OkStatus();
    }

    case PlcOp::kSeparateDisc: {
      if (!arm.carrying || arm.discs_held <= 0) {
        co_return FailedPreconditionError("no disc to separate");
      }
      ROS_CO_RETURN_IF_ERROR(co_await Actuate(timing_.separate_per_disc, recovery));
      if (--arm.discs_held == 0) {
        arm.carrying = false;
      }
      co_return OkStatus();
    }

    case PlcOp::kCollectDisc: {
      if (arm.discs_held >= kDiscsPerTray) {
        co_return FailedPreconditionError("carried array already full");
      }
      ROS_CO_RETURN_IF_ERROR(co_await Actuate(timing_.collect_per_disc, recovery));
      arm.carrying = true;
      ++arm.discs_held;
      co_return OkStatus();
    }

    case PlcOp::kOpenDriveTrays:
      co_return co_await Actuate(timing_.drive_trays_open, recovery);

    case PlcOp::kEjectDriveTrays:
      co_return co_await Actuate(timing_.drive_trays_eject, recovery);
  }
  co_return InternalError("unhandled PLC opcode");
}

}  // namespace ros::mech
