// Timing model for the ROS mechanical subsystem, calibrated to the paper's
// measurements (§3.2, §5.5, Table 3):
//
//   - roller rotation: < 2 s (scales with angular distance)
//   - robotic arm vertical travel, top <-> bottom: <= 5 s
//   - separating 12 discs into 12 drives: ~61 s
//   - collecting 12 discs from drives: ~74 s
//   - load disc array:   68.7 s (uppermost layer) / 73.2 s (lowest layer)
//   - unload disc array: 81.7 s (uppermost layer) / 86.5 s (lowest layer)
//
// Load sequence and budget (uppermost layer):
//   rotate(1 slot) 0.8 + arm descend 0.0 + tray fan-out 2.4 + grab 1.5
//   + tray fan-in 1.5 + drive trays open 1.5 + separate 61.0  = 68.7 s
// Unload sequence and budget (uppermost layer; the roller still faces the
// home slot after the preceding load, so no rotation is needed):
//   drive trays eject 1.5 + collect 74.0 + descend 0.0
//   + fan-out 2.4 + place 2.3 + fan-in 1.5                    = 81.7 s
// Placing is slower than grabbing (2.3 s vs 1.5 s): the array must seat
// into the tray spindle against the 0.05 mm positioning tolerance.
//
// The arm's *return* ascent (carrying the array up to the drives after a
// grab, or returning empty to its park position after a place) runs at high
// speed on a straight vertical run (<= 2.8 s full travel) and overlaps the
// tray fan-in plus drive-tray actuation (3.0 s), so it is never on the
// critical path. Descents are slower: they position against the 0.05 mm
// range sensors (empty 4.5 s, carrying 4.8 s full travel). This reproduces
// the paper's "the lowest layer takes about 5 more seconds".
#ifndef ROS_SRC_MECH_TIMING_H_
#define ROS_SRC_MECH_TIMING_H_

#include "src/mech/geometry.h"
#include "src/sim/time.h"

namespace ros::mech {

struct MechTimingModel {
  // Roller rotation: base actuation cost plus per-slot angular travel.
  // Worst case (3 slots = half turn) is exactly the paper's 2 s bound.
  sim::Duration rotate_base = sim::Millis(200);
  sim::Duration rotate_per_slot = sim::Millis(600);

  // Robotic arm vertical travel across all 84 inter-layer gaps.
  sim::Duration arm_full_travel_empty = sim::Millis(4500);
  sim::Duration arm_full_travel_carrying = sim::Millis(4800);
  // Fast straight-line return ascent (overlapped; see header note).
  sim::Duration arm_full_travel_return = sim::Millis(2800);

  // Tray fan-out (hook lock + roller partial rotation) and fan-in.
  sim::Duration tray_fan_out = sim::Millis(2400);
  sim::Duration tray_fan_in = sim::Millis(1500);

  // Grabbing a disc array off a fanned-out tray / placing one back.
  sim::Duration grab_array = sim::Millis(1500);
  sim::Duration place_array = sim::Millis(2300);

  // Opening (for loading) or ejecting (for unloading) all 12 drive trays,
  // performed simultaneously across the set.
  sim::Duration drive_trays_open = sim::Millis(1500);
  sim::Duration drive_trays_eject = sim::Millis(1500);

  // Separating the bottom disc of the carried array into a drive, one by
  // one (12 discs ~= 61 s), and collecting one disc from a drive
  // (12 discs ~= 74 s).
  sim::Duration separate_per_disc = sim::Micros(61.0 / 12.0 * 1e6);
  sim::Duration collect_per_disc = sim::Micros(74.0 / 12.0 * 1e6);

  // Sensor-feedback recalibration retry penalty (0.05 mm positioning).
  sim::Duration recalibration_delay = sim::Millis(200);

  sim::Duration RotateTime(int from_slot, int to_slot) const {
    int d = SlotDistance(from_slot, to_slot);
    if (d == 0) {
      return 0;
    }
    return rotate_base + d * rotate_per_slot;
  }

  sim::Duration ArmTravelTime(int from_layer, int to_layer,
                              bool carrying) const {
    int d = from_layer - to_layer;
    if (d < 0) {
      d = -d;
    }
    if (d == 0) {
      return 0;
    }
    const sim::Duration full =
        carrying ? arm_full_travel_carrying : arm_full_travel_empty;
    return full * d / (kLayersPerRoller - 1);
  }

  sim::Duration SeparateArrayTime() const {
    return separate_per_disc * kDiscsPerTray;
  }
  sim::Duration CollectArrayTime() const {
    return collect_per_disc * kDiscsPerTray;
  }
};

}  // namespace ros::mech

#endif  // ROS_SRC_MECH_TIMING_H_
