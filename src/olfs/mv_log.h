// MV write-ahead log: record framing + a group-committing writer.
//
// The log-structured MV backend (DESIGN.md §5i) serializes every namespace
// mutation as a framed record — [type, flags, key_len, val_len, crc32,
// key, value] — and appends it to the current WAL file on the metadata
// volume. Records are self-checking: the CRC covers the header fields and
// payload, so a torn tail (a crash mid-append leaves allocated-but-
// unwritten bytes that read back as zeros or stale garbage) is detected at
// the first record whose frame or checksum fails, and replay cleanly
// discards everything from that point on.
//
// MvLog batches concurrent appenders: records enqueue into the active
// batch; a single flusher coroutine wakes after the commit window (or
// immediately for a sealed batch) and lands the whole batch as ONE
// disk::Volume::AppendBatch. Every appender co_awaits its batch's
// durability barrier, so a resolved Append() means the record's bytes were
// issued to the device. WAL files are sequence-numbered ("/mvwal.NNNNNNNNN");
// the store rotates the sequence when it freezes a memtable so each WAL
// file covers exactly one memtable generation.
#ifndef ROS_SRC_OLFS_MV_LOG_H_
#define ROS_SRC_OLFS_MV_LOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/disk/volume.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::olfs {

namespace mvlog {

// What a record does to the keyspace. kPut/kRemove act on index keys,
// kPutState on running-state keys; the key itself carries the domain
// prefix (see MetadataVolume), so replay does not branch on type beyond
// put-vs-tombstone.
enum class RecordType : std::uint8_t {
  kPut = 1,
  kRemove = 2,
  kPutState = 3,
};

struct Record {
  RecordType type = RecordType::kPut;
  std::string key;
  std::string value;  // empty for kRemove

  friend bool operator==(const Record&, const Record&) = default;
};

// Frame: type(1) flags(1) key_len(4 LE) val_len(4 LE) crc(4 LE) key value.
inline constexpr std::size_t kRecordHeaderBytes = 14;
// Hostile-length guards: a corrupt frame must fail cleanly, never drive a
// multi-GB allocation. Values are whole JSON index documents; 16 MiB is
// orders of magnitude above anything the MV writes.
inline constexpr std::size_t kMaxKeyBytes = 64 * 1024;
inline constexpr std::size_t kMaxValueBytes = 16 * 1024 * 1024;

std::size_t EncodedSize(const Record& record);

// Appends the framed record to `out`.
void AppendRecord(const Record& record, std::vector<std::uint8_t>* out);

// Decodes the record starting at `*offset`; on success advances `*offset`
// past it. Any framing violation — short header, hostile lengths, bytes
// running past the buffer, CRC mismatch, unknown type — is a clean
// kInvalidArgument/kDataLoss, never UB.
StatusOr<Record> DecodeRecord(std::span<const std::uint8_t> data,
                              std::size_t* offset);

struct ScanStats {
  std::uint64_t records = 0;
  std::uint64_t valid_bytes = 0;  // clean prefix; the rest is torn tail
  bool torn = false;
};

// Walks records from the front, calling `fn` for each cleanly decoded one,
// and stops at the first torn/corrupt frame. Lenient by design: this is
// the crash-replay entry point, where a damaged tail is expected, not an
// error.
ScanStats ScanRecords(std::span<const std::uint8_t> data,
                      const std::function<void(Record)>& fn);

}  // namespace mvlog

// The group-committing WAL writer. Single-threaded simulated time: all
// bookkeeping between co_awaits is atomic with respect to other tasks.
class MvLog {
 public:
  struct Options {
    // How long the flusher lets a batch accumulate before landing it. In
    // discrete-event time every appender runnable at the same instant
    // joins the batch even at a zero window; the window additionally
    // coalesces writers spread across a short real-time burst. Kept small
    // so sequential callers barely notice it.
    sim::Duration commit_window = sim::Micros(100);
  };

  struct Stats {
    std::uint64_t records_appended = 0;
    std::uint64_t batches_committed = 0;
    std::uint64_t bytes_committed = 0;
    std::uint64_t commit_failures = 0;  // batches whose volume write failed
    std::uint64_t max_batch_records = 0;
  };

  MvLog(sim::Simulator& sim, disk::Volume* volume, Options options)
      : sim_(sim), volume_(volume), options_(options) {
    ROS_CHECK(volume != nullptr);
  }
  // A suspended flusher frame can outlive the writer (the store is
  // destroyed and re-attached while the simulator keeps running); it
  // checks the alive flag after every suspension before touching members.
  ~MvLog() { *alive_ = false; }
  MvLog(const MvLog&) = delete;
  MvLog& operator=(const MvLog&) = delete;

  // Enqueues the record into the current sequence's batch and awaits its
  // group commit: resolves only once the batch's bytes have been appended
  // to the WAL file (or the append failed — the batch's status fans out to
  // every member).
  sim::Task<Status> Append(mvlog::Record record);

  // Waits until every batch enqueued before this call has committed.
  // Returns the status of the last such batch (earlier failures surfaced
  // to their own appenders).
  sim::Task<Status> Sync();

  // The WAL file new appends target. Advancing the sequence seals the
  // active batch (its records still land in the old file — they belong to
  // the frozen memtable) and directs subsequent appends to the next file.
  std::uint64_t current_seq() const { return seq_; }
  std::uint64_t min_seq() const { return min_seq_; }
  void AdvanceSeq();

  // Marks WAL files below `seq` obsolete (their records are covered by a
  // durable segment) and deletes them from the volume.
  sim::Task<Status> DeleteBelow(std::uint64_t seq);

  // Resets the log to append at `seq`, with `min_seq` the lowest WAL file
  // assumed present on the volume (WipeAll passes (1, 1); recovery passes
  // the newest and oldest surviving file sequences). Pending un-flushed
  // batches are failed with kUnavailable.
  void Reset(std::uint64_t seq, std::uint64_t min_seq);

  static std::string FileName(std::uint64_t seq);
  // Parses "NNNNNNNNN" from a WAL file name; nullopt if malformed.
  static std::optional<std::uint64_t> SeqOfFileName(const std::string& name);
  static constexpr std::string_view kFilePrefix = "/mvwal.";

  const Stats& stats() const { return stats_; }

 private:
  struct Batch {
    Batch(sim::Simulator& sim, std::uint64_t wal_seq)
        : seq(wal_seq), done(sim) {}
    std::uint64_t seq;
    std::vector<std::vector<std::uint8_t>> pieces;
    std::uint64_t records = 0;
    sim::Event done;
    Status result;
  };
  using BatchPtr = std::shared_ptr<Batch>;

  // The single background flusher. Checks `alive` after every co_await:
  // if the writer died while it was suspended, it resolves its in-flight
  // batch (the Batch is shared) and exits without touching members.
  sim::Task<void> FlushLoop(std::shared_ptr<const bool> alive);

  sim::Simulator& sim_;
  disk::Volume* volume_;
  Options options_;
  Stats stats_;
  std::uint64_t seq_ = 1;
  std::uint64_t min_seq_ = 1;  // lowest WAL file not yet deleted
  BatchPtr active_;                  // being filled
  std::deque<BatchPtr> sealed_;      // full generations awaiting flush
  BatchPtr inflight_;                // currently being written
  bool flusher_running_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_MV_LOG_H_
