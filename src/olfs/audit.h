// Merkle-style audit manifests (DESIGN.md §5j).
//
// Long-term preservation needs integrity *proof*, not just repair: an
// auditor must be able to certify "the archive still holds what was
// acked" without reading petabytes back at optical speed. Every burned
// disc array therefore gets a manifest, built inline with the burn while
// the members' serialized streams are still in controller memory (zero
// extra optical I/O): each member stream is cut into fixed-size leaves,
// every leaf hashed, the leaf hashes folded pairwise into a per-member
// Merkle root, and the member roots folded into one array root. The
// manifest is persisted in the MV's state domain and replaced when a
// refresh burn retires the array, so verification reads only the manifest
// plus a sampled subset of leaves off the media — and any deliberate or
// latent corruption of a sampled leaf is provably detected, because the
// stored chain from leaf hash to array root must recompute exactly.
//
// The binary manifest format is a durable-state parser like the index
// file, the UDF image and the MV log, and is hardened the same way:
// arbitrary input parses to a fully verified manifest or fails cleanly
// with kInvalidArgument (structure) / kDataLoss (checksum or root
// mismatch). See fuzz/harness.cc (FuzzAuditManifest).
#ifndef ROS_SRC_OLFS_AUDIT_H_
#define ROS_SRC_OLFS_AUDIT_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/mech/geometry.h"
#include "src/olfs/disc_image_store.h"
#include "src/olfs/metadata_volume.h"
#include "src/olfs/params.h"
#include "src/olfs/parity.h"
#include "src/sim/task.h"

namespace ros::olfs {

// One burned member's hash tree.
struct AuditMember {
  std::string image_id;
  std::uint64_t stream_bytes = 0;          // burned payload length
  std::vector<std::uint64_t> leaves;       // FNV-1a 64 per leaf chunk
  std::uint64_t root = 0;                  // Merkle fold of `leaves`
};

struct AuditManifest {
  std::int64_t tray_index = 0;
  std::uint64_t leaf_bytes = 0;
  std::vector<AuditMember> members;
  std::uint64_t array_root = 0;            // Merkle fold of member roots
};

// --- hash-tree math (shared by builder, verifier and fuzz harness) ---

std::uint64_t AuditHashLeaf(std::span<const std::uint8_t> chunk);
std::vector<std::uint64_t> AuditLeafHashes(
    std::span<const std::uint8_t> stream, std::uint64_t leaf_bytes);
// Binary Merkle fold; an odd trailing node is promoted unchanged. The
// root of zero leaves is a fixed sentinel, so empty members still chain.
std::uint64_t AuditMerkleRoot(const std::vector<std::uint64_t>& leaves);
std::uint64_t AuditArrayRoot(const AuditManifest& manifest);

// --- binary codec ---
// Layout: magic "ROSAUDT1" | version u32 | tray i64 | leaf_bytes u64 |
// member_count u32 | per member (id_len u32, id, stream_bytes u64,
// leaf_count u32, leaves u64[n], root u64) | array_root u64 | crc32 u32.
// All integers little-endian.

std::vector<std::uint8_t> SerializeAuditManifest(
    const AuditManifest& manifest);
// Strict parse: bounds-checked, CRC-verified (mismatch = kDataLoss),
// stored member roots and array root recomputed from the leaves and
// required to match (mismatch = kDataLoss); any structural problem is
// kInvalidArgument. Never trusts a length field beyond the input size.
StatusOr<AuditManifest> ParseAuditManifest(
    std::span<const std::uint8_t> bytes);

// Owns manifest build + persistence. Physical (sampled-read) verification
// lives in ScrubManager, which can fetch discs; this class only touches
// controller memory and the MV.
class AuditRegistry {
 public:
  AuditRegistry(const OlfsParams& params, MetadataVolume* mv,
                DiscImageStore* images, ParityBuilder* parity)
      : params_(params), mv_(mv), images_(images), parity_(parity) {}

  // Builds and persists the manifest for a just-burned array. Member
  // streams are recovered from controller memory (cached data images are
  // re-serialized, parity bytes come from the builder's cache) — the same
  // bytes the burn just wrote, at zero optical cost. Called by
  // BurnManager::FinishJob; failures there are advisory (logged, never
  // failing the burn).
  sim::Task<Status> OnArrayBurned(mech::TrayAddress tray,
                                  std::vector<std::string> member_ids);

  // Drops the manifest covering `tray` (a refresh burn retired it).
  sim::Task<Status> RetireTray(mech::TrayAddress tray);

  // Loads every persisted manifest, in tray order, via the directory.
  sim::Task<StatusOr<std::vector<AuditManifest>>> LoadManifests();

  std::uint64_t roots_built() const { return roots_built_; }
  std::uint64_t manifests_live() const { return manifests_live_; }

 private:
  static std::string ManifestKey(int tray_index);
  // Rewrites the directory state entry from `roots_`.
  sim::Task<Status> PersistDirectory();

  OlfsParams params_;
  MetadataVolume* mv_;
  DiscImageStore* images_;
  ParityBuilder* parity_;
  // tray index -> array root (the auditor's root set, mirrored in MV).
  std::map<int, std::uint64_t> roots_;
  std::uint64_t roots_built_ = 0;
  std::uint64_t manifests_live_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_AUDIT_H_
