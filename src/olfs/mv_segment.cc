#include "src/olfs/mv_segment.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/hash.h"

namespace ros::olfs::mvseg {

namespace {

constexpr std::uint8_t kMagic[4] = {'M', 'V', 'S', 'G'};
constexpr std::uint8_t kFooterMagic[4] = {'G', 'S', 'V', 'M'};

void PutU32(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void PutU64(std::uint64_t v, std::uint8_t* out) {
  PutU32(static_cast<std::uint32_t>(v), out);
  PutU32(static_cast<std::uint32_t>(v >> 32), out + 4);
}

std::uint32_t GetU32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t GetU64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(GetU32(in)) |
         static_cast<std::uint64_t>(GetU32(in + 4)) << 32;
}

std::string PadDecimal(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.append(digits.size() < 9 ? 9 - digits.size() : 0, '0');
  out += digits;
  return out;
}

}  // namespace

std::string SegmentFileName(std::uint64_t rank, std::uint64_t id) {
  return std::string(kFilePrefix) + PadDecimal(rank) + "." + PadDecimal(id);
}

std::optional<SegmentHeader> ParseSegmentFileName(const std::string& name) {
  if (name.size() <= kFilePrefix.size() ||
      name.compare(0, kFilePrefix.size(), kFilePrefix) != 0) {
    return std::nullopt;
  }
  const std::string rest = name.substr(kFilePrefix.size());
  const std::size_t dot = rest.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= rest.size()) {
    return std::nullopt;
  }
  SegmentHeader header;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (i == dot) {
      continue;
    }
    if (rest[i] < '0' || rest[i] > '9') {
      return std::nullopt;
    }
    std::uint64_t& field = i < dot ? header.rank : header.id;
    field = field * 10 + static_cast<std::uint64_t>(rest[i] - '0');
  }
  return header;
}

SegmentBuilder::SegmentBuilder(std::uint64_t rank, std::uint64_t id) {
  bytes_.resize(kHeaderBytes, 0);
  std::memcpy(bytes_.data(), kMagic, 4);
  PutU32(kFormatVersion, bytes_.data() + 4);
  PutU64(rank, bytes_.data() + 8);
  PutU64(id, bytes_.data() + 16);
  // count at offset 24 is backpatched by Finish().
}

void SegmentBuilder::Add(const mvlog::Record& record) {
  ROS_CHECK(count_ == 0 || record.key > last_key_);
  last_key_ = record.key;
  const std::uint64_t offset = bytes_.size();
  mvlog::AppendRecord(record, &bytes_);
  refs_.emplace_back(offset,
                     static_cast<std::uint32_t>(bytes_.size() - offset));
  ++count_;
}

std::vector<std::uint8_t> SegmentBuilder::Finish() && {
  PutU64(count_, bytes_.data() + 24);
  const std::uint64_t records_bytes = bytes_.size() - kHeaderBytes;
  std::uint8_t footer[kFooterBytes] = {};
  std::memcpy(footer, kFooterMagic, 4);
  PutU64(records_bytes, footer + 4);
  // The footer CRC seals the header + record-region length; record bodies
  // carry their own CRCs.
  const std::uint32_t crc =
      Crc32({footer, 12}, Crc32({bytes_.data(), kHeaderBytes}));
  PutU32(crc, footer + 12);
  bytes_.insert(bytes_.end(), footer, footer + kFooterBytes);
  return std::move(bytes_);
}

Status ParseSegment(
    std::span<const std::uint8_t> data, SegmentHeader* header,
    const std::function<void(mvlog::Record, std::uint64_t, std::uint32_t)>&
        fn) {
  if (data.size() < kHeaderBytes + kFooterBytes) {
    return InvalidArgumentError("mvseg: short segment");
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    return InvalidArgumentError("mvseg: bad magic");
  }
  if (GetU32(data.data() + 4) != kFormatVersion) {
    return InvalidArgumentError("mvseg: unsupported version");
  }
  SegmentHeader parsed;
  parsed.rank = GetU64(data.data() + 8);
  parsed.id = GetU64(data.data() + 16);
  parsed.count = GetU64(data.data() + 24);
  const std::uint8_t* footer = data.data() + data.size() - kFooterBytes;
  if (std::memcmp(footer, kFooterMagic, 4) != 0) {
    return DataLossError("mvseg: bad or missing footer (torn segment)");
  }
  const std::uint64_t records_bytes =
      data.size() - kHeaderBytes - kFooterBytes;
  if (GetU64(footer + 4) != records_bytes) {
    return DataLossError("mvseg: footer length mismatch");
  }
  const std::uint32_t want = GetU32(footer + 12);
  if (Crc32({footer, 12}, Crc32({data.data(), kHeaderBytes})) != want) {
    return DataLossError("mvseg: footer checksum mismatch");
  }
  std::size_t offset = kHeaderBytes;
  const std::size_t records_end = kHeaderBytes + records_bytes;
  std::string last_key;
  for (std::uint64_t i = 0; i < parsed.count; ++i) {
    const std::size_t at = offset;
    auto record =
        mvlog::DecodeRecord(data.first(records_end), &offset);
    if (!record.ok()) {
      return DataLossError("mvseg: corrupt record " + std::to_string(i) +
                           ": " + std::string(record.status().message()));
    }
    if (i > 0 && record->key <= last_key) {
      return DataLossError("mvseg: keys out of order");
    }
    last_key = record->key;
    fn(std::move(*record), at, static_cast<std::uint32_t>(offset - at));
  }
  if (offset != records_end) {
    return DataLossError("mvseg: trailing bytes after last record");
  }
  if (header != nullptr) {
    *header = parsed;
  }
  return OkStatus();
}

void MergeSortedRuns(std::vector<std::vector<mvlog::Record>> runs,
                     bool drop_tombstones,
                     const std::function<void(mvlog::Record)>& fn) {
  std::vector<std::size_t> cursors(runs.size(), 0);
  while (true) {
    // Smallest current key; among equals the NEWEST run (highest index)
    // wins and the older duplicates are skipped.
    const std::string* min_key = nullptr;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (cursors[r] >= runs[r].size()) {
        continue;
      }
      const std::string& key = runs[r][cursors[r]].key;
      if (min_key == nullptr || key < *min_key) {
        min_key = &key;
      }
    }
    if (min_key == nullptr) {
      return;
    }
    const std::string key = *min_key;  // runs mutate below; copy the key
    std::optional<mvlog::Record> winner;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (cursors[r] < runs[r].size() && runs[r][cursors[r]].key == key) {
        winner = std::move(runs[r][cursors[r]]);
        ++cursors[r];
      }
    }
    ROS_CHECK(winner.has_value());
    if (drop_tombstones && winner->type == mvlog::RecordType::kRemove) {
      continue;
    }
    fn(std::move(*winner));
  }
}

}  // namespace ros::olfs::mvseg
