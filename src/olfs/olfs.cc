#include "src/olfs/olfs.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/udf/serializer.h"

namespace ros::olfs {

namespace {

// Splits an internal image path "P[#vN][#prevK]" into its components.
struct ParsedInternalPath {
  std::string global_path;
  int version = 1;
  bool is_prev_link = false;
  int part = 0;
};

ParsedInternalPath ParseInternalPath(const std::string& internal) {
  ParsedInternalPath out;
  out.global_path = internal;
  std::size_t pos;
  if ((pos = out.global_path.rfind("#prev")) != std::string::npos) {
    out.is_prev_link = true;
    out.part = std::atoi(out.global_path.c_str() + pos + 5);
    out.global_path.resize(pos);
  }
  if ((pos = out.global_path.rfind("#v")) != std::string::npos) {
    out.version = std::atoi(out.global_path.c_str() + pos + 2);
    out.global_path.resize(pos);
  }
  return out;
}

}  // namespace

Olfs::Olfs(sim::Simulator& sim, RosSystem* system, OlfsParams params)
    : sim_(sim), system_(system), params_(params) {
  ROS_CHECK(system != nullptr);
  MetadataVolume::Options mv_options;
  mv_options.log_structured = params_.log_structured_mv_enabled;
  mv_options.commit_window = params_.mv_commit_window;
  mv_ = std::make_unique<MetadataVolume>(sim_, system->mv_volume(),
                                         mv_options);
  images_ = std::make_unique<DiscImageStore>();
  affinity_ = std::make_unique<AffinityTracker>();
  predictor_ = std::make_unique<TrayPredictor>();
  buckets_ = std::make_unique<BucketManager>(sim_, params_,
                                             system->data_volumes(),
                                             images_.get());
  buckets_->set_affinity_tracker(affinity_.get());
  parity_ = std::make_unique<ParityBuilder>(sim_, params_, images_.get());
  da_ = std::make_unique<DaIndex>(system->config().rollers);
  cache_ = std::make_unique<ReadCache>(params_.read_cache_bytes,
                                       params_.read_cache_protected_fraction);
  file_cache_ = std::make_unique<FileCache>(params_.file_cache_bytes);
  mech_ = std::make_unique<MechController>(sim_, system->library(),
                                           system->drive_sets(),
                                           &system->discs(), params_);
  if (params_.fetch_scheduler_enabled) {
    scheduler_ =
        std::make_unique<FetchScheduler>(sim_, params_, mech_.get());
    // Burns and recovery scans pick unload victims through AcquireBay;
    // the oracle keeps them away from arrays that readers are queued for.
    mech_->SetDemandOracle([scheduler = scheduler_.get()](
                               mech::TrayAddress tray) {
      return scheduler->HasDemand(tray);
    });
  }
  burns_ = std::make_unique<BurnManager>(sim_, params_, buckets_.get(),
                                         images_.get(), parity_.get(),
                                         mech_.get(), da_.get(), cache_.get(),
                                         mv_.get());
  burns_->set_affinity_tracker(affinity_.get());
  fetcher_ = std::make_unique<FetchManager>(sim_, params_, images_.get(),
                                            mech_.get(), burns_.get(),
                                            scheduler_.get());
  buckets_->on_image_closed = [this](const std::string& id) {
    burns_->NotifyImageClosed(id);
  };
  audit_ = std::make_unique<AuditRegistry>(params_, mv_.get(), images_.get(),
                                           parity_.get());
  if (params_.audit_manifests_enabled) {
    burns_->set_audit(audit_.get());
  }
  scrub_ = std::make_unique<ScrubManager>(sim_, this);
  // Media aging hooks on every optical drive. The params object lives in
  // this facade, so the pointer stays valid for the system's lifetime;
  // with aging disabled (the default) the hook is byte-identical to none.
  system->InstallAgingModel(&params_.media_aging);
}

sim::Task<void> Olfs::ChargeOp(const char* name, bool first) {
  if (first) {
    op_trace_.clear();
  }
  sim::Duration cost = params_.internal_op_cost;
  if (!first) {
    cost += params_.mode_switch_cost;
  }
  op_trace_.emplace_back(name);
  co_await sim_.Delay(cost);
}

sim::Task<sim::Mutex::ScopedLock> Olfs::LockPath(std::string path) {
  auto it = path_locks_.find(path);
  if (it == path_locks_.end()) {
    it = path_locks_
             .emplace(path, std::make_unique<sim::Mutex>(sim_))
             .first;
  }
  co_return co_await it->second->Lock();
}

sim::Task<Status> Olfs::EnsureAncestors(std::string path) {
  ROS_CO_ASSIGN_OR_RETURN(std::vector<std::string> parts,
                          udf::SplitPath(path));
  std::string prefix;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    prefix += "/" + parts[i];
    if (!mv_->Exists(prefix)) {
      ROS_CO_RETURN_IF_ERROR(
          co_await mv_->Put(IndexFile(prefix, EntryType::kDirectory)));
    }
  }
  co_return OkStatus();
}

// ---------------------------------------------------------------------------
// Writes

sim::Task<Status> Olfs::Create(std::string path,
                               std::vector<std::uint8_t> data,
                               std::uint64_t logical_size, AccessHint hint) {
  co_await ChargeOp("stat", /*first=*/true);
  sim::Mutex::ScopedLock lock = co_await LockPath(path);
  if (mv_->Exists(path)) {
    auto existing = co_await mv_->GetRef(path);
    if (existing.ok() && (*existing)->Latest().ok()) {
      co_return AlreadyExistsError(path + " exists");
    }
  }
  co_await ChargeOp("mknod");
  ROS_CO_RETURN_IF_ERROR(co_await EnsureAncestors(path));
  // Re-creating a tombstoned file must keep its index (and version
  // history); only a genuinely new path gets a fresh index file.
  if (!mv_->Exists(path)) {
    ROS_CO_RETURN_IF_ERROR(
        co_await mv_->Put(IndexFile(path, EntryType::kFile)));
  }
  co_await ChargeOp("stat");
  co_await ChargeOp("write");
  ROS_CO_RETURN_IF_ERROR(
      co_await WriteVersion(path, std::move(data), logical_size,
                            /*create=*/true, hint));
  co_await ChargeOp("close");
  co_return OkStatus();
}

sim::Task<Status> Olfs::Create(std::string path,
                               std::vector<std::uint8_t> data) {
  const std::uint64_t n = data.size();
  co_return co_await Create(path, std::move(data), n);
}

sim::Task<Status> Olfs::Update(std::string path,
                               std::vector<std::uint8_t> data,
                               std::uint64_t logical_size) {
  co_await ChargeOp("stat", /*first=*/true);
  sim::Mutex::ScopedLock lock = co_await LockPath(path);
  if (!mv_->Exists(path)) {
    co_return NotFoundError(path + " does not exist");
  }
  co_await ChargeOp("write");
  ROS_CO_RETURN_IF_ERROR(
      co_await WriteVersion(path, std::move(data), logical_size,
                            /*create=*/false));
  co_await ChargeOp("close");
  co_return OkStatus();
}

sim::Task<Status> Olfs::WriteVersion(std::string path,
                                     std::vector<std::uint8_t> data,
                                     std::uint64_t logical_size,
                                     bool create, AccessHint hint) {
  ROS_CO_ASSIGN_OR_RETURN(IndexFile index, co_await mv_->Get(path));
  if (index.type() != EntryType::kFile) {
    co_return InvalidArgumentError(path + " is a directory");
  }
  const int version = index.latest_version() + 1;
  ROS_CHECK(create ? version >= 1 : version >= 2);

  // Forepart capture (§4.8) before the payload moves into the bucket.
  std::vector<std::uint8_t> forepart;
  if (params_.forepart_enabled) {
    const std::uint64_t n =
        std::min<std::uint64_t>(params_.forepart_bytes, data.size());
    forepart.assign(data.begin(), data.begin() + static_cast<long>(n));
  }

  ROS_CO_ASSIGN_OR_RETURN(
      WriteReceipt receipt,
      co_await buckets_->WriteFile(path, version, std::move(data),
                                   logical_size, /*first_part=*/0,
                                   /*prev_image=*/"", hint.stream));
  VersionEntry entry;
  entry.location = LocationKind::kBucket;
  entry.total_size = receipt.total_size;
  entry.parts = receipt.parts;
  index.AddVersion(std::move(entry), params_.max_version_entries);
  if (params_.forepart_enabled) {
    index.set_forepart(std::move(forepart));
  }
  ++namespace_writes_;
  last_write_time_ = sim_.now();
  co_return co_await mv_->Put(index);
}

sim::Task<Status> Olfs::Append(std::string path,
                               std::vector<std::uint8_t> data) {
  co_await ChargeOp("stat", /*first=*/true);
  sim::Mutex::ScopedLock lock = co_await LockPath(path);
  if (!mv_->Exists(path)) {
    co_return NotFoundError(path + " does not exist");
  }
  ROS_CO_ASSIGN_OR_RETURN(IndexFile index, co_await mv_->Get(path));
  auto latest = index.Latest();
  if (!latest.ok()) {
    co_return latest.status();
  }
  const VersionEntry& entry = **latest;

  co_await ChargeOp("write");
  // In-place append only when the whole version sits in one open bucket.
  if (entry.parts.size() == 1) {
    auto record = images_->Lookup(entry.parts[0].image_id);
    if (record.ok() && (*record)->tier == ImageTier::kOpenBucket) {
      Status appended = co_await buckets_->AppendToOpenFile(
          path, entry.version, entry.parts[0].image_id, data, data.size());
      if (appended.ok()) {
        VersionEntry updated = entry;
        updated.total_size += data.size();
        updated.parts[0].size += data.size();
        ROS_CO_RETURN_IF_ERROR(index.UpdateLatest(updated));
        ROS_CO_RETURN_IF_ERROR(co_await mv_->Put(index));
        co_await ChargeOp("close");
        co_return OkStatus();
      }
    }
  }
  // Regenerating update: old content + appended bytes as a new version.
  ROS_CO_ASSIGN_OR_RETURN(
      std::vector<std::uint8_t> old_data,
      co_await ReadEntry(path, entry, 0, entry.total_size));
  old_data.insert(old_data.end(), data.begin(), data.end());
  const std::uint64_t total = old_data.size();
  ROS_CO_RETURN_IF_ERROR(
      co_await WriteVersion(path, std::move(old_data), total,
                            /*create=*/false));
  co_await ChargeOp("close");
  co_return OkStatus();
}

// ---------------------------------------------------------------------------
// Streaming handles

sim::Task<Status> Olfs::AppendStream(std::string path,
                                     std::vector<std::uint8_t> data,
                                     std::uint64_t logical_grow,
                                     AccessHint hint) {
  auto handle = stream_handles_.find(path);
  if (handle == stream_handles_.end()) {
    // Implicit open(): load the index once.
    co_await ChargeOp("open", /*first=*/true);
    ROS_CO_ASSIGN_OR_RETURN(IndexFile index, co_await mv_->Get(path));
    handle = stream_handles_.emplace(path, std::move(index)).first;
  }
  op_trace_.assign({"write"});
  co_await sim_.Delay(params_.stream_op_cost);
  // Re-acquire after the suspension: a concurrent CloseStream may have
  // erased the handle while this coroutine was parked.
  handle = stream_handles_.find(path);
  if (handle == stream_handles_.end()) {
    co_return FailedPreconditionError("stream closed during append: " +
                                      path);
  }
  IndexFile& index = handle->second;
  auto latest = index.Latest();
  if (!latest.ok()) {
    co_return latest.status();
  }
  VersionEntry entry = **latest;
  if (entry.parts.empty()) {
    // Freshly created empty file: write the first part.
    ROS_CO_ASSIGN_OR_RETURN(
        WriteReceipt receipt,
        co_await buckets_->WriteFile(path, entry.version, std::move(data),
                                     logical_grow, /*first_part=*/0,
                                     /*prev_image=*/"", hint.stream));
    entry.parts = receipt.parts;
    entry.total_size = receipt.total_size;
    co_return index.UpdateLatest(entry);
  }

  const std::string last_image = entry.parts.back().image_id;
  Status appended = co_await buckets_->AppendToOpenFile(
      path, entry.version, last_image, data, logical_grow, hint.stream);
  if (appended.ok()) {
    entry.parts.back().size += logical_grow;
    entry.total_size += logical_grow;
    co_return index.UpdateLatest(entry);
  }
  if (appended.code() != StatusCode::kFailedPrecondition &&
      appended.code() != StatusCode::kResourceExhausted) {
    co_return appended;
  }
  // The part's bucket closed or filled: continue in fresh buckets as a
  // split-file continuation (§4.5).
  ROS_CO_ASSIGN_OR_RETURN(
      WriteReceipt receipt,
      co_await buckets_->WriteFile(path, entry.version, std::move(data),
                                   logical_grow,
                                   static_cast<int>(entry.parts.size()),
                                   last_image, hint.stream));
  for (const FilePart& part : receipt.parts) {
    entry.parts.push_back(part);
  }
  entry.total_size += logical_grow;
  co_return index.UpdateLatest(entry);
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> Olfs::ReadStream(
    std::string path, std::uint64_t offset, std::uint64_t length,
    AccessHint hint) {
  auto handle = stream_handles_.find(path);
  if (handle == stream_handles_.end()) {
    co_await ChargeOp("open", /*first=*/true);
    auto index = co_await mv_->Get(path);
    if (!index.ok()) {
      co_return index.status();
    }
    handle = stream_handles_.emplace(path, std::move(*index)).first;
  }
  op_trace_.assign({"read"});
  // Per-request software cost plus OLFS's extra user-space copy of the
  // returned data (the read-side marginal in Fig 6).
  co_await sim_.Delay(params_.stream_op_cost +
                      sim::TransferTime(length, 2.5e9));
  // Re-acquire after the suspension: a concurrent CloseStream may have
  // erased the handle while this coroutine was parked.
  handle = stream_handles_.find(path);
  if (handle == stream_handles_.end()) {
    co_return FailedPreconditionError("stream closed during read: " + path);
  }
  auto latest = handle->second.Latest();
  if (!latest.ok()) {
    co_return latest.status();
  }
  co_return co_await ReadEntry(path, **latest, offset, length, hint);
}

sim::Task<Status> Olfs::CloseStream(std::string path) {
  auto handle = stream_handles_.find(path);
  if (handle == stream_handles_.end()) {
    co_return OkStatus();
  }
  co_await ChargeOp("close", /*first=*/true);
  // Re-acquire after the suspension, then detach the index from the map
  // BEFORE the MV write suspends: nothing may hold a handle iterator (or
  // a reference into the map) across mv_->Put.
  handle = stream_handles_.find(path);
  if (handle == stream_handles_.end()) {
    co_return OkStatus();  // closed concurrently
  }
  IndexFile index = std::move(handle->second);
  stream_handles_.erase(handle);
  co_return co_await mv_->Put(std::move(index));
}

// ---------------------------------------------------------------------------
// Reads

sim::Task<StatusOr<std::vector<std::uint8_t>>> Olfs::Read(
    std::string path, std::uint64_t offset, std::uint64_t length,
    AccessHint hint) {
  co_await ChargeOp("stat", /*first=*/true);
  auto index = co_await mv_->GetRef(path);
  if (!index.ok()) {
    co_return index.status();
  }
  auto latest = (*index)->Latest();
  if (!latest.ok()) {
    co_return latest.status();
  }
  co_await ChargeOp("read");
  auto result = co_await ReadEntry(path, **latest, offset, length, hint);
  co_await ChargeOp("close");
  co_return result;
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> Olfs::ReadVersion(
    std::string path, int version, std::uint64_t offset,
    std::uint64_t length) {
  co_await ChargeOp("stat", /*first=*/true);
  auto index = co_await mv_->GetRef(path);
  if (!index.ok()) {
    co_return index.status();
  }
  auto entry = (*index)->Version(version);
  if (!entry.ok()) {
    co_return entry.status();
  }
  co_await ChargeOp("read");
  auto result = co_await ReadEntry(path, **entry, offset, length);
  co_await ChargeOp("close");
  co_return result;
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> Olfs::ReadForepart(
    std::string path) {
  if (!params_.forepart_enabled) {
    co_return FailedPreconditionError("forepart mechanism disabled");
  }
  // Served straight from MV: one SSD index read, ~2 ms total (§4.8).
  co_await sim_.Delay(sim::Millis(1));
  auto index = co_await mv_->GetRef(path);
  if (!index.ok()) {
    co_return index.status();
  }
  co_return (*index)->forepart();
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> Olfs::ReadEntry(
    std::string path, VersionEntry entry, std::uint64_t offset,
    std::uint64_t length, AccessHint hint) {
  if (entry.tombstone) {
    co_return NotFoundError(path + " is deleted");
  }
  if (offset + length > entry.total_size) {
    co_return OutOfRangeError("read beyond end of " + path);
  }

  // Forepart fast path (§4.8): when the request fits inside the forepart
  // kept in MV and the payload would otherwise need a mechanical fetch,
  // answer from the index file instead of touching the roller.
  if (params_.forepart_enabled && offset + length <= params_.forepart_bytes) {
    bool needs_fetch = false;
    for (const FilePart& part : entry.parts) {
      auto record = images_->Lookup(part.image_id);
      needs_fetch |=
          record.ok() && (*record)->tier == ImageTier::kBurnedOnly;
    }
    if (needs_fetch) {
      auto index = co_await mv_->GetRef(path);
      if (index.ok() && (*index)->Latest().ok() &&
          (*(*index)->Latest())->version == entry.version &&
          offset + length <= (*index)->forepart().size()) {
        const auto& forepart = (*index)->forepart();
        co_return std::vector<std::uint8_t>(
            forepart.begin() + static_cast<long>(offset),
            forepart.begin() + static_cast<long>(offset + length));
      }
    }
  }
  const std::string internal = InternalPath(path, entry.version);

  std::vector<std::uint8_t> out;
  out.reserve(length);
  std::uint64_t part_start = 0;
  for (const FilePart& part : entry.parts) {
    const std::uint64_t part_end = part_start + part.size;
    const std::uint64_t from = std::max(offset, part_start);
    const std::uint64_t to = std::min(offset + length, part_end);
    if (from < to) {
      ROS_CO_ASSIGN_OR_RETURN(
          std::vector<std::uint8_t> piece,
          co_await ReadPart(internal, part, from - part_start, to - from,
                            hint));
      out.insert(out.end(), piece.begin(), piece.end());
    }
    part_start = part_end;
    if (part_start >= offset + length) {
      break;
    }
  }
  co_return out;
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> Olfs::ReadPart(
    std::string internal_path, FilePart part,
    std::uint64_t offset, std::uint64_t length, AccessHint hint) {
  ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record,
                          images_->Lookup(part.image_id));
  // Cross-layer hint channel: tagged reads feed the co-access map (read
  // affinity influences placement of images not yet burned) regardless of
  // the image's current tier. Untagged requests (stream == 0) are inert.
  if (hint.stream != 0) {
    affinity_->RecordRead(hint.stream, part.image_id);
  }
  switch (record->tier) {
    case ImageTier::kOpenBucket:
    case ImageTier::kBuffered:
    case ImageTier::kBurnedCached: {
      (void)cache_->Touch(part.image_id);
      co_return co_await buckets_->ReadBuffered(part.image_id, internal_path,
                                                offset, length);
    }
    case ImageTier::kBurnedOnly: {
      // Predictive tray prefetch: the stream's tray transition updates the
      // predictor; a confident successor is queued as a background
      // (speculative) load that demand traffic always preempts.
      if (hint.stream != 0 && record->disc.has_value()) {
        const int tray = record->disc->tray.ToIndex();
        const int predicted = predictor_->Observe(hint.stream, tray);
        if (scheduler_ != nullptr && params_.tray_prefetch_enabled &&
            predicted >= 0 && predicted != tray) {
          scheduler_->EnqueueSpeculative(mech::TrayAddress::FromIndex(predicted));
        }
      }
      // File-granular cache (future-work refinement of §4.1).
      if (file_cache_->enabled()) {
        const std::string key = FileCache::Key(part.image_id, internal_path);
        if (const auto* content = file_cache_->Get(key)) {
          if (offset + length <= content->size()) {
            co_await sim_.Delay(
                sim::Millis(0.5) + sim::TransferTime(length, 1.2e9));
            co_return std::vector<std::uint8_t>(
                content->begin() + static_cast<long>(offset),
                content->begin() + static_cast<long>(offset + length));
          }
        }
      }
      // Not in the read cache by definition of this tier; Touch records
      // the miss (hit/miss accounting lives inside ReadCache).
      (void)cache_->Touch(part.image_id);
      auto data = co_await ReadFromDisc(part.image_id, internal_path,
                                        offset, length);
      if (!data.ok() && (data.status().code() == StatusCode::kDataLoss ||
                         data.status().code() == StatusCode::kUnavailable)) {
        // Degraded read (§4.7): the disc is damaged or unreachable.
        // Reconstruct the whole image from surviving members + parity,
        // serve the requested bytes, and re-stage the image so it burns
        // onto fresh media — the read succeeds, the repair rides behind.
        ++degraded_reads_;
        ROS_LOG(kWarning) << "degraded read of " << internal_path << " ("
                          << part.image_id
                          << "): " << data.status().ToString();
        auto recovered = co_await ReconstructFromParity(part.image_id);
        if (recovered.ok()) {
          auto image = udf::Serializer::Parse(*recovered);
          if (image.ok()) {
            ++reconstructions_;
            auto repaired =
                std::make_shared<udf::Image>(std::move(*image));
            auto bytes = repaired->ReadFile(internal_path, offset, length);
            Status staged = co_await RepairImage(part.image_id, repaired);
            if (!staged.ok()) {
              ROS_LOG(kWarning) << "repair staging of " << part.image_id
                                << " failed: " << staged.ToString();
            }
            co_return bytes;
          }
        }
      }
      if (data.ok() && file_cache_->enabled()) {
        sim_.Spawn(PrefetchTask(part.image_id, internal_path));
      }
      // Whole-tray readahead: an announced scan stages the tray's sibling
      // images into the read cache while the tray is still loaded, so the
      // rest of the scan avoids re-fetching it after an eviction.
      if (data.ok() && hint.scan && hint.stream != 0 &&
          params_.readahead_max_images > 0 && record->disc.has_value()) {
        const int tray = record->disc->tray.ToIndex();
        if (readahead_trays_.insert(tray).second) {
          sim_.Spawn(TrayReadaheadTask(part.image_id, tray));
        }
      }
      co_return data;
    }
  }
  co_return InternalError("unhandled image tier");
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> Olfs::ReadFromDisc(
    std::string image_id, std::string internal_path,
    std::uint64_t offset, std::uint64_t length) {
  // Image-level single-flight: if another reader is mid-drive-read of this
  // image, wait for it and serve from the parsed view it produced instead
  // of charging a second optical read of the same sectors.
  while (true) {
    auto inflight = image_reads_.find(image_id);
    if (inflight == image_reads_.end()) {
      break;
    }
    std::shared_ptr<sim::Event> done = inflight->second;
    co_await done->Wait();
    auto mounted = disc_mounts_.find(image_id);
    if (mounted != disc_mounts_.end()) {
      ++shared_image_reads_;
      // Pin the parsed image before suspending: the mount entry can be
      // dropped (drive unloaded) while the buffer copy is in flight.
      std::shared_ptr<udf::Image> image = mounted->second;
      // Buffer copy out of controller memory, not an optical transfer.
      co_await sim_.Delay(sim::Millis(0.5) + sim::TransferTime(length, 1.2e9));
      co_return image->ReadFile(internal_path, offset, length);
    }
    // The leader failed; loop and contend for leadership ourselves.
  }
  auto done = std::make_shared<sim::Event>(sim_);
  image_reads_.emplace(image_id, done);
  auto result =
      co_await ReadFromDiscLeader(image_id, internal_path, offset, length);
  image_reads_.erase(image_id);
  done->Set();
  co_return result;
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> Olfs::ReadFromDiscLeader(
    std::string image_id, std::string internal_path,
    std::uint64_t offset, std::uint64_t length) {
  ROS_CO_ASSIGN_OR_RETURN(FetchLease lease,
                          co_await fetcher_->FetchDisc(image_id));
  drive::OpticalDrive* drive = lease.drive();

  // Mount the disc's UDF volume (wake + VFS mount as needed) and parse the
  // image metadata once per mount.
  Status mounted = co_await drive->MountVfs();
  if (!mounted.ok()) {
    lease.Release();
    co_return mounted;
  }
  auto cached = disc_mounts_.find(image_id);
  if (cached == disc_mounts_.end()) {
    auto session = drive->disc()->FindSession(image_id);
    if (!session.ok()) {
      lease.Release();
      co_return session.status();
    }
    // The physical read of the whole serialized stream validates media
    // integrity (CRC); corrupted sectors surface here as kDataLoss.
    auto stream = drive->disc()->ReadSession(image_id, 0,
                                             (*session)->data.size());
    if (!stream.ok()) {
      lease.Release();
      co_return stream.status();
    }
    auto image = udf::Serializer::Parse(*stream);
    if (!image.ok()) {
      lease.Release();
      co_return image.status();
    }
    cached = disc_mounts_
                 .emplace(image_id,
                          std::make_shared<udf::Image>(std::move(*image)))
                 .first;
  }
  // Pin the parsed image before the optical transfer suspends: the mount
  // entry can be dropped if the drive is recycled while this read waits.
  std::shared_ptr<udf::Image> parsed = cached->second;

  // Charge the optical transfer (seek + media read) for the file bytes.
  auto session = drive->disc()->FindSession(image_id);
  if (session.ok()) {
    const std::uint64_t logical = (*session)->logical_size;
    const std::uint64_t n = std::min(length, logical);
    if (n > 0) {
      auto timed = co_await drive->Read(image_id, 0, n);
      if (!timed.ok()) {
        lease.Release();
        co_return timed.status();
      }
    }
  }
  auto data = parsed->ReadFile(internal_path, offset, length);
  lease.Release();
  co_return data;
}

sim::Task<void> Olfs::PrefetchTask(std::string image_id,
                                   std::string internal_path) {
  auto lease = co_await fetcher_->FetchDisc(image_id);
  if (!lease.ok()) {
    co_return;
  }
  drive::OpticalDrive* drive = lease->drive();
  Status mounted = co_await drive->MountVfs();
  auto view = disc_mounts_.find(image_id);
  if (!mounted.ok() || view == disc_mounts_.end()) {
    lease->Release();
    co_return;
  }
  std::shared_ptr<udf::Image> image = view->second;

  // The requested file plus up to prefetch_siblings neighbours from the
  // same directory (spatial locality, §4.1).
  std::vector<std::string> targets{internal_path};
  if (params_.prefetch_siblings > 0) {
    const std::size_t slash = internal_path.rfind('/');
    const std::string parent =
        slash == 0 ? "/" : internal_path.substr(0, slash);
    const std::string leaf = internal_path.substr(slash + 1);
    auto siblings = image->List(parent);
    if (siblings.ok()) {
      int taken = 0;
      for (const std::string& name : *siblings) {
        if (taken >= params_.prefetch_siblings || name == leaf) {
          continue;
        }
        const std::string candidate =
            parent == "/" ? "/" + name : parent + "/" + name;
        auto node = image->Lookup(candidate);
        if (node.ok() && (*node)->type == udf::NodeType::kFile) {
          targets.push_back(candidate);
          ++taken;
        }
      }
    }
  }

  for (const std::string& target : targets) {
    const std::string key = FileCache::Key(image_id, target);
    if (file_cache_->Contains(key)) {
      continue;
    }
    auto node = image->Lookup(target);
    if (!node.ok() || (*node)->type != udf::NodeType::kFile) {
      continue;
    }
    const std::uint64_t size = (*node)->logical_size;
    // Charge the optical transfer of the whole file.
    auto session = drive->disc()->FindSession(image_id);
    if (session.ok() && size > 0) {
      auto timed = co_await drive->Read(
          image_id, 0, std::min(size, (*session)->logical_size));
      if (!timed.ok()) {
        break;
      }
    }
    auto content = image->ReadFile(target, 0, size);
    if (content.ok()) {
      file_cache_->Put(key, std::move(*content));
    }
  }
  lease->Release();
}

sim::Task<void> Olfs::TrayReadaheadTask(std::string image_id,
                                        int tray_index) {
  auto record = images_->Lookup(image_id);
  if (!record.ok()) {
    readahead_trays_.erase(tray_index);
    co_return;
  }
  // Sibling data images burned in the same disc array that still live only
  // on their discs. Parity members carry no user files; skip them.
  std::vector<std::string> siblings;
  for (const std::string& member : (*record)->array_members) {
    if (member == image_id) {
      continue;
    }
    if (member.ends_with("-P") || member.ends_with("-Q")) {
      continue;
    }
    auto sibling = images_->Lookup(member);
    if (!sibling.ok() || (*sibling)->tier != ImageTier::kBurnedOnly ||
        (*sibling)->parity || !(*sibling)->disc.has_value() ||
        (*sibling)->disc->tray.ToIndex() != tray_index) {
      continue;
    }
    siblings.push_back(member);
    if (static_cast<int>(siblings.size()) >= params_.readahead_max_images) {
      break;
    }
  }
  for (const std::string& sibling : siblings) {
    Status staged = co_await StageSiblingImage(sibling);
    if (!staged.ok()) {
      ROS_LOG(kDebug) << "tray readahead stopped at " << sibling << ": "
                      << staged.ToString();
      break;
    }
  }
  readahead_trays_.erase(tray_index);
}

sim::Task<Status> Olfs::StageSiblingImage(std::string image_id) {
  // Single-flight with concurrent demand readers of the same image: wait
  // out any in-flight drive read and reuse the parsed view it produced.
  while (true) {
    auto inflight = image_reads_.find(image_id);
    if (inflight == image_reads_.end()) {
      break;
    }
    std::shared_ptr<sim::Event> done = inflight->second;
    co_await done->Wait();
  }
  {
    ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record,
                            images_->Lookup(image_id));
    if (record->tier != ImageTier::kBurnedOnly) {
      co_return OkStatus();  // already buffered; nothing to stage
    }
  }

  std::shared_ptr<udf::Image> image;
  auto mounted = disc_mounts_.find(image_id);
  if (mounted != disc_mounts_.end()) {
    image = mounted->second;
  } else {
    auto done = std::make_shared<sim::Event>(sim_);
    image_reads_.emplace(image_id, done);
    auto result = co_await ReadSiblingStream(image_id);
    image_reads_.erase(image_id);
    done->Set();
    if (!result.ok()) {
      co_return result.status();
    }
    image = std::move(*result);
  }

  // The fetch yields to demand traffic; the image may have been repaired
  // or re-staged by a degraded read in the meantime.
  ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record,
                          images_->Lookup(image_id));
  if (record->tier != ImageTier::kBurnedOnly) {
    co_return OkStatus();
  }
  // Stage into the disk buffer (sparse: the parsed image carries the
  // bytes) without eating the burn pipeline's headroom.
  const int vol = 0;
  disk::Volume* volume = buckets_->volume(vol);
  if (volume->free_bytes() <
      image->used_bytes() + params_.buffer_reserve_bytes()) {
    co_return ResourceExhaustedError(
        "no buffer headroom for tray readahead");
  }
  const std::string file =
      BucketManager::VolumeFileName(image_id) + "#ra" +
      std::to_string(readahead_generation_++);
  ROS_CO_RETURN_IF_ERROR(co_await volume->Create(file));
  ROS_CO_RETURN_IF_ERROR(
      co_await volume->AppendSparse(file, {}, image->used_bytes()));
  ROS_CO_RETURN_IF_ERROR(
      images_->RestoreToBuffer(image_id, std::move(image), vol, file));
  // Probationary admission (the SLRU's scan resistance keeps readahead
  // from churning the protected working set); capacity is enforced by the
  // same eviction pass burns use.
  cache_->Admit(image_id, record->logical_bytes);
  ++readahead_images_;
  readahead_bytes_ += record->logical_bytes;
  co_return co_await burns_->EvictCacheOverflow();
}

sim::Task<StatusOr<std::shared_ptr<udf::Image>>> Olfs::ReadSiblingStream(
    std::string image_id) {
  ROS_CO_ASSIGN_OR_RETURN(FetchLease lease,
                          co_await fetcher_->FetchDisc(image_id));
  drive::OpticalDrive* drive = lease.drive();
  Status mounted = co_await drive->MountVfs();
  if (!mounted.ok()) {
    lease.Release();
    co_return mounted;
  }
  auto session = drive->disc()->FindSession(image_id);
  if (!session.ok()) {
    lease.Release();
    co_return session.status();
  }
  auto stream = drive->disc()->ReadSession(image_id, 0,
                                           (*session)->data.size());
  if (!stream.ok()) {
    lease.Release();
    co_return stream.status();
  }
  auto image = udf::Serializer::Parse(*stream);
  if (!image.ok()) {
    lease.Release();
    co_return image.status();
  }
  // Charge the full-stream optical transfer.
  auto timed = co_await drive->Read(
      image_id, 0, std::max<std::uint64_t>(1, (*session)->data.size()));
  if (!timed.ok()) {
    lease.Release();
    co_return timed.status();
  }
  auto view = std::make_shared<udf::Image>(std::move(*image));
  disc_mounts_.emplace(image_id, view);
  lease.Release();
  co_return view;
}

// ---------------------------------------------------------------------------
// Namespace operations

sim::Task<StatusOr<FileInfo>> Olfs::Stat(std::string path) {
  co_await ChargeOp("stat", /*first=*/true);
  if (path == "/") {
    FileInfo root;
    root.is_directory = true;
    co_return root;
  }
  auto index = co_await mv_->GetRef(path);
  if (!index.ok()) {
    co_return index.status();
  }
  FileInfo info;
  info.is_directory = (*index)->type() == EntryType::kDirectory;
  if (!info.is_directory) {
    auto latest = (*index)->Latest();
    if (!latest.ok()) {
      co_return latest.status();
    }
    info.size = (*latest)->total_size;
    info.version = (*latest)->version;
    info.location = (*latest)->location;
    // Refine the location through DIM (B -> I -> D promotions happen
    // without rewriting the index file).
    if (!(*latest)->parts.empty()) {
      const ImageRecord* record =
          images_->Lookup((*latest)->parts[0].image_id).value_or(nullptr);
      if (record != nullptr) {
        switch (record->tier) {
          case ImageTier::kOpenBucket:
            info.location = LocationKind::kBucket;
            break;
          case ImageTier::kBuffered:
          case ImageTier::kBurnedCached:
            info.location = LocationKind::kImage;
            break;
          case ImageTier::kBurnedOnly:
            info.location = LocationKind::kDisc;
            break;
        }
      }
    }
  }
  co_return info;
}

sim::Task<Status> Olfs::Mkdir(std::string path) {
  co_await ChargeOp("stat", /*first=*/true);
  if (mv_->Exists(path)) {
    co_return AlreadyExistsError(path + " exists");
  }
  co_await ChargeOp("mknod");
  ROS_CO_RETURN_IF_ERROR(co_await EnsureAncestors(path));
  co_return co_await mv_->Put(IndexFile(path, EntryType::kDirectory));
}

sim::Task<StatusOr<std::vector<std::string>>> Olfs::ReadDir(
    std::string path) {
  co_await ChargeOp("stat", /*first=*/true);
  if (path != "/" && !mv_->Exists(path)) {
    co_return NotFoundError(path + " does not exist");
  }
  co_await ChargeOp("readdir");
  co_return mv_->ListChildren(path);
}

sim::Task<Status> Olfs::Unlink(std::string path) {
  co_await ChargeOp("stat", /*first=*/true);
  sim::Mutex::ScopedLock lock = co_await LockPath(path);
  auto index = co_await mv_->Get(path);
  if (!index.ok()) {
    co_return index.status();
  }
  if (index->type() == EntryType::kDirectory) {
    if (mv_->HasChildren(path)) {
      co_return FailedPreconditionError(path + " is not empty");
    }
    co_await ChargeOp("unlink");
    co_return co_await mv_->Remove(path);
  }
  co_await ChargeOp("unlink");
  VersionEntry tombstone;
  tombstone.tombstone = true;
  index->AddVersion(std::move(tombstone), params_.max_version_entries);
  co_return co_await mv_->Put(*index);
}

// ---------------------------------------------------------------------------
// Control plane

sim::Task<Status> Olfs::FlushAndDrain() {
  ROS_CO_RETURN_IF_ERROR(co_await buckets_->CloseCurrentBucket());
  ROS_CO_RETURN_IF_ERROR(co_await burns_->FlushPartialArray());
  co_return co_await burns_->DrainAll();
}

sim::Task<Status> Olfs::BurnMvSnapshot() {
  const std::string id =
      "mv-snap-" + std::to_string(mv_snapshot_counter_++);
  auto snapshot =
      co_await mv_->BuildSnapshotImage(id, params_.bucket_capacity());
  if (!snapshot.ok()) {
    co_return snapshot.status();
  }
  co_return co_await buckets_->AdmitImage(
      std::make_shared<udf::Image>(std::move(*snapshot)));
}

sim::Task<StatusOr<int>> Olfs::ScrubAndRepair() {
  int repaired = 0;
  for (const std::string& id : images_->BurnedImages()) {
    auto record = images_->Lookup(id);
    if (!record.ok() || !(*record)->disc.has_value() || (*record)->parity) {
      continue;
    }
    drive::Disc* disc = mech_->DiscAt(*(*record)->disc);
    if (disc->ScrubForErrors().empty()) {
      continue;
    }
    ROS_LOG(kInfo) << "scrub found sector errors on "
                   << (*record)->disc->ToString() << "; repairing " << id;
    ROS_CO_RETURN_IF_ERROR(co_await RecoverAndRepairImage(id));
    ++repaired;
  }
  co_return repaired;
}

sim::Task<Status> Olfs::RecoverAndRepairImage(std::string image_id) {
  ROS_CO_ASSIGN_OR_RETURN(std::vector<std::uint8_t> recovered,
                          co_await ReconstructFromParity(image_id));
  auto image = udf::Serializer::Parse(recovered);
  if (!image.ok()) {
    co_return DataLossError("parity recovery failed CRC for " + image_id);
  }
  ++reconstructions_;
  co_return co_await RepairImage(
      image_id, std::make_shared<udf::Image>(std::move(*image)));
}

sim::Task<Status> Olfs::RefreshImage(std::string image_id) {
  ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record,
                          images_->Lookup(image_id));
  if (record->parity) {
    co_return InvalidArgumentError(
        "parity images are regenerated at burn time, not refreshed");
  }
  if (record->tier != ImageTier::kBurnedCached &&
      record->tier != ImageTier::kBurnedOnly) {
    co_return FailedPreconditionError("image " + image_id +
                                      " is not burned; nothing to refresh");
  }
  // Fast path: a still-cached image needs no optical read — the refresh
  // burn re-stages the in-memory copy.
  std::shared_ptr<udf::Image> image = record->image;
  if (image == nullptr) {
    // Disc-to-disc path: read the stream off the old media through the
    // scheduler's background class, falling back to parity reconstruction
    // when the old media is already too rotten to read.
    auto mount = disc_mounts_.find(image_id);
    if (mount != disc_mounts_.end()) {
      image = mount->second;
    }
  }
  if (image == nullptr) {
    std::vector<std::uint8_t> stream;
    bool direct_ok = false;
    auto lease = co_await fetcher_->FetchDiscBackground(image_id);
    if (lease.ok()) {
      Status mounted = co_await lease->drive()->MountVfs();
      if (mounted.ok()) {
        drive::Disc* disc = lease->drive()->disc();
        auto session = disc->FindSession(image_id);
        if (session.ok()) {
          const std::uint64_t stream_bytes = (*session)->data.size();
          auto timed = co_await lease->drive()->Read(
              image_id, 0, std::max<std::uint64_t>(1, stream_bytes));
          if (timed.ok()) {
            auto bytes = disc->ReadSession(image_id, 0, stream_bytes);
            if (bytes.ok()) {
              stream = std::move(*bytes);
              direct_ok = true;
            }
          }
        }
      }
      lease->Release();
    }
    if (!direct_ok) {
      ROS_CO_ASSIGN_OR_RETURN(stream,
                              co_await ReconstructFromParity(image_id));
      ++reconstructions_;
    }
    auto parsed = udf::Serializer::Parse(stream);
    if (!parsed.ok()) {
      co_return DataLossError("refresh read of " + image_id +
                              " failed CRC");
    }
    image = std::make_shared<udf::Image>(std::move(*parsed));
  }
  co_return co_await RepairImage(image_id, std::move(image));
}

namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() > n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

sim::Task<StatusOr<std::vector<std::uint8_t>>> Olfs::ReconstructFromParity(
    std::string image_id) {
  ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record,
                          images_->Lookup(image_id));
  // Gather surviving member streams + the parity stream(s). A member
  // whose own media turns out damaged (kDataLoss) is added to the missing
  // set rather than failing the recovery: under the RAID-6 schema a
  // second data loss degrades to the double-erasure solve, and a damaged
  // parity stream just drops out of the available set (§4.7).
  const std::vector<std::string> members = record->array_members;
  if (members.empty()) {
    co_return DataLossError("no parity membership recorded for " + image_id);
  }
  std::vector<std::vector<std::uint8_t>> streams(members.size());
  std::vector<std::uint8_t> p_stream;
  std::vector<std::uint8_t> q_stream;
  bool have_p = false;
  bool have_q = false;
  std::vector<int> missing;  // positions of lost *data* members
  for (std::size_t k = 0; k < members.size(); ++k) {
    const std::string member = members[k];
    const bool is_p = HasSuffix(member, "-P");
    const bool is_q = HasSuffix(member, "-Q");
    if (member == image_id) {
      missing.push_back(static_cast<int>(k));
      continue;
    }
    auto lookup = images_->Lookup(member);
    if (!lookup.ok() || !(*lookup)->disc.has_value()) {
      if (!is_p && !is_q) {
        missing.push_back(static_cast<int>(k));
      }
      continue;
    }
    ROS_CO_ASSIGN_OR_RETURN(FetchLease lease,
                            co_await fetcher_->FetchDisc(member));
    Status mounted = co_await lease.drive()->MountVfs();
    if (!mounted.ok()) {
      co_return mounted;
    }
    drive::Disc* member_disc = lease.drive()->disc();
    auto session = member_disc->FindSession(member);
    if (!session.ok()) {
      lease.Release();
      if (is_p || is_q) {
        continue;
      }
      missing.push_back(static_cast<int>(k));
      continue;
    }
    const std::uint64_t stream_bytes = (*session)->data.size();
    // Charge the full-stream optical read.
    auto timed = co_await lease.drive()->Read(
        member, 0, std::max<std::uint64_t>(1, stream_bytes));
    StatusOr<std::vector<std::uint8_t>> stream =
        timed.ok() ? member_disc->ReadSession(member, 0, stream_bytes)
                   : std::move(timed);
    lease.Release();
    if (!stream.ok()) {
      if (stream.status().code() != StatusCode::kDataLoss) {
        co_return stream.status();  // mech trouble, not media rot
      }
      if (!is_p && !is_q) {
        missing.push_back(static_cast<int>(k));
      }
      continue;
    }
    if (is_p) {
      p_stream = std::move(*stream);
      have_p = true;
    } else if (is_q) {
      q_stream = std::move(*stream);
      have_q = true;
    } else {
      streams[k] = std::move(*stream);
    }
  }
  // Strip parity slots from the member list (they were appended last) and
  // translate the missing set into data-stream indices.
  std::vector<std::vector<std::uint8_t>> data_streams;
  std::vector<int> missing_data;
  int requested_data_index = -1;
  for (std::size_t k = 0; k < members.size(); ++k) {
    const std::string& member = members[k];
    if (HasSuffix(member, "-P") || HasSuffix(member, "-Q")) {
      continue;
    }
    const int data_index = static_cast<int>(data_streams.size());
    if (std::find(missing.begin(), missing.end(), static_cast<int>(k)) !=
        missing.end()) {
      missing_data.push_back(data_index);
    }
    if (member == image_id) {
      requested_data_index = data_index;
    }
    data_streams.push_back(std::move(streams[k]));
  }
  if (requested_data_index < 0) {
    co_return InternalError("corrupted image not in its own array");
  }
  if (missing_data.size() == 1) {
    if (have_p) {
      co_return ParityBuilder::Recover(data_streams, {p_stream},
                                       missing_data[0]);
    }
    if (have_q) {
      // P rotted along with the data member; the Reed-Solomon parity
      // alone still solves a single erasure.
      co_return ParityBuilder::RecoverOneFromQ(data_streams, q_stream,
                                               missing_data[0]);
    }
    co_return DataLossError("parity of " + image_id + " unreadable");
  }
  if (missing_data.size() == 2 && have_p && have_q) {
    ROS_CO_ASSIGN_OR_RETURN(
        auto pair, ParityBuilder::RecoverTwo(data_streams, p_stream,
                                             q_stream, missing_data[0],
                                             missing_data[1]));
    co_return requested_data_index == missing_data[0]
                  ? std::move(pair.first)
                  : std::move(pair.second);
  }
  co_return DataLossError(
      "array of " + image_id + " lost " +
      std::to_string(missing_data.size()) +
      " data members; beyond what the available parity can recover");
}

sim::Task<Status> Olfs::RepairImage(std::string image_id,
                                    std::shared_ptr<udf::Image> image) {
  // The recovered data re-enters the write path (staged back into the
  // disk buffer) and will burn onto a fresh disc array (§4.7).
  const int vol = 0;
  disk::Volume* volume = buckets_->volume(vol);
  const std::string file =
      BucketManager::VolumeFileName(image_id) + "#repair" +
      std::to_string(repaired_generation_++);
  ROS_CO_RETURN_IF_ERROR(co_await volume->Create(file));
  ROS_CO_RETURN_IF_ERROR(
      co_await volume->AppendSparse(file, {}, image->used_bytes()));
  ROS_CO_RETURN_IF_ERROR(
      images_->ReopenForRepair(image_id, image, vol, file));
  disc_mounts_.erase(image_id);
  ++images_repaired_;
  burns_->NotifyImageClosed(image_id);
  co_return OkStatus();
}

void Olfs::StartBackgroundPolicies(sim::Duration mv_snapshot_interval,
                                   sim::Duration auto_flush_interval,
                                   sim::Duration scrub_interval) {
  if (mv_snapshot_interval > 0) {
    sim_.Spawn(MvSnapshotLoop(mv_snapshot_interval));
  }
  if (auto_flush_interval > 0) {
    sim_.Spawn(AutoFlushLoop(auto_flush_interval));
  }
  if (scrub_interval > 0) {
    sim_.Spawn(ScrubLoop(scrub_interval));
  }
}

sim::Task<void> Olfs::ScrubLoop(sim::Duration interval) {
  while (true) {
    co_await sim_.Delay(interval);
    // Idle check: skip the pass while burns are running or clients are
    // actively writing ("scheduled at idle times", §4.7).
    if (burns_->active_burns() > 0 ||
        sim_.now() - last_write_time_ < interval / 2) {
      continue;
    }
    // Deep scrub (DESIGN.md §5j): walk every burned array at read speed
    // through the scheduler's background class, repair damage from
    // parity, refresh rotting arrays onto fresh media.
    auto pass = co_await scrub_->RunPass();
    if (!pass.ok()) {
      ROS_LOG(kWarning) << "scheduled scrub failed: "
                        << pass.status().ToString();
    } else if (pass->repairs > 0 || pass->arrays_refreshed > 0) {
      ROS_LOG(kInfo) << "scheduled scrub repaired " << pass->repairs
                     << " image(s), refreshed " << pass->arrays_refreshed
                     << " array(s)";
    }
  }
}

sim::Task<void> Olfs::MvSnapshotLoop(sim::Duration interval) {
  while (true) {
    co_await sim_.Delay(interval);
    if (namespace_writes_ == last_snapshot_writes_) {
      continue;  // nothing changed since the last snapshot
    }
    last_snapshot_writes_ = namespace_writes_;
    Status status = co_await BurnMvSnapshot();
    if (!status.ok()) {
      ROS_LOG(kWarning) << "periodic MV snapshot failed: "
                        << status.ToString();
    }
  }
}

sim::Task<void> Olfs::AutoFlushLoop(sim::Duration interval) {
  while (true) {
    co_await sim_.Delay(interval);
    // Flush when buffered data has been sitting idle for a full interval
    // (don't interrupt an active ingest burst mid-bucket).
    const bool idle = sim_.now() - last_write_time_ >= interval;
    const bool dirty = !images_->UnburnedClosed().empty() ||
                       buckets_->HasOpenBucketWithData();
    if (idle && dirty) {
      Status status = co_await buckets_->CloseCurrentBucket();
      if (status.ok()) {
        status = co_await burns_->FlushPartialArray();
      }
      if (!status.ok()) {
        ROS_LOG(kWarning) << "auto-flush failed: " << status.ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Namespace recovery by scanning discs (§4.4)

sim::Task<StatusOr<RecoveryReport>> Olfs::RebuildNamespace(
    std::vector<mech::TrayAddress> trays) {
  RecoveryReport report;
  mv_->WipeAll();
  disc_mounts_.clear();

  struct PartInfo {
    std::string image_id;
    std::uint64_t size = 0;
    int part = 0;
  };
  // (global path, version) -> parts.
  std::map<std::pair<std::string, int>, std::vector<PartInfo>> files;
  std::map<std::string, bool> directories;

  for (const mech::TrayAddress& tray : trays) {
    da_->set_state(tray, ArrayState::kUsed);
    // ros-lint: allow(acquire-bay): namespace rebuild is a sequential
    // full-rack scan with no concurrent readers to batch against.
    auto bay = co_await mech_->AcquireBay(tray, /*wait=*/true);
    if (!bay.ok()) {
      co_return bay.status();
    }
    if (mech_->bay_tray(*bay).has_value() &&
        *mech_->bay_tray(*bay) != tray) {
      Status status = co_await mech_->UnloadArray(*bay);
      if (!status.ok()) {
        mech_->ReleaseBay(*bay);
        co_return status;
      }
    }
    if (!mech_->bay_tray(*bay).has_value()) {
      Status status = co_await mech_->LoadArray(tray, *bay);
      if (!status.ok()) {
        mech_->ReleaseBay(*bay);
        co_return status;
      }
    }

    for (int i = 0; i < mech::kDiscsPerTray; ++i) {
      ++report.discs_scanned;
      drive::OpticalDrive& drive = mech_->drive_set(*bay).drive(i);
      if (!drive.has_disc() || drive.disc()->blank()) {
        continue;
      }
      Status mounted = co_await drive.MountVfs();
      if (!mounted.ok()) {
        ++report.unreadable_discs;
        continue;
      }
      for (const drive::Session& session : drive.disc()->sessions()) {
        if (session.image_id == "<metadata-zone>" || !session.closed) {
          continue;
        }
        // Charge the optical read of the serialized stream.
        auto timed = co_await drive.Read(
            session.image_id, 0,
            std::max<std::uint64_t>(1, session.data.size()));
        if (!timed.ok()) {
          ++report.unreadable_discs;
          continue;
        }
        // Parity discs carry raw parity of the serialized streams, not a
        // UDF volume (§4.7); register them without parsing.
        const bool parity = session.image_id.size() > 2 &&
                            (session.image_id.ends_with("-P") ||
                             session.image_id.ends_with("-Q"));
        if (parity) {
          (void)images_->RegisterRecovered(session.image_id, true,
                                           mech::DiscAddress{tray, i},
                                           session.logical_size);
          continue;
        }
        auto parsed = udf::Serializer::Parse(session.data);
        if (!parsed.ok()) {
          ++report.unreadable_discs;
          continue;
        }
        ++report.images_parsed;

        // Re-register the image with DIM as burned-only.
        (void)images_->RegisterRecovered(session.image_id, false,
                                         mech::DiscAddress{tray, i},
                                         session.logical_size);
        parsed->Walk([&](const std::string& node_path,
                         const udf::Node& node) {
          ParsedInternalPath info = ParseInternalPath(node_path);
          if (info.global_path.rfind(std::string(
                  MetadataVolume::kSnapshotDir), 0) == 0) {
            return;  // MV snapshot content, not user namespace
          }
          switch (node.type) {
            case udf::NodeType::kDirectory:
              directories[info.global_path] = true;
              break;
            case udf::NodeType::kFile:
              files[{info.global_path, info.version}].push_back(
                  {session.image_id, node.logical_size, 0});
              break;
            case udf::NodeType::kLink:
              // "#prevK" link: the data node for part K sits in this
              // image; annotate it below by part number.
              for (auto& part : files[{info.global_path, info.version}]) {
                if (part.image_id == session.image_id) {
                  part.part = info.part;
                }
              }
              break;
          }
        });
      }
    }
    mech_->ReleaseBay(*bay);
  }

  // Rebuild MV index files.
  for (const auto& [dir, unused] : directories) {
    (void)unused;
    ROS_CO_RETURN_IF_ERROR(
        co_await mv_->Put(IndexFile(dir, EntryType::kDirectory)));
  }
  // Group versions per path (ascending) and emit entries.
  std::map<std::string, std::vector<std::pair<int, std::vector<PartInfo>>>>
      by_path;
  for (auto& [key, parts] : files) {
    std::sort(parts.begin(), parts.end(),
              [](const PartInfo& a, const PartInfo& b) {
                return a.part < b.part;
              });
    by_path[key.first].emplace_back(key.second, parts);
  }
  for (auto& [path, versions] : by_path) {
    std::sort(versions.begin(), versions.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    IndexFile index(path, EntryType::kFile);
    for (int v = 1; v <= versions.back().first; ++v) {
      // Reconstruct missing intermediate versions as empty rings; only
      // versions found on discs become entries.
      auto it = std::find_if(versions.begin(), versions.end(),
                             [v](const auto& pair) {
                               return pair.first == v;
                             });
      VersionEntry entry;
      if (it != versions.end()) {
        entry.location = LocationKind::kDisc;
        for (const PartInfo& part : it->second) {
          entry.parts.push_back({part.image_id, part.size});
          entry.total_size += part.size;
        }
      } else {
        entry.tombstone = true;  // placeholder for a lost version
      }
      index.AddVersion(std::move(entry), params_.max_version_entries);
      report.files_recovered += (it != versions.end()) ? 1 : 0;
    }
    ROS_CO_RETURN_IF_ERROR(co_await mv_->Put(index));
  }
  co_return report;
}

}  // namespace ros::olfs
