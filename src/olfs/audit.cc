#include "src/olfs/audit.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"
#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/udf/serializer.h"

namespace ros::olfs {
namespace {

constexpr char kMagic[8] = {'R', 'O', 'S', 'A', 'U', 'D', 'T', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr char kDirectoryKey[] = "audit/dir";
// Fuzz-input sanity caps; real arrays have 12 members and the member id
// is a short image id.
constexpr std::uint32_t kMaxMembers = 4096;
constexpr std::uint32_t kMaxIdBytes = 4096;

void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// Bounds-checked little-endian reader over the raw manifest bytes.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  std::size_t remaining() const { return data.size() - pos; }
  bool ReadU32(std::uint32_t* v) {
    if (remaining() < 4) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
            << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool ReadU64(std::uint64_t* v) {
    if (remaining() < 8) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
            << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool ReadBytes(std::size_t n, std::string* out) {
    if (remaining() < n) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return true;
  }
};

std::string HexEncode(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

StatusOr<std::vector<std::uint8_t>> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgumentError("odd-length hex manifest blob");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgumentError("non-hex byte in manifest blob");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

std::uint64_t AuditHashLeaf(std::span<const std::uint8_t> chunk) {
  return Fnv1a64(chunk);
}

std::vector<std::uint64_t> AuditLeafHashes(
    std::span<const std::uint8_t> stream, std::uint64_t leaf_bytes) {
  std::vector<std::uint64_t> leaves;
  if (leaf_bytes == 0) {
    return leaves;
  }
  for (std::size_t at = 0; at < stream.size();
       at += static_cast<std::size_t>(leaf_bytes)) {
    const std::size_t n = std::min<std::size_t>(
        static_cast<std::size_t>(leaf_bytes), stream.size() - at);
    leaves.push_back(AuditHashLeaf(stream.subspan(at, n)));
  }
  return leaves;
}

std::uint64_t AuditMerkleRoot(const std::vector<std::uint64_t>& leaves) {
  if (leaves.empty()) {
    // Root of nothing: FNV-1a offset basis, so empty members still chain
    // into the array root deterministically.
    return 0xCBF29CE484222325ull;
  }
  std::vector<std::uint64_t> level = leaves;
  while (level.size() > 1) {
    std::vector<std::uint64_t> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      std::uint8_t pair[16];
      for (int b = 0; b < 8; ++b) {
        pair[b] = static_cast<std::uint8_t>(level[i] >> (8 * b));
        pair[8 + b] = static_cast<std::uint8_t>(level[i + 1] >> (8 * b));
      }
      next.push_back(Fnv1a64(pair));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());  // odd node promoted unchanged
    }
    level = std::move(next);
  }
  return level.front();
}

std::uint64_t AuditArrayRoot(const AuditManifest& manifest) {
  std::vector<std::uint64_t> roots;
  roots.reserve(manifest.members.size());
  for (const AuditMember& member : manifest.members) {
    roots.push_back(member.root);
  }
  return AuditMerkleRoot(roots);
}

std::vector<std::uint8_t> SerializeAuditManifest(
    const AuditManifest& manifest) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  PutU32(kVersion, &out);
  PutU64(static_cast<std::uint64_t>(manifest.tray_index), &out);
  PutU64(manifest.leaf_bytes, &out);
  PutU32(static_cast<std::uint32_t>(manifest.members.size()), &out);
  for (const AuditMember& member : manifest.members) {
    PutU32(static_cast<std::uint32_t>(member.image_id.size()), &out);
    out.insert(out.end(), member.image_id.begin(), member.image_id.end());
    PutU64(member.stream_bytes, &out);
    PutU32(static_cast<std::uint32_t>(member.leaves.size()), &out);
    for (std::uint64_t leaf : member.leaves) {
      PutU64(leaf, &out);
    }
    PutU64(member.root, &out);
  }
  PutU64(manifest.array_root, &out);
  PutU32(Crc32(out), &out);
  return out;
}

StatusOr<AuditManifest> ParseAuditManifest(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + 8 + 8 + 4 + 8 + 4) {
    return InvalidArgumentError("audit manifest too short");
  }
  // CRC first: everything after it is parsed from verified bytes.
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(
                      bytes[bytes.size() - 4 + static_cast<std::size_t>(i)])
                  << (8 * i);
  }
  if (Crc32(bytes.subspan(0, bytes.size() - 4)) != stored_crc) {
    return DataLossError("audit manifest checksum mismatch");
  }
  Reader in{bytes.subspan(0, bytes.size() - 4)};
  std::string magic;
  if (!in.ReadBytes(sizeof(kMagic), &magic) ||
      magic != std::string(kMagic, sizeof(kMagic))) {
    return InvalidArgumentError("bad audit manifest magic");
  }
  std::uint32_t version = 0;
  if (!in.ReadU32(&version) || version != kVersion) {
    return InvalidArgumentError("unsupported audit manifest version");
  }
  AuditManifest manifest;
  std::uint64_t tray = 0;
  std::uint32_t member_count = 0;
  if (!in.ReadU64(&tray) || !in.ReadU64(&manifest.leaf_bytes) ||
      !in.ReadU32(&member_count)) {
    return InvalidArgumentError("truncated audit manifest header");
  }
  manifest.tray_index = static_cast<std::int64_t>(tray);
  if (member_count > kMaxMembers) {
    return InvalidArgumentError("audit manifest member count implausible");
  }
  for (std::uint32_t m = 0; m < member_count; ++m) {
    AuditMember member;
    std::uint32_t id_len = 0;
    if (!in.ReadU32(&id_len) || id_len > kMaxIdBytes ||
        !in.ReadBytes(id_len, &member.image_id)) {
      return InvalidArgumentError("truncated audit member id");
    }
    std::uint32_t leaf_count = 0;
    if (!in.ReadU64(&member.stream_bytes) || !in.ReadU32(&leaf_count)) {
      return InvalidArgumentError("truncated audit member header");
    }
    if (static_cast<std::size_t>(leaf_count) * 8 > in.remaining()) {
      return InvalidArgumentError("audit member leaf count exceeds input");
    }
    member.leaves.reserve(leaf_count);
    for (std::uint32_t l = 0; l < leaf_count; ++l) {
      std::uint64_t leaf = 0;
      if (!in.ReadU64(&leaf)) {
        return InvalidArgumentError("truncated audit member leaves");
      }
      member.leaves.push_back(leaf);
    }
    if (!in.ReadU64(&member.root)) {
      return InvalidArgumentError("truncated audit member root");
    }
    // Leaf count must be consistent with the stream it claims to cover.
    const std::uint64_t expect_leaves =
        manifest.leaf_bytes == 0
            ? 0
            : (member.stream_bytes + manifest.leaf_bytes - 1) /
                  manifest.leaf_bytes;
    if (expect_leaves != member.leaves.size()) {
      return InvalidArgumentError("audit member leaf count inconsistent");
    }
    // The stored chain must recompute: a manifest whose root does not
    // match its own leaves proves nothing.
    if (AuditMerkleRoot(member.leaves) != member.root) {
      return DataLossError("audit member root mismatch");
    }
    manifest.members.push_back(std::move(member));
  }
  if (!in.ReadU64(&manifest.array_root)) {
    return InvalidArgumentError("truncated audit array root");
  }
  if (in.remaining() != 0) {
    return InvalidArgumentError("trailing bytes after audit manifest");
  }
  if (AuditArrayRoot(manifest) != manifest.array_root) {
    return DataLossError("audit array root mismatch");
  }
  return manifest;
}

std::string AuditRegistry::ManifestKey(int tray_index) {
  return "audit/t" + std::to_string(tray_index);
}

sim::Task<Status> AuditRegistry::OnArrayBurned(
    mech::TrayAddress tray, std::vector<std::string> member_ids) {
  AuditManifest manifest;
  manifest.tray_index = tray.ToIndex();
  manifest.leaf_bytes = params_.audit_leaf_bytes;
  for (const std::string& id : member_ids) {
    ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record, images_->Lookup(id));
    // Recover the exact burned stream from controller memory — the same
    // bytes BurnOneDisc just wrote to the media.
    std::vector<std::uint8_t> stream;
    if (record->parity) {
      ROS_CO_ASSIGN_OR_RETURN(const ParityImage* parity, parity_->Get(id));
      stream = parity->bytes;
    } else {
      if (record->image == nullptr) {
        co_return FailedPreconditionError(
            "image " + id + " already evicted; cannot hash for audit");
      }
      stream = udf::Serializer::Serialize(*record->image);
    }
    AuditMember member;
    member.image_id = id;
    member.stream_bytes = stream.size();
    member.leaves = AuditLeafHashes(stream, manifest.leaf_bytes);
    member.root = AuditMerkleRoot(member.leaves);
    manifest.members.push_back(std::move(member));
  }
  manifest.array_root = AuditArrayRoot(manifest);

  const std::vector<std::uint8_t> blob = SerializeAuditManifest(manifest);
  ROS_CO_RETURN_IF_ERROR(co_await mv_->PutState(
      ManifestKey(static_cast<int>(manifest.tray_index)),
      json::Value(HexEncode(blob))));
  const bool replacing =
      roots_.count(static_cast<int>(manifest.tray_index)) > 0;
  roots_[static_cast<int>(manifest.tray_index)] = manifest.array_root;
  ++roots_built_;
  if (!replacing) {
    ++manifests_live_;
  }
  ROS_CO_RETURN_IF_ERROR(co_await PersistDirectory());
  ROS_LOG(kDebug) << "audit manifest built for tray "
                  << manifest.tray_index;
  co_return OkStatus();
}

sim::Task<Status> AuditRegistry::RetireTray(mech::TrayAddress tray) {
  const int tray_index = tray.ToIndex();
  if (roots_.erase(tray_index) == 0) {
    co_return OkStatus();  // never audited (manifests disabled mid-life)
  }
  --manifests_live_;
  // The manifest entry itself is left in the MV (WORM-friendly history);
  // the directory rewrite is what removes it from the auditor's root set.
  co_return co_await PersistDirectory();
}

sim::Task<Status> AuditRegistry::PersistDirectory() {
  json::Object dir;
  for (const auto& [tray_index, root] : roots_) {
    std::uint8_t bytes[8];
    for (int b = 0; b < 8; ++b) {
      bytes[b] = static_cast<std::uint8_t>(root >> (8 * b));
    }
    dir["t" + std::to_string(tray_index)] = json::Value(HexEncode(bytes));
  }
  co_return co_await mv_->PutState(kDirectoryKey,
                                   json::Value(std::move(dir)));
}

sim::Task<StatusOr<std::vector<AuditManifest>>>
AuditRegistry::LoadManifests() {
  std::vector<AuditManifest> manifests;
  auto dir = co_await mv_->GetState(kDirectoryKey);
  if (!dir.ok()) {
    co_return manifests;  // nothing audited yet
  }
  if (!dir->is_object()) {
    co_return DataLossError("audit directory is not an object");
  }
  for (const auto& [key, root_hex] : dir->as_object()) {
    if (key.size() < 2 || key[0] != 't') {
      co_return DataLossError("bad audit directory key: " + key);
    }
    const int tray_index = std::atoi(key.c_str() + 1);
    ROS_CO_ASSIGN_OR_RETURN(json::Value blob_value,
                            co_await mv_->GetState(ManifestKey(tray_index)));
    if (!blob_value.is_string()) {
      co_return DataLossError("audit manifest blob is not a string");
    }
    ROS_CO_ASSIGN_OR_RETURN(std::vector<std::uint8_t> blob,
                            HexDecode(blob_value.as_string()));
    ROS_CO_ASSIGN_OR_RETURN(AuditManifest manifest,
                            ParseAuditManifest(blob));
    // The directory root must match the manifest: the root set is the
    // auditor's trust anchor.
    if (!root_hex.is_string()) {
      co_return DataLossError("audit directory root is not a string");
    }
    ROS_CO_ASSIGN_OR_RETURN(std::vector<std::uint8_t> root_bytes,
                            HexDecode(root_hex.as_string()));
    std::uint64_t expect_root = 0;
    if (root_bytes.size() != 8) {
      co_return DataLossError("audit directory root malformed");
    }
    for (int b = 0; b < 8; ++b) {
      expect_root |= static_cast<std::uint64_t>(
                         root_bytes[static_cast<std::size_t>(b)])
                     << (8 * b);
    }
    if (expect_root != manifest.array_root) {
      co_return DataLossError("audit manifest root disagrees with directory");
    }
    manifests.push_back(std::move(manifest));
  }
  co_return manifests;
}

}  // namespace ros::olfs
