// The Metadata Volume (MV), §4.2.
//
// MV maintains the updatable map between millions of global-namespace
// entries and thousands of discs. It lives on a small, fast ext4-style
// volume (a pair of SSDs in RAID-1 with 1 KiB blocks and 128-byte inodes)
// and stores the namespace index plus system running state. Metadata and
// data storage are physically decoupled: nothing here holds file payloads
// (except the optional forepart).
//
// Two interchangeable backends live behind this one API:
//
//  * Legacy (the original design): one JSON file per namespace entry
//    ("/idx" + path) plus "/state/" files. Simple, but every Put pays
//    per-file inode churn and a whole-file rewrite.
//
//  * Log-structured (DESIGN.md §5i, `Options::log_structured`): mutations
//    append framed records to a WAL with group commit — concurrent
//    writers coalesce into one batched volume append per flush window,
//    each caller awaiting the batch's durability barrier. Reads come from
//    a sharded in-memory memtable over immutable sorted segment files; a
//    background compactor (simulated time, fully deterministic) merges
//    segments and drops dead records. Crash recovery replays segments in
//    file-name order and then the WAL tail; per-record CRCs detect a torn
//    tail, which is truncated away — acked mutations always survive,
//    unacked ones vanish cleanly.
//
// Hot reads are served from a bounded write-through LRU cache of *decoded*
// IndexFile objects shared as immutable `IndexPtr`s (DESIGN.md §5d). A
// cache hit still charges the same simulated SSD read as the uncached
// path (the bytes still come off the MV pair; what the cache removes is
// host-side JSON decode work), so simulated timings are identical with
// the cache on or off. In the log-structured backend memtable-resident
// entries charge nothing either way (they are RAM on both paths), and
// segment-backed entries replay the exact device ranges of the record.
//
// Coherence is push-based: the MV registers disk::Volume's mutation
// observer, and every volume-level write — including ones that bypass
// this class, e.g. recovery tools or corruption tests poking volume()
// directly — synchronously drops the touched entry, so a hit needs no
// stat and can never serve masked bytes. Inserts are additionally pinned
// to disk::Volume's never-reused per-file write generations (legacy) or
// to the store's own mutation generation (log-structured), which keeps
// concurrent writers from publishing stale decodes across a suspension.
#ifndef ROS_SRC_OLFS_METADATA_VOLUME_H_
#define ROS_SRC_OLFS_METADATA_VOLUME_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/disk/volume.h"
#include "src/olfs/index_file.h"
#include "src/olfs/mv_log.h"
#include "src/olfs/mv_segment.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/udf/image.h"

namespace ros::olfs {

class MetadataVolume {
 public:
  // Default bound: ~64k decoded entries. At the paper's ~388 bytes per
  // index file this is a few tens of MB of RAM fronting a billion-entry
  // namespace's hot set. `cache_capacity = 0` disables the cache entirely
  // (differential tests and the mv_hotpath baseline use this).
  static constexpr std::size_t kDefaultCacheCapacity = 64 * 1024;

  struct Options {
    bool log_structured = false;
    std::size_t cache_capacity = kDefaultCacheCapacity;
    // Group-commit window handed to MvLog.
    sim::Duration commit_window = sim::Micros(100);
    // Freeze + flush the active memtable once its serialized size reaches
    // this. Bounds resident bytes: at most ~2 windows of mutations (active
    // + one immutable generation) stay decoded in RAM.
    std::uint64_t memtable_flush_bytes = 8 * kMiB;
    // Compaction outputs are split at this size.
    std::uint64_t max_segment_bytes = 64 * kMiB;
    // Compact when the store holds more than this many segments...
    std::size_t compact_min_segments = 8;
    // ...merging this many oldest segments per round...
    std::size_t compact_fan_in = 4;
    // ...or when more than this fraction of segment records are dead.
    double compact_garbage_ratio = 0.5;
  };

  // Legacy one-file-per-entry backend. No simulator needed: it runs no
  // background work of its own.
  explicit MetadataVolume(disk::Volume* volume,
                          std::size_t cache_capacity = kDefaultCacheCapacity)
      : volume_(volume), cache_capacity_(cache_capacity) {
    volume_->SetMutationObserver(
        [this](const std::string& name) { OnVolumeMutation(name); });
  }

  // Options-selected backend. The simulator powers the WAL flusher and the
  // compactor when `options.log_structured` is set.
  MetadataVolume(sim::Simulator& sim, disk::Volume* volume, Options options);

  ~MetadataVolume();

  // The registered observer captures `this`.
  MetadataVolume(const MetadataVolume&) = delete;
  MetadataVolume& operator=(const MetadataVolume&) = delete;

  bool log_structured() const { return log_ != nullptr; }

  // Log-structured recovery entry point: replays segments + WAL from the
  // volume. Implicit on the first async operation against a dirty volume;
  // callers that want recovery timing (or its error) call it directly.
  // Synchronous accessors (Exists, index_count, ListChildren, ...) on a
  // not-yet-opened store report an empty namespace. No-op when already
  // open, and always a no-op for the legacy backend.
  sim::Task<Status> Open();

  // --- index files ---

  bool Exists(const std::string& path) const;

  sim::Task<Status> Put(IndexFile index);

  // Hot read path: the decoded index as an immutable shared object. A
  // cache hit hands back the cached object itself (a refcount bump, no
  // deep copy); a miss decodes, publishes to the cache, and returns the
  // shared decode. Readers that never modify the index (stat, read,
  // forepart) should use this.
  using IndexPtr = std::shared_ptr<const IndexFile>;
  sim::Task<StatusOr<IndexPtr>> GetRef(std::string path) const;

  // Mutable copy for callers about to modify and Put back.
  sim::Task<StatusOr<IndexFile>> Get(std::string path) const;

  sim::Task<Status> Remove(std::string path);

  // Direct children (leaf names) of a directory in the global namespace.
  // Range-bounded: skips whole subtrees instead of filtering every
  // descendant.
  std::vector<std::string> ListChildren(const std::string& path) const;

  // True when the directory has at least one entry below it (O(log n);
  // cheaper than ListChildren when only emptiness matters).
  bool HasChildren(const std::string& path) const;

  // All namespace paths (for snapshots and consistency checks).
  std::vector<std::string> AllPaths() const;

  // --- system running state (also JSON, §4.2) ---

  sim::Task<Status> PutState(std::string key, json::Value v);
  sim::Task<StatusOr<json::Value>> GetState(std::string key) const;

  // --- durability (§4.2: MV is periodically burned into discs) ---

  // Packs every index file into a self-describing UDF image (under
  // /.mv/...) that the burn pipeline writes to discs like any other image.
  // The image layout is backend-independent, so a snapshot taken by one
  // backend restores into the other byte-for-byte.
  sim::Task<StatusOr<udf::Image>> BuildSnapshotImage(
      std::string image_id, std::uint64_t capacity) const;

  // Restores the namespace from a snapshot image (inverse of the above).
  // Existing index files are replaced. Keeps going past per-file failures
  // and reports the first error (annotated with how many more failed)
  // rather than aborting the whole restore.
  sim::Task<Status> RestoreFromSnapshot(const udf::Image& snapshot);

  // Wipes the namespace (simulating MV loss before a recovery). Requires
  // quiescence: no MV operation may be in flight.
  void WipeAll();

  std::uint64_t index_count() const;
  disk::Volume* volume() { return volume_; }

  // --- decoded-index cache introspection ---

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;    // any Get not served from cache
    std::uint64_t evictions = 0;  // LRU capacity evictions only
  };
  const CacheStats& cache_stats() const { return cache_stats_; }
  std::size_t cache_size() const { return cache_map_.size(); }
  std::size_t cache_capacity() const { return cache_capacity_; }

  // --- log-structured store introspection ---

  struct StoreStats {
    bool log_structured = false;
    MvLog::Stats wal;
    std::uint64_t memtable_entries = 0;
    std::uint64_t memtable_bytes = 0;  // serialized size, active + immutable
    std::uint64_t segment_count = 0;
    std::uint64_t segment_records_total = 0;
    std::uint64_t segment_records_live = 0;
    std::uint64_t segment_bytes = 0;
    std::uint64_t memtable_flushes = 0;
    std::uint64_t compactions = 0;
    std::uint64_t segments_deleted = 0;  // compacted away
    // Recovery telemetry (cumulative across opens of this object).
    std::uint64_t recovered_segments = 0;
    std::uint64_t corrupt_segments = 0;  // damaged ones skipped/truncated
    std::uint64_t replayed_wal_records = 0;
    std::uint64_t torn_tail_bytes = 0;   // discarded by replay
  };
  StoreStats store_stats() const;

  // MV file-name mapping (exposed for tests).
  static std::string IndexName(const std::string& path) {
    return "/idx" + path;
  }
  static constexpr std::string_view kSnapshotDir = "/.mv";

  // Log-structured key-space mapping (exposed for tests). Namespace paths
  // all start with '/', so index keys share the "i/" prefix and state keys
  // the disjoint "s/" prefix, keeping both in one ordered keydir.
  static std::string IndexKey(const std::string& path) { return "i" + path; }
  static std::string StateKey(const std::string& key) { return "s/" + key; }

 private:
  struct CacheEntry {
    std::string path;
    IndexPtr index;  // immutable; hits share it, eviction can't invalidate
    std::uint64_t write_gen = 0;  // generation this decode corresponds to
    // Device ranges backing the entry, valid for exactly this generation
    // (push invalidation drops the entry on any mutation): hits replay the
    // read charge from here instead of paying a second file-table lookup.
    // Empty for memtable-resident entries (a miss would charge nothing).
    disk::Volume::ByteSegments segments;
    // Log-structured: segment the ranges live in (0 = memtable). Dropped
    // wholesale when that segment is flushed over or compacted away.
    std::uint64_t source_seg = 0;
  };
  using LruList = std::list<CacheEntry>;

  // --- log-structured backend state (DESIGN.md §5i) ---

  struct MemEntry {
    std::string value;
    bool tombstone = false;
  };
  using Shard = std::map<std::string, MemEntry>;
  static constexpr std::size_t kMemtableShards = 8;

  struct SegmentInfo {
    std::uint64_t rank = 0;
    std::uint64_t id = 0;
    std::string file;
    std::uint64_t records_total = 0;
    std::uint64_t records_live = 0;  // still referenced by the keydir
    std::uint64_t bytes = 0;
    std::uint64_t pins = 0;  // point reads in flight against the file
    bool retired = false;    // unlinked from the keydir, awaiting delete
  };
  using SegmentPtr = std::shared_ptr<SegmentInfo>;

  // Where the newest version of a live key lives.
  struct KeyRef {
    std::uint64_t seg_id = 0;  // 0 = memtable tier
    std::uint64_t offset = 0;  // record frame within the segment file
    std::uint32_t length = 0;
  };

  // Counters behind store_stats() (the live gauges are derived on demand).
  struct StoreCounters {
    std::uint64_t memtable_flushes = 0;
    std::uint64_t compactions = 0;
    std::uint64_t segments_deleted = 0;
    std::uint64_t recovered_segments = 0;
    std::uint64_t corrupt_segments = 0;
    std::uint64_t replayed_wal_records = 0;
    std::uint64_t torn_tail_bytes = 0;
  };

  // The volume's mutation observer: drops whatever the write touched.
  void OnVolumeMutation(const std::string& name) const;

  // Decodes nothing itself: callers hand over the decoded index plus the
  // generation and the file's device mapping for that generation.
  void CacheInsert(const std::string& path, IndexPtr index,
                   std::uint64_t write_gen,
                   disk::Volume::ByteSegments segments,
                   std::uint64_t source_seg = 0) const;
  void CacheErase(std::string_view path) const;
  void CacheClear() const;
  // Drops every entry whose device ranges live in `seg_id` (their replay
  // charge is about to stop matching a fresh miss).
  void CacheEraseBySegment(std::uint64_t seg_id) const;

  bool ls() const { return log_ != nullptr; }

  std::size_t ShardOf(std::string_view key) const;
  // Memtable lookup, newest tier first: active shard, then immutable.
  const MemEntry* FindMem(const std::string& key) const;

  // Applies one mutation to memtable + keydir + live counters, bumping the
  // store generation. Host-atomic (no suspension). Does NOT touch the WAL:
  // callers append (or are replaying what was already appended).
  void MemtableApply(const std::string& key, std::string value,
                     bool tombstone) const;
  // Detaches a key's previous location (segment live-count bookkeeping).
  void DecLiveRef(const KeyRef& ref) const;

  // Serialized size of one memtable entry, for the flush threshold.
  static std::uint64_t EntryBytes(const std::string& key,
                                  const MemEntry& entry) {
    return mvlog::kRecordHeaderBytes + key.size() + entry.value.size();
  }

  // Recovery: single-flight replay of segments + WAL into a clean store.
  sim::Task<Status> EnsureOpen() const;
  sim::Task<Status> RecoverLs() const;
  void ResetLsState() const;

  // Full point read of a key's raw value bytes (memtable, then segment).
  // Does not consult or fill the decoded-index cache.
  sim::Task<StatusOr<std::string>> ReadValueLs(std::string key) const;

  sim::Task<StatusOr<IndexPtr>> GetRefLs(std::string path) const;

  // Background memtable flush + segment compaction. Detached coroutines:
  // they re-check `alive` after every suspension (the MV can be destroyed
  // under them on re-attach) and `epoch_` (WipeAll invalidates the world).
  void MaybeScheduleFlush() const;
  sim::Task<void> FlushTaskLs(std::shared_ptr<const bool> alive) const;
  sim::Task<Status> FlushOnceLs(std::shared_ptr<const bool> alive) const;
  void MaybeScheduleCompaction() const;
  sim::Task<void> CompactTaskLs(std::shared_ptr<const bool> alive) const;
  sim::Task<Status> CompactOnceLs(std::shared_ptr<const bool> alive) const;
  bool CompactionNeeded() const;
  // Full-size and fully live: re-merging it cannot shrink anything.
  bool SealedSegment(const SegmentInfo& seg) const;

  disk::Volume* volume_;
  std::size_t cache_capacity_;
  // The cache is a performance detail of logically-const Gets. The map is
  // keyed on each entry's own path string (list nodes are stable), so
  // lookups and invalidations never build a key.
  mutable LruList lru_;  // front = most recently used
  // ros_analyze: allow(unordered-member): point lookups by path only;
  // eviction order comes from lru_, never from this map.
  mutable std::unordered_map<std::string_view, LruList::iterator> cache_map_;
  mutable CacheStats cache_stats_;

  // --- log-structured members (all null/empty for the legacy backend).
  // Mutable: logically-const reads pin segments, open the store, and
  // publish cache state; the public API's constness is the contract.
  sim::Simulator* sim_ = nullptr;
  Options options_;
  std::unique_ptr<MvLog> log_;  // non-null iff log-structured
  // Set false in the destructor; detached background tasks that wake later
  // see it and return without touching the dead store.
  std::shared_ptr<bool> alive_;
  mutable std::array<Shard, kMemtableShards> active_;
  mutable std::array<Shard, kMemtableShards> imm_;
  mutable bool imm_valid_ = false;
  mutable std::uint64_t memtable_bytes_ = 0;  // active_ serialized size
  mutable std::uint64_t imm_bytes_ = 0;
  // Every live key, ordered — the authority for Exists/listing/counts.
  // Tombstoned keys are absent (the tombstone itself lives in the shards
  // until flushed).
  mutable std::map<std::string, KeyRef> keydir_;
  mutable std::vector<SegmentPtr> segments_;  // (rank, id) order, oldest first
  mutable std::map<std::uint64_t, SegmentPtr> segs_by_id_;
  mutable std::uint64_t live_index_count_ = 0;  // keys in the "i" domain
  mutable std::uint64_t next_rank_ = 1;
  mutable std::uint64_t next_seg_id_ = 1;
  mutable std::uint64_t store_gen_ = 0;  // bumps on every MemtableApply
  mutable std::uint64_t epoch_ = 0;      // bumps on WipeAll
  mutable bool opened_ = true;   // false: dirty volume awaiting recovery
  mutable bool opening_ = false;
  std::unique_ptr<sim::Event> open_done_;        // pulsed after each attempt
  std::unique_ptr<sim::ConditionVariable> pin_cv_;  // pin released
  mutable bool flush_running_ = false;
  mutable bool compact_running_ = false;
  mutable StoreCounters counters_;
  mutable Status last_background_error_;  // first flush/compact failure
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_METADATA_VOLUME_H_
