// The Metadata Volume (MV), §4.2.
//
// MV maintains the updatable map between millions of global-namespace
// entries and thousands of discs. It lives on a small, fast ext4-style
// volume (a pair of SSDs in RAID-1 with 1 KiB blocks and 128-byte inodes)
// and stores one JSON index file per namespace entry, plus system running
// state. Metadata and data storage are physically decoupled: nothing here
// holds file payloads (except the optional forepart).
#ifndef ROS_SRC_OLFS_METADATA_VOLUME_H_
#define ROS_SRC_OLFS_METADATA_VOLUME_H_

#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/disk/volume.h"
#include "src/olfs/index_file.h"
#include "src/sim/task.h"
#include "src/udf/image.h"

namespace ros::olfs {

class MetadataVolume {
 public:
  explicit MetadataVolume(disk::Volume* volume) : volume_(volume) {}

  // --- index files ---

  bool Exists(const std::string& path) const {
    return volume_->Exists(IndexName(path));
  }

  sim::Task<Status> Put(IndexFile index);
  sim::Task<StatusOr<IndexFile>> Get(std::string path) const;
  sim::Task<Status> Remove(std::string path);

  // Direct children (leaf names) of a directory in the global namespace.
  std::vector<std::string> ListChildren(const std::string& path) const;

  // All namespace paths (for snapshots and consistency checks).
  std::vector<std::string> AllPaths() const;

  // --- system running state (also JSON, §4.2) ---

  sim::Task<Status> PutState(std::string key, json::Value v);
  sim::Task<StatusOr<json::Value>> GetState(std::string key) const;

  // --- durability (§4.2: MV is periodically burned into discs) ---

  // Packs every index file into a self-describing UDF image (under
  // /.mv/...) that the burn pipeline writes to discs like any other image.
  sim::Task<StatusOr<udf::Image>> BuildSnapshotImage(
      std::string image_id, std::uint64_t capacity) const;

  // Restores the namespace from a snapshot image (inverse of the above).
  // Existing index files are replaced.
  sim::Task<Status> RestoreFromSnapshot(const udf::Image& snapshot);

  // Wipes the namespace (simulating MV loss before a recovery).
  void WipeAll() { volume_->FormatQuick(); }

  std::uint64_t index_count() const;
  disk::Volume* volume() { return volume_; }

  // MV file-name mapping (exposed for tests).
  static std::string IndexName(const std::string& path) {
    return "/idx" + path;
  }
  static constexpr std::string_view kSnapshotDir = "/.mv";

 private:
  disk::Volume* volume_;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_METADATA_VOLUME_H_
