// The Metadata Volume (MV), §4.2.
//
// MV maintains the updatable map between millions of global-namespace
// entries and thousands of discs. It lives on a small, fast ext4-style
// volume (a pair of SSDs in RAID-1 with 1 KiB blocks and 128-byte inodes)
// and stores one JSON index file per namespace entry, plus system running
// state. Metadata and data storage are physically decoupled: nothing here
// holds file payloads (except the optional forepart).
//
// Hot reads are served from a bounded write-through LRU cache of *decoded*
// IndexFile objects shared as immutable `IndexPtr`s (DESIGN.md §5d). A
// cache hit still charges the same simulated SSD read as the uncached
// path (the bytes still come off the MV pair; what the cache removes is
// host-side JSON decode work), so simulated timings are identical with
// the cache on or off.
//
// Coherence is push-based: the MV registers disk::Volume's mutation
// observer, and every volume-level write — including ones that bypass
// this class, e.g. recovery tools or corruption tests poking volume()
// directly — synchronously drops the touched entry, so a hit needs no
// stat and can never serve masked bytes. Inserts are additionally pinned
// to disk::Volume's never-reused per-file write generations: a decode is
// published only if the file's generation is unchanged across the read
// (or advanced by exactly our own write), which keeps concurrent
// writers from publishing stale decodes across a suspension.
#ifndef ROS_SRC_OLFS_METADATA_VOLUME_H_
#define ROS_SRC_OLFS_METADATA_VOLUME_H_

#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/disk/volume.h"
#include "src/olfs/index_file.h"
#include "src/sim/task.h"
#include "src/udf/image.h"

namespace ros::olfs {

class MetadataVolume {
 public:
  // Default bound: ~64k decoded entries. At the paper's ~388 bytes per
  // index file this is a few tens of MB of RAM fronting a billion-entry
  // namespace's hot set. `cache_capacity = 0` disables the cache entirely
  // (differential tests and the mv_hotpath baseline use this).
  static constexpr std::size_t kDefaultCacheCapacity = 64 * 1024;

  explicit MetadataVolume(disk::Volume* volume,
                          std::size_t cache_capacity = kDefaultCacheCapacity)
      : volume_(volume), cache_capacity_(cache_capacity) {
    volume_->SetMutationObserver(
        [this](const std::string& name) { OnVolumeMutation(name); });
  }
  ~MetadataVolume() { volume_->SetMutationObserver(nullptr); }

  // The registered observer captures `this`.
  MetadataVolume(const MetadataVolume&) = delete;
  MetadataVolume& operator=(const MetadataVolume&) = delete;

  // --- index files ---

  bool Exists(const std::string& path) const {
    return volume_->Exists(IndexName(path));
  }

  sim::Task<Status> Put(IndexFile index);

  // Hot read path: the decoded index as an immutable shared object. A
  // cache hit hands back the cached object itself (a refcount bump, no
  // deep copy); a miss decodes, publishes to the cache, and returns the
  // shared decode. Readers that never modify the index (stat, read,
  // forepart) should use this.
  using IndexPtr = std::shared_ptr<const IndexFile>;
  sim::Task<StatusOr<IndexPtr>> GetRef(std::string path) const;

  // Mutable copy for callers about to modify and Put back.
  sim::Task<StatusOr<IndexFile>> Get(std::string path) const;

  sim::Task<Status> Remove(std::string path);

  // Direct children (leaf names) of a directory in the global namespace.
  // Range-bounded: skips whole subtrees instead of filtering every
  // descendant.
  std::vector<std::string> ListChildren(const std::string& path) const;

  // True when the directory has at least one entry below it (O(log n);
  // cheaper than ListChildren when only emptiness matters).
  bool HasChildren(const std::string& path) const;

  // All namespace paths (for snapshots and consistency checks).
  std::vector<std::string> AllPaths() const;

  // --- system running state (also JSON, §4.2) ---

  sim::Task<Status> PutState(std::string key, json::Value v);
  sim::Task<StatusOr<json::Value>> GetState(std::string key) const;

  // --- durability (§4.2: MV is periodically burned into discs) ---

  // Packs every index file into a self-describing UDF image (under
  // /.mv/...) that the burn pipeline writes to discs like any other image.
  sim::Task<StatusOr<udf::Image>> BuildSnapshotImage(
      std::string image_id, std::uint64_t capacity) const;

  // Restores the namespace from a snapshot image (inverse of the above).
  // Existing index files are replaced. Keeps going past per-file failures
  // and reports the first error (annotated with how many more failed)
  // rather than aborting the whole restore.
  sim::Task<Status> RestoreFromSnapshot(const udf::Image& snapshot);

  // Wipes the namespace (simulating MV loss before a recovery).
  void WipeAll() {
    CacheClear();
    volume_->FormatQuick();
  }

  std::uint64_t index_count() const;
  disk::Volume* volume() { return volume_; }

  // --- decoded-index cache introspection ---

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;    // any Get not served from cache
    std::uint64_t evictions = 0;  // LRU capacity evictions only
  };
  const CacheStats& cache_stats() const { return cache_stats_; }
  std::size_t cache_size() const { return cache_map_.size(); }
  std::size_t cache_capacity() const { return cache_capacity_; }

  // MV file-name mapping (exposed for tests).
  static std::string IndexName(const std::string& path) {
    return "/idx" + path;
  }
  static constexpr std::string_view kSnapshotDir = "/.mv";

 private:
  struct CacheEntry {
    std::string path;
    IndexPtr index;  // immutable; hits share it, eviction can't invalidate
    std::uint64_t write_gen = 0;  // generation this decode corresponds to
    // Device ranges of the whole index file, valid for exactly this
    // generation (push invalidation drops the entry on any mutation):
    // hits replay the read charge from here instead of paying a second
    // file-table lookup.
    disk::Volume::ByteSegments segments;
  };
  using LruList = std::list<CacheEntry>;

  // The volume's mutation observer: drops whatever the write touched.
  void OnVolumeMutation(const std::string& name) const;

  // Decodes nothing itself: callers hand over the decoded index plus the
  // generation and the file's device mapping for that generation.
  void CacheInsert(const std::string& path, IndexPtr index,
                   std::uint64_t write_gen,
                   disk::Volume::ByteSegments segments) const;
  void CacheErase(std::string_view path) const;
  void CacheClear() const;

  disk::Volume* volume_;
  std::size_t cache_capacity_;
  // The cache is a performance detail of logically-const Gets. The map is
  // keyed on each entry's own path string (list nodes are stable), so
  // lookups and invalidations never build a key.
  mutable LruList lru_;  // front = most recently used
  // ros_analyze: allow(unordered-member): point lookups by path only;
  // eviction order comes from lru_, never from this map.
  mutable std::unordered_map<std::string_view, LruList::iterator> cache_map_;
  mutable CacheStats cache_stats_;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_METADATA_VOLUME_H_
