// OLFS tunables, with defaults matching the paper's prototype (§5.1).
#ifndef ROS_SRC_OLFS_PARAMS_H_
#define ROS_SRC_OLFS_PARAMS_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/drive/disc.h"
#include "src/drive/optical_drive.h"
#include "src/sim/retry.h"
#include "src/sim/time.h"

namespace ros::olfs {

// How a burn task behaves when a read misses on a disc whose array is
// being burned (§4.8).
enum class BusyDrivePolicy {
  kWaitForBurn,       // wait for the burning task to finish
  kInterruptAndSwap,  // interrupt, swap arrays, resume in append-burn mode
};

struct OlfsParams {
  // Media and redundancy schema (§4.7): 12-disc arrays, 11 data + 1 parity
  // (RAID-5) by default; 10 + 2 (RAID-6) under rigid requirements.
  drive::DiscType disc_type = drive::DiscType::kBdr25;
  // Shrinks media capacity for laptop-scale tests (0 = native capacity).
  std::uint64_t disc_capacity_override = 0;
  int parity_images = 1;

  // Preliminary bucket writing (§4.3): number of pre-created empty buckets
  // kept ready ("a couple of updatable buckets").
  int free_bucket_pool = 4;

  // Versioned updates (§4.6): a 1 KiB index block stores up to 15 entries.
  int max_version_entries = 15;

  // Forepart-data-stored mechanism (§4.8): first bytes of each file kept in
  // MV so reads can answer within ~2 ms while a disc is fetched.
  bool forepart_enabled = false;
  std::uint64_t forepart_bytes = 256 * kKiB;

  // Read cache (§4.1): disc-image-granular LRU capacity on the disk buffer.
  std::uint64_t read_cache_bytes = 50 * kTB;
  // Protected-segment share of the read cache's segmented LRU. Entries are
  // admitted probationary and promoted on re-reference, so one cold
  // sequential sweep cannot evict the hot working set. A value <= 0 falls
  // back to a plain LRU (the pre-scheduler shape, kept for benches).
  double read_cache_protected_fraction = 0.8;

  // Mechanically-aware fetch scheduling (§4.1: the MC "optimizes the usage
  // of mechanical resources"). When enabled, queued fetches are grouped by
  // tray (one load/unload cycle drains every waiter of that tray) and
  // dispatched in the order that minimizes roller rotation + arm travel.
  // Disabled, the fetch path degenerates to the first-come-first-served
  // bay scramble, kept as the bench/fetch_sched baseline.
  bool fetch_scheduler_enabled = true;
  // Namespace store backend (DESIGN.md §5i): on, mutations group-commit
  // into a WAL over memtable + sorted segments; off, the legacy
  // one-JSON-file-per-entry layout (kept in-binary as the baseline and
  // fallback).
  bool log_structured_mv_enabled = true;
  // Group-commit flush window for the log-structured backend's WAL.
  sim::Duration mv_commit_window = sim::Micros(100);
  // A queued fetch older than this is dispatched strict-FIFO regardless of
  // positioning cost, so tail latency under hostile locality is bounded by
  // (aging bound + one unload/load cycle). Negative disables aging; zero
  // makes every queued request immediately aged, i.e. strict FIFO.
  sim::Duration fetch_aging_bound = sim::Seconds(300);

  // Cross-layer hints (ROADMAP item 4). All three optimizations key off
  // AccessHint::stream, so untagged traffic is unaffected regardless of
  // these switches.
  //   - Affinity placement: burn batches cluster images co-accessed by one
  //     stream onto the same array (tray) instead of pure close order.
  //   - Tray prefetch: the per-stream successor model enqueues speculative
  //     loads through the FetchScheduler's background class.
  //   - Whole-tray readahead: a scan-hinted read stages up to
  //     `readahead_max_images` burned siblings of the fetched tray into
  //     the read cache's probationary segment (0 disables).
  bool affinity_placement_enabled = true;
  bool tray_prefetch_enabled = true;
  int readahead_max_images = 16;
  // How many closed images beyond the array quota to accumulate before
  // forming an affinity-clustered burn batch. A batch formed the moment
  // the quota is reached (the close-order timing) leaves the clusterer no
  // choice of membership; the window trades burn latency for placement
  // quality. Only consulted once tagged traffic has recorded co-access
  // edges — untagged workloads keep the original fire-at-quota timing.
  // Negative selects the default (one extra array's worth).
  int affinity_batch_window = -1;

  // Resolved affinity window (see affinity_batch_window).
  int affinity_window() const {
    return affinity_batch_window >= 0 ? affinity_batch_window
                                      : data_images_per_array();
  }

  // File-granular cache + prefetch (§4.1's future-work refinement):
  // files read from discs are retained individually (0 disables), and up
  // to `prefetch_siblings` directory neighbours are pulled in behind a
  // cold read (spatial locality across analytics scans).
  std::uint64_t file_cache_bytes = 0;
  int prefetch_siblings = 0;

  // Software-overhead model (§5.3 / Fig 7): each OLFS internal operation
  // (stat/mknod/write/read/close through FUSE) averages ~2.5 ms including
  // its direct I/O; this constant is the FUSE+OLFS software share, the
  // remainder being the operation's actual MV / disk-buffer access. A
  // kernel-user mode switch separates consecutive internal operations.
  sim::Duration internal_op_cost = sim::Millis(2.3);
  sim::Duration mode_switch_cost = sim::Micros(800);
  // Streaming data-path requests (FUSE write()/read() on an open handle)
  // avoid the metadata-path work; their per-request software cost is much
  // smaller (calibrated so ext4+OLFS streams at Fig 6's 433/648 MB/s).
  sim::Duration stream_op_cost = sim::Micros(200);

  // Burn scheduling: a burn task is created when a full array's worth of
  // data images is ready (§4.3). The controller staggers burn starts while
  // it stages each image to its drive (Fig 9).
  BusyDrivePolicy busy_drive_policy = BusyDrivePolicy::kWaitForBurn;

  // --- Decades-scale preservation (DESIGN.md §5j) ---
  // Media aging: deterministic per-disc latent-sector-error accrual that
  // grows with disc age and eases with burn generation. Disabled by
  // default, and a disabled model is byte- and tick-identical to none.
  drive::MediaAgingParams media_aging;
  // Scrub pass policy: with refresh enabled, an array found damaged (or
  // older than `refresh_age_years`, 0 = age never triggers) is refreshed —
  // every data member re-staged (damaged ones reconstructed from parity)
  // and re-burned onto fresh media, the old tray retired — so error
  // accumulation never exceeds what parity can recover. With refresh
  // disabled the scrub only repairs damaged members in place.
  bool scrub_refresh_enabled = true;
  double refresh_age_years = 0.0;
  // Generation migration: the first refresh switches blank-media
  // allocation to `migration_disc_type` (higher density, slower rot), so
  // refresh burns double as media-generation upgrades.
  bool generation_migration_enabled = false;
  drive::DiscType migration_disc_type = drive::DiscType::kBdr100;
  // Merkle audit manifests (built at burn time, persisted in the MV):
  // sampled leaf verification proves array integrity without full reads.
  bool audit_manifests_enabled = true;
  std::uint64_t audit_leaf_bytes = 256 * kKiB;

  // Self-healing budgets: transient (kUnavailable) mechanical faults during
  // a fetch re-run bay selection under `mech_retry`; transient burn-path
  // faults re-attempt the same array under `burn_retry` before the burn
  // manager escalates to spare media.
  sim::RetryPolicy mech_retry{.max_attempts = 3,
                              .initial_backoff = sim::Seconds(2)};
  sim::RetryPolicy burn_retry{.max_attempts = 3,
                              .initial_backoff = sim::Seconds(5)};

  // 11 (RAID-5) or 10 (RAID-6) data images per 12-disc array.
  int data_images_per_array() const { return 12 - parity_images; }

  std::uint64_t disc_capacity() const {
    return disc_capacity_override != 0 ? disc_capacity_override
                                       : drive::DiscCapacity(disc_type);
  }

  // Disk-buffer headroom reserved for the burn pipeline's own I/O
  // (parity images, checkpoints): user writes are refused once a volume's
  // free space drops below this, so the pipeline can always drain.
  std::uint64_t buffer_reserve_bytes() const {
    return 2 * bucket_capacity() + 16 * kMiB;
  }

  // Capacity available to a bucket/disc image. Under the
  // interrupt-and-swap policy every disc pre-formats a reserved metadata
  // zone (§4.8), which images must leave room for.
  std::uint64_t bucket_capacity() const {
    const std::uint64_t cap = disc_capacity();
    if (busy_drive_policy == BusyDrivePolicy::kInterruptAndSwap) {
      return cap - drive::MetadataZoneBytes(cap);
    }
    return cap;
  }
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_PARAMS_H_
