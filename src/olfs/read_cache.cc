#include "src/olfs/read_cache.h"

namespace ros::olfs {

void ReadCache::Admit(const std::string& image_id, std::uint64_t bytes) {
  auto it = index_.find(image_id);
  if (it != index_.end()) {
    // Re-admit: replace the size and refresh recency within the entry's
    // current segment (re-admission is a write, not a proven re-read).
    EntryList& list = it->second->segment == Segment::kProtected
                          ? protected_
                          : probationary_;
    used_ -= it->second->bytes;
    if (it->second->segment == Segment::kProtected) {
      protected_used_ -= it->second->bytes;
      protected_used_ += bytes;
    }
    it->second->bytes = bytes;
    used_ += bytes;
    list.splice(list.begin(), list, it->second);
    EnforceProtectedCapacity();
    return;
  }

  Segment segment = Segment::kProbationary;
  auto ghost = ghost_index_.find(image_id);
  if (ghost != ghost_index_.end()) {
    // The id was evicted recently and is back: it has reuse the
    // probationary segment could not see. Admit straight to protected.
    ++ghost_hits_;
    ghost_.erase(ghost->second);
    ghost_index_.erase(ghost);
    segment = Segment::kProtected;
  }
  EntryList& list =
      segment == Segment::kProtected ? protected_ : probationary_;
  list.push_front({image_id, bytes, segment});
  index_[image_id] = list.begin();
  used_ += bytes;
  if (segment == Segment::kProtected) {
    protected_used_ += bytes;
    EnforceProtectedCapacity();
  }
}

bool ReadCache::Touch(const std::string& image_id) {
  auto it = index_.find(image_id);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  if (plain_lru_ || it->second->segment == Segment::kProtected) {
    EntryList& list = plain_lru_ ? probationary_ : protected_;
    list.splice(list.begin(), list, it->second);
    return true;
  }
  // Probationary re-reference: promote to the protected segment's MRU end.
  it->second->segment = Segment::kProtected;
  protected_.splice(protected_.begin(), probationary_, it->second);
  protected_used_ += it->second->bytes;
  EnforceProtectedCapacity();
  return true;
}

void ReadCache::Remove(const std::string& image_id) {
  auto it = index_.find(image_id);
  if (it == index_.end()) {
    return;
  }
  used_ -= it->second->bytes;
  if (it->second->segment == Segment::kProtected) {
    protected_used_ -= it->second->bytes;
    protected_.erase(it->second);
  } else {
    probationary_.erase(it->second);
  }
  index_.erase(it);
  GhostRemember(image_id);
}

std::vector<std::string> ReadCache::EvictionCandidates() const {
  std::vector<std::string> out;
  std::uint64_t projected = used_;
  for (auto it = probationary_.rbegin();
       it != probationary_.rend() && projected > capacity_; ++it) {
    out.push_back(it->id);
    projected -= it->bytes;
  }
  for (auto it = protected_.rbegin();
       it != protected_.rend() && projected > capacity_; ++it) {
    out.push_back(it->id);
    projected -= it->bytes;
  }
  return out;
}

void ReadCache::EnforceProtectedCapacity() {
  while (protected_used_ > protected_capacity_ && !protected_.empty()) {
    auto last = std::prev(protected_.end());
    protected_used_ -= last->bytes;
    last->segment = Segment::kProbationary;
    // Demotion lands at the probationary MRU end: the entry was hot once,
    // so it gets a head start over never-referenced admissions.
    probationary_.splice(probationary_.begin(), protected_, last);
  }
}

void ReadCache::GhostRemember(const std::string& image_id) {
  if (plain_lru_) {
    return;
  }
  auto it = ghost_index_.find(image_id);
  if (it != ghost_index_.end()) {
    ghost_.erase(it->second);
    ghost_index_.erase(it);
  }
  ghost_.push_front(image_id);
  ghost_index_[image_id] = ghost_.begin();
  while (ghost_.size() > kGhostEntries) {
    ghost_index_.erase(ghost_.back());
    ghost_.pop_back();
  }
}

}  // namespace ros::olfs
