#include "src/olfs/read_cache.h"

namespace ros::olfs {

void ReadCache::Admit(const std::string& image_id, std::uint64_t bytes) {
  auto it = index_.find(image_id);
  if (it != index_.end()) {
    used_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front({image_id, bytes});
  index_[image_id] = lru_.begin();
  used_ += bytes;
}

void ReadCache::Touch(const std::string& image_id) {
  auto it = index_.find(image_id);
  if (it == index_.end()) {
    return;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
}

void ReadCache::Remove(const std::string& image_id) {
  auto it = index_.find(image_id);
  if (it == index_.end()) {
    return;
  }
  used_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

std::vector<std::string> ReadCache::EvictionCandidates() const {
  std::vector<std::string> out;
  std::uint64_t projected = used_;
  for (auto it = lru_.rbegin(); it != lru_.rend() && projected > capacity_;
       ++it) {
    out.push_back(it->id);
    projected -= it->bytes;
  }
  return out;
}

}  // namespace ros::olfs
