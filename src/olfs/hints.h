// Cross-layer access hints (ROADMAP item 4).
//
// Frontends tag requests with a stream/job id so the storage layers can
// learn co-access: the bucket layer records write/read affinity edges
// (clustered onto one tray at burn-plan time), the TrayPredictor learns
// tray successions per stream, and a scan hint triggers whole-tray
// readahead. A default-constructed hint (stream == 0) is inert: untagged
// traffic takes byte- and cycle-identical paths to a build without hints.
#ifndef ROS_SRC_OLFS_HINTS_H_
#define ROS_SRC_OLFS_HINTS_H_

#include <cstdint>

namespace ros::olfs {

struct AccessHint {
  // Stream/job identity; 0 means "untagged" and disables all hint logic.
  std::uint64_t stream = 0;
  // The caller announces a batch scan: sibling images on a fetched tray
  // are staged ahead into the read cache's probationary segment.
  bool scan = false;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_HINTS_H_
