// MV index files (§4.2, §4.6).
//
// Every entry in the global namespace (file or directory) has an index file
// with the same name in the Metadata Volume. Index files carry no file
// data, only locations: a ring of up to 15 version entries, each recording
// whether the payload currently lives in an open Bucket ("B"), a disc
// Image in the disk buffer ("I"), or on a Disc ("D"), plus the ordered
// parts of a file that was split across buckets (§4.5). Index files are
// JSON for platform independence and interchangeability.
#ifndef ROS_SRC_OLFS_INDEX_FILE_H_
#define ROS_SRC_OLFS_INDEX_FILE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"

namespace ros::olfs {

// Where a version's payload lives. The transition B -> I -> D happens as
// buckets close into images and images burn onto discs; the index file is
// only rewritten on version changes, so readers resolve the current tier
// through the image id (see DiscImageStore).
enum class LocationKind { kBucket, kImage, kDisc };

char LocationCode(LocationKind kind);
StatusOr<LocationKind> LocationFromCode(char code);

// One contiguous piece of a (possibly split) file.
struct FilePart {
  std::string image_id;  // bucket/image/disc all share the image id
  std::uint64_t size = 0;

  friend bool operator==(const FilePart&, const FilePart&) = default;
};

struct VersionEntry {
  int version = 1;
  LocationKind location = LocationKind::kBucket;
  std::uint64_t total_size = 0;
  std::vector<FilePart> parts;
  bool tombstone = false;  // version marks a logical delete

  friend bool operator==(const VersionEntry&, const VersionEntry&) = default;
};

enum class EntryType { kFile, kDirectory };

class IndexFile {
 public:
  IndexFile() = default;
  IndexFile(std::string path, EntryType type)
      : path_(std::move(path)), type_(type) {}

  const std::string& path() const { return path_; }
  EntryType type() const { return type_; }

  const std::vector<VersionEntry>& entries() const { return entries_; }
  bool has_versions() const { return !entries_.empty(); }

  // The highest version number ever assigned (may exceed entries_.size()
  // once the 15-entry ring has wrapped, §4.6).
  int latest_version() const { return next_version_ - 1; }

  // Latest entry; error if the file has no versions or is deleted.
  StatusOr<const VersionEntry*> Latest() const;

  // Looks up a historic version still present in the ring.
  StatusOr<const VersionEntry*> Version(int version) const;

  // Appends a version; overwrites the oldest entry once `max_entries` are
  // recorded (the burned MV history still holds the old ones, §4.6).
  void AddVersion(VersionEntry entry, int max_entries);

  // Rewrites the latest entry in place (tier promotions B->I->D).
  Status UpdateLatest(const VersionEntry& entry);

  // Forepart payload (§4.8), stored alongside the locations.
  void set_forepart(std::vector<std::uint8_t> data) {
    forepart_ = std::move(data);
  }
  const std::vector<std::uint8_t>& forepart() const { return forepart_; }

  // JSON round trip (the on-MV representation). ToJson is a hand-rolled
  // writer into one reserved buffer, byte-identical to dumping the
  // equivalent json::Value tree (deterministic key order — index bytes
  // feed parity, so stability matters).
  std::string ToJson() const;
  // Decodes `text`. Canonical documents (the exact shape ToJson emits) take
  // a scanner fast path that never builds a json::Value tree; everything
  // else — reordered keys, escapes, corruption — falls back to FromJsonTree,
  // so error behaviour and accepted inputs are identical to the tree
  // decoder on every input.
  static StatusOr<IndexFile> FromJson(std::string_view text);
  // The reference tree-based decoder (exposed for differential tests and
  // the mv_hotpath bench's pre-change baseline).
  static StatusOr<IndexFile> FromJsonTree(std::string_view text);

  // Approximate on-MV footprint in bytes (the paper quotes ~388 bytes
  // typical with one entry).
  std::uint64_t ApproximateSize() const { return ToJson().size(); }

 private:
  // Scanner-based decoder for canonical documents; nullopt means "shape
  // not recognized, use the tree decoder".
  static std::optional<IndexFile> FastParse(std::string_view text);

  std::string path_;
  EntryType type_ = EntryType::kFile;
  std::vector<VersionEntry> entries_;
  int next_version_ = 1;
  std::vector<std::uint8_t> forepart_;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_INDEX_FILE_H_
