// Maintenance Interface (MI), §4.1: "OLFS also offers a Maintenance
// Interface module to configure and maintain the system by an interactive
// interface for administrators."
//
// MI provides the administrator-facing operations: a structured status
// report (capacity, tiers, pipeline, mechanics, power), checkpointing the
// controller's running state into the MV (§4.2: "Once ROS crashes, OLFS
// can recover from its previous checkpoint state with all state
// information stored in MV"), restoring a replacement controller from
// that checkpoint, and triggering scrubs.
#ifndef ROS_SRC_OLFS_MAINTENANCE_H_
#define ROS_SRC_OLFS_MAINTENANCE_H_

#include <string>

#include "src/common/json.h"
#include "src/olfs/olfs.h"
#include "src/olfs/power.h"

namespace ros::olfs {

class Maintenance {
 public:
  explicit Maintenance(Olfs* olfs) : olfs_(olfs) { ROS_CHECK(olfs); }

  // A JSON status report of the whole rack (the MI console's main view).
  json::Value StatusReport() const;

  // Persists the controller's running state — DAindex, the disc image
  // registry (DILindex and buffer residency) and bucket numbering — into
  // the MV, flushing buffered images' serialized structure to the disk
  // buffer so a restart can reload them.
  sim::Task<Status> Checkpoint();

  // Rebuilds a freshly-booted controller's state from the last
  // checkpoint: much faster than a physical disc scan (§4.4), but
  // requires the MV (and disk buffer) to have survived.
  sim::Task<Status> RestoreFromCheckpoint();

  // Administrative scrub pass (§4.7), as the console's "verify media" op.
  sim::Task<StatusOr<int>> TriggerScrub() { return olfs_->ScrubAndRepair(); }

  static constexpr const char* kCheckpointKey = "controller-checkpoint";

 private:
  static std::string CheckpointFileName(const std::string& image_id) {
    return "/ckpt/" + image_id;
  }

  Olfs* olfs_;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_MAINTENANCE_H_
