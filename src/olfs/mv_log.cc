#include "src/olfs/mv_log.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"

namespace ros::olfs {

namespace mvlog {

namespace {

void PutU32(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t GetU32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

// CRC over the header (with the crc field itself zeroed) chained through
// key and value, so every framed byte is covered.
std::uint32_t RecordCrc(std::span<const std::uint8_t> header10,
                        std::string_view key, std::string_view value) {
  std::uint32_t c = Crc32(header10);
  c = Crc32({reinterpret_cast<const std::uint8_t*>(key.data()), key.size()},
            c);
  return Crc32(
      {reinterpret_cast<const std::uint8_t*>(value.data()), value.size()}, c);
}

}  // namespace

std::size_t EncodedSize(const Record& record) {
  return kRecordHeaderBytes + record.key.size() + record.value.size();
}

void AppendRecord(const Record& record, std::vector<std::uint8_t>* out) {
  ROS_CHECK(record.key.size() <= kMaxKeyBytes);
  ROS_CHECK(record.value.size() <= kMaxValueBytes);
  std::uint8_t header[kRecordHeaderBytes] = {};
  header[0] = static_cast<std::uint8_t>(record.type);
  header[1] = 0;  // flags, reserved
  PutU32(static_cast<std::uint32_t>(record.key.size()), header + 2);
  PutU32(static_cast<std::uint32_t>(record.value.size()), header + 6);
  const std::uint32_t crc = RecordCrc({header, 10}, record.key, record.value);
  PutU32(crc, header + 10);
  // Grow geometrically: a bare reserve(size + k) reallocates to exactly
  // that size, so per-record appends into one big buffer (SegmentBuilder)
  // would copy the whole buffer every time — O(n^2) in segment bytes.
  const std::size_t need = out->size() + EncodedSize(record);
  if (out->capacity() < need) {
    out->reserve(std::max(need, out->capacity() + out->capacity() / 2));
  }
  out->insert(out->end(), header, header + kRecordHeaderBytes);
  out->insert(out->end(), record.key.begin(), record.key.end());
  out->insert(out->end(), record.value.begin(), record.value.end());
}

StatusOr<Record> DecodeRecord(std::span<const std::uint8_t> data,
                              std::size_t* offset) {
  const std::size_t at = *offset;
  if (at > data.size() || data.size() - at < kRecordHeaderBytes) {
    return InvalidArgumentError("mvlog: truncated record header");
  }
  const std::uint8_t* header = data.data() + at;
  const std::uint8_t type = header[0];
  if (type < static_cast<std::uint8_t>(RecordType::kPut) ||
      type > static_cast<std::uint8_t>(RecordType::kPutState)) {
    return InvalidArgumentError("mvlog: unknown record type");
  }
  const std::size_t key_len = GetU32(header + 2);
  const std::size_t val_len = GetU32(header + 6);
  if (key_len > kMaxKeyBytes || val_len > kMaxValueBytes) {
    return InvalidArgumentError("mvlog: hostile record lengths");
  }
  const std::size_t body = key_len + val_len;
  if (data.size() - at - kRecordHeaderBytes < body) {
    return InvalidArgumentError("mvlog: record body past end of buffer");
  }
  const char* key_at =
      reinterpret_cast<const char*>(header + kRecordHeaderBytes);
  const std::string_view key(key_at, key_len);
  const std::string_view value(key_at + key_len, val_len);
  const std::uint32_t want = GetU32(header + 10);
  if (RecordCrc({header, 10}, key, value) != want) {
    return DataLossError("mvlog: record checksum mismatch");
  }
  *offset = at + kRecordHeaderBytes + body;
  return Record{static_cast<RecordType>(type), std::string(key),
                std::string(value)};
}

ScanStats ScanRecords(std::span<const std::uint8_t> data,
                      const std::function<void(Record)>& fn) {
  ScanStats stats;
  std::size_t offset = 0;
  while (offset < data.size()) {
    auto record = DecodeRecord(data, &offset);
    if (!record.ok()) {
      stats.torn = true;
      break;
    }
    ++stats.records;
    stats.valid_bytes = offset;
    fn(std::move(*record));
  }
  if (!stats.torn) {
    stats.valid_bytes = data.size();
  }
  return stats;
}

}  // namespace mvlog

std::string MvLog::FileName(std::uint64_t seq) {
  std::string digits = std::to_string(seq);
  std::string name(kFilePrefix);
  name.append(digits.size() < 9 ? 9 - digits.size() : 0, '0');
  name += digits;
  return name;
}

std::optional<std::uint64_t> MvLog::SeqOfFileName(const std::string& name) {
  if (name.size() <= kFilePrefix.size() ||
      name.compare(0, kFilePrefix.size(), kFilePrefix) != 0) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = kFilePrefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return std::nullopt;
    }
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return seq;
}

sim::Task<Status> MvLog::Append(mvlog::Record record) {
  if (active_ != nullptr && active_->seq != seq_) {
    sealed_.push_back(std::move(active_));
    active_ = nullptr;
  }
  if (active_ == nullptr) {
    active_ = std::make_shared<Batch>(sim_, seq_);
  }
  BatchPtr batch = active_;
  std::vector<std::uint8_t> bytes;
  mvlog::AppendRecord(record, &bytes);
  batch->pieces.push_back(std::move(bytes));
  ++batch->records;
  if (!flusher_running_) {
    flusher_running_ = true;
    sim_.Spawn(FlushLoop(alive_));
  }
  co_await batch->done.Wait();
  co_return batch->result;
}

sim::Task<Status> MvLog::Sync() {
  // The last batch overall flushes last (FIFO), so awaiting it covers
  // everything enqueued before this call.
  BatchPtr last = active_;
  if (last == nullptr && !sealed_.empty()) {
    last = sealed_.back();
  }
  if (last == nullptr) {
    last = inflight_;
  }
  if (last == nullptr) {
    co_return OkStatus();
  }
  co_await last->done.Wait();
  co_return last->result;
}

void MvLog::AdvanceSeq() {
  // The still-active batch keeps its old tag: everything in it was
  // enqueued before this instant, i.e. belongs to the generation being
  // frozen. Append() seals it on the next record.
  ++seq_;
}

sim::Task<Status> MvLog::DeleteBelow(std::uint64_t seq) {
  // The caller's frame suspends inside each Delete; if the writer is
  // destroyed meanwhile, members are gone — bail on the shared flag.
  const std::shared_ptr<const bool> alive = alive_;
  while (*alive && min_seq_ < seq) {
    const std::string name = FileName(min_seq_);
    ++min_seq_;
    if (!volume_->Exists(name)) {
      continue;  // generation produced no records
    }
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Delete(name));
  }
  co_return OkStatus();
}

void MvLog::Reset(std::uint64_t seq, std::uint64_t min_seq) {
  auto abort_batch = [](const BatchPtr& batch) {
    if (batch != nullptr && !batch->done.is_set()) {
      batch->result = UnavailableError("mvlog: log reset");
      batch->done.Set();
    }
  };
  abort_batch(active_);
  active_ = nullptr;
  for (const BatchPtr& batch : sealed_) {
    abort_batch(batch);
  }
  sealed_.clear();
  // An in-flight batch cannot be recalled (its device write was issued);
  // it resolves on its own. The flusher drains and exits once it sees an
  // empty queue.
  seq_ = seq;
  min_seq_ = min_seq;
}

sim::Task<void> MvLog::FlushLoop(std::shared_ptr<const bool> alive) {
  while (true) {
    if (sealed_.empty() && active_ == nullptr) {
      flusher_running_ = false;
      co_return;
    }
    if (sealed_.empty()) {
      // Let the active batch accumulate for the commit window, then seal
      // whatever is there. Appends (and seals) during the wait are fine:
      // the queue is re-examined after it.
      co_await sim_.Delay(options_.commit_window);
      if (!*alive) {
        co_return;
      }
      if (active_ != nullptr && sealed_.empty()) {
        sealed_.push_back(std::move(active_));
        active_ = nullptr;
      }
      if (sealed_.empty()) {
        continue;  // a Reset() raced the window
      }
    }
    BatchPtr batch = sealed_.front();
    sealed_.pop_front();
    inflight_ = batch;
    const std::string name = FileName(batch->seq);
    disk::Volume* const volume = volume_;  // survives writer destruction
    Status status = OkStatus();
    if (!volume->Exists(name)) {
      status = co_await volume->Create(name);
      if (!*alive) {
        batch->result = UnavailableError("mvlog: writer destroyed");
        batch->done.Set();
        co_return;
      }
    }
    if (status.ok()) {
      std::uint64_t bytes = 0;
      for (const std::vector<std::uint8_t>& piece : batch->pieces) {
        bytes += piece.size();
      }
      status = co_await volume->AppendBatch(name, std::move(batch->pieces));
      if (!*alive) {
        batch->result = status;
        batch->done.Set();
        co_return;
      }
      if (status.ok()) {
        stats_.bytes_committed += bytes;
      }
    }
    ++stats_.batches_committed;
    stats_.records_appended += batch->records;
    stats_.max_batch_records =
        std::max(stats_.max_batch_records, batch->records);
    if (!status.ok()) {
      ++stats_.commit_failures;
    }
    batch->result = status;
    batch->done.Set();
    inflight_ = nullptr;
  }
}

}  // namespace ros::olfs
