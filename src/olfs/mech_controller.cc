#include "src/olfs/mech_controller.h"

#include <utility>

#include "src/common/logging.h"

namespace ros::olfs {

MechController::MechController(sim::Simulator& sim, mech::Library* library,
                               std::vector<drive::DriveSet*> drive_sets,
                               DiscInventory* inventory,
                               const OlfsParams& params)
    : sim_(sim), library_(library), drive_sets_(std::move(drive_sets)),
      params_(params), media_type_(params.disc_type), bay_changed_(sim),
      inventory_(inventory) {
  ROS_CHECK(library_ != nullptr);
  ROS_CHECK(inventory_ != nullptr);
  ROS_CHECK(!drive_sets_.empty());
  ROS_CHECK(static_cast<int>(drive_sets_.size()) <= library_->num_bays());
  bay_states_.assign(drive_sets_.size(), BayState::kEmpty);
  bay_trays_.assign(drive_sets_.size(), std::nullopt);
  last_parked_.assign(drive_sets_.size(), 0);
  // Boot inventory: a replacement controller finds whatever arrays the
  // previous one left parked in the drives (the rack's physical state
  // outlives the software).
  for (std::size_t i = 0; i < drive_sets_.size(); ++i) {
    const auto& loaded = library_->bay(static_cast<int>(i)).loaded_from;
    if (loaded.has_value()) {
      bay_trays_[i] = *loaded;
      bay_states_[i] = BayState::kParked;
    }
  }
}

drive::Disc* MechController::GetOrCreateDisc(mech::DiscAddress address) {
  ROS_CHECK(address.IsValid(library_->num_rollers()));
  return inventory_->GetOrCreate(address, media_type_,
                                 params_.disc_capacity_override);
}

drive::Disc* MechController::DiscAt(mech::DiscAddress address) {
  return GetOrCreateDisc(address);
}

drive::OpticalDrive* MechController::DriveHolding(
    mech::DiscAddress address) {
  for (int bay = 0; bay < num_bays(); ++bay) {
    if (bay_trays_[bay].has_value() && *bay_trays_[bay] == address.tray) {
      return &drive_sets_[bay]->drive(address.index);
    }
  }
  return nullptr;
}

sim::Task<StatusOr<int>> MechController::AcquireBay(
    std::optional<mech::TrayAddress> want, bool wait) {
  while (true) {
    // 1. A bay already holding the wanted array: take it when parked, or
    // queue behind its current user — grabbing a different bay would
    // double-load the same tray.
    if (want.has_value()) {
      bool want_is_busy = false;
      for (int bay = 0; bay < num_bays(); ++bay) {
        if (bay_trays_[bay].has_value() && *bay_trays_[bay] == *want) {
          if (bay_states_[bay] == BayState::kParked) {
            bay_states_[bay] = BayState::kBusy;
            co_return bay;
          }
          want_is_busy = true;
        }
      }
      if (want_is_busy) {
        if (!wait) {
          co_return UnavailableError("bay holding the wanted array is busy");
        }
        co_await bay_changed_.Wait();
        continue;
      }
    }
    // 2. An empty bay.
    for (int bay = 0; bay < num_bays(); ++bay) {
      if (bay_states_[bay] == BayState::kEmpty) {
        bay_states_[bay] = BayState::kBusy;
        co_return bay;
      }
    }
    // 3. A parked bay (caller unloads it). Utility-aware victim choice:
    // a parked array that queued fetches are waiting for is worth more
    // than one nobody wants, and among equally wanted arrays the least
    // recently parked is the weakest locality bet.
    int victim = -1;
    bool victim_demand = false;
    std::uint64_t victim_stamp = 0;
    for (int bay = 0; bay < num_bays(); ++bay) {
      if (bay_states_[bay] != BayState::kParked) {
        continue;
      }
      const bool demand = demand_oracle_ && bay_trays_[bay].has_value() &&
                          demand_oracle_(*bay_trays_[bay]);
      if (victim < 0 || std::pair(demand, last_parked_[bay]) <
                            std::pair(victim_demand, victim_stamp)) {
        victim = bay;
        victim_demand = demand;
        victim_stamp = last_parked_[bay];
      }
    }
    if (victim >= 0) {
      bay_states_[victim] = BayState::kBusy;
      co_return victim;
    }
    if (!wait) {
      co_return UnavailableError("all drive bays are busy");
    }
    co_await bay_changed_.Wait();
  }
}

bool MechController::TryClaimBay(int bay) {
  if (bay_states_.at(bay) == BayState::kBusy) {
    return false;
  }
  bay_states_[bay] = BayState::kBusy;
  return true;
}

void MechController::ReleaseBay(int bay) {
  ROS_CHECK(bay_states_.at(bay) == BayState::kBusy);
  if (bay_trays_[bay].has_value()) {
    bay_states_[bay] = BayState::kParked;
    last_parked_[bay] = ++park_clock_;
  } else {
    bay_states_[bay] = BayState::kEmpty;
  }
  bay_changed_.NotifyAll();
}

sim::Task<Status> MechController::LoadArray(mech::TrayAddress tray, int bay) {
  ROS_CHECK(bay_states_.at(bay) == BayState::kBusy);
  if (bay_trays_[bay].has_value()) {
    co_return FailedPreconditionError("bay still holds an array");
  }
  ROS_CO_RETURN_IF_ERROR(co_await library_->LoadArray(tray, bay));
  // The mechanical separation placed the 12 discs into the 12 drives;
  // register the media with the drive models.
  for (int i = 0; i < mech::kDiscsPerTray; ++i) {
    drive::Disc* disc = GetOrCreateDisc({tray, i});
    Status status = drive_sets_[bay]->drive(i).InsertDisc(disc);
    if (!status.ok()) {
      co_return status;
    }
  }
  bay_trays_[bay] = tray;
  co_return OkStatus();
}

sim::Task<Status> MechController::UnloadArray(int bay) {
  ROS_CHECK(bay_states_.at(bay) == BayState::kBusy);
  if (!bay_trays_[bay].has_value()) {
    co_return FailedPreconditionError("bay is empty");
  }
  for (int i = 0; i < mech::kDiscsPerTray; ++i) {
    auto disc = drive_sets_[bay]->drive(i).EjectDisc();
    if (!disc.ok()) {
      co_return disc.status();
    }
  }
  ROS_CO_RETURN_IF_ERROR(co_await library_->UnloadArray(bay));
  bay_trays_[bay].reset();
  co_return OkStatus();
}

}  // namespace ros::olfs
