// Affinity placement: cluster images that a stream wrote or read together
// onto the same disc array (the XMLtapes/ARC co-location principle — the
// cheapest seek is the one a neighbouring object never needs; PAPERS.md,
// ROADMAP item 4).
//
// The tracker records (stream, image) edges from the write and read paths;
// at burn-plan time BurnManager asks it to order the batch so images
// sharing streams land on one tray. With no recorded edges the plan is
// exactly the close-order prefix, so untagged workloads burn identically
// to a build without the tracker.
#ifndef ROS_SRC_OLFS_AFFINITY_H_
#define ROS_SRC_OLFS_AFFINITY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ros::olfs {

class AffinityTracker {
 public:
  void RecordWrite(std::uint64_t stream, const std::string& image_id);
  void RecordRead(std::uint64_t stream, const std::string& image_id);

  // Picks `quota` images from `available` (close order, oldest first).
  // Greedy clustering: seed with the oldest image, then repeatedly add the
  // candidate sharing the most streams with the already-selected set,
  // breaking ties by close order. Deterministic, and degenerates to
  // available[0..quota) when no edges touch the candidates.
  std::vector<std::string> PlanBatch(const std::vector<std::string>& available,
                                     int quota) const;

  // Distinct (stream, image) edges recorded so far.
  std::uint64_t edges() const { return edges_; }

 private:
  void Record(std::uint64_t stream, const std::string& image_id);

  std::map<std::string, std::set<std::uint64_t>> image_streams_;
  std::uint64_t edges_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_AFFINITY_H_
