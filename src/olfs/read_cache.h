// Read Cache (RC), §4.1: disc-image-granular LRU over the disk buffer.
//
// Burned images stay cached until capacity pressure evicts the least
// recently used; unburned images are pinned (their only copy is the
// buffer). The cache tracks bytes, not image counts, because image sizes
// vary (partially-filled final buckets, parity images).
#ifndef ROS_SRC_OLFS_READ_CACHE_H_
#define ROS_SRC_OLFS_READ_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace ros::olfs {

class ReadCache {
 public:
  explicit ReadCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  // Records a (cached, burned) image as most recently used.
  void Admit(const std::string& image_id, std::uint64_t bytes);

  // Marks a hit, refreshing recency. Unknown ids are ignored.
  void Touch(const std::string& image_id);

  // Removes an image (because it was evicted or re-opened).
  void Remove(const std::string& image_id);

  bool Contains(const std::string& image_id) const {
    return index_.count(image_id) > 0;
  }

  // Ids to evict (LRU first) until the cache fits its capacity again.
  std::vector<std::string> EvictionCandidates() const;

  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void RecordMiss() { ++misses_; }

 private:
  struct Entry {
    std::string id;
    std::uint64_t bytes;
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_READ_CACHE_H_
