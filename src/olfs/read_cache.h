// Read Cache (RC), §4.1: disc-image-granular segmented LRU (SLRU) over the
// disk buffer.
//
// Burned images stay cached until capacity pressure evicts them; unburned
// images are pinned (their only copy is the buffer). The cache tracks
// bytes, not image counts, because image sizes vary (partially-filled final
// buckets, parity images).
//
// Segmentation (probationary/protected) gives scan resistance: an image is
// admitted probationary and only a re-reference promotes it to the
// protected segment, so one cold sequential sweep or parity scrub churns
// through the probationary segment without evicting the hot working set.
// A ghost list remembers recently evicted ids (no bytes); re-admitting a
// ghost goes straight to the protected segment — the image proved it has
// reuse beyond what the probationary segment could see.
#ifndef ROS_SRC_OLFS_READ_CACHE_H_
#define ROS_SRC_OLFS_READ_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace ros::olfs {

class ReadCache {
 public:
  // `protected_fraction` of the capacity is reserved for the protected
  // segment; <= 0 degenerates to a plain LRU with no ghost list (the
  // pre-SLRU shape, kept as the bench baseline).
  explicit ReadCache(std::uint64_t capacity_bytes,
                     double protected_fraction = 0.8)
      : capacity_(capacity_bytes),
        protected_capacity_(
            protected_fraction <= 0
                ? 0
                : static_cast<std::uint64_t>(
                      static_cast<double>(capacity_bytes) *
                      (protected_fraction < 1.0 ? protected_fraction : 1.0))),
        plain_lru_(protected_fraction <= 0) {}

  // Records a (cached, burned) image as most recently used. New entries
  // enter the probationary segment unless the ghost list remembers the id,
  // in which case they are admitted directly to the protected segment.
  void Admit(const std::string& image_id, std::uint64_t bytes);

  // Marks a reference. Known ids count a hit (refreshing recency and
  // promoting probationary entries to the protected segment) and return
  // true; unknown ids count a miss and return false. Hit and miss
  // accounting both live here so the two counters can never drift apart.
  bool Touch(const std::string& image_id);

  // Removes an image (because it was evicted or re-opened); the id is
  // remembered in the ghost list.
  void Remove(const std::string& image_id);

  bool Contains(const std::string& image_id) const {
    return index_.count(image_id) > 0;
  }

  // Ids to evict until the cache fits its capacity again: probationary
  // LRU first, protected LRU only if the probationary segment alone is
  // not enough.
  std::vector<std::string> EvictionCandidates() const;

  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  // Re-admissions: entries whose eviction the ghost list remembered and
  // that came back, earning direct admission to the protected segment.
  std::uint64_t ghost_hits() const { return ghost_hits_; }
  // Current ghost-list occupancy (bounded by kGhostEntries).
  std::size_t ghost_entries() const { return ghost_.size(); }
  std::uint64_t protected_bytes() const { return protected_used_; }
  std::uint64_t probationary_bytes() const { return used_ - protected_used_; }

  // Test/introspection hook: is the id currently in the protected segment?
  bool InProtected(const std::string& image_id) const {
    auto it = index_.find(image_id);
    return it != index_.end() && it->second->segment == Segment::kProtected;
  }

 private:
  enum class Segment { kProbationary, kProtected };

  struct Entry {
    std::string id;
    std::uint64_t bytes;
    Segment segment;
  };
  using EntryList = std::list<Entry>;

  // Demotes protected-LRU entries back to probationary MRU until the
  // protected segment fits its share of the capacity.
  void EnforceProtectedCapacity();
  void GhostRemember(const std::string& image_id);

  std::uint64_t capacity_;
  std::uint64_t protected_capacity_;
  bool plain_lru_;
  std::uint64_t used_ = 0;
  std::uint64_t protected_used_ = 0;
  EntryList probationary_;  // front = most recent
  EntryList protected_;     // front = most recent
  // ros_analyze: allow(unordered-member): point lookups by id only;
  // segment order comes from the two entry lists.
  std::unordered_map<std::string, EntryList::iterator> index_;

  // Ghost list of recently evicted ids (front = most recent), bounded by
  // entry count so its memory footprint stays negligible.
  static constexpr std::size_t kGhostEntries = 1024;
  std::list<std::string> ghost_;
  // ros_analyze: allow(unordered-member): point lookups by id only;
  // ghost recency order comes from ghost_.
  std::unordered_map<std::string, std::list<std::string>::iterator>
      ghost_index_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t ghost_hits_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_READ_CACHE_H_
