#include "src/olfs/metadata_volume.h"

#include <algorithm>
#include <span>
#include <utility>

#include "src/common/hash.h"
#include "src/sim/join.h"

namespace ros::olfs {

namespace {

// Keys in the "i" domain (namespace indexes) count toward index_count();
// "s" keys (running state) do not. Replay sees keys from disk, so guard
// against empty/hostile ones.
bool IsIndexKey(const std::string& key) {
  return !key.empty() && key[0] == 'i';
}

// Background work that wakes to find the store reset (WipeAll) or
// destroyed bails with this; it is recorded, never surfaced to callers.
Status AbortedErrorForReset() {
  return UnavailableError("mv: store reset during background work");
}

}  // namespace

// --- construction / destruction ---------------------------------------

MetadataVolume::MetadataVolume(sim::Simulator& sim, disk::Volume* volume,
                               Options options)
    : volume_(volume), cache_capacity_(options.cache_capacity), sim_(&sim),
      options_(options) {
  volume_->SetMutationObserver(
      [this](const std::string& name) { OnVolumeMutation(name); });
  if (options_.log_structured) {
    log_ = std::make_unique<MvLog>(sim, volume,
                                   MvLog::Options{options_.commit_window});
    alive_ = std::make_shared<bool>(true);
    open_done_ = std::make_unique<sim::Event>(sim);
    pin_cv_ = std::make_unique<sim::ConditionVariable>(sim);
    // A volume carrying a prior incarnation's log starts closed; the first
    // operation (or an explicit Open) replays it.
    opened_ = !volume_->AnyWithPrefix(std::string(MvLog::kFilePrefix)) &&
              !volume_->AnyWithPrefix(std::string(mvseg::kFilePrefix));
  }
}

MetadataVolume::~MetadataVolume() {
  volume_->SetMutationObserver(nullptr);
  if (alive_ != nullptr) {
    // Detached flush/compaction frames that resume later see this and
    // return without touching the dead store.
    *alive_ = false;
  }
}

// --- open / recovery ---------------------------------------------------

sim::Task<Status> MetadataVolume::Open() { co_return co_await EnsureOpen(); }

sim::Task<Status> MetadataVolume::EnsureOpen() const {
  if (!ls() || opened_) {
    co_return OkStatus();
  }
  while (!opened_) {
    if (opening_) {
      co_await open_done_->Wait();
      continue;  // re-check; retry recovery ourselves if it failed
    }
    opening_ = true;
    Status status = co_await RecoverLs();
    opening_ = false;
    open_done_->Pulse();
    if (!status.ok()) {
      co_return status;
    }
  }
  co_return OkStatus();
}

sim::Task<Status> MetadataVolume::RecoverLs() const {
  // Restartable: a failed attempt leaves partial replay state behind, so
  // every attempt begins from scratch.
  ResetLsState();

  // Segments first, in file-name order — "/mvseg.<rank>.<id>" sorts as
  // (rank, id), oldest data first, so newer records shadow older ones as
  // they apply. A damaged segment keeps its cleanly decoded prefix
  // (strictly better than dropping the file) and is counted.
  const std::vector<std::string> seg_names =
      volume_->List(std::string(mvseg::kFilePrefix));
  for (std::size_t i = 0; i < seg_names.size(); ++i) {
    const std::string name = seg_names[i];
    const auto parsed_name = mvseg::ParseSegmentFileName(name);
    if (!parsed_name.has_value()) {
      ++counters_.corrupt_segments;
      continue;
    }
    auto data = co_await volume_->ReadAll(name);
    if (!data.ok()) {
      co_return data.status();  // device-level failure, not media rot
    }
    SegmentPtr info = std::make_shared<SegmentInfo>();
    info->rank = parsed_name->rank;
    info->id = parsed_name->id;
    info->file = name;
    info->bytes = data->size();
    segments_.push_back(info);
    segs_by_id_.emplace(info->id, info);
    Status parsed = mvseg::ParseSegment(
        std::span<const std::uint8_t>(data->data(), data->size()), nullptr,
        [this, &info](mvlog::Record record, std::uint64_t offset,
                      std::uint32_t length) {
          ++info->records_total;
          auto kit = keydir_.find(record.key);
          if (record.type == mvlog::RecordType::kRemove) {
            if (kit != keydir_.end()) {
              DecLiveRef(kit->second);
              if (IsIndexKey(record.key)) {
                --live_index_count_;
              }
              keydir_.erase(kit);
            }
            return;
          }
          if (kit == keydir_.end()) {
            keydir_.emplace(record.key, KeyRef{info->id, offset, length});
            if (IsIndexKey(record.key)) {
              ++live_index_count_;
            }
          } else {
            DecLiveRef(kit->second);
            kit->second = KeyRef{info->id, offset, length};
          }
          ++info->records_live;
        });
    if (!parsed.ok()) {
      ++counters_.corrupt_segments;
    }
    ++counters_.recovered_segments;
    next_rank_ = std::max(next_rank_, parsed_name->rank + 1);
    next_seg_id_ = std::max(next_seg_id_, parsed_name->id + 1);
  }

  // Then the WAL tail, oldest file first (names sort by sequence). The
  // first torn frame ends replay: group commit appends strictly FIFO, so
  // nothing beyond that point can be acked data. The torn tail is
  // truncated away and any later files are dropped.
  const std::vector<std::string> wal_names =
      volume_->List(std::string(MvLog::kFilePrefix));
  std::uint64_t max_seq = 0;
  std::uint64_t min_live_seq = 0;
  bool torn = false;
  for (std::size_t i = 0; i < wal_names.size(); ++i) {
    const std::string name = wal_names[i];
    const auto seq = MvLog::SeqOfFileName(name);
    if (!seq.has_value()) {
      continue;  // not a WAL file of ours
    }
    if (torn) {
      ROS_CO_RETURN_IF_ERROR(co_await volume_->Delete(name));
      continue;
    }
    max_seq = std::max(max_seq, *seq);
    if (min_live_seq == 0) {
      min_live_seq = *seq;
    }
    auto data = co_await volume_->ReadAll(name);
    if (!data.ok()) {
      co_return data.status();
    }
    const mvlog::ScanStats scan = mvlog::ScanRecords(
        std::span<const std::uint8_t>(data->data(), data->size()),
        [this](mvlog::Record record) {
          MemtableApply(record.key, std::move(record.value),
                        record.type == mvlog::RecordType::kRemove);
        });
    counters_.replayed_wal_records += scan.records;
    if (scan.torn) {
      torn = true;
      counters_.torn_tail_bytes += data->size() - scan.valid_bytes;
      ROS_CO_RETURN_IF_ERROR(co_await volume_->Truncate(name, scan.valid_bytes));
    }
  }

  // New appends continue in the newest surviving file; min_seq reaches
  // back to the oldest so the next flush's DeleteBelow reclaims them all.
  const std::uint64_t seq = max_seq > 0 ? max_seq : 1;
  log_->Reset(seq, min_live_seq > 0 ? min_live_seq : seq);
  opened_ = true;
  co_return OkStatus();
}

void MetadataVolume::ResetLsState() const {
  for (std::size_t i = 0; i < kMemtableShards; ++i) {
    active_[i].clear();
    imm_[i].clear();
  }
  imm_valid_ = false;
  memtable_bytes_ = 0;
  imm_bytes_ = 0;
  keydir_.clear();
  segments_.clear();
  segs_by_id_.clear();
  live_index_count_ = 0;
  next_rank_ = 1;
  next_seg_id_ = 1;
  ++store_gen_;
}

void MetadataVolume::WipeAll() {
  CacheClear();
  if (ls()) {
    ++epoch_;  // in-flight background work aborts at its next check
    ResetLsState();
    log_->Reset(1, 1);
    opened_ = true;
    opening_ = false;
    open_done_->Pulse();
  }
  volume_->FormatQuick();
}

// --- memtable / keydir internals --------------------------------------

std::size_t MetadataVolume::ShardOf(std::string_view key) const {
  return static_cast<std::size_t>(
             Fnv1a64({reinterpret_cast<const std::uint8_t*>(key.data()),
                      key.size()})) %
         kMemtableShards;
}

const MetadataVolume::MemEntry* MetadataVolume::FindMem(
    const std::string& key) const {
  const std::size_t shard = ShardOf(key);
  auto it = active_[shard].find(key);
  if (it != active_[shard].end()) {
    return &it->second;
  }
  if (imm_valid_) {
    it = imm_[shard].find(key);
    if (it != imm_[shard].end()) {
      return &it->second;
    }
  }
  return nullptr;
}

void MetadataVolume::DecLiveRef(const KeyRef& ref) const {
  if (ref.seg_id == 0) {
    return;
  }
  auto it = segs_by_id_.find(ref.seg_id);
  if (it != segs_by_id_.end() && it->second->records_live > 0) {
    --it->second->records_live;
  }
}

void MetadataVolume::MemtableApply(const std::string& key, std::string value,
                                   bool tombstone) const {
  ++store_gen_;
  Shard& shard = active_[ShardOf(key)];
  auto [it, inserted] = shard.try_emplace(key);
  if (!inserted) {
    memtable_bytes_ -= EntryBytes(key, it->second);
  }
  it->second.value = std::move(value);
  it->second.tombstone = tombstone;
  memtable_bytes_ += EntryBytes(key, it->second);

  auto kit = keydir_.find(key);
  if (tombstone) {
    if (kit != keydir_.end()) {
      DecLiveRef(kit->second);
      if (IsIndexKey(key)) {
        --live_index_count_;
      }
      keydir_.erase(kit);
    }
  } else if (kit == keydir_.end()) {
    keydir_.emplace(key, KeyRef{});
    if (IsIndexKey(key)) {
      ++live_index_count_;
    }
  } else {
    DecLiveRef(kit->second);
    kit->second = KeyRef{};
  }
}

// --- point reads -------------------------------------------------------

sim::Task<StatusOr<std::string>> MetadataVolume::ReadValueLs(
    std::string key) const {
  const MemEntry* mem = FindMem(key);
  if (mem != nullptr) {
    if (mem->tombstone) {
      co_return NotFoundError("mv: no entry " + key);
    }
    co_return mem->value;
  }
  auto it = keydir_.find(key);
  if (it == keydir_.end()) {
    co_return NotFoundError("mv: no entry " + key);
  }
  const KeyRef ref = it->second;
  ROS_CHECK(ref.seg_id != 0);  // memtable-tier keys are in the shards
  auto sit = segs_by_id_.find(ref.seg_id);
  ROS_CHECK(sit != segs_by_id_.end());
  SegmentPtr seg = sit->second;
  // Pin: the compactor retires a segment's file only once no point read
  // has it in flight.
  ++seg->pins;
  auto data = co_await volume_->Read(seg->file, ref.offset, ref.length);
  --seg->pins;
  if (seg->pins == 0 && pin_cv_ != nullptr) {
    pin_cv_->NotifyAll();
  }
  if (!data.ok()) {
    co_return data.status();
  }
  std::size_t frame = 0;
  auto record = mvlog::DecodeRecord(
      std::span<const std::uint8_t>(data->data(), data->size()), &frame);
  if (!record.ok()) {
    co_return record.status();  // bit rot: the record CRC caught it
  }
  co_return std::move(record->value);
}

sim::Task<StatusOr<MetadataVolume::IndexPtr>> MetadataVolume::GetRefLs(
    std::string path) const {
  ROS_CO_RETURN_IF_ERROR(co_await EnsureOpen());
  if (cache_capacity_ != 0) {
    auto it = cache_map_.find(std::string_view(path));
    if (it != cache_map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++cache_stats_.hits;
      const CacheEntry& hit = lru_.front();
      IndexPtr shared = hit.index;
      // Memtable-resident entries charge nothing (the miss below would be
      // a RAM lookup); segment-backed ones replay the record's device
      // ranges — exactly what the miss would pay — so the cache never
      // shifts simulated timing.
      if (hit.segments.size() == 1) {
        const auto [dev_offset, n] = hit.segments.front();
        ROS_CO_RETURN_IF_ERROR(
            co_await volume_->ReadDiscardSegment(dev_offset, n));
      } else if (!hit.segments.empty()) {
        disk::Volume::ByteSegments segments = hit.segments;
        ROS_CO_RETURN_IF_ERROR(
            co_await volume_->ReadDiscardSegments(std::move(segments)));
      }
      co_return std::move(shared);
    }
    ++cache_stats_.misses;
  }
  const std::string key = IndexKey(path);
  const MemEntry* mem = FindMem(key);
  if (mem != nullptr) {
    if (mem->tombstone) {
      co_return NotFoundError("no file " + IndexName(path));
    }
    auto decoded = IndexFile::FromJson(mem->value);
    if (!decoded.ok()) {
      co_return decoded.status();
    }
    auto shared = std::make_shared<const IndexFile>(std::move(*decoded));
    CacheInsert(path, shared, 0, {}, 0);
    co_return std::move(shared);
  }
  auto ref_it = keydir_.find(key);
  if (ref_it == keydir_.end()) {
    co_return NotFoundError("no file " + IndexName(path));
  }
  const KeyRef ref = ref_it->second;
  auto sit = segs_by_id_.find(ref.seg_id);
  ROS_CHECK(sit != segs_by_id_.end());
  SegmentPtr seg = sit->second;
  ++seg->pins;
  auto data = co_await volume_->Read(seg->file, ref.offset, ref.length);
  --seg->pins;
  if (seg->pins == 0 && pin_cv_ != nullptr) {
    pin_cv_->NotifyAll();
  }
  if (!data.ok()) {
    co_return data.status();
  }
  std::size_t frame = 0;
  auto record = mvlog::DecodeRecord(
      std::span<const std::uint8_t>(data->data(), data->size()), &frame);
  if (!record.ok()) {
    co_return record.status();
  }
  auto decoded = IndexFile::FromJson(record->value);
  if (!decoded.ok()) {
    co_return decoded.status();
  }
  auto shared = std::make_shared<const IndexFile>(std::move(*decoded));
  // Publish only if the key still resolves to exactly the bytes we read —
  // no overwrite, flush, or compaction moved it during the device wait.
  auto now_it = keydir_.find(key);
  if (now_it != keydir_.end() && now_it->second.seg_id == ref.seg_id &&
      now_it->second.offset == ref.offset && !seg->retired) {
    auto segments = volume_->MapFileRange(seg->file, ref.offset, ref.length);
    if (segments.ok()) {
      CacheInsert(path, shared, 0, std::move(*segments), ref.seg_id);
    }
  }
  co_return std::move(shared);
}

// --- public API --------------------------------------------------------

bool MetadataVolume::Exists(const std::string& path) const {
  if (!ls()) {
    return volume_->Exists(IndexName(path));
  }
  if (!opened_) {
    return false;  // dirty store reports empty until recovery runs
  }
  return keydir_.find(IndexKey(path)) != keydir_.end();
}

sim::Task<Status> MetadataVolume::Put(IndexFile index) {
  if (ls()) {
    ROS_CO_RETURN_IF_ERROR(co_await EnsureOpen());
    const std::string path = index.path();
    std::string doc = index.ToJson();
    const std::string key = IndexKey(path);
    MemtableApply(key, doc, false);
    const std::uint64_t gen = store_gen_;
    mvlog::Record record{mvlog::RecordType::kPut, key, std::move(doc)};
    ROS_CO_RETURN_IF_ERROR(co_await log_->Append(std::move(record)));
    // Write-through publish, pinned to the store generation: any mutation
    // during the barrier wait (even to another key) skips the insert and
    // the next Get re-decodes.
    if (store_gen_ == gen) {
      CacheInsert(path, std::make_shared<const IndexFile>(std::move(index)),
                  0, {}, 0);
    }
    MaybeScheduleFlush();
    co_return OkStatus();
  }
  const std::string name = IndexName(index.path());
  if (!volume_->Exists(name)) {
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Create(name));
  }
  const std::string doc = index.ToJson();
  const auto before = volume_->StatFile(name);
  ROS_CO_RETURN_IF_ERROR(co_await volume_->WriteAll(
      name, std::vector<std::uint8_t>(doc.begin(), doc.end())));
  // Write-through: publish the decoded object only when our write was the
  // sole mutation in the window — one generation step on the file. Any
  // interleaved writer (to this or another file) advances the volume-wide
  // counter further and we simply skip the insert; the next Get re-decodes.
  const auto after = volume_->StatFile(name);
  if (before.ok() && after.ok() &&
      after->write_gen == before->write_gen + 1) {
    auto segments = volume_->MapFileRange(name, 0, after->size);
    if (segments.ok()) {
      const std::string path = index.path();
      CacheInsert(path, std::make_shared<const IndexFile>(std::move(index)),
                  after->write_gen, std::move(*segments));
    }
  }
  co_return OkStatus();
}

sim::Task<StatusOr<MetadataVolume::IndexPtr>> MetadataVolume::GetRef(
    std::string path) const {
  if (ls()) {
    co_return co_await GetRefLs(std::move(path));
  }
  // A present entry is current by construction — every volume mutation
  // (even ones that bypass this class) synchronously dropped what it
  // touched — so a hit is one hash probe, no stat. With a non-zero
  // capacity every GetRef lands in exactly one of hits/misses.
  if (cache_capacity_ != 0) {
    auto it = cache_map_.find(std::string_view(path));
    if (it != cache_map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++cache_stats_.hits;
      // Share the decoded object (eviction during the device wait can't
      // invalidate it); only the segment list must be copied onto the
      // frame before suspending. Replaying the cached device mapping
      // issues exactly the requests the uncached ReadAll below would, so
      // cache state never shifts simulated timing — only host-side
      // decode work.
      const CacheEntry& hit = lru_.front();
      IndexPtr shared = hit.index;
      if (hit.segments.size() == 1) {
        const auto [dev_offset, n] = hit.segments.front();
        ROS_CO_RETURN_IF_ERROR(
            co_await volume_->ReadDiscardSegment(dev_offset, n));
      } else {
        disk::Volume::ByteSegments segments = hit.segments;
        ROS_CO_RETURN_IF_ERROR(
            co_await volume_->ReadDiscardSegments(std::move(segments)));
      }
      co_return std::move(shared);
    }
    ++cache_stats_.misses;
  }
  const std::string name = IndexName(path);
  const auto stat = volume_->StatFile(name);
  if (!stat.ok()) {
    co_return stat.status();
  }
  auto data = co_await volume_->ReadAll(name);
  if (!data.ok()) {
    co_return data.status();
  }
  auto decoded = IndexFile::FromJson(std::string_view(
      reinterpret_cast<const char*>(data->data()), data->size()));
  if (!decoded.ok()) {
    co_return decoded.status();
  }
  auto shared = std::make_shared<const IndexFile>(std::move(*decoded));
  // Cache only if the file kept its generation across the read, which pins
  // the decoded object (and its device mapping) to exactly the bytes read.
  const auto stat_after = volume_->StatFile(name);
  if (stat_after.ok() && stat_after->write_gen == stat->write_gen) {
    auto segments = volume_->MapFileRange(name, 0, stat->size);
    if (segments.ok()) {
      CacheInsert(path, shared, stat->write_gen, std::move(*segments));
    }
  }
  co_return std::move(shared);
}

sim::Task<StatusOr<IndexFile>> MetadataVolume::Get(
    std::string path) const {
  auto ref = co_await GetRef(std::move(path));
  if (!ref.ok()) {
    co_return ref.status();
  }
  co_return IndexFile(**ref);
}

sim::Task<Status> MetadataVolume::Remove(std::string path) {
  if (ls()) {
    ROS_CO_RETURN_IF_ERROR(co_await EnsureOpen());
    const std::string key = IndexKey(path);
    if (keydir_.find(key) == keydir_.end()) {
      co_return NotFoundError("no file " + IndexName(path));
    }
    CacheErase(path);
    MemtableApply(key, "", true);
    mvlog::Record record{mvlog::RecordType::kRemove, key, ""};
    Status status = co_await log_->Append(std::move(record));
    MaybeScheduleFlush();
    co_return status;
  }
  CacheErase(path);
  co_return co_await volume_->Delete(IndexName(path));
}

std::vector<std::string> MetadataVolume::ListChildren(
    const std::string& path) const {
  if (!ls()) {
    const std::string prefix =
        path == "/" ? IndexName("/") : IndexName(path) + "/";
    // Direct children only; whole grandchild subtrees are skipped with one
    // seek each instead of being filtered entry by entry. Map order is
    // lexicographic, so the result needs no sort.
    return volume_->ListChildren(prefix);
  }
  std::vector<std::string> children;
  if (!opened_) {
    return children;
  }
  const std::string prefix =
      path == "/" ? IndexKey("/") : IndexKey(path) + "/";
  // Same delimiter walk as disk::Volume::ListChildren, over the keydir.
  auto it = keydir_.lower_bound(prefix);
  while (it != keydir_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    const std::string& name = it->first;
    const std::size_t cut = name.find('/', prefix.size());
    if (cut == std::string::npos) {
      if (name.size() > prefix.size()) {
        children.push_back(name.substr(prefix.size()));
      }
      ++it;
      continue;
    }
    std::string skip = name.substr(0, cut);
    skip.push_back(static_cast<char>('/' + 1));
    it = keydir_.lower_bound(skip);
  }
  return children;
}

bool MetadataVolume::HasChildren(const std::string& path) const {
  if (!ls()) {
    const std::string prefix =
        path == "/" ? IndexName("/") : IndexName(path) + "/";
    if (!volume_->Exists(prefix)) {
      return volume_->AnyWithPrefix(prefix);
    }
    // `prefix` itself is an index file (the root's own, "/idx/"): a child
    // must extend it.
    return volume_->CountPrefix(prefix) > 1;
  }
  if (!opened_) {
    return false;
  }
  const std::string prefix =
      path == "/" ? IndexKey("/") : IndexKey(path) + "/";
  auto it = keydir_.lower_bound(prefix);
  if (it != keydir_.end() && it->first == prefix) {
    ++it;  // the root's own index; a child must extend the prefix
  }
  return it != keydir_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> MetadataVolume::AllPaths() const {
  std::vector<std::string> paths;
  if (!ls()) {
    paths.reserve(volume_->CountPrefix("/idx/"));
    volume_->ForEachPrefix(
        "/idx/", [&paths](const std::string& name, std::uint64_t) {
          paths.push_back(name.substr(4));  // strip "/idx"
        });
    return paths;  // map order is lexicographic; already sorted
  }
  if (!opened_) {
    return paths;
  }
  for (auto it = keydir_.lower_bound("i/");
       it != keydir_.end() && it->first.compare(0, 2, "i/") == 0; ++it) {
    paths.push_back(it->first.substr(1));  // strip the "i" domain tag
  }
  return paths;
}

std::uint64_t MetadataVolume::index_count() const {
  if (!ls()) {
    return volume_->CountPrefix("/idx/");
  }
  // O(1): the keydir maintains the live count through every put, remove,
  // replay, and compaction (vs. the legacy O(n) prefix walk).
  return opened_ ? live_index_count_ : 0;
}

sim::Task<Status> MetadataVolume::PutState(std::string key,
                                           json::Value v) {
  if (ls()) {
    ROS_CO_RETURN_IF_ERROR(co_await EnsureOpen());
    const std::string skey = StateKey(key);
    std::string doc = v.Dump();
    MemtableApply(skey, doc, false);
    mvlog::Record record{mvlog::RecordType::kPutState, skey, std::move(doc)};
    Status status = co_await log_->Append(std::move(record));
    MaybeScheduleFlush();
    co_return status;
  }
  const std::string name = "/state/" + key;
  if (!volume_->Exists(name)) {
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Create(name));
  }
  const std::string doc = v.Dump();
  co_return co_await volume_->WriteAll(
      name, std::vector<std::uint8_t>(doc.begin(), doc.end()));
}

sim::Task<StatusOr<json::Value>> MetadataVolume::GetState(
    std::string key) const {
  if (ls()) {
    ROS_CO_RETURN_IF_ERROR(co_await EnsureOpen());
    auto value = co_await ReadValueLs(StateKey(key));
    if (!value.ok()) {
      co_return value.status();
    }
    co_return json::Parse(*value);
  }
  auto data = co_await volume_->ReadAll("/state/" + key);
  if (!data.ok()) {
    co_return data.status();
  }
  co_return json::Parse(std::string_view(
      reinterpret_cast<const char*>(data->data()), data->size()));
}

// --- snapshots ---------------------------------------------------------

sim::Task<StatusOr<udf::Image>> MetadataVolume::BuildSnapshotImage(
    std::string image_id, std::uint64_t capacity) const {
  udf::Image image(image_id, capacity);
  if (ls()) {
    ROS_CO_RETURN_IF_ERROR(co_await EnsureOpen());
    // Streaming: one key and one value in flight at a time. The keydir
    // iterator cannot live across the value read's suspension, so each
    // step re-seeks by the previous key.
    std::string cursor;
    while (true) {
      std::string key;
      {
        auto it = cursor.empty() ? keydir_.lower_bound("i/")
                                 : keydir_.upper_bound(cursor);
        if (it == keydir_.end() || it->first.compare(0, 2, "i/") != 0) {
          break;
        }
        key = it->first;
      }
      cursor = key;
      auto value = co_await ReadValueLs(key);
      if (!value.ok()) {
        if (value.status().code() == StatusCode::kNotFound) {
          continue;  // removed while we streamed past it
        }
        co_return value.status();
      }
      // "i/a/b" -> "/.mv/a/b#idx", the same image layout the legacy
      // backend writes, so snapshots restore across backends.
      const std::string snap_path =
          std::string(kSnapshotDir) + key.substr(1) + "#idx";
      Status status = image.AddFile(
          snap_path, std::vector<std::uint8_t>(value->begin(), value->end()));
      if (!status.ok()) {
        co_return status;
      }
    }
    co_return image;
  }
  // Materialized List on purpose: the loop suspends on every ReadAll, and
  // map iterators must not be held across a co_await.
  for (const std::string& name : volume_->List("/idx/")) {
    auto data = co_await volume_->ReadAll(name);
    if (!data.ok()) {
      co_return data.status();
    }
    // "/idx/a/b" -> "/.mv/a/b#idx" (the suffix keeps directory index
    // files from colliding with their children's paths).
    const std::string path =
        std::string(kSnapshotDir) + name.substr(4) + "#idx";
    Status status = image.AddFile(path, std::move(*data));
    if (!status.ok()) {
      co_return status;
    }
  }
  co_return image;
}

// ros-lint: allow(coro-ref-param): udf::Image is non-copyable; callers
// keep the snapshot alive for the duration of the restore.
sim::Task<Status> MetadataVolume::RestoreFromSnapshot(
    const udf::Image& snapshot) {
  CacheClear();
  std::vector<std::pair<std::string, const udf::Node*>> files;
  snapshot.Walk([&](const std::string& path, const udf::Node& node) {
    if (node.type == udf::NodeType::kFile &&
        path.rfind(std::string(kSnapshotDir) + "/", 0) == 0) {
      files.emplace_back(path, &node);
    }
  });
  if (ls()) {
    ROS_CO_RETURN_IF_ERROR(co_await EnsureOpen());
    Status first_error = OkStatus();
    std::uint64_t failed = 0;
    // Windowed WAL barriers: every append in a window joins one group
    // commit, so the restore pays one batched volume write per window
    // instead of a durability barrier per entry.
    std::vector<sim::Task<Status>> window;
    for (std::size_t i = 0; i < files.size(); ++i) {
      std::string global_path = files[i].first.substr(kSnapshotDir.size());
      constexpr std::string_view kSuffix = "#idx";
      if (global_path.size() > kSuffix.size() &&
          global_path.ends_with(kSuffix)) {
        global_path.resize(global_path.size() - kSuffix.size());
      }
      const udf::Node* node = files[i].second;
      // Raw bytes, no validation — same contract as the legacy restore: a
      // corrupt snapshot entry restores fine and fails at first decode.
      std::string content(node->data.begin(), node->data.end());
      const std::string key = IndexKey(global_path);
      MemtableApply(key, content, false);
      window.push_back(log_->Append(
          mvlog::Record{mvlog::RecordType::kPut, key, std::move(content)}));
      if (window.size() >= 128 || i + 1 == files.size()) {
        Status status = co_await sim::AllOk(*sim_, std::move(window));
        window.clear();
        if (!status.ok()) {
          ++failed;
          if (first_error.ok()) {
            first_error = status;
          }
        }
        MaybeScheduleFlush();
      }
    }
    if (failed > 1) {
      co_return Status(first_error.code(),
                       std::string(first_error.message()) + " (and " +
                           std::to_string(failed - 1) +
                           " more restore failures)");
    }
    co_return first_error;
  }
  // Restore every file we can; a single bad entry (or a transient volume
  // error) should not abandon the rest of the namespace.
  Status first_error = OkStatus();
  std::uint64_t failed = 0;
  for (const auto& [path, node] : files) {
    std::string global_path = path.substr(kSnapshotDir.size());
    constexpr std::string_view kSuffix = "#idx";
    if (global_path.size() > kSuffix.size() &&
        global_path.ends_with(kSuffix)) {
      global_path.resize(global_path.size() - kSuffix.size());
    }
    const std::string name = IndexName(global_path);
    Status status = OkStatus();
    if (!volume_->Exists(name)) {
      status = co_await volume_->Create(name);
    }
    if (status.ok()) {
      std::vector<std::uint8_t> content(node->data);
      status = co_await volume_->WriteAll(name, std::move(content));
    }
    if (!status.ok()) {
      ++failed;
      if (first_error.ok()) {
        first_error = status;
      }
    }
  }
  if (failed > 1) {
    co_return Status(first_error.code(),
                     std::string(first_error.message()) + " (and " +
                         std::to_string(failed - 1) +
                         " more restore failures)");
  }
  co_return first_error;
}

// --- background flush --------------------------------------------------

void MetadataVolume::MaybeScheduleFlush() const {
  if (!ls() || flush_running_ || !opened_) {
    return;
  }
  if (memtable_bytes_ < options_.memtable_flush_bytes && !imm_valid_) {
    return;
  }
  flush_running_ = true;
  sim_->Spawn(FlushTaskLs(alive_));
}

sim::Task<void> MetadataVolume::FlushTaskLs(
    std::shared_ptr<const bool> alive) const {
  Status status = co_await FlushOnceLs(alive);
  if (!*alive) {
    co_return;
  }
  flush_running_ = false;
  if (!status.ok()) {
    if (last_background_error_.ok()) {
      last_background_error_ = status;
    }
    co_return;  // retried by the next mutation's MaybeScheduleFlush
  }
  MaybeScheduleFlush();  // the active memtable may already be over budget
  MaybeScheduleCompaction();
}

sim::Task<Status> MetadataVolume::FlushOnceLs(
    std::shared_ptr<const bool> alive) const {
  const std::uint64_t epoch = epoch_;
  if (!imm_valid_) {
    // Freeze: host-atomic swap of the active shards plus a WAL rotation,
    // so the frozen generation's records stay in their own file(s).
    bool any = false;
    for (std::size_t i = 0; i < kMemtableShards; ++i) {
      any = any || !active_[i].empty();
      imm_[i] = std::move(active_[i]);
      active_[i].clear();
    }
    if (!any) {
      co_return OkStatus();
    }
    imm_valid_ = true;
    imm_bytes_ = memtable_bytes_;
    memtable_bytes_ = 0;
    log_->AdvanceSeq();
  }
  // Everything in the frozen generation must be durable in the WAL before
  // the segment claims it; this also keeps a straggling group commit from
  // resurrecting a WAL file that DeleteBelow just reclaimed.
Status synced = co_await log_->Sync();
  if (!*alive || epoch_ != epoch) {
    co_return AbortedErrorForReset();
  }
  ROS_CO_RETURN_IF_ERROR(synced);

  // Gather the frozen entries in key order. Pointers into the immutable
  // shards stay valid across suspensions: nothing mutates imm_ but this
  // single-flight flush.
  std::vector<std::pair<const std::string*, const MemEntry*>> entries;
  for (std::size_t i = 0; i < kMemtableShards; ++i) {
    for (const auto& [key, entry] : imm_[i]) {
      entries.emplace_back(&key, &entry);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });

  const std::uint64_t rank = next_rank_++;
  const std::uint64_t id = next_seg_id_++;
  mvseg::SegmentBuilder builder(rank, id);
  for (const auto& [key, entry] : entries) {
    builder.Add(mvlog::Record{
        entry->tombstone
            ? mvlog::RecordType::kRemove
            : ((*key)[0] == 's' ? mvlog::RecordType::kPutState
                                : mvlog::RecordType::kPut),
        *key, entry->value});
  }
  const std::vector<std::pair<std::uint64_t, std::uint32_t>> refs =
      builder.refs();
  const std::string file = mvseg::SegmentFileName(rank, id);
  std::vector<std::uint8_t> bytes = std::move(builder).Finish();
  const std::uint64_t seg_bytes = bytes.size();

  Status created = co_await volume_->Create(file);
  if (!*alive || epoch_ != epoch) {
    co_return AbortedErrorForReset();
  }
  ROS_CO_RETURN_IF_ERROR(created);
  std::vector<std::vector<std::uint8_t>> pieces;
  pieces.push_back(std::move(bytes));
  Status written = co_await volume_->AppendBatch(file, std::move(pieces));
  if (!*alive || epoch_ != epoch) {
    co_return AbortedErrorForReset();
  }
  if (!written.ok()) {
    Status cleanup = co_await volume_->Delete(file);
    if (!*alive || epoch_ != epoch) {
      co_return AbortedErrorForReset();
    }
    if (!cleanup.ok() && last_background_error_.ok()) {
      last_background_error_ = cleanup;
    }
    co_return written;  // imm_ stays frozen; the next flush retries
  }

  // Publish (host-atomic): register the segment and repoint every key the
  // active memtable has not overwritten since the freeze.
  SegmentPtr info = std::make_shared<SegmentInfo>();
  info->rank = rank;
  info->id = id;
  info->file = file;
  info->records_total = refs.size();
  info->bytes = seg_bytes;
  segments_.push_back(info);  // fresh rank: sorts after every older segment
  segs_by_id_.emplace(id, info);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string& key = *entries[i].first;
    if (entries[i].second->tombstone) {
      continue;  // its keydir entry is already gone
    }
    // A newer write in the active memtable shadows this record: dead on
    // arrival, reclaimed by compaction.
    const Shard& shard = active_[ShardOf(key)];
    if (shard.find(key) != shard.end()) {
      continue;
    }
    auto kit = keydir_.find(key);
    if (kit != keydir_.end() && kit->second.seg_id == 0) {
      kit->second = KeyRef{id, refs[i].first, refs[i].second};
      ++info->records_live;
    }
  }
  // Cached decodes of memtable-resident entries now have a segment-backed
  // miss cost; drop them so hit and miss charges stay identical.
  CacheEraseBySegment(0);
  for (std::size_t i = 0; i < kMemtableShards; ++i) {
    imm_[i].clear();
  }
  imm_valid_ = false;
  imm_bytes_ = 0;
  ++counters_.memtable_flushes;

  // The frozen generation's WAL files are covered by the segment now.
  Status trimmed = co_await log_->DeleteBelow(log_->current_seq());
  if (!*alive || epoch_ != epoch) {
    co_return AbortedErrorForReset();
  }
  co_return trimmed;
}

// --- background compaction ---------------------------------------------

// A sealed segment is at the size cap with every record still live:
// merging it again cannot shrink anything, so it neither counts toward the
// size trigger nor gets picked as a merge input. (A retained tombstone or
// any overwritten record keeps records_live below records_total, which
// unseals the segment.)
bool MetadataVolume::SealedSegment(const SegmentInfo& seg) const {
  return seg.bytes >= options_.max_segment_bytes &&
         seg.records_live >= seg.records_total;
}

bool MetadataVolume::CompactionNeeded() const {
  std::size_t foldable = 0;
  for (const SegmentPtr& seg : segments_) {
    if (!SealedSegment(*seg)) {
      ++foldable;
    }
  }
  if (foldable > options_.compact_min_segments) {
    return true;
  }
  if (segments_.empty()) {
    return false;
  }
  std::uint64_t total = 0;
  std::uint64_t live = 0;
  for (const SegmentPtr& seg : segments_) {
    total += seg->records_total;
    live += seg->records_live;
  }
  return total > 0 &&
         static_cast<double>(total - live) >
             options_.compact_garbage_ratio * static_cast<double>(total);
}

void MetadataVolume::MaybeScheduleCompaction() const {
  if (!ls() || compact_running_ || !opened_ || !CompactionNeeded()) {
    return;
  }
  compact_running_ = true;
  sim_->Spawn(CompactTaskLs(alive_));
}

sim::Task<void> MetadataVolume::CompactTaskLs(
    std::shared_ptr<const bool> alive) const {
  Status status = co_await CompactOnceLs(alive);
  if (!*alive) {
    co_return;
  }
  compact_running_ = false;
  if (!status.ok()) {
    if (last_background_error_.ok()) {
      last_background_error_ = status;
    }
    co_return;  // don't spin on a persistently failing merge
  }
  MaybeScheduleCompaction();  // keep folding until the trigger clears
}

sim::Task<Status> MetadataVolume::CompactOnceLs(
    std::shared_ptr<const bool> alive) const {
  const std::uint64_t epoch = epoch_;
  // Inputs are a CONTIGUOUS run in (rank, id) order, starting at the first
  // segment that merging can still shrink — the sealed prefix (full, fully
  // live) is skipped so a big store doesn't rewrite the same bytes forever.
  // Contiguity is what keeps replay order meaningful for the outputs.
  std::size_t start = 0;
  while (start < segments_.size() && SealedSegment(*segments_[start])) {
    ++start;
  }
  const std::size_t fan_in =
      std::min(options_.compact_fan_in, segments_.size() - start);
  if (fan_in == 0) {
    co_return OkStatus();
  }
  // Tombstones may be dropped only when the run starts at the oldest
  // segment: then nothing older is left for them to shadow. Otherwise they
  // are rewritten into the outputs (still dead weight, which keeps the
  // output unsealed until a later oldest-prefix run retires them).
  const bool drop_tombstones = start == 0;
  std::vector<SegmentPtr> inputs(segments_.begin() + start,
                                 segments_.begin() + start + fan_in);

  struct SourcedRecord {
    mvlog::Record record;
    std::uint64_t offset = 0;
  };
  std::vector<std::vector<SourcedRecord>> runs;
  runs.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto data = co_await volume_->ReadAll(inputs[i]->file);
    if (!*alive || epoch_ != epoch) {
      co_return AbortedErrorForReset();
    }
    if (!data.ok()) {
      co_return data.status();
    }
    runs.emplace_back();
    Status parsed = mvseg::ParseSegment(
        std::span<const std::uint8_t>(data->data(), data->size()), nullptr,
        [&runs](mvlog::Record record, std::uint64_t offset, std::uint32_t) {
          runs.back().push_back(SourcedRecord{std::move(record), offset});
        });
    if (!parsed.ok()) {
      // Corrupted underneath us (external poke). Leave the store alone;
      // point reads surface kDataLoss per record, recovery handles rest.
      co_return parsed;
    }
  }

  // k-way merge, newest run wins per key; liveness-filter against the
  // keydir so dead records are dropped instead of rewritten.
  struct OutRecord {
    mvlog::Record record;
    std::uint64_t src_seg = 0;
    std::uint64_t src_offset = 0;
  };
  std::vector<OutRecord> merged;
  std::vector<std::size_t> cursors(runs.size(), 0);
  while (true) {
    const std::string* min_key = nullptr;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (cursors[r] >= runs[r].size()) {
        continue;
      }
      const std::string& key = runs[r][cursors[r]].record.key;
      if (min_key == nullptr || key < *min_key) {
        min_key = &key;
      }
    }
    if (min_key == nullptr) {
      break;
    }
    const std::string key = *min_key;
    std::size_t winner = 0;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (cursors[r] < runs[r].size() &&
          runs[r][cursors[r]].record.key == key) {
        winner = r;  // runs are ordered oldest→newest; the last match wins
      }
    }
    const std::size_t win_at = cursors[winner];
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (cursors[r] < runs[r].size() &&
          runs[r][cursors[r]].record.key == key) {
        ++cursors[r];  // advance BEFORE the move hollows the winner's key
      }
    }
    SourcedRecord rec = std::move(runs[winner][win_at]);
    if (rec.record.type == mvlog::RecordType::kRemove) {
      if (!drop_tombstones) {
        // The run does not start at the oldest segment, so an older one may
        // still hold a record this tombstone shadows. Keep it (the keydir
        // has no entry for it — it is filtered below otherwise).
        merged.push_back(
            OutRecord{std::move(rec.record), inputs[winner]->id, rec.offset});
      }
      continue;
    }
    auto kit = keydir_.find(rec.record.key);
    if (kit == keydir_.end() || kit->second.seg_id != inputs[winner]->id ||
        kit->second.offset != rec.offset) {
      continue;  // dead: overwritten or removed since it was flushed
    }
    merged.push_back(
        OutRecord{std::move(rec.record), inputs[winner]->id, rec.offset});
  }

  // Serialize outputs (split at max_segment_bytes; same rank as the oldest
  // input so recovery replays them in the inputs' position).
  const std::uint64_t out_rank = inputs.front()->rank;
  struct OutSeg {
    std::uint64_t id = 0;
    std::string file;
    std::vector<std::uint8_t> bytes;
    std::uint64_t byte_size = 0;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> refs;
    std::size_t first_record = 0;
    std::size_t record_count = 0;
  };
  std::vector<OutSeg> outs;
  std::size_t at = 0;
  while (at < merged.size()) {
    const std::uint64_t id = next_seg_id_++;
    mvseg::SegmentBuilder builder(out_rank, id);
    const std::size_t first = at;
    while (at < merged.size() &&
           (builder.count() == 0 ||
            builder.bytes() < options_.max_segment_bytes)) {
      builder.Add(merged[at].record);
      ++at;
    }
    OutSeg out;
    out.id = id;
    out.file = mvseg::SegmentFileName(out_rank, id);
    out.refs = builder.refs();
    out.first_record = first;
    out.record_count = at - first;
    out.bytes = std::move(builder).Finish();
    out.byte_size = out.bytes.size();
    outs.push_back(std::move(out));
  }

  // Write every output before touching shared state: readers keep using
  // the inputs, and a crash here just leaves extra files that recovery
  // replays idempotently (same rank, higher id).
  for (std::size_t i = 0; i < outs.size(); ++i) {
    Status created = co_await volume_->Create(outs[i].file);
    if (!*alive || epoch_ != epoch) {
      co_return AbortedErrorForReset();
    }
    Status written = created;
    if (created.ok()) {
      std::vector<std::vector<std::uint8_t>> pieces;
      pieces.push_back(std::move(outs[i].bytes));
      written = co_await volume_->AppendBatch(outs[i].file, std::move(pieces));
      if (!*alive || epoch_ != epoch) {
        co_return AbortedErrorForReset();
      }
    }
    if (!written.ok()) {
      // Unwind partial outputs; the inputs remain authoritative.
      for (std::size_t j = 0; j <= i; ++j) {
        Status cleanup = co_await volume_->Delete(outs[j].file);
        if (!*alive || epoch_ != epoch) {
          co_return AbortedErrorForReset();
        }
        if (!cleanup.ok() && last_background_error_.ok()) {
          last_background_error_ = cleanup;
        }
      }
      co_return written;
    }
  }

  // Swap (host-atomic): unlink inputs, link outputs, repoint still-live
  // keys. Records that died while the outputs were being written simply
  // stay dead — the re-check is against the keydir's current refs.
  // Concurrent flushes only ever append newer segments, so the input run
  // is still where it was.
  ROS_CHECK(segments_.size() >= start + inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ROS_CHECK(segments_[start + i].get() == inputs[i].get());
  }
  segments_.erase(segments_.begin() + start,
                  segments_.begin() + start + inputs.size());
  std::vector<SegmentPtr> out_infos;
  out_infos.reserve(outs.size());
  for (const OutSeg& out : outs) {
    SegmentPtr info = std::make_shared<SegmentInfo>();
    info->rank = out_rank;
    info->id = out.id;
    info->file = out.file;
    info->records_total = out.record_count;
    info->bytes = out.byte_size;
    segs_by_id_.emplace(out.id, info);
    out_infos.push_back(info);
  }
  segments_.insert(segments_.begin(), out_infos.begin(), out_infos.end());
  std::sort(segments_.begin(), segments_.end(),
            [](const SegmentPtr& a, const SegmentPtr& b) {
              return a->rank != b->rank ? a->rank < b->rank : a->id < b->id;
            });
  for (std::size_t o = 0; o < outs.size(); ++o) {
    const OutSeg& out = outs[o];
    const SegmentPtr& info = out_infos[o];
    for (std::size_t r = 0; r < out.record_count; ++r) {
      const OutRecord& src = merged[out.first_record + r];
      auto kit = keydir_.find(src.record.key);
      if (kit != keydir_.end() && kit->second.seg_id == src.src_seg &&
          kit->second.offset == src.src_offset) {
        kit->second = KeyRef{out.id, out.refs[r].first, out.refs[r].second};
        ++info->records_live;
      }
    }
  }
  for (const SegmentPtr& input : inputs) {
    input->retired = true;
    CacheEraseBySegment(input->id);
    segs_by_id_.erase(input->id);
  }

  // Retire input files once in-flight point reads drain.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    while (inputs[i]->pins > 0) {
      co_await pin_cv_->Wait();
      if (!*alive || epoch_ != epoch) {
        co_return AbortedErrorForReset();
      }
    }
    Status unlink = co_await volume_->Delete(inputs[i]->file);
    if (!*alive || epoch_ != epoch) {
      co_return AbortedErrorForReset();
    }
    if (!unlink.ok() && last_background_error_.ok()) {
      last_background_error_ = unlink;
    }
  }
  ++counters_.compactions;
  counters_.segments_deleted += inputs.size();
  co_return OkStatus();
}

// --- stats -------------------------------------------------------------

MetadataVolume::StoreStats MetadataVolume::store_stats() const {
  StoreStats stats;
  stats.log_structured = ls();
  if (!ls()) {
    return stats;
  }
  stats.wal = log_->stats();
  for (std::size_t i = 0; i < kMemtableShards; ++i) {
    stats.memtable_entries += active_[i].size();
    if (imm_valid_) {
      stats.memtable_entries += imm_[i].size();
    }
  }
  stats.memtable_bytes = memtable_bytes_ + (imm_valid_ ? imm_bytes_ : 0);
  stats.segment_count = segments_.size();
  for (const SegmentPtr& seg : segments_) {
    stats.segment_records_total += seg->records_total;
    stats.segment_records_live += seg->records_live;
    stats.segment_bytes += seg->bytes;
  }
  stats.memtable_flushes = counters_.memtable_flushes;
  stats.compactions = counters_.compactions;
  stats.segments_deleted = counters_.segments_deleted;
  stats.recovered_segments = counters_.recovered_segments;
  stats.corrupt_segments = counters_.corrupt_segments;
  stats.replayed_wal_records = counters_.replayed_wal_records;
  stats.torn_tail_bytes = counters_.torn_tail_bytes;
  return stats;
}

// --- decoded-index cache -----------------------------------------------

void MetadataVolume::OnVolumeMutation(const std::string& name) const {
  if (cache_map_.empty()) {
    return;
  }
  if (name.empty()) {  // FormatQuick: everything changed
    CacheClear();
    return;
  }
  if (ls()) {
    // The store's own WAL/segment writes can't stale a cached decode (the
    // flush/compaction paths invalidate by segment id themselves), but an
    // external poke at a segment file — corruption tests writing through
    // volume() — must drop every decode backed by it.
    if (name.compare(0, mvseg::kFilePrefix.size(), mvseg::kFilePrefix) ==
        0) {
      for (const SegmentPtr& seg : segments_) {
        if (seg->file == name) {
          CacheEraseBySegment(seg->id);
          break;
        }
      }
    }
    return;
  }
  // Only "/idx..." files back cached entries; the map is keyed by path,
  // which is the name minus that prefix (a view — no allocation here, and
  // this runs on every volume write).
  std::string_view view(name);
  if (view.substr(0, 4) == "/idx") {
    CacheErase(view.substr(4));
  }
}

void MetadataVolume::CacheInsert(const std::string& path, IndexPtr index,
                                 std::uint64_t write_gen,
                                 disk::Volume::ByteSegments segments,
                                 std::uint64_t source_seg) const {
  if (cache_capacity_ == 0) {
    return;
  }
  auto it = cache_map_.find(std::string_view(path));
  if (it != cache_map_.end()) {
    it->second->index = std::move(index);
    it->second->write_gen = write_gen;
    it->second->segments = std::move(segments);
    it->second->source_seg = source_seg;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{path, std::move(index), write_gen,
                             std::move(segments), source_seg});
  cache_map_.emplace(lru_.front().path, lru_.begin());
  if (cache_map_.size() > cache_capacity_) {
    cache_map_.erase(std::string_view(lru_.back().path));
    lru_.pop_back();
    ++cache_stats_.evictions;
  }
}

void MetadataVolume::CacheErase(std::string_view path) const {
  auto it = cache_map_.find(path);
  if (it == cache_map_.end()) {
    return;
  }
  lru_.erase(it->second);
  cache_map_.erase(it);
}

void MetadataVolume::CacheClear() const {
  lru_.clear();
  cache_map_.clear();
}

void MetadataVolume::CacheEraseBySegment(std::uint64_t seg_id) const {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->source_seg == seg_id) {
      cache_map_.erase(std::string_view(it->path));
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ros::olfs
