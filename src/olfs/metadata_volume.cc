#include "src/olfs/metadata_volume.h"

#include <algorithm>

namespace ros::olfs {

namespace {
std::vector<std::uint8_t> ToBytes(const std::string& s) {
  return {s.begin(), s.end()};
}
std::string ToString(const std::vector<std::uint8_t>& v) {
  return {v.begin(), v.end()};
}
}  // namespace

sim::Task<Status> MetadataVolume::Put(IndexFile index) {
  const std::string name = IndexName(index.path());
  if (!volume_->Exists(name)) {
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Create(name));
  }
  co_return co_await volume_->WriteAll(name, ToBytes(index.ToJson()));
}

sim::Task<StatusOr<IndexFile>> MetadataVolume::Get(
    std::string path) const {
  auto data = co_await volume_->ReadAll(IndexName(path));
  if (!data.ok()) {
    co_return data.status();
  }
  co_return IndexFile::FromJson(ToString(*data));
}

sim::Task<Status> MetadataVolume::Remove(std::string path) {
  co_return co_await volume_->Delete(IndexName(path));
}

std::vector<std::string> MetadataVolume::ListChildren(
    const std::string& path) const {
  const std::string prefix =
      path == "/" ? IndexName("/") : IndexName(path) + "/";
  std::vector<std::string> children;
  for (const std::string& name : volume_->List(prefix)) {
    std::string_view rest = std::string_view(name).substr(prefix.size());
    if (rest.empty() || rest.find('/') != std::string_view::npos) {
      continue;  // not a direct child
    }
    children.emplace_back(rest);
  }
  std::sort(children.begin(), children.end());
  return children;
}

std::vector<std::string> MetadataVolume::AllPaths() const {
  std::vector<std::string> paths;
  for (const std::string& name : volume_->List("/idx/")) {
    paths.push_back(name.substr(4));  // strip "/idx"
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::uint64_t MetadataVolume::index_count() const {
  return volume_->List("/idx/").size();
}

sim::Task<Status> MetadataVolume::PutState(std::string key,
                                           json::Value v) {
  const std::string name = "/state/" + key;
  if (!volume_->Exists(name)) {
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Create(name));
  }
  co_return co_await volume_->WriteAll(name, ToBytes(v.Dump()));
}

sim::Task<StatusOr<json::Value>> MetadataVolume::GetState(
    std::string key) const {
  auto data = co_await volume_->ReadAll("/state/" + key);
  if (!data.ok()) {
    co_return data.status();
  }
  co_return json::Parse(ToString(*data));
}

sim::Task<StatusOr<udf::Image>> MetadataVolume::BuildSnapshotImage(
    std::string image_id, std::uint64_t capacity) const {
  udf::Image image(image_id, capacity);
  for (const std::string& name : volume_->List("/idx/")) {
    auto data = co_await volume_->ReadAll(name);
    if (!data.ok()) {
      co_return data.status();
    }
    // "/idx/a/b" -> "/.mv/a/b#idx" (the suffix keeps directory index
    // files from colliding with their children's paths).
    const std::string path =
        std::string(kSnapshotDir) + name.substr(4) + "#idx";
    Status status = image.AddFile(path, std::move(*data));
    if (!status.ok()) {
      co_return status;
    }
  }
  co_return image;
}

// ros-lint: allow(coro-ref-param): udf::Image is non-copyable; callers
// keep the snapshot alive for the duration of the restore.
sim::Task<Status> MetadataVolume::RestoreFromSnapshot(
    const udf::Image& snapshot) {
  Status failure = OkStatus();
  std::vector<std::pair<std::string, const udf::Node*>> files;
  snapshot.Walk([&](const std::string& path, const udf::Node& node) {
    if (node.type == udf::NodeType::kFile &&
        path.rfind(std::string(kSnapshotDir) + "/", 0) == 0) {
      files.emplace_back(path, &node);
    }
  });
  for (const auto& [path, node] : files) {
    std::string global_path = path.substr(kSnapshotDir.size());
    constexpr std::string_view kSuffix = "#idx";
    if (global_path.size() > kSuffix.size() &&
        global_path.ends_with(kSuffix)) {
      global_path.resize(global_path.size() - kSuffix.size());
    }
    const std::string name = IndexName(global_path);
    if (!volume_->Exists(name)) {
      ROS_CO_RETURN_IF_ERROR(co_await volume_->Create(name));
    }
    std::vector<std::uint8_t> content(node->data);
    ROS_CO_RETURN_IF_ERROR(co_await volume_->WriteAll(name,
                                                      std::move(content)));
  }
  co_return failure;
}

}  // namespace ros::olfs
