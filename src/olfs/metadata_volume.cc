#include "src/olfs/metadata_volume.h"

#include <utility>

namespace ros::olfs {

sim::Task<Status> MetadataVolume::Put(IndexFile index) {
  const std::string name = IndexName(index.path());
  if (!volume_->Exists(name)) {
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Create(name));
  }
  const std::string doc = index.ToJson();
  const auto before = volume_->StatFile(name);
  ROS_CO_RETURN_IF_ERROR(co_await volume_->WriteAll(
      name, std::vector<std::uint8_t>(doc.begin(), doc.end())));
  // Write-through: publish the decoded object only when our write was the
  // sole mutation in the window — one generation step on the file. Any
  // interleaved writer (to this or another file) advances the volume-wide
  // counter further and we simply skip the insert; the next Get re-decodes.
  const auto after = volume_->StatFile(name);
  if (before.ok() && after.ok() &&
      after->write_gen == before->write_gen + 1) {
    auto segments = volume_->MapFileRange(name, 0, after->size);
    if (segments.ok()) {
      const std::string path = index.path();
      CacheInsert(path, std::make_shared<const IndexFile>(std::move(index)),
                  after->write_gen, std::move(*segments));
    }
  }
  co_return OkStatus();
}

sim::Task<StatusOr<MetadataVolume::IndexPtr>> MetadataVolume::GetRef(
    std::string path) const {
  // A present entry is current by construction — every volume mutation
  // (even ones that bypass this class) synchronously dropped what it
  // touched — so a hit is one hash probe, no stat. With a non-zero
  // capacity every GetRef lands in exactly one of hits/misses.
  if (cache_capacity_ != 0) {
    auto it = cache_map_.find(std::string_view(path));
    if (it != cache_map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++cache_stats_.hits;
      // Share the decoded object (eviction during the device wait can't
      // invalidate it); only the segment list must be copied onto the
      // frame before suspending. Replaying the cached device mapping
      // issues exactly the requests the uncached ReadAll below would, so
      // cache state never shifts simulated timing — only host-side
      // decode work.
      const CacheEntry& hit = lru_.front();
      IndexPtr shared = hit.index;
      if (hit.segments.size() == 1) {
        const auto [dev_offset, n] = hit.segments.front();
        ROS_CO_RETURN_IF_ERROR(
            co_await volume_->ReadDiscardSegment(dev_offset, n));
      } else {
        disk::Volume::ByteSegments segments = hit.segments;
        ROS_CO_RETURN_IF_ERROR(
            co_await volume_->ReadDiscardSegments(std::move(segments)));
      }
      co_return std::move(shared);
    }
    ++cache_stats_.misses;
  }
  const std::string name = IndexName(path);
  const auto stat = volume_->StatFile(name);
  if (!stat.ok()) {
    co_return stat.status();
  }
  auto data = co_await volume_->ReadAll(name);
  if (!data.ok()) {
    co_return data.status();
  }
  auto decoded = IndexFile::FromJson(std::string_view(
      reinterpret_cast<const char*>(data->data()), data->size()));
  if (!decoded.ok()) {
    co_return decoded.status();
  }
  auto shared = std::make_shared<const IndexFile>(std::move(*decoded));
  // Cache only if the file kept its generation across the read, which pins
  // the decoded object (and its device mapping) to exactly the bytes read.
  const auto stat_after = volume_->StatFile(name);
  if (stat_after.ok() && stat_after->write_gen == stat->write_gen) {
    auto segments = volume_->MapFileRange(name, 0, stat->size);
    if (segments.ok()) {
      CacheInsert(path, shared, stat->write_gen, std::move(*segments));
    }
  }
  co_return std::move(shared);
}

sim::Task<StatusOr<IndexFile>> MetadataVolume::Get(
    std::string path) const {
  auto ref = co_await GetRef(std::move(path));
  if (!ref.ok()) {
    co_return ref.status();
  }
  co_return IndexFile(**ref);
}

sim::Task<Status> MetadataVolume::Remove(std::string path) {
  CacheErase(path);
  co_return co_await volume_->Delete(IndexName(path));
}

std::vector<std::string> MetadataVolume::ListChildren(
    const std::string& path) const {
  const std::string prefix =
      path == "/" ? IndexName("/") : IndexName(path) + "/";
  // Direct children only; whole grandchild subtrees are skipped with one
  // seek each instead of being filtered entry by entry. Map order is
  // lexicographic, so the result needs no sort.
  return volume_->ListChildren(prefix);
}

bool MetadataVolume::HasChildren(const std::string& path) const {
  const std::string prefix =
      path == "/" ? IndexName("/") : IndexName(path) + "/";
  if (!volume_->Exists(prefix)) {
    return volume_->AnyWithPrefix(prefix);
  }
  // `prefix` itself is an index file (the root's own, "/idx/"): a child
  // must extend it.
  return volume_->CountPrefix(prefix) > 1;
}

std::vector<std::string> MetadataVolume::AllPaths() const {
  std::vector<std::string> paths;
  paths.reserve(volume_->CountPrefix("/idx/"));
  volume_->ForEachPrefix(
      "/idx/", [&paths](const std::string& name, std::uint64_t) {
        paths.push_back(name.substr(4));  // strip "/idx"
      });
  return paths;  // map order is lexicographic; already sorted
}

std::uint64_t MetadataVolume::index_count() const {
  return volume_->CountPrefix("/idx/");
}

sim::Task<Status> MetadataVolume::PutState(std::string key,
                                           json::Value v) {
  const std::string name = "/state/" + key;
  if (!volume_->Exists(name)) {
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Create(name));
  }
  const std::string doc = v.Dump();
  co_return co_await volume_->WriteAll(
      name, std::vector<std::uint8_t>(doc.begin(), doc.end()));
}

sim::Task<StatusOr<json::Value>> MetadataVolume::GetState(
    std::string key) const {
  auto data = co_await volume_->ReadAll("/state/" + key);
  if (!data.ok()) {
    co_return data.status();
  }
  co_return json::Parse(std::string_view(
      reinterpret_cast<const char*>(data->data()), data->size()));
}

sim::Task<StatusOr<udf::Image>> MetadataVolume::BuildSnapshotImage(
    std::string image_id, std::uint64_t capacity) const {
  udf::Image image(image_id, capacity);
  // Materialized List on purpose: the loop suspends on every ReadAll, and
  // map iterators must not be held across a co_await.
  for (const std::string& name : volume_->List("/idx/")) {
    auto data = co_await volume_->ReadAll(name);
    if (!data.ok()) {
      co_return data.status();
    }
    // "/idx/a/b" -> "/.mv/a/b#idx" (the suffix keeps directory index
    // files from colliding with their children's paths).
    const std::string path =
        std::string(kSnapshotDir) + name.substr(4) + "#idx";
    Status status = image.AddFile(path, std::move(*data));
    if (!status.ok()) {
      co_return status;
    }
  }
  co_return image;
}

// ros-lint: allow(coro-ref-param): udf::Image is non-copyable; callers
// keep the snapshot alive for the duration of the restore.
sim::Task<Status> MetadataVolume::RestoreFromSnapshot(
    const udf::Image& snapshot) {
  CacheClear();
  std::vector<std::pair<std::string, const udf::Node*>> files;
  snapshot.Walk([&](const std::string& path, const udf::Node& node) {
    if (node.type == udf::NodeType::kFile &&
        path.rfind(std::string(kSnapshotDir) + "/", 0) == 0) {
      files.emplace_back(path, &node);
    }
  });
  // Restore every file we can; a single bad entry (or a transient volume
  // error) should not abandon the rest of the namespace.
  Status first_error = OkStatus();
  std::uint64_t failed = 0;
  for (const auto& [path, node] : files) {
    std::string global_path = path.substr(kSnapshotDir.size());
    constexpr std::string_view kSuffix = "#idx";
    if (global_path.size() > kSuffix.size() &&
        global_path.ends_with(kSuffix)) {
      global_path.resize(global_path.size() - kSuffix.size());
    }
    const std::string name = IndexName(global_path);
    Status status = OkStatus();
    if (!volume_->Exists(name)) {
      status = co_await volume_->Create(name);
    }
    if (status.ok()) {
      std::vector<std::uint8_t> content(node->data);
      status = co_await volume_->WriteAll(name, std::move(content));
    }
    if (!status.ok()) {
      ++failed;
      if (first_error.ok()) {
        first_error = status;
      }
    }
  }
  if (failed > 1) {
    co_return Status(first_error.code(),
                     std::string(first_error.message()) + " (and " +
                         std::to_string(failed - 1) +
                         " more restore failures)");
  }
  co_return first_error;
}

void MetadataVolume::OnVolumeMutation(const std::string& name) const {
  if (cache_map_.empty()) {
    return;
  }
  if (name.empty()) {  // FormatQuick: everything changed
    CacheClear();
    return;
  }
  // Only "/idx..." files back cached entries; the map is keyed by path,
  // which is the name minus that prefix (a view — no allocation here, and
  // this runs on every volume write).
  std::string_view view(name);
  if (view.substr(0, 4) == "/idx") {
    CacheErase(view.substr(4));
  }
}

void MetadataVolume::CacheInsert(const std::string& path, IndexPtr index,
                                 std::uint64_t write_gen,
                                 disk::Volume::ByteSegments segments) const {
  if (cache_capacity_ == 0) {
    return;
  }
  auto it = cache_map_.find(std::string_view(path));
  if (it != cache_map_.end()) {
    it->second->index = std::move(index);
    it->second->write_gen = write_gen;
    it->second->segments = std::move(segments);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(
      CacheEntry{path, std::move(index), write_gen, std::move(segments)});
  cache_map_.emplace(lru_.front().path, lru_.begin());
  if (cache_map_.size() > cache_capacity_) {
    cache_map_.erase(std::string_view(lru_.back().path));
    lru_.pop_back();
    ++cache_stats_.evictions;
  }
}

void MetadataVolume::CacheErase(std::string_view path) const {
  auto it = cache_map_.find(path);
  if (it == cache_map_.end()) {
    return;
  }
  lru_.erase(it->second);
  cache_map_.erase(it);
}

void MetadataVolume::CacheClear() const {
  lru_.clear();
  cache_map_.clear();
}

}  // namespace ros::olfs
