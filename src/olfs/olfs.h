// The Optical Library File System (OLFS) facade — the PI module (§4.1).
//
// Olfs exposes the POSIX-style global namespace and orchestrates all the
// subsystems underneath: the metadata volume (index files), preliminary
// bucket writing, delayed parity, burn/fetch task management, the read
// cache and the mechanical controller. Every operation both performs the
// real work (bytes move through the volumes, images, discs) and charges
// the paper's measured software-overhead model: ~2.5 ms per internal OLFS
// operation plus a kernel-user mode switch between consecutive operations
// (Fig 7).
#ifndef ROS_SRC_OLFS_OLFS_H_
#define ROS_SRC_OLFS_OLFS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/olfs/affinity.h"
#include "src/olfs/audit.h"
#include "src/olfs/bucket_manager.h"
#include "src/olfs/burn_manager.h"
#include "src/olfs/da_index.h"
#include "src/olfs/disc_image_store.h"
#include "src/olfs/fetch_manager.h"
#include "src/olfs/fetch_scheduler.h"
#include "src/olfs/file_cache.h"
#include "src/olfs/hints.h"
#include "src/olfs/mech_controller.h"
#include "src/olfs/metadata_volume.h"
#include "src/olfs/params.h"
#include "src/olfs/parity.h"
#include "src/olfs/read_cache.h"
#include "src/olfs/scrub.h"
#include "src/olfs/system.h"
#include "src/olfs/tray_predictor.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ros::olfs {

struct FileInfo {
  std::uint64_t size = 0;
  int version = 0;
  bool is_directory = false;
  LocationKind location = LocationKind::kBucket;
};

struct RecoveryReport {
  int discs_scanned = 0;
  int images_parsed = 0;
  int files_recovered = 0;
  int unreadable_discs = 0;
};

class Olfs {
 public:
  Olfs(sim::Simulator& sim, RosSystem* system, OlfsParams params = {});

  // ------------------------------------------------------------------
  // POSIX-style interface (PI)
  // ------------------------------------------------------------------

  // Creates a new file (fails if it exists). `data` may be sparse
  // relative to `logical_size` (pass data.size() for fully-real files).
  // A tagged hint (AccessHint::stream != 0) records co-access edges so
  // the burn planner co-locates the stream's files on one tray.
  sim::Task<Status> Create(std::string path,
                           std::vector<std::uint8_t> data,
                           std::uint64_t logical_size,
                           AccessHint hint = {});
  sim::Task<Status> Create(std::string path,
                           std::vector<std::uint8_t> data);

  // Regenerating update (§4.6): writes a new version of an existing file.
  sim::Task<Status> Update(std::string path,
                           std::vector<std::uint8_t> data,
                           std::uint64_t logical_size);

  // Appending update: extends the latest version in place while its
  // bucket is still open, otherwise regenerates a new version with the
  // combined content.
  sim::Task<Status> Append(std::string path,
                           std::vector<std::uint8_t> data);

  // Reads the latest version. A tagged hint feeds the tray predictor
  // (speculative prefetch of the stream's likely next tray); a scan hint
  // additionally triggers whole-tray readahead of sibling images.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> Read(std::string path,
                                                      std::uint64_t offset,
                                                      std::uint64_t length,
                                                      AccessHint hint = {});

  // Reads a historic version still in the index ring (data provenance).
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadVersion(
      std::string path, int version, std::uint64_t offset,
      std::uint64_t length);

  // Serves the first bytes of a file from MV within ~2 ms (§4.8's
  // forepart-data-stored mechanism). Requires forepart_enabled.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadForepart(
      std::string path);

  // ------------------------------------------------------------------
  // Streaming handles (the FUSE open / write* / release sequence): each
  // AppendStream/ReadStream charges a single internal operation; the MV
  // index is written back by CloseStream (release). This is the data path
  // behind filebench's singlestream workloads (Fig 6).
  // ------------------------------------------------------------------
  sim::Task<Status> AppendStream(std::string path,
                                 std::vector<std::uint8_t> data,
                                 std::uint64_t logical_grow,
                                 AccessHint hint = {});
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadStream(
      std::string path, std::uint64_t offset, std::uint64_t length,
      AccessHint hint = {});
  sim::Task<Status> CloseStream(std::string path);

  sim::Task<StatusOr<FileInfo>> Stat(std::string path);
  sim::Task<Status> Mkdir(std::string path);
  sim::Task<StatusOr<std::vector<std::string>>> ReadDir(
      std::string path);
  // Logical delete: a tombstone version (WORM media keeps the bytes).
  sim::Task<Status> Unlink(std::string path);

  // ------------------------------------------------------------------
  // Control plane
  // ------------------------------------------------------------------

  // Closes the open bucket and burns everything pending, including a
  // partial final array; waits for the pipeline to drain.
  sim::Task<Status> FlushAndDrain();

  // Burns a snapshot of the MV namespace as a disc image (§4.2).
  sim::Task<Status> BurnMvSnapshot();

  // Background policies:
  //  - "MV is periodically burned into discs" (§4.2): a snapshot image is
  //    admitted to the burn pipeline every `interval` while dirty;
  //  - stale buffered data is flushed (a "pre-defined burning policy",
  //    §4.3) when the open bucket has been idle for `interval`.
  //  - burned arrays are scrubbed for sector errors during idle periods
  //    (§4.7) every `scrub_interval`, repairing from parity.
  // All run until the simulation ends. Intervals of 0 disable them.
  void StartBackgroundPolicies(sim::Duration mv_snapshot_interval,
                               sim::Duration auto_flush_interval,
                               sim::Duration scrub_interval = 0);

  // Periodic scrub (§4.7): checks burned discs for sector errors and
  // recovers damaged images from their array's parity onto fresh media
  // (a new bucket -> image -> burn cycle). Returns repaired image count.
  // (Metadata-level sweep; the scheduled deep scrub with refresh burns
  // lives in ScrubManager, DESIGN.md §5j.)
  sim::Task<StatusOr<int>> ScrubAndRepair();

  // Reconstructs one damaged image from its array's parity and re-stages
  // it for a re-burn onto fresh media.
  sim::Task<Status> RecoverAndRepairImage(std::string image_id);

  // Refresh burn (DESIGN.md §5j): re-stages a *healthy* burned image so
  // the pipeline re-burns it onto fresh media — from the cached copy when
  // one exists, else a disc-to-disc read through the scheduler's
  // background class, else parity reconstruction.
  sim::Task<Status> RefreshImage(std::string image_id);

  // Rebuilds the global namespace by physically scanning the given disc
  // arrays (§4.4). Wipes the current MV first. Used after MV loss.
  sim::Task<StatusOr<RecoveryReport>> RebuildNamespace(
      std::vector<mech::TrayAddress> trays);

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  // Internal-op trace of the most recent PI operation (Fig 7).
  const std::vector<std::string>& last_op_trace() const { return op_trace_; }

  // Drops the cached parsed view of a disc-mounted image (used with
  // OpticalDrive::InvalidateVfs by benches staging Table 1's scenarios).
  void DropDiscMount(const std::string& image_id) {
    disc_mounts_.erase(image_id);
  }

  // Self-healing telemetry: reads served degraded (the disc read failed),
  // successful parity reconstructions, and images re-staged for re-burn.
  std::uint64_t degraded_reads() const { return degraded_reads_; }
  std::uint64_t reconstructions() const { return reconstructions_; }
  std::uint64_t images_repaired() const { return images_repaired_; }

  // Reads of a disc image served from a concurrent reader's in-flight
  // drive read (image-level single-flight) instead of re-reading media.
  std::uint64_t shared_image_reads() const { return shared_image_reads_; }

  // Whole-tray readahead telemetry: sibling images staged into the read
  // cache behind scan-hinted reads, and their logical bytes.
  std::uint64_t readahead_images() const { return readahead_images_; }
  std::uint64_t readahead_bytes() const { return readahead_bytes_; }

  RosSystem& system() { return *system_; }
  MetadataVolume& mv() { return *mv_; }
  DiscImageStore& images() { return *images_; }
  BucketManager& buckets() { return *buckets_; }
  BurnManager& burns() { return *burns_; }
  FetchManager& fetches() { return *fetcher_; }
  // Null when params.fetch_scheduler_enabled is false (legacy FIFO path).
  FetchScheduler* fetch_scheduler() { return scheduler_.get(); }
  ReadCache& cache() { return *cache_; }
  FileCache& file_cache() { return *file_cache_; }
  MechController& mech() { return *mech_; }
  DaIndex& da_index() { return *da_; }
  AffinityTracker& affinity() { return *affinity_; }
  TrayPredictor& predictor() { return *predictor_; }
  AuditRegistry& audit() { return *audit_; }
  ScrubManager& scrub() { return *scrub_; }
  sim::Simulator& simulator() { return sim_; }
  const OlfsParams& params() const { return params_; }

 private:
  // Charges one internal OLFS operation (plus the mode switch separating
  // it from the previous one) and records it in the trace.
  sim::Task<void> ChargeOp(const char* name, bool first = false);

  sim::Task<void> MvSnapshotLoop(sim::Duration interval);
  sim::Task<void> AutoFlushLoop(sim::Duration interval);
  sim::Task<void> ScrubLoop(sim::Duration interval);

  // Ensures every ancestor directory has an MV index entry.
  sim::Task<Status> EnsureAncestors(std::string path);

  // Writes one version of `path` and updates its index file.
  sim::Task<Status> WriteVersion(std::string path,
                                 std::vector<std::uint8_t> data,
                                 std::uint64_t logical_size, bool create,
                                 AccessHint hint = {});

  // Reads `length` bytes at `offset` of a resolved version entry.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadEntry(
      std::string path, VersionEntry entry,
      std::uint64_t offset, std::uint64_t length, AccessHint hint = {});

  // Reads a byte range of one part, resolving its current tier.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadPart(
      std::string internal_path, FilePart part,
      std::uint64_t offset, std::uint64_t length, AccessHint hint = {});

  // Reads a file from a disc, sharing one drive read among concurrent
  // readers of the same image (image-level single-flight): followers wait
  // for the leader's physical read and serve from the parsed view.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadFromDisc(
      std::string image_id, std::string internal_path,
      std::uint64_t offset, std::uint64_t length);

  // The leader's path: fetch lease, mount, physical read, parse.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadFromDiscLeader(
      std::string image_id, std::string internal_path,
      std::uint64_t offset, std::uint64_t length);

  // Background file-cache population: pulls the whole file (and up to
  // prefetch_siblings directory neighbours) off the fetched disc.
  sim::Task<void> PrefetchTask(std::string image_id,
                               std::string internal_path);

  // Whole-tray readahead (scan hint): stages burned sibling images of the
  // tray just fetched into the read cache's probationary segment, so the
  // rest of the scan reads from the disk buffer instead of re-fetching
  // the tray after an eviction.
  sim::Task<void> TrayReadaheadTask(std::string image_id, int tray_index);
  // Reads one sibling's full stream (single-flight with concurrent
  // readers) and re-admits it as kBurnedCached.
  sim::Task<Status> StageSiblingImage(std::string image_id);
  // Fetches + parses one sibling image off its disc (leader side of the
  // single-flight), caching the parsed view in disc_mounts_.
  sim::Task<StatusOr<std::shared_ptr<udf::Image>>> ReadSiblingStream(
      std::string image_id);

  // Rebuilds the full serialized stream of a damaged or unreachable image
  // from its array's surviving members + parity (§4.7). Charges the
  // optical reads of every surviving member.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReconstructFromParity(
      std::string image_id);

  // Stages a recovered image back into the disk buffer (tier kBuffered)
  // and queues its re-burn onto fresh media.
  sim::Task<Status> RepairImage(std::string image_id,
                                std::shared_ptr<udf::Image> image);

  sim::Simulator& sim_;
  RosSystem* system_;
  OlfsParams params_;

  std::unique_ptr<MetadataVolume> mv_;
  std::unique_ptr<DiscImageStore> images_;
  std::unique_ptr<AffinityTracker> affinity_;
  std::unique_ptr<TrayPredictor> predictor_;
  std::unique_ptr<BucketManager> buckets_;
  std::unique_ptr<ParityBuilder> parity_;
  std::unique_ptr<DaIndex> da_;
  std::unique_ptr<ReadCache> cache_;
  std::unique_ptr<FileCache> file_cache_;
  std::unique_ptr<MechController> mech_;
  std::unique_ptr<FetchScheduler> scheduler_;
  std::unique_ptr<BurnManager> burns_;
  std::unique_ptr<FetchManager> fetcher_;
  std::unique_ptr<AuditRegistry> audit_;
  std::unique_ptr<ScrubManager> scrub_;

  // Parsed metadata of disc-mounted images (the in-kernel UDF view).
  std::map<std::string, std::shared_ptr<udf::Image>> disc_mounts_;

  // Image-level read single-flight: image id -> completion event of the
  // drive read currently in flight.
  std::map<std::string, std::shared_ptr<sim::Event>> image_reads_;

  // Open streaming handles: cached index files, flushed on CloseStream.
  std::map<std::string, IndexFile> stream_handles_;

  // Per-path write serialization: concurrent mutations of one file are
  // read-modify-write cycles on its index and must not interleave.
  sim::Task<sim::Mutex::ScopedLock> LockPath(std::string path);
  std::map<std::string, std::unique_ptr<sim::Mutex>> path_locks_;

  std::vector<std::string> op_trace_;
  int mv_snapshot_counter_ = 0;
  int repaired_generation_ = 0;
  std::uint64_t degraded_reads_ = 0;
  std::uint64_t reconstructions_ = 0;
  std::uint64_t images_repaired_ = 0;
  std::uint64_t shared_image_reads_ = 0;
  // Whole-tray readahead: in-flight trays (dedup), staged counters, and a
  // generation suffix keeping staged buffer files unique.
  std::set<int> readahead_trays_;
  std::uint64_t readahead_images_ = 0;
  std::uint64_t readahead_bytes_ = 0;
  int readahead_generation_ = 0;
  std::uint64_t namespace_writes_ = 0;      // dirtiness since last snapshot
  std::uint64_t last_snapshot_writes_ = 0;
  sim::TimePoint last_write_time_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_OLFS_H_
