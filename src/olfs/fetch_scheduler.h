// Fetch Scheduler: batched, geometry-aware dispatch of queued fetches.
//
// The MC "optimizes the usage of mechanical resources" (§4.1); with 70-155 s
// load/unload cycles the mechanical queue is the dominant tail-latency term,
// so the order in which queued fetches are serviced matters more than any
// other read-path decision. This scheduler replaces the first-come-first-
// served bay scramble with a real request queue:
//
//   - Pending fetches are grouped by tray: one load/unload cycle drains
//     every waiter of that tray, and a bay whose reader finishes is handed
//     directly to the next same-tray waiter (no unload, no re-load).
//   - Unload-victim selection is utility-aware: only parked arrays with no
//     queued demand are evicted, LRU first. An array that readers are
//     waiting for is never unloaded out from under them.
//   - Dispatch order minimizes roller rotation + robotic-arm travel from
//     the PLC's current position (mech::geometry distances), bounded by an
//     aging rule: a request older than OlfsParams::fetch_aging_bound is
//     dispatched strict-FIFO, so starvation under hostile locality is
//     impossible and tail latency is provably bounded.
//
// Everything is driven by simulated time and iterates ordered containers,
// so a given workload + seed always produces the same dispatch order.
#ifndef ROS_SRC_OLFS_FETCH_SCHEDULER_H_
#define ROS_SRC_OLFS_FETCH_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/mech/geometry.h"
#include "src/olfs/mech_controller.h"
#include "src/olfs/params.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::olfs {

struct FetchSchedulerStats {
  // Queueing-delay histogram bucket upper bounds, in seconds (the last
  // bucket is unbounded).
  static constexpr int kDelayBuckets = 7;
  static constexpr double kDelayBucketUpperS[kDelayBuckets] = {
      1.0, 10.0, 30.0, 60.0, 120.0, 300.0, 0.0};

  std::uint64_t requests = 0;
  std::uint64_t completed = 0;        // includes failed dispatches
  std::uint64_t loads = 0;            // LoadArray cycles performed
  std::uint64_t unloads = 0;          // victim arrays evicted first
  std::uint64_t parked_hits = 0;      // served by an already-parked array
  std::uint64_t handoffs = 0;         // bay passed to the next same-tray waiter
  std::uint64_t aged_dispatches = 0;  // strict-FIFO promotions (aging bound)
  std::uint64_t failed_batches = 0;   // load failures fanned out to waiters
  // Background (speculative) class — predictive tray prefetch.
  std::uint64_t speculative_enqueued = 0;  // accepted into the pending queue
  std::uint64_t speculative_loads = 0;     // speculative load cycles started
  std::uint64_t speculative_canceled = 0;  // pending entries dropped by demand
  std::uint64_t speculative_useful = 0;    // demand hit a speculative load
  std::uint64_t speculative_wasted = 0;    // evicted before any demand came
  // Self-check: a speculative dispatch picked a victim bay whose tray has
  // queued demand. Tests and the chaos harness assert this stays zero.
  std::uint64_t speculative_demand_evictions = 0;
  // Background claim class (scrub / audit sweeps).
  std::uint64_t background_acquires = 0;   // claims admitted
  std::uint64_t background_yields = 0;     // idle-waits taken before admit
  std::uint64_t max_queue_depth = 0;
  std::uint64_t max_batch = 0;        // most waiters drained by one load
  sim::Duration total_queue_delay = 0;
  sim::Duration max_queue_delay = 0;
  // Estimated positioning cost (roller rotation + arm travel) of the
  // dispatched loads, from mech::geometry distances at decision time.
  sim::Duration est_positioning = 0;
  std::array<std::uint64_t, kDelayBuckets> delay_hist{};

  // Requests served without a mechanical load/unload cycle of their own.
  std::uint64_t loads_avoided() const { return parked_hits + handoffs; }
  sim::Duration mean_queue_delay() const {
    return completed == 0
               ? 0
               : total_queue_delay / static_cast<sim::Duration>(completed);
  }
};

class FetchScheduler {
 public:
  FetchScheduler(sim::Simulator& sim, const OlfsParams& params,
                 MechController* mech);

  // Claims the bay holding `address.tray` (state kBusy on return), loading
  // the array first when necessary. Concurrent requests for one tray share
  // a single load cycle; each gets its own completion. The claimed bay
  // must be returned through ReleaseBay (FetchLease does this).
  sim::Task<StatusOr<int>> AcquireForRead(mech::DiscAddress address);

  // Returns a bay claimed through AcquireForRead. If more requests are
  // queued for the tray it holds, ownership passes directly to the next
  // waiter (the bay never leaves kBusy); otherwise the bay is parked.
  void ReleaseBay(int bay);

  // Background claim class (scrub / audit sweeps, DESIGN.md §5j): like
  // AcquireForRead, but the claim only joins the demand machinery while it
  // is idle — the caller parks (sim-time polling) whenever demand is
  // queued or a load cycle is in flight, so background traffic adds no
  // queueing delay ahead of a foreground fetch. Once admitted it holds a
  // bay like any single reader, and the aging bound caps foreground waits
  // as usual. Release through ReleaseBay (FetchLease does this).
  sim::Task<StatusOr<int>> AcquireForBackground(mech::DiscAddress address);

  // Background priority class: asks for `tray` to be made resident while
  // the mechanics would otherwise idle (predictive prefetch, whole-tray
  // readahead). Speculative loads dispatch only when every queued demand
  // request is already resident or in flight, never evict a tray with
  // queued demand, and pending entries are canceled the moment new demand
  // queues. Dropped when the tray is already resident, loading, queued,
  // or OlfsParams::tray_prefetch_enabled is off.
  void EnqueueSpeculative(mech::TrayAddress tray);

  // True if any queued or in-dispatch request wants `tray` (the demand
  // oracle behind MechController's victim pass).
  bool HasDemand(mech::TrayAddress tray) const;

  int queue_depth() const;
  const FetchSchedulerStats& stats() const { return stats_; }

  // (tray index, bay) pairs in load-dispatch order — the determinism probe
  // used by tests: same workload + seed must reproduce this exactly.
  const std::vector<std::pair<int, int>>& dispatch_log() const {
    return dispatch_log_;
  }

 private:
  struct Request {
    Request(sim::Simulator& sim, std::uint64_t s, sim::TimePoint t)
        : seq(s), enqueued(t), done(sim),
          bay(UnavailableError("fetch request still queued")) {}
    std::uint64_t seq;
    sim::TimePoint enqueued;
    sim::Event done;
    StatusOr<int> bay;
  };

  void EnsureDispatcher();
  sim::Task<void> DispatchLoop();
  // One synchronous scheduling pass; true if anything was dispatched.
  bool TryDispatch();
  // Tray of the globally oldest queued request if it has waited past the
  // aging bound, else -1. While a tray is aged the scheduler serves
  // strict FIFO: handoffs and parked-bay claims for younger trays pause
  // and the victim rule may be relaxed, so the starved request is served
  // within one unload/load cycle of crossing the bound.
  int AgedTray() const;
  // Tray (dense index) to load next, or -1; *aged reports whether the
  // aging bound forced a strict-FIFO choice over the geometry-optimal one.
  int PickTrayToLoad(bool* aged);
  // Empty bay, else the LRU parked bay with no queued demand, or -1.
  // `allow_demanded` (aged dispatch only) falls back to the LRU parked bay
  // even if its tray has queued demand — strict FIFO outranks locality.
  int PickLoadBay(bool allow_demanded) const;
  int BayHolding(int tray_index) const;
  sim::Duration PositioningCost(mech::TrayAddress tray);
  sim::Task<void> LoadTask(mech::TrayAddress tray, int bay,
                           bool speculative = false);
  void Complete(std::shared_ptr<Request> request, StatusOr<int> result);
  void CompleteFront(int tray_index, int bay);
  // Speculative dispatch pass (after the demand passes found nothing more
  // to do); true if a background load was started.
  bool TryDispatchSpeculative();
  // Demand claimed a parked tray / a resident tray left its bay: settle
  // the useful-vs-wasted ledger for speculatively loaded arrays.
  void NoteDemand(int tray_index);
  void NoteUnload(int tray_index);

  sim::Simulator& sim_;
  OlfsParams params_;
  MechController* mech_;

  // tray index -> FIFO of waiting requests (std::map: deterministic scan).
  std::map<int, std::deque<std::shared_ptr<Request>>> queues_;
  std::set<int> loading_;  // trays with a load cycle in flight
  // Background class: speculative trays pending dispatch (FIFO), and
  // speculatively loaded trays still parked without having seen demand.
  std::deque<int> spec_pending_;
  std::set<int> spec_resident_;
  std::uint64_t next_seq_ = 0;
  // Per-bay logical-clock stamp of the last scheduler release (LRU victim
  // ordering that does not depend on wall or sim time).
  std::vector<std::uint64_t> last_used_;
  std::uint64_t use_clock_ = 0;
  bool dispatcher_running_ = false;

  FetchSchedulerStats stats_;
  std::vector<std::pair<int, int>> dispatch_log_;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_FETCH_SCHEDULER_H_
