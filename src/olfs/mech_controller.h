// Mechanical Controller (MC), §4.1: the bridge between OLFS and the
// PLC-driven library, plus the physical disc inventory.
//
// MC owns the drive::Disc objects (one per rack slot, created lazily) and
// keeps the mapping between drive bays and the disc arrays currently
// loaded in them. Burn and fetch tasks coordinate bay ownership through
// MC's per-bay locks and states.
#ifndef ROS_SRC_OLFS_MECH_CONTROLLER_H_
#define ROS_SRC_OLFS_MECH_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/drive/optical_drive.h"
#include "src/mech/library.h"
#include "src/olfs/disc_inventory.h"
#include "src/olfs/params.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::olfs {

enum class BayState {
  kEmpty,    // no disc array loaded
  kParked,   // array loaded, drives idle (left by a fetch for locality)
  kBusy,     // owned by a burn or fetch task
};

class MechController {
 public:
  MechController(sim::Simulator& sim, mech::Library* library,
                 std::vector<drive::DriveSet*> drive_sets,
                 DiscInventory* inventory, const OlfsParams& params);

  int num_bays() const { return static_cast<int>(drive_sets_.size()); }
  BayState bay_state(int bay) const { return bay_states_.at(bay); }
  std::optional<mech::TrayAddress> bay_tray(int bay) const {
    return bay_trays_.at(bay);
  }
  drive::DriveSet& drive_set(int bay) { return *drive_sets_.at(bay); }
  mech::Library& library() { return *library_; }

  // Signalled whenever a bay changes state (waiters re-scan).
  sim::ConditionVariable& bay_changed() { return bay_changed_; }

  // Claims a bay for exclusive use. Preference order: the bay already
  // holding `want` (if any), an empty bay, a parked bay (which the caller
  // must unload — trays with pending fetch demand and recently used trays
  // are avoided when possible). Returns the bay index once state is kBusy,
  // or kUnavailable immediately if every bay is busy and `wait` is false.
  sim::Task<StatusOr<int>> AcquireBay(
      std::optional<mech::TrayAddress> want, bool wait);

  // Non-waiting claim of one specific bay: kEmpty/kParked -> kBusy. Used
  // by the FetchScheduler, which runs its own victim/dispatch policy.
  bool TryClaimBay(int bay);

  // Releases a bay, marking it kParked (array still loaded) or kEmpty.
  void ReleaseBay(int bay);

  // Lets the fetch scheduler advertise queued demand so AcquireBay's
  // unload-victim pass (used by burns and recovery scans) avoids evicting
  // an array that readers are waiting for.
  void SetDemandOracle(std::function<bool(mech::TrayAddress)> oracle) {
    demand_oracle_ = std::move(oracle);
  }

  // Loads the disc array of `tray` into `bay` (which must be claimed and
  // empty) and inserts the 12 discs into the bay's drives.
  sim::Task<Status> LoadArray(mech::TrayAddress tray, int bay);

  // Unloads the array currently in `bay` back to its home tray.
  sim::Task<Status> UnloadArray(int bay);

  // Physical disc access for scrubbing / fault injection / recovery scans.
  drive::Disc* DiscAt(mech::DiscAddress address);
  // Drive currently holding the disc at `address`, or null.
  drive::OpticalDrive* DriveHolding(mech::DiscAddress address);

  // Media generation currently loaded into freshly allocated slots.
  // Generation migration (DESIGN.md §5j) switches this so refresh burns
  // land on higher-density media; already-created discs are unaffected.
  drive::DiscType media_type() const { return media_type_; }
  void set_media_type(drive::DiscType type) { media_type_ = type; }

 private:
  drive::Disc* GetOrCreateDisc(mech::DiscAddress address);

  sim::Simulator& sim_;
  mech::Library* library_;
  std::vector<drive::DriveSet*> drive_sets_;
  OlfsParams params_;
  drive::DiscType media_type_;
  std::vector<BayState> bay_states_;
  std::vector<std::optional<mech::TrayAddress>> bay_trays_;
  // Logical-clock stamp of each bay's last transition to kParked; the
  // victim pass prefers the stalest (LRU) parked array.
  std::vector<std::uint64_t> last_parked_;
  std::uint64_t park_clock_ = 0;
  std::function<bool(mech::TrayAddress)> demand_oracle_;
  sim::ConditionVariable bay_changed_;
  DiscInventory* inventory_;  // owned by RosSystem
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_MECH_CONTROLLER_H_
