// Deep scrub + refresh migration pipeline (DESIGN.md §5j).
//
// Decades-scale preservation turns scrubbing from an afterthought into
// the system's heartbeat: latent sector errors accumulate with media age
// (drive::MediaAgingParams), and the only defence is to read the data
// back before the damage exceeds what the array's parity can absorb.
// ScrubManager walks every burned disc array on a sim-time schedule,
// reading each member back at read speed through the fetch scheduler's
// *background* class (never starving foreground reads), repairing
// damaged members from parity, and — when an array shows damage or
// crosses the refresh-age threshold — re-burning the whole array onto
// fresh media (a disc-to-disc refresh). Generation migration piggybacks
// on refresh: the first refresh burn can switch the rack's media type so
// rotting first-generation media is rewritten onto denser, younger
// stock.
//
// It also owns physical audit verification: RunAudit samples leaves of
// the persisted Merkle manifests (audit.h) off the media and recomputes
// their hashes, certifying integrity while reading only a small fraction
// of the stored bytes.
#ifndef ROS_SRC_OLFS_SCRUB_H_
#define ROS_SRC_OLFS_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ros::olfs {

class Olfs;

// One scrub pass over every burned array.
struct ScrubPassReport {
  int arrays = 0;            // arrays walked
  int images = 0;            // member images read back
  std::uint64_t bytes = 0;   // stream bytes verified at read speed
  int repairs = 0;           // damaged members rebuilt from parity
  int arrays_refreshed = 0;  // whole arrays re-burned onto fresh media
  int refresh_burns = 0;     // member images re-staged by refresh
};

// One sampled audit over every live manifest.
struct AuditReport {
  int manifests = 0;                  // manifests verified
  int members = 0;                    // member trees sampled
  std::uint64_t leaves_sampled = 0;   // leaf reads performed
  std::uint64_t bytes_read = 0;       // optical bytes fetched for proof
  std::uint64_t stored_bytes = 0;     // total bytes the manifests cover
  std::uint64_t mismatches = 0;       // leaves whose hash failed to chain
  std::vector<std::string> damaged;   // member ids with failed leaves
};

class ScrubManager {
 public:
  ScrubManager(sim::Simulator& sim, Olfs* olfs) : sim_(sim), olfs_(olfs) {}

  // Walks every burned array: background-class fetch of each member,
  // full-stream read-back (which is also what materializes media aging in
  // sim time), parity repair of damaged members, and refresh burns per
  // the policy knobs (scrub_refresh_enabled, refresh_age_years,
  // generation_migration_enabled). Ends with a pipeline drain when any
  // refresh was staged, so the pass leaves the rack fully burned.
  sim::Task<StatusOr<ScrubPassReport>> RunPass();

  // Samples `sample_fraction` of each manifest member's leaves (at least
  // one per member) off the media and verifies them against the stored
  // hash chain. Deterministic for a given seed. Detects any corruption
  // of a sampled leaf; the report's bytes_read / stored_bytes ratio is
  // the auditor's cost.
  sim::Task<StatusOr<AuditReport>> RunAudit(double sample_fraction,
                                            std::uint64_t seed);

  // Lifetime counters (surfaced by the maintenance report).
  std::uint64_t passes() const { return passes_; }
  std::uint64_t scrubbed_bytes() const { return scrubbed_bytes_; }
  std::uint64_t scrub_repairs() const { return scrub_repairs_; }
  std::uint64_t refresh_burns() const { return refresh_burns_; }
  std::uint64_t arrays_refreshed() const { return arrays_refreshed_; }
  std::uint64_t audit_leaves_sampled() const { return audit_leaves_sampled_; }
  std::uint64_t audit_bytes_read() const { return audit_bytes_read_; }
  std::uint64_t audit_mismatches() const { return audit_mismatches_; }

 private:
  // Reads one member's full stream back through a background lease.
  // Returns the stream size on success, kDataLoss when the media is
  // damaged in range; other codes are mech trouble.
  sim::Task<StatusOr<std::uint64_t>> ScrubOneImage(std::string image_id);

  // Re-burns one array onto fresh media: damaged data members through
  // parity recovery, clean ones as refresh burns; retires the old tray.
  sim::Task<Status> RefreshArray(int tray_index,
                                 std::vector<std::string> member_ids,
                                 std::vector<std::string> damaged,
                                 ScrubPassReport* report);

  sim::Simulator& sim_;
  Olfs* olfs_;
  bool migrated_ = false;  // generation migration fires once
  std::uint64_t passes_ = 0;
  std::uint64_t scrubbed_bytes_ = 0;
  std::uint64_t scrub_repairs_ = 0;
  std::uint64_t refresh_burns_ = 0;
  std::uint64_t arrays_refreshed_ = 0;
  std::uint64_t audit_leaves_sampled_ = 0;
  std::uint64_t audit_bytes_read_ = 0;
  std::uint64_t audit_mismatches_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_SCRUB_H_
