#include "src/olfs/fetch_scheduler.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/mech/plc.h"
#include "src/mech/timing.h"

namespace ros::olfs {

namespace {

int DelayBucket(sim::Duration delay) {
  for (int i = 0; i + 1 < FetchSchedulerStats::kDelayBuckets; ++i) {
    if (delay < sim::Seconds(FetchSchedulerStats::kDelayBucketUpperS[i])) {
      return i;
    }
  }
  return FetchSchedulerStats::kDelayBuckets - 1;
}

}  // namespace

FetchScheduler::FetchScheduler(sim::Simulator& sim, const OlfsParams& params,
                               MechController* mech)
    : sim_(sim), params_(params), mech_(mech) {
  ROS_CHECK(mech_ != nullptr);
  last_used_.assign(static_cast<std::size_t>(mech_->num_bays()), 0);
}

int FetchScheduler::queue_depth() const {
  int depth = 0;
  for (const auto& [tray, queue] : queues_) {
    depth += static_cast<int>(queue.size());
  }
  return depth;
}

bool FetchScheduler::HasDemand(mech::TrayAddress tray) const {
  const int index = tray.ToIndex();
  auto it = queues_.find(index);
  if (it != queues_.end() && !it->second.empty()) {
    return true;
  }
  return loading_.count(index) > 0;
}

int FetchScheduler::BayHolding(int tray_index) const {
  for (int bay = 0; bay < mech_->num_bays(); ++bay) {
    auto tray = mech_->bay_tray(bay);
    if (tray.has_value() && tray->ToIndex() == tray_index) {
      return bay;
    }
  }
  return -1;
}

sim::Duration FetchScheduler::PositioningCost(mech::TrayAddress tray) {
  const mech::Plc& plc = mech_->library().plc();
  const mech::MechTimingModel& timing = plc.timing();
  return timing.RotateTime(plc.roller_state(tray.roller).facing_slot,
                           tray.slot) +
         timing.ArmTravelTime(plc.arm_state(tray.roller).layer, tray.layer,
                              /*carrying=*/false);
}

sim::Task<StatusOr<int>> FetchScheduler::AcquireForRead(
    mech::DiscAddress address) {
  EnsureDispatcher();
  const int tray = address.tray.ToIndex();
  ++stats_.requests;

  // Fast path: the array is already parked in a bay and nobody is queued
  // ahead of us for it — claim the bay without queueing (Table 1's
  // "disc in drive" case, zero queueing delay).
  auto pending = queues_.find(tray);
  if ((pending == queues_.end() || pending->second.empty()) &&
      loading_.count(tray) == 0) {
    const int bay = BayHolding(tray);
    if (bay >= 0 && mech_->bay_state(bay) == BayState::kParked &&
        mech_->TryClaimBay(bay)) {
      ++stats_.parked_hits;
      ++stats_.completed;
      ++stats_.delay_hist[0];
      NoteDemand(tray);
      co_return bay;
    }
  }

  auto request =
      std::make_shared<Request>(sim_, next_seq_++, sim_.now());
  queues_[tray].push_back(request);
  if (!spec_pending_.empty()) {
    // Demand queued: cancel pending speculative work so the background
    // class can never delay the dispatcher's next demand pass.
    stats_.speculative_canceled +=
        static_cast<std::uint64_t>(spec_pending_.size());
    spec_pending_.clear();
  }
  stats_.max_queue_depth = std::max(
      stats_.max_queue_depth, static_cast<std::uint64_t>(queue_depth()));
  // Wake the dispatcher (and any legacy AcquireBay waiters; they re-scan
  // and go back to sleep, which keeps wakeup order deterministic).
  mech_->bay_changed().NotifyAll();
  co_await request->done.Wait();
  co_return request->bay;
}

sim::Task<StatusOr<int>> FetchScheduler::AcquireForBackground(
    mech::DiscAddress address) {
  // Park (deterministic sim-time poll) until the demand machinery is
  // idle: no queued foreground requests and no load cycle in flight. A
  // fresh demand arriving after admission simply queues behind this claim
  // like behind any single reader, and the aging bound still applies.
  while (queue_depth() > 0 || !loading_.empty()) {
    ++stats_.background_yields;
    co_await sim_.Delay(sim::Seconds(1));
  }
  ++stats_.background_acquires;
  co_return co_await AcquireForRead(address);
}

void FetchScheduler::ReleaseBay(int bay) {
  last_used_.at(bay) = ++use_clock_;
  auto tray = mech_->bay_tray(bay);
  if (tray.has_value()) {
    const int index = tray->ToIndex();
    auto it = queues_.find(index);
    const int aged = AgedTray();
    if (it != queues_.end() && !it->second.empty() &&
        (aged < 0 || aged == index)) {
      // Hand the bay straight to the next waiter of this tray: the array
      // stays in the drives and the bay never leaves kBusy. Suppressed
      // while another tray's request is past the aging bound — endless
      // same-tray handoffs must not starve it of this bay.
      ++stats_.handoffs;
      CompleteFront(index, bay);
      return;
    }
  }
  mech_->ReleaseBay(bay);  // parks the array; bay_changed wakes the loop
}

void FetchScheduler::EnsureDispatcher() {
  if (!dispatcher_running_) {
    dispatcher_running_ = true;
    sim_.Spawn(DispatchLoop());
  }
}

sim::Task<void> FetchScheduler::DispatchLoop() {
  while (true) {
    if (!TryDispatch()) {
      co_await mech_->bay_changed().Wait();
    }
  }
}

void FetchScheduler::EnqueueSpeculative(mech::TrayAddress tray) {
  if (!params_.tray_prefetch_enabled) {
    return;
  }
  const int index = tray.ToIndex();
  if (loading_.count(index) > 0 || BayHolding(index) >= 0) {
    return;
  }
  if (std::find(spec_pending_.begin(), spec_pending_.end(), index) !=
      spec_pending_.end()) {
    return;
  }
  ++stats_.speculative_enqueued;
  spec_pending_.push_back(index);
  EnsureDispatcher();
  mech_->bay_changed().NotifyAll();
}

void FetchScheduler::NoteDemand(int tray_index) {
  if (spec_resident_.erase(tray_index) > 0) {
    ++stats_.speculative_useful;
  }
}

void FetchScheduler::NoteUnload(int tray_index) {
  if (spec_resident_.erase(tray_index) > 0) {
    ++stats_.speculative_wasted;
  }
}

bool FetchScheduler::TryDispatch() {
  bool progressed = false;
  const int starved = AgedTray();

  // Lazily reconcile speculative residency: an array evicted behind the
  // scheduler's back (e.g. a burn claiming its bay) was loaded for nothing.
  for (auto it = spec_resident_.begin(); it != spec_resident_.end();) {
    if (loading_.count(*it) == 0 && BayHolding(*it) < 0) {
      ++stats_.speculative_wasted;
      it = spec_resident_.erase(it);
    } else {
      ++it;
    }
  }

  // Pass 1: waiters whose array already sits parked in a bay — claim it,
  // no mechanics. (A busy bay holding the tray hands off on release.)
  // Paused while a non-resident request is past the aging bound: claiming
  // parked bays for younger trays would keep them un-evictable.
  for (auto it = queues_.begin(); it != queues_.end();) {
    const int tray = it->first;
    const bool empty = it->second.empty();
    ++it;  // CompleteFront may erase this map entry
    if (empty || loading_.count(tray) > 0 ||
        (starved >= 0 && tray != starved)) {
      continue;
    }
    const int bay = BayHolding(tray);
    if (bay >= 0 && mech_->bay_state(bay) == BayState::kParked &&
        mech_->TryClaimBay(bay)) {
      ++stats_.parked_hits;
      NoteDemand(tray);
      CompleteFront(tray, bay);
      progressed = true;
    }
  }

  // Pass 2: start load cycles while both work and bays remain.
  while (true) {
    bool aged = false;
    const int tray = PickTrayToLoad(&aged);
    if (tray < 0) {
      break;
    }
    const int bay = PickLoadBay(/*allow_demanded=*/aged);
    if (bay < 0 || !mech_->TryClaimBay(bay)) {
      break;
    }
    loading_.insert(tray);
    if (aged) {
      ++stats_.aged_dispatches;
    }
    const mech::TrayAddress address = mech::TrayAddress::FromIndex(tray);
    stats_.est_positioning += PositioningCost(address);
    dispatch_log_.emplace_back(tray, bay);
    sim_.Spawn(LoadTask(address, bay));
    progressed = true;
  }

  // Pass 3 (background class): speculative loads, only once demand needs
  // nothing more from the bays.
  if (TryDispatchSpeculative()) {
    progressed = true;
  }
  return progressed;
}

bool FetchScheduler::TryDispatchSpeculative() {
  bool progressed = false;
  while (!spec_pending_.empty()) {
    // Demand has absolute priority: dispatch speculative loads only while
    // every queued demand request is already resident or in flight (pass
    // 1, a release handoff, or the in-flight load serves those without a
    // new bay).
    bool demand_idle = true;
    for (const auto& [tray, queue] : queues_) {
      if (!queue.empty() && loading_.count(tray) == 0 &&
          BayHolding(tray) < 0) {
        demand_idle = false;
        break;
      }
    }
    if (!demand_idle) {
      break;
    }
    const int tray = spec_pending_.front();
    if (loading_.count(tray) > 0 || BayHolding(tray) >= 0) {
      spec_pending_.pop_front();  // already resident or being loaded
      continue;
    }
    const int bay = PickLoadBay(/*allow_demanded=*/false);
    if (bay < 0) {
      break;  // no undemanded bay free; stays pending for the next wakeup
    }
    auto victim = mech_->bay_tray(bay);
    if (victim.has_value() && HasDemand(*victim)) {
      // PickLoadBay(false) never returns a demanded victim; this counter
      // is a run-time self-check asserted zero by tests and chaos runs.
      ++stats_.speculative_demand_evictions;
      break;
    }
    if (!mech_->TryClaimBay(bay)) {
      break;
    }
    spec_pending_.pop_front();
    loading_.insert(tray);
    ++stats_.speculative_loads;
    const mech::TrayAddress address = mech::TrayAddress::FromIndex(tray);
    stats_.est_positioning += PositioningCost(address);
    dispatch_log_.emplace_back(tray, bay);
    sim_.Spawn(LoadTask(address, bay, /*speculative=*/true));
    progressed = true;
  }
  return progressed;
}

int FetchScheduler::AgedTray() const {
  // Negative disables aging entirely; a bound of zero means every queued
  // request is immediately "aged", i.e. strict-FIFO dispatch.
  if (params_.fetch_aging_bound < 0) {
    return -1;
  }
  // Sequence numbers are assigned in arrival order, so the smallest front
  // seq across all queues is the globally oldest queued request.
  int oldest = -1;
  std::uint64_t oldest_seq = 0;
  sim::TimePoint oldest_enqueued = 0;
  for (const auto& [tray, queue] : queues_) {
    if (queue.empty()) {
      continue;
    }
    const Request& front = *queue.front();
    if (oldest < 0 || front.seq < oldest_seq) {
      oldest = tray;
      oldest_seq = front.seq;
      oldest_enqueued = front.enqueued;
    }
  }
  if (oldest < 0 ||
      sim_.now() - oldest_enqueued < params_.fetch_aging_bound) {
    return -1;
  }
  // No intervention needed while its array is resident or already being
  // loaded: pass 1, a release handoff, or the in-flight load serves it.
  if (loading_.count(oldest) > 0 || BayHolding(oldest) >= 0) {
    return -1;
  }
  return oldest;
}

int FetchScheduler::PickTrayToLoad(bool* aged) {
  *aged = false;
  const int starved = AgedTray();
  if (starved >= 0) {
    *aged = true;
    return starved;
  }
  int best = -1;
  sim::Duration best_cost = 0;
  std::uint64_t best_seq = 0;
  for (const auto& [tray, queue] : queues_) {
    if (queue.empty() || loading_.count(tray) > 0 ||
        BayHolding(tray) >= 0) {
      // A resident tray is served by pass 1 (parked) or by a release
      // handoff (busy); loading it into a second bay would fork the media.
      continue;
    }
    const sim::Duration cost =
        PositioningCost(mech::TrayAddress::FromIndex(tray));
    if (best < 0 || cost < best_cost ||
        (cost == best_cost && queue.front()->seq < best_seq)) {
      best = tray;
      best_cost = cost;
      best_seq = queue.front()->seq;
    }
  }
  return best;
}

int FetchScheduler::PickLoadBay(bool allow_demanded) const {
  // Empty bays first: nothing to unload.
  for (int bay = 0; bay < mech_->num_bays(); ++bay) {
    if (mech_->bay_state(bay) == BayState::kEmpty) {
      return bay;
    }
  }
  // Victim pass: never a tray with queued demand (those waiters would
  // immediately need it re-loaded); LRU among the no-demand parked bays.
  // For an aged dispatch the LRU parked bay is the fallback even if its
  // tray is demanded: strict FIFO outranks keeping a hot array resident.
  int victim = -1;
  std::uint64_t victim_stamp = 0;
  int fallback = -1;
  std::uint64_t fallback_stamp = 0;
  for (int bay = 0; bay < mech_->num_bays(); ++bay) {
    if (mech_->bay_state(bay) != BayState::kParked) {
      continue;
    }
    const std::uint64_t stamp = last_used_.at(bay);
    if (fallback < 0 || stamp < fallback_stamp) {
      fallback = bay;
      fallback_stamp = stamp;
    }
    auto tray = mech_->bay_tray(bay);
    if (tray.has_value() && HasDemand(*tray)) {
      continue;
    }
    if (victim < 0 || stamp < victim_stamp) {
      victim = bay;
      victim_stamp = stamp;
    }
  }
  if (victim < 0 && allow_demanded) {
    return fallback;
  }
  return victim;
}

sim::Task<void> FetchScheduler::LoadTask(mech::TrayAddress tray, int bay,
                                         bool speculative) {
  Status status = OkStatus();
  auto victim = mech_->bay_tray(bay);
  if (victim.has_value()) {
    NoteUnload(victim->ToIndex());
    ++stats_.unloads;
    status = co_await mech_->UnloadArray(bay);
  }
  if (status.ok()) {
    ++stats_.loads;
    status = co_await mech_->LoadArray(tray, bay);
  }
  const int index = tray.ToIndex();
  loading_.erase(index);
  if (!status.ok()) {
    // Fail the whole batch: every waiter re-enters the queue through its
    // caller's retry policy, with fresh backoff and bay selection.
    ++stats_.failed_batches;
    auto it = queues_.find(index);
    if (it != queues_.end()) {
      std::deque<std::shared_ptr<Request>> waiters = std::move(it->second);
      queues_.erase(it);
      for (std::shared_ptr<Request>& request : waiters) {
        Complete(std::move(request), status);
      }
    }
    ROS_LOG(kWarning) << "scheduled load of " << tray.ToString()
                      << " failed: " << status.ToString();
    mech_->ReleaseBay(bay);
    co_return;
  }
  auto it = queues_.find(index);
  if (it == queues_.end() || it->second.empty()) {
    if (speculative) {
      spec_resident_.insert(index);  // parked until demand (or eviction)
    }
    mech_->ReleaseBay(bay);  // waiters raced away; park the array
    co_return;
  }
  if (speculative) {
    // Demand arrived mid-cycle: the speculative load absorbs it exactly
    // like a demand load would have, one whole cycle earlier.
    ++stats_.speculative_useful;
  }
  stats_.max_batch = std::max(stats_.max_batch,
                              static_cast<std::uint64_t>(it->second.size()));
  CompleteFront(index, bay);
}

void FetchScheduler::CompleteFront(int tray_index, int bay) {
  auto it = queues_.find(tray_index);
  ROS_CHECK(it != queues_.end() && !it->second.empty());
  std::shared_ptr<Request> request = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) {
    queues_.erase(it);
  }
  Complete(std::move(request), bay);
}

void FetchScheduler::Complete(std::shared_ptr<Request> request,
                              StatusOr<int> result) {
  const sim::Duration delay = sim_.now() - request->enqueued;
  ++stats_.completed;
  stats_.total_queue_delay += delay;
  stats_.max_queue_delay = std::max(stats_.max_queue_delay, delay);
  ++stats_.delay_hist[static_cast<std::size_t>(DelayBucket(delay))];
  request->bay = std::move(result);
  request->done.Set();
}

}  // namespace ros::olfs
