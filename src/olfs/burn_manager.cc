#include "src/olfs/burn_manager.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/olfs/audit.h"
#include "src/sim/join.h"
#include "src/sim/retry.h"
#include "src/udf/serializer.h"

namespace ros::olfs {

BurnManager::BurnManager(sim::Simulator& sim, const OlfsParams& params,
                         BucketManager* buckets, DiscImageStore* images,
                         ParityBuilder* parity, MechController* mech,
                         DaIndex* da, ReadCache* cache, MetadataVolume* mv)
    : sim_(sim), params_(params), buckets_(buckets), images_(images),
      parity_(parity), mech_(mech), da_(da), cache_(cache), mv_(mv),
      burns_changed_(sim) {
  interrupt_requested_.assign(
      static_cast<std::size_t>(mech_->num_bays()), false);
}

void BurnManager::NotifyImageClosed(const std::string&) {
  MaybeStartBurn();
}

void BurnManager::MaybeStartBurn() {
  const int quota = params_.data_images_per_array();
  std::vector<std::string> pending = images_->UnburnedClosed();
  // Images already claimed by running burn tasks are removed from
  // UnburnedClosed only at completion; track claims via a skip set.
  std::vector<std::string> available;
  for (const std::string& id : pending) {
    if (std::find(claimed_.begin(), claimed_.end(), id) == claimed_.end()) {
      available.push_back(id);
    }
  }
  // Affinity placement: cluster co-accessed images onto this array. The
  // batch forms over a wider window of closed images so the clusterer has
  // genuine choice of membership (forming at exactly `quota` could only
  // reorder the same prefix). With no tracker, no recorded edges, or the
  // feature off, this is exactly the close-order prefix — and the original
  // fire-at-quota timing — of the pre-hint planner.
  const bool affinity_active = affinity_ != nullptr &&
                               params_.affinity_placement_enabled &&
                               affinity_->edges() > 0;
  const int form_at =
      affinity_active ? quota + params_.affinity_window() : quota;
  if (static_cast<int>(available.size()) < form_at) {
    return;
  }
  std::vector<std::string> batch =
      affinity_active ? affinity_->PlanBatch(available, quota)
                      : std::vector<std::string>(available.begin(),
                                                 available.begin() + quota);
  claimed_.insert(claimed_.end(), batch.begin(), batch.end());
  ++active_burns_;
  sim_.Spawn(BurnArrayTask(std::move(batch), std::nullopt));
}

sim::Task<Status> BurnManager::FlushPartialArray() {
  std::vector<std::string> pending = images_->UnburnedClosed();
  std::vector<std::string> available;
  for (const std::string& id : pending) {
    if (std::find(claimed_.begin(), claimed_.end(), id) == claimed_.end()) {
      available.push_back(id);
    }
  }
  // A flush drains everything now: the affinity window no longer applies,
  // but full arrays still go through the clusterer so a pool the window
  // accumulated burns well-placed. (Without affinity the pool can never
  // exceed the quota here — MaybeStartBurn drains it — so this loop
  // degenerates to at most the original single partial array.)
  const int quota = params_.data_images_per_array();
  const bool affinity_active = affinity_ != nullptr &&
                               params_.affinity_placement_enabled &&
                               affinity_->edges() > 0;
  while (static_cast<int>(available.size()) >= quota) {
    std::vector<std::string> batch =
        affinity_active ? affinity_->PlanBatch(available, quota)
                        : std::vector<std::string>(available.begin(),
                                                   available.begin() + quota);
    for (const std::string& id : batch) {
      available.erase(std::find(available.begin(), available.end(), id));
    }
    claimed_.insert(claimed_.end(), batch.begin(), batch.end());
    ++active_burns_;
    sim_.Spawn(BurnArrayTask(std::move(batch), std::nullopt));
  }
  if (available.empty()) {
    co_return OkStatus();
  }
  claimed_.insert(claimed_.end(), available.begin(), available.end());
  ++active_burns_;
  sim_.Spawn(BurnArrayTask(std::move(available), std::nullopt));
  co_return OkStatus();
}

Status BurnManager::InterruptBay(int bay) {
  if (bay < 0 || bay >= mech_->num_bays()) {
    return InvalidArgumentError("bad bay");
  }
  interrupt_requested_[static_cast<std::size_t>(bay)] = true;
  drive::DriveSet& set = mech_->drive_set(bay);
  for (int i = 0; i < set.size(); ++i) {
    if (set.drive(i).state() == drive::DriveState::kBurning) {
      set.drive(i).RequestInterrupt();
    }
  }
  return OkStatus();
}

sim::Task<void> BurnManager::BurnArrayTask(
    std::vector<std::string> data_ids, std::optional<BurnJob> resume) {
  BurnJob job;
  if (resume.has_value()) {
    job = std::move(*resume);
    job.resumed = true;
  } else {
    job.image_ids = data_ids;
    // Delayed parity generation (§4.7): only now that the array's data
    // images are all ready. Parity lands on the "other" volume to keep
    // the four I/O streams apart.
    const int parity_volume =
        buckets_->num_volumes() > 1 ? 1 : 0;
    std::vector<disk::Volume*> volumes;
    for (int i = 0; i < buckets_->num_volumes(); ++i) {
      volumes.push_back(buckets_->volume(i));
    }
    auto parities =
        co_await parity_->Build(data_ids, volumes, parity_volume);
    if (!parities.ok()) {
      last_error_ = parities.status();
      fatal_error_ = parities.status();
      --active_burns_;
      burns_changed_.NotifyAll();
      co_return;
    }
    for (const ParityImage& parity : *parities) {
      job.image_ids.push_back(parity.id);
    }
    auto tray = da_->AllocateEmpty();
    if (!tray.ok()) {
      last_error_ = tray.status();
      fatal_error_ = tray.status();
      --active_burns_;
      burns_changed_.NotifyAll();
      co_return;
    }
    job.tray = *tray;
    da_->set_state(job.tray, ArrayState::kUsed);
  }

  // Burn with two-tier retry. Transient failures (a mechanical fault, a
  // momentarily busy drive) leave the media sound: the same array retries
  // in place under params.burn_retry's backoff. Permanent failures (burn
  // errors: suspect media) mark the array kFailed in the DAindex and the
  // job moves to a fresh empty array.
  constexpr int kMaxArrayRetries = 2;
  sim::Retrier retrier(sim_, params_.burn_retry,
                       static_cast<std::uint64_t>(job.tray.ToIndex()) + 1);
  int reallocations = 0;
  while (true) {
    auto bay = co_await mech_->AcquireBay(std::nullopt, /*wait=*/true);
    if (!bay.ok()) {
      last_error_ = bay.status();
      fatal_error_ = bay.status();
      break;
    }
    Status status = co_await BurnArrayInBay(job, *bay);
    mech_->ReleaseBay(*bay);
    if (status.ok()) {
      --active_burns_;
      burns_changed_.NotifyAll();
      co_return;
    }
    last_error_ = status;
    if (sim::IsTransient(status.code())) {
      if (co_await retrier.AwaitRetry(status)) {
        ++burn_retries_;
        ROS_LOG(kWarning) << "transient burn failure on array "
                          << job.tray.ToString() << "; retrying in place: "
                          << status.ToString();
        continue;
      }
      fatal_error_ = status;
      break;
    }
    da_->set_state(job.tray, ArrayState::kFailed);
    ROS_LOG(kWarning) << "burn of array " << job.tray.ToString()
                      << " failed (" << status.ToString()
                      << "); reallocating";
    if (++reallocations > kMaxArrayRetries) {
      break;
    }
    auto tray = da_->AllocateEmpty();
    if (!tray.ok()) {
      last_error_ = tray.status();
      fatal_error_ = tray.status();
      break;
    }
    job.tray = *tray;
    da_->set_state(job.tray, ArrayState::kUsed);
    ++arrays_reallocated_;
    job.burned_bytes.clear();
    job.resumed = false;
  }
  // Exhausted retries: release the claims so the images stay burnable.
  if (fatal_error_.ok()) {
    fatal_error_ = last_error_;
  }
  for (const std::string& id : job.image_ids) {
    claimed_.erase(std::remove(claimed_.begin(), claimed_.end(), id),
                   claimed_.end());
  }
  --active_burns_;
  burns_changed_.NotifyAll();
}

// ros-lint: allow(coro-ref-param): job lives in jobs_ and must be mutated
// in place; the owning map outlives every burn coroutine.
sim::Task<Status> BurnManager::BurnArrayInBay(BurnJob& job, int bay) {
  interrupt_requested_[static_cast<std::size_t>(bay)] = false;

  // The bay may hold a parked array from an earlier fetch.
  if (mech_->bay_tray(bay).has_value()) {
    ROS_CO_RETURN_IF_ERROR(co_await mech_->UnloadArray(bay));
  }
  ROS_CO_RETURN_IF_ERROR(co_await mech_->LoadArray(job.tray, bay));

  std::vector<sim::Task<Status>> burns;
  for (int i = 0; i < static_cast<int>(job.image_ids.size()); ++i) {
    burns.push_back(BurnOneDisc(job, bay, i, job.image_ids[i],
                                i * burn_start_interval));
  }
  Status status = co_await sim::AllOk(sim_, std::move(burns));

  const bool interrupted =
      interrupt_requested_[static_cast<std::size_t>(bay)];
  ROS_CO_RETURN_IF_ERROR(co_await mech_->UnloadArray(bay));

  if (interrupted) {
    // Half-burned array back in the roller; a resume task re-acquires a
    // bay (queueing behind the fetch that interrupted us) and continues
    // the remaining burns in append-burn mode.
    ++interrupts_taken_;
    ++active_burns_;
    sim_.Spawn(BurnArrayTask({}, job));
    ROS_LOG(kInfo) << "burn of array " << job.tray.ToString()
                   << " interrupted; resume queued";
    co_return OkStatus();
  }
  ROS_CO_RETURN_IF_ERROR(status);
  co_return co_await FinishJob(job);
}

// ros-lint: allow(coro-ref-param): job lives in jobs_ and must be mutated
// in place; the owning map outlives every burn coroutine.
sim::Task<Status> BurnManager::BurnOneDisc(BurnJob& job, int bay,
                                           int disc_index,
                                           std::string image_id,
                                           sim::Duration start_delay) {
  // Skip images that finished before an interrupt. The map value is
  // copied out here: interrupt bookkeeping mutates job.burned_bytes from
  // sibling disc burns, so no iterator may live across the suspensions
  // below.
  std::uint64_t already_burned = 0;
  bool resuming = false;
  if (auto it = job.burned_bytes.find(image_id);
      it != job.burned_bytes.end()) {
    already_burned = it->second;
    resuming = true;
  }
  ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record,
                          images_->Lookup(image_id));
  std::uint64_t logical = record->logical_bytes;
  std::vector<std::uint8_t> payload;
  if (record->parity) {
    auto parity = parity_->Get(image_id);
    if (parity.ok()) {
      payload = (*parity)->bytes;
    }
  } else {
    ROS_CHECK(record->image != nullptr);
    payload = udf::Serializer::Serialize(*record->image);
  }
  logical = std::max<std::uint64_t>(logical, payload.size());
  if (resuming && already_burned >= logical) {
    co_return OkStatus();  // already fully burned before the interrupt
  }

  co_await sim_.Delay(start_delay);
  if (interrupt_requested_[static_cast<std::size_t>(bay)]) {
    job.burned_bytes[image_id] = already_burned;
    co_return OkStatus();
  }

  // Stage the image from the disk buffer (reads contend on the volume,
  // which staggers actual burn starts further).
  if (!record->volume_file.empty()) {
    disk::Volume* volume = buckets_->volume(record->volume_index);
    auto size = volume->FileSize(record->volume_file);
    if (size.ok() && *size > 0) {
      ROS_CO_RETURN_IF_ERROR(
          co_await volume->ReadDiscard(record->volume_file, 0, *size));
    }
  }

  drive::OpticalDrive& drive = mech_->drive_set(bay).drive(disc_index);
  // Append mode is required to resume after interrupts; the metadata zone
  // is pre-formatted only under the interrupt-and-swap policy (§4.8).
  drive::BurnOptions options;
  options.append_mode =
      params_.busy_drive_policy == BusyDrivePolicy::kInterruptAndSwap ||
      job.resumed;
  auto result = co_await drive.BurnImage(image_id, logical,
                                         std::move(payload), options);
  if (!result.ok()) {
    co_return result.status();
  }
  job.burned_bytes[image_id] = result->bytes_burned;
  co_return OkStatus();
}

// ros-lint: allow(coro-ref-param): job lives in jobs_ and must be mutated
// in place; the owning map outlives every burn coroutine.
sim::Task<Status> BurnManager::FinishJob(BurnJob& job) {
  for (int i = 0; i < static_cast<int>(job.image_ids.size()); ++i) {
    const std::string& id = job.image_ids[i];
    ROS_CO_RETURN_IF_ERROR(
        images_->MarkBurned(id, mech::DiscAddress{job.tray, i}));
    claimed_.erase(std::remove(claimed_.begin(), claimed_.end(), id),
                   claimed_.end());
    ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record, images_->Lookup(id));
    cache_->Admit(id, record->logical_bytes);
  }
  ROS_CO_RETURN_IF_ERROR(images_->SetArrayMembers(job.image_ids));
  ++arrays_burned_;
  if (audit_ != nullptr) {
    // Build the array's Merkle manifest while the member streams are still
    // in controller memory. Advisory: a manifest failure must never turn a
    // physically successful burn into an error.
    Status audited = co_await audit_->OnArrayBurned(job.tray, job.image_ids);
    if (!audited.ok()) {
      ROS_LOG(kWarning) << "audit manifest for " << job.tray.ToString()
                        << " failed: " << audited.ToString();
    }
  }
  ROS_CO_RETURN_IF_ERROR(co_await PersistDilIndex());
  ROS_CO_RETURN_IF_ERROR(co_await EvictCacheOverflow());
  ROS_LOG(kInfo) << "burned disc array " << job.tray.ToString();
  co_return OkStatus();
}

sim::Task<Status> BurnManager::PersistDilIndex() {
  json::Object dil;
  for (const std::string& id : images_->BurnedImages()) {
    auto record = images_->Lookup(id);
    if (record.ok() && (*record)->disc.has_value()) {
      json::Object entry;
      entry["slot"] = json::Value((*record)->disc->ToIndex());
      entry["parity"] = json::Value((*record)->parity);
      dil[id] = json::Value(std::move(entry));
    }
  }
  co_return co_await mv_->PutState("dilindex", json::Value(std::move(dil)));
}

sim::Task<Status> BurnManager::EvictCacheOverflow() {
  for (const std::string& id : cache_->EvictionCandidates()) {
    auto record = images_->Lookup(id);
    if (!record.ok() || (*record)->tier != ImageTier::kBurnedCached) {
      continue;
    }
    // Drop the staged bytes from the buffer volume.
    disk::Volume* volume = buckets_->volume((*record)->volume_index);
    if (volume->Exists((*record)->volume_file)) {
      ROS_CO_RETURN_IF_ERROR(co_await volume->Delete((*record)->volume_file));
    }
    ROS_CO_RETURN_IF_ERROR(images_->DropFromBuffer(id));
    cache_->Remove(id);
    ROS_LOG(kDebug) << "evicted image " << id << " from the read cache";
  }
  co_return OkStatus();
}

sim::Task<Status> BurnManager::DrainAll() {
  while (active_burns_ > 0) {
    co_await burns_changed_.Wait();
  }
  co_return fatal_error_;
}

}  // namespace ros::olfs
