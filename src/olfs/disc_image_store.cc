#include "src/olfs/disc_image_store.h"

#include <algorithm>

namespace ros::olfs {

Status DiscImageStore::RegisterBucket(std::shared_ptr<udf::Image> image,
                                      int volume_index,
                                      std::string volume_file) {
  ROS_CHECK(image != nullptr);
  const std::string id = image->id();
  if (records_.count(id) > 0) {
    return AlreadyExistsError("image " + id + " already registered");
  }
  ImageRecord record;
  record.id = id;
  record.image = std::move(image);
  record.tier = ImageTier::kOpenBucket;
  record.volume_index = volume_index;
  record.volume_file = std::move(volume_file);
  records_.emplace(id, std::move(record));
  return OkStatus();
}

Status DiscImageStore::RegisterParity(const std::string& id, int volume_index,
                                      std::string volume_file,
                                      std::uint64_t bytes) {
  if (records_.count(id) > 0) {
    return AlreadyExistsError("image " + id + " already registered");
  }
  ImageRecord record;
  record.id = id;
  record.parity = true;
  record.tier = ImageTier::kBuffered;
  record.volume_index = volume_index;
  record.volume_file = std::move(volume_file);
  record.logical_bytes = bytes;
  buffered_bytes_ += bytes;
  records_.emplace(id, std::move(record));
  // Parity images burn with their array; they are not burn candidates on
  // their own, so they are not added to close_order_.
  return OkStatus();
}

Status DiscImageStore::MarkClosed(const std::string& id) {
  ROS_ASSIGN_OR_RETURN(ImageRecord* record, LookupMutable(id));
  if (record->tier != ImageTier::kOpenBucket) {
    return FailedPreconditionError("image " + id + " not an open bucket");
  }
  record->tier = ImageTier::kBuffered;
  record->image->Close();
  record->logical_bytes = record->image->used_bytes();
  buffered_bytes_ += record->logical_bytes;
  close_order_.push_back(id);
  return OkStatus();
}

Status DiscImageStore::MarkBurned(const std::string& id,
                                  mech::DiscAddress disc) {
  ROS_ASSIGN_OR_RETURN(ImageRecord* record, LookupMutable(id));
  if (record->tier != ImageTier::kBuffered) {
    return FailedPreconditionError("image " + id + " not awaiting burn");
  }
  record->tier = ImageTier::kBurnedCached;
  record->disc = disc;
  close_order_.erase(
      std::remove(close_order_.begin(), close_order_.end(), id),
      close_order_.end());
  return OkStatus();
}

Status DiscImageStore::DropFromBuffer(const std::string& id) {
  ROS_ASSIGN_OR_RETURN(ImageRecord* record, LookupMutable(id));
  if (record->tier != ImageTier::kBurnedCached) {
    return FailedPreconditionError(
        "only burned images may leave the buffer: " + id);
  }
  record->tier = ImageTier::kBurnedOnly;
  record->image.reset();
  buffered_bytes_ -= record->logical_bytes;
  record->volume_file.clear();
  return OkStatus();
}

Status DiscImageStore::RestoreToBuffer(const std::string& id,
                                       std::shared_ptr<udf::Image> image,
                                       int volume_index,
                                       std::string volume_file) {
  ROS_ASSIGN_OR_RETURN(ImageRecord* record, LookupMutable(id));
  if (record->tier != ImageTier::kBurnedOnly) {
    return FailedPreconditionError("image " + id + " already buffered");
  }
  record->tier = ImageTier::kBurnedCached;
  record->image = std::move(image);
  record->volume_index = volume_index;
  record->volume_file = std::move(volume_file);
  buffered_bytes_ += record->logical_bytes;
  return OkStatus();
}

Status DiscImageStore::SetArrayMembers(
    const std::vector<std::string>& members) {
  for (const std::string& id : members) {
    ROS_ASSIGN_OR_RETURN(ImageRecord* record, LookupMutable(id));
    record->array_members = members;
  }
  return OkStatus();
}

Status DiscImageStore::RegisterRecovered(const std::string& id, bool parity,
                                         mech::DiscAddress disc,
                                         std::uint64_t bytes) {
  auto it = records_.find(id);
  if (it != records_.end()) {
    it->second.disc = disc;
    return OkStatus();
  }
  ImageRecord record;
  record.id = id;
  record.parity = parity;
  record.tier = ImageTier::kBurnedOnly;
  record.disc = disc;
  record.logical_bytes = bytes;
  records_.emplace(id, std::move(record));
  return OkStatus();
}

Status DiscImageStore::ReopenForRepair(const std::string& id,
                                       std::shared_ptr<udf::Image> image,
                                       int volume_index,
                                       std::string volume_file) {
  ROS_ASSIGN_OR_RETURN(ImageRecord* record, LookupMutable(id));
  if (record->tier == ImageTier::kBurnedCached) {
    buffered_bytes_ -= record->logical_bytes;
  }
  record->tier = ImageTier::kBuffered;
  record->disc.reset();
  record->image = std::move(image);
  record->volume_index = volume_index;
  record->volume_file = std::move(volume_file);
  record->logical_bytes = record->image->used_bytes();
  buffered_bytes_ += record->logical_bytes;
  close_order_.push_back(id);
  return OkStatus();
}

std::vector<const ImageRecord*> DiscImageStore::AllRecords() const {
  std::vector<const ImageRecord*> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) {
    out.push_back(&record);
  }
  return out;
}

Status DiscImageStore::RestoreRecord(ImageRecord record) {
  if (records_.count(record.id) > 0) {
    return AlreadyExistsError("image " + record.id + " already registered");
  }
  if (record.tier == ImageTier::kBuffered) {
    close_order_.push_back(record.id);
  }
  if (record.tier == ImageTier::kBuffered ||
      record.tier == ImageTier::kBurnedCached) {
    buffered_bytes_ += record.logical_bytes;
  }
  const std::string id = record.id;
  records_.emplace(id, std::move(record));
  return OkStatus();
}

void DiscImageStore::Clear() {
  records_.clear();
  close_order_.clear();
  buffered_bytes_ = 0;
}

StatusOr<const ImageRecord*> DiscImageStore::Lookup(
    const std::string& id) const {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return NotFoundError("unknown image " + id);
  }
  return &it->second;
}

StatusOr<ImageRecord*> DiscImageStore::LookupMutable(const std::string& id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return NotFoundError("unknown image " + id);
  }
  return &it->second;
}

std::vector<std::string> DiscImageStore::UnburnedClosed() const {
  return close_order_;
}

std::vector<std::string> DiscImageStore::BurnedImages() const {
  std::vector<std::string> out;
  for (const auto& [id, record] : records_) {
    if (record.disc.has_value()) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace ros::olfs
