// Disc Image Management (DIM) and the disc image location index
// (DILindex), §4.1.
//
// Every disc image has a universal unique id and moves through tiers:
// open bucket -> closed image in the disk buffer -> burned onto a disc
// (optionally still cached in the buffer). DIM is the single source of
// truth for where an image's bytes currently live; the read path resolves
// an index entry's image id here.
#ifndef ROS_SRC_OLFS_DISC_IMAGE_STORE_H_
#define ROS_SRC_OLFS_DISC_IMAGE_STORE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/mech/geometry.h"
#include "src/udf/image.h"

namespace ros::olfs {

enum class ImageTier {
  kOpenBucket,   // updatable, accepting writes
  kBuffered,     // closed, waiting to burn (must stay in the buffer)
  kBurnedCached, // burned and still cached in the buffer
  kBurnedOnly,   // burned; only copy is on the disc
};

struct ImageRecord {
  std::string id;
  // In-memory UDF structure; present unless kBurnedOnly.
  std::shared_ptr<udf::Image> image;
  bool parity = false;
  ImageTier tier = ImageTier::kOpenBucket;
  // DILindex entry once burned.
  std::optional<mech::DiscAddress> disc;
  // Disk-buffer placement.
  int volume_index = 0;
  std::string volume_file;
  std::uint64_t logical_bytes = 0;  // space the image occupies on disk/disc
  // All images (data then parity) burned in the same disc array; set at
  // burn completion, used by the scrubber's parity recovery (§4.7).
  std::vector<std::string> array_members;
};

class DiscImageStore {
 public:
  // Registers a fresh bucket image.
  Status RegisterBucket(std::shared_ptr<udf::Image> image, int volume_index,
                        std::string volume_file);

  // Registers a parity image (never a UDF volume, §4.7); tier kBuffered.
  Status RegisterParity(const std::string& id, int volume_index,
                        std::string volume_file, std::uint64_t bytes);

  // Bucket closed -> unburned data image.
  Status MarkClosed(const std::string& id);

  // Image burned onto `disc`; stays cached until evicted.
  Status MarkBurned(const std::string& id, mech::DiscAddress disc);

  // Read-cache eviction: drops buffered bytes of a burned image.
  Status DropFromBuffer(const std::string& id);

  // Re-admits a burned image into the buffer cache (after a fetch).
  Status RestoreToBuffer(const std::string& id,
                         std::shared_ptr<udf::Image> image,
                         int volume_index, std::string volume_file);

  // Records the disc-array membership for each image of a burned array.
  Status SetArrayMembers(const std::vector<std::string>& members);

  // Registers an image discovered by a physical disc scan (recovery).
  Status RegisterRecovered(const std::string& id, bool parity,
                           mech::DiscAddress disc, std::uint64_t bytes);

  // A scrub-recovered image re-enters the burn pipeline: buffered again,
  // its old (damaged) disc location dropped.
  Status ReopenForRepair(const std::string& id,
                         std::shared_ptr<udf::Image> image, int volume_index,
                         std::string volume_file);

  // Drops all records (simulating controller loss before a rebuild).
  void Clear();

  StatusOr<const ImageRecord*> Lookup(const std::string& id) const;
  StatusOr<ImageRecord*> LookupMutable(const std::string& id);

  // Closed, unburned data images (burn candidates, oldest first).
  std::vector<std::string> UnburnedClosed() const;

  // All image ids with a DILindex (on-disc) location.
  std::vector<std::string> BurnedImages() const;

  std::uint64_t buffered_bytes() const { return buffered_bytes_; }
  std::size_t image_count() const { return records_.size(); }

  // All records, for checkpointing and maintenance reports.
  std::vector<const ImageRecord*> AllRecords() const;

  // Checkpoint restore: re-registers a record wholesale.
  Status RestoreRecord(ImageRecord record);

 private:
  std::map<std::string, ImageRecord> records_;
  std::vector<std::string> close_order_;  // FIFO of closed data images
  std::uint64_t buffered_bytes_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_DISC_IMAGE_STORE_H_
