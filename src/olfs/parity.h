// Delayed parity generation and disc-array redundancy (§4.7).
//
// Parity disc images are generated only once all data images of an array
// are ready (never synchronously with user writes). The parity maker reads
// every data image's stripes from the disk buffer, computes P (XOR) and,
// for the RAID-6 schema, Q (GF(2^8) Reed-Solomon), and writes the parity
// images back — an I/O-intensive process that is one of the four
// concurrent streams §4.7 schedules across independent RAID volumes.
//
// Parity is computed for real over the serialized image byte streams
// (padded to the longest), so a lost disc is reconstructed bit-exactly by
// ParityBuilder::Recover.
#ifndef ROS_SRC_OLFS_PARITY_H_
#define ROS_SRC_OLFS_PARITY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/disk/volume.h"
#include "src/olfs/disc_image_store.h"
#include "src/olfs/params.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/udf/image.h"

namespace ros::olfs {

// Serialized parity payload carried on a parity disc.
struct ParityImage {
  std::string id;
  int index = 0;  // 0 = P, 1 = Q
  std::vector<std::uint8_t> bytes;      // real parity of serialized streams
  std::uint64_t logical_bytes = 0;      // disc footprint (max data image)
  std::vector<std::string> member_ids;  // the protected data images
};

class ParityBuilder {
 public:
  ParityBuilder(sim::Simulator& sim, const OlfsParams& params,
                DiscImageStore* images)
      : sim_(sim), params_(params), images_(images) {}

  // Builds the parity images for `data_ids`. Charges the disk-buffer I/O:
  // reading every data image from its volume and writing the parity images
  // to `parity_volume`. Registers the results with DIM.
  //
  // Single-pass: each member stream is serialized once and swept exactly
  // once by the fused P+Q kernel, no matter how many parity images the
  // schema asks for. The returned ParityImages carry metadata only (empty
  // `bytes`); the single retained payload copy lives in the builder and is
  // served by Get() until the parity disc is burned.
  sim::Task<StatusOr<std::vector<ParityImage>>> Build(
      std::vector<std::string> data_ids,
      std::vector<disk::Volume*> data_volumes, int parity_volume_index);

  // Reconstructs one missing serialized data-image stream from the
  // survivors + parity streams. `missing_index` is the position of the
  // lost member within `member_streams` (which holds empty vectors at the
  // missing slots). Pure computation; the caller charges I/O.
  static StatusOr<std::vector<std::uint8_t>> Recover(
      const std::vector<std::vector<std::uint8_t>>& member_streams,
      const std::vector<std::vector<std::uint8_t>>& parity_streams,
      int missing_index);

  // Single loss with P unreadable: recovers one missing data stream from
  // the survivors plus the Q (Reed-Solomon) parity alone:
  //   D_j = (Q ^ sum_{i != j} g^i D_i) * g^-j.
  static StatusOr<std::vector<std::uint8_t>> RecoverOneFromQ(
      const std::vector<std::vector<std::uint8_t>>& member_streams,
      const std::vector<std::uint8_t>& q_stream, int missing_index);

  // RAID-6 schema (§4.7, 10+2): reconstructs TWO missing data streams
  // from the survivors plus both the P and Q parity streams. Returns the
  // pair in (missing_a, missing_b) order. Uses the standard Reed-Solomon
  // double-erasure solve over GF(2^8):
  //   D_a = (Q' ^ g^b P') / (g^a ^ g^b),  D_b = P' ^ D_a.
  static StatusOr<std::pair<std::vector<std::uint8_t>,
                            std::vector<std::uint8_t>>>
  RecoverTwo(const std::vector<std::vector<std::uint8_t>>& member_streams,
             const std::vector<std::uint8_t>& p_stream,
             const std::vector<std::uint8_t>& q_stream, int missing_a,
             int missing_b);

  // Retrieves the cached parity bytes for an id (kept by the builder until
  // burned; benches use this). O(1) via the id index.
  StatusOr<const ParityImage*> Get(const std::string& id) const;

  // Test hook: number of member-stream kernel sweeps performed by the most
  // recent Build(). Stays equal to the member count even when both P and Q
  // are generated (the fused kernel feeds both in one pass).
  int last_build_stream_passes() const { return last_build_stream_passes_; }

 private:
  sim::Simulator& sim_;
  OlfsParams params_;
  DiscImageStore* images_;
  int generation_ = 0;  // uniquifies parity ids across re-burns
  int last_build_stream_passes_ = 0;
  std::vector<ParityImage> built_;
  // id -> position in built_ (entries are never erased, so indices are
  // stable even as the vector reallocates).
  // ros_analyze: allow(unordered-member): point lookups by image id
  // only; enumeration walks built_ in insertion order.
  std::unordered_map<std::string, std::size_t> built_index_;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_PARITY_H_
