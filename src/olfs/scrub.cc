#include "src/olfs/scrub.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/olfs/olfs.h"

namespace ros::olfs {

sim::Task<StatusOr<std::uint64_t>> ScrubManager::ScrubOneImage(
    std::string image_id) {
  ROS_CO_ASSIGN_OR_RETURN(
      FetchLease lease,
      co_await olfs_->fetches().FetchDiscBackground(image_id));
  Status mounted = co_await lease.drive()->MountVfs();
  if (!mounted.ok()) {
    lease.Release();
    co_return mounted;
  }
  drive::Disc* disc = lease.drive()->disc();
  auto session = disc->FindSession(image_id);
  if (!session.ok()) {
    lease.Release();
    co_return session.status();
  }
  const std::uint64_t stream_bytes = (*session)->data.size();
  // Charge the full-stream optical read; this is also what advances the
  // media aging clock on the disc (OpticalDrive::Read).
  auto timed = co_await lease.drive()->Read(
      image_id, 0, std::max<std::uint64_t>(1, stream_bytes));
  StatusOr<std::vector<std::uint8_t>> stream =
      timed.ok() ? disc->ReadSession(image_id, 0, stream_bytes)
                 : std::move(timed);
  lease.Release();
  if (!stream.ok()) {
    co_return stream.status();
  }
  co_return stream_bytes;
}

sim::Task<StatusOr<ScrubPassReport>> ScrubManager::RunPass() {
  ScrubPassReport report;
  // Snapshot the burned population grouped by tray; arrays burned while
  // the pass runs (including our own refresh burns) wait for the next one.
  std::map<int, std::vector<std::string>> by_tray;
  for (const std::string& id : olfs_->images().BurnedImages()) {
    auto record = olfs_->images().Lookup(id);
    if (!record.ok() || !(*record)->disc.has_value()) {
      continue;
    }
    const mech::TrayAddress tray = (*record)->disc->tray;
    // Retired arrays (WORM media already refreshed elsewhere) keep stale
    // records around; they are dead weight, not scrub targets.
    if (olfs_->da_index().state(tray) == ArrayState::kFailed) {
      continue;
    }
    by_tray[tray.ToIndex()].push_back(id);
  }
  const std::vector<std::pair<int, std::vector<std::string>>> arrays(
      by_tray.begin(), by_tray.end());

  bool staged = false;
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    const int tray_index = arrays[a].first;
    const std::vector<std::string> members = arrays[a].second;
    ++report.arrays;
    std::vector<std::string> damaged;
    double max_age_years = 0.0;
    for (std::size_t k = 0; k < members.size(); ++k) {
      const std::string id = members[k];
      auto record = olfs_->images().Lookup(id);
      if (record.ok() && (*record)->disc.has_value()) {
        max_age_years = std::max(
            max_age_years,
            olfs_->mech().DiscAt(*(*record)->disc)->AgeYears(sim_.now()));
      }
      auto scanned = co_await ScrubOneImage(id);
      ++report.images;
      if (scanned.ok()) {
        report.bytes += *scanned;
        scrubbed_bytes_ += *scanned;
      } else if (scanned.status().code() == StatusCode::kDataLoss) {
        damaged.push_back(id);
      } else {
        ROS_LOG(kWarning) << "scrub could not reach " << id << ": "
                          << scanned.status().ToString();
      }
    }

    const OlfsParams& params = olfs_->params();
    const bool age_refresh = params.refresh_age_years > 0 &&
                             max_age_years >= params.refresh_age_years;
    const bool damage_refresh =
        !damaged.empty() && params.scrub_refresh_enabled;
    if (damage_refresh || age_refresh) {
      Status status =
          co_await RefreshArray(tray_index, members, damaged, &report);
      if (status.ok()) {
        staged = true;
      } else {
        ROS_LOG(kWarning) << "refresh of tray " << tray_index
                          << " failed: " << status.ToString();
      }
    } else if (!damaged.empty()) {
      // Repair-only mode (scrub_refresh_enabled=false): rebuild damaged
      // data members from parity; the rest of the array stays put.
      for (std::size_t k = 0; k < damaged.size(); ++k) {
        const std::string id = damaged[k];
        auto record = olfs_->images().Lookup(id);
        if (!record.ok() || (*record)->parity) {
          continue;  // lone parity damage is healed by the next refresh
        }
        Status status = co_await olfs_->RecoverAndRepairImage(id);
        if (status.ok()) {
          ++scrub_repairs_;
          ++report.repairs;
          staged = true;
        } else {
          ROS_LOG(kWarning) << "scrub repair of " << id
                            << " failed: " << status.ToString();
        }
      }
    }
  }

  if (staged) {
    // Push every re-staged image through the burn pipeline so the pass
    // ends with the rack fully burned (and fresh audit manifests built).
    ROS_CO_RETURN_IF_ERROR(co_await olfs_->FlushAndDrain());
  }
  ++passes_;
  co_return report;
}

sim::Task<Status> ScrubManager::RefreshArray(
    int tray_index, std::vector<std::string> member_ids,
    std::vector<std::string> damaged, ScrubPassReport* report) {
  const OlfsParams& params = olfs_->params();
  if (params.generation_migration_enabled && !migrated_) {
    migrated_ = true;
    olfs_->mech().set_media_type(params.migration_disc_type);
    ROS_LOG(kInfo) << "generation migration: refresh burns now land on "
                      "the next media generation";
  }
  for (std::size_t k = 0; k < member_ids.size(); ++k) {
    const std::string id = member_ids[k];
    auto record = olfs_->images().Lookup(id);
    if (!record.ok() || (*record)->parity) {
      continue;  // parity is regenerated when the new array burns
    }
    const bool is_damaged =
        std::find(damaged.begin(), damaged.end(), id) != damaged.end();
    Status status;
    if (is_damaged) {
      status = co_await olfs_->RecoverAndRepairImage(id);
    } else {
      status = co_await olfs_->RefreshImage(id);
    }
    if (!status.ok()) {
      if (status.code() == StatusCode::kDataLoss) {
        // Unrecoverable member: acked loss the survival accounting will
        // surface. The rest of the array still migrates.
        ROS_LOG(kWarning) << "member " << id << " of tray " << tray_index
                          << " is unrecoverable: " << status.ToString();
        continue;
      }
      co_return status;
    }
    ++refresh_burns_;
    ++report->refresh_burns;
    if (is_damaged) {
      ++scrub_repairs_;
      ++report->repairs;
    }
  }
  const mech::TrayAddress tray = mech::TrayAddress::FromIndex(tray_index);
  Status retired = co_await olfs_->audit().RetireTray(tray);
  if (!retired.ok()) {
    ROS_LOG(kWarning) << "retiring audit manifest of tray " << tray_index
                      << " failed: " << retired.ToString();
  }
  // WORM media cannot be reused; mark the old array failed so the
  // allocator never hands it out again.
  olfs_->da_index().set_state(tray, ArrayState::kFailed);
  ++arrays_refreshed_;
  ++report->arrays_refreshed;
  co_return OkStatus();
}

sim::Task<StatusOr<AuditReport>> ScrubManager::RunAudit(
    double sample_fraction, std::uint64_t seed) {
  AuditReport report;
  ROS_CO_ASSIGN_OR_RETURN(std::vector<AuditManifest> manifests,
                          co_await olfs_->audit().LoadManifests());
  for (std::size_t m = 0; m < manifests.size(); ++m) {
    ++report.manifests;
    const std::uint64_t leaf_bytes = manifests[m].leaf_bytes;
    if (leaf_bytes == 0) {
      continue;
    }
    for (std::size_t j = 0; j < manifests[m].members.size(); ++j) {
      const AuditMember member = manifests[m].members[j];
      report.stored_bytes += member.stream_bytes;
      if (member.leaves.empty()) {
        continue;
      }
      auto lookup = olfs_->images().Lookup(member.image_id);
      if (!lookup.ok() || !(*lookup)->disc.has_value()) {
        continue;  // re-staged mid-refresh; its new burn gets a new tree
      }
      ++report.members;
      // Deterministic per-member sample of >=1 leaf.
      const std::uint64_t n = member.leaves.size();
      std::uint64_t want = static_cast<std::uint64_t>(
          sample_fraction * static_cast<double>(n));
      want = std::min(n, std::max<std::uint64_t>(1, want));
      Rng rng(seed ^
              Fnv1a64({reinterpret_cast<const std::uint8_t*>(
                           member.image_id.data()),
                       member.image_id.size()}));
      std::set<std::uint64_t> chosen;
      for (std::uint64_t i = 0; i < want; ++i) {
        chosen.insert(rng.Below(n));
      }
      const std::vector<std::uint64_t> leaves(chosen.begin(), chosen.end());

      auto lease =
          co_await olfs_->fetches().FetchDiscBackground(member.image_id);
      if (!lease.ok()) {
        ROS_LOG(kWarning) << "audit could not fetch " << member.image_id
                          << ": " << lease.status().ToString();
        continue;
      }
      Status mounted = co_await lease->drive()->MountVfs();
      if (!mounted.ok()) {
        lease->Release();
        continue;
      }
      drive::Disc* disc = lease->drive()->disc();
      std::uint64_t member_bad = 0;
      for (std::size_t i = 0; i < leaves.size(); ++i) {
        const std::uint64_t leaf = leaves[i];
        const std::uint64_t offset = leaf * leaf_bytes;
        if (offset >= member.stream_bytes) {
          continue;
        }
        const std::uint64_t len =
            std::min(leaf_bytes, member.stream_bytes - offset);
        ++audit_leaves_sampled_;
        ++report.leaves_sampled;
        audit_bytes_read_ += len;
        report.bytes_read += len;
        auto timed = co_await lease->drive()->Read(
            member.image_id, offset, std::max<std::uint64_t>(1, len));
        StatusOr<std::vector<std::uint8_t>> bytes =
            timed.ok() ? disc->ReadSession(member.image_id, offset, len)
                       : std::move(timed);
        if (!bytes.ok()) {
          if (bytes.status().code() == StatusCode::kDataLoss) {
            ++member_bad;  // rotten leaf: provable damage
          } else {
            ROS_LOG(kWarning) << "audit read of " << member.image_id
                              << " failed: " << bytes.status().ToString();
          }
          continue;
        }
        if (bytes->size() != len ||
            AuditHashLeaf(std::span<const std::uint8_t>(
                bytes->data(), bytes->size())) != member.leaves[leaf]) {
          ++member_bad;  // silent corruption: hash chain breaks
        }
      }
      lease->Release();
      if (member_bad > 0) {
        audit_mismatches_ += member_bad;
        report.mismatches += member_bad;
        report.damaged.push_back(member.image_id);
      }
    }
  }
  co_return report;
}

}  // namespace ros::olfs
