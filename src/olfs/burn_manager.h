// Burning Task Management (BTM), §4.1, §4.3, §4.7, §4.8.
//
// A burn task is created when a full disc array's worth of data images
// (11 under the RAID-5 schema) is ready. The task generates the parity
// image(s) (delayed parity generation), allocates an empty disc array and
// a free drive bay, loads the array, burns all 12 images concurrently
// (starts staggered while each drive's image is staged from the disk
// buffer), records the DILindex locations, and unloads the array.
//
// Burns run entirely off the foreground I/O path. A fetch task may
// interrupt an in-flight burn (BusyDrivePolicy::kInterruptAndSwap): the
// drives stop at the next chunk boundary, the half-burned array returns to
// its tray, and a follow-up task reloads and resumes it in append-burn
// mode once a bay frees up.
#ifndef ROS_SRC_OLFS_BURN_MANAGER_H_
#define ROS_SRC_OLFS_BURN_MANAGER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/olfs/affinity.h"
#include "src/olfs/bucket_manager.h"
#include "src/olfs/da_index.h"
#include "src/olfs/disc_image_store.h"
#include "src/olfs/mech_controller.h"
#include "src/olfs/metadata_volume.h"
#include "src/olfs/parity.h"
#include "src/olfs/read_cache.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::olfs {

class AuditRegistry;

class BurnManager {
 public:
  BurnManager(sim::Simulator& sim, const OlfsParams& params,
              BucketManager* buckets, DiscImageStore* images,
              ParityBuilder* parity, MechController* mech, DaIndex* da,
              ReadCache* cache, MetadataVolume* mv);

  // Interval between successive burn starts within one array (the
  // controller paces burn initiation while staging images; Fig 9).
  sim::Duration burn_start_interval = sim::Seconds(40);

  // Hook for BucketManager::on_image_closed. Spawns a burn task once a
  // full array's worth of closed images is pending.
  void NotifyImageClosed(const std::string& image_id);

  // Burns any remaining closed images as a partial array (parity over the
  // available members). No-op when nothing is pending.
  sim::Task<Status> FlushPartialArray();

  // Requests an interrupt of the burn running in `bay` (§4.8). Returns
  // immediately; the burn task handles suspension.
  Status InterruptBay(int bay);

  // Waits until every queued, active and suspended burn has completed.
  sim::Task<Status> DrainAll();

  // Cross-layer hints: when set (and affinity placement is enabled), burn
  // batches are ordered by the tracker's greedy co-access clustering so
  // images one stream touches land on the same tray.
  void set_affinity_tracker(const AffinityTracker* tracker) {
    affinity_ = tracker;
  }

  // When set, every finished array burn builds its Merkle audit manifest
  // inline (DESIGN.md §5j) while the member streams are still in memory.
  // Manifest failures are advisory: the burn itself never fails on them.
  void set_audit(AuditRegistry* audit) { audit_ = audit; }

  // Enforces the read-cache capacity: drops kBurnedCached images the SLRU
  // nominates until the cache fits. Also run by the whole-tray readahead
  // path after staging siblings into the probationary segment.
  sim::Task<Status> EvictCacheOverflow();

  int arrays_burned() const { return arrays_burned_; }
  int active_burns() const { return active_burns_; }
  int interrupts_taken() const { return interrupts_taken_; }
  // Transient burn-path failures retried in place (same disc array), and
  // arrays abandoned for spare media after a permanent failure.
  int burn_retries() const { return burn_retries_; }
  int arrays_reallocated() const { return arrays_reallocated_; }
  // Most recent error observed, including transient ones that a retry
  // recovered from (telemetry).
  Status last_error() const { return last_error_; }
  // Error of a burn job that ultimately failed (what DrainAll reports).
  Status fatal_error() const { return fatal_error_; }

 private:
  struct BurnJob {
    std::vector<std::string> image_ids;  // data images then parity images
    mech::TrayAddress tray;
    // Per image: bytes already burned (for append-burn resume).
    std::map<std::string, std::uint64_t> burned_bytes;
    bool resumed = false;
  };

  // Launches BurnArrayTask for the oldest pending full array.
  void MaybeStartBurn();
  sim::Task<void> BurnArrayTask(std::vector<std::string> data_ids,
                                std::optional<BurnJob> resume);
  sim::Task<Status> BurnArrayInBay(BurnJob& job, int bay);
  sim::Task<Status> BurnOneDisc(BurnJob& job, int bay, int disc_index,
                                std::string image_id,
                                sim::Duration start_delay);
  sim::Task<Status> FinishJob(BurnJob& job);
  sim::Task<Status> PersistDilIndex();

  sim::Simulator& sim_;
  OlfsParams params_;
  BucketManager* buckets_;
  DiscImageStore* images_;
  ParityBuilder* parity_;
  MechController* mech_;
  DaIndex* da_;
  ReadCache* cache_;
  MetadataVolume* mv_;
  const AffinityTracker* affinity_ = nullptr;
  AuditRegistry* audit_ = nullptr;

  int active_burns_ = 0;
  int arrays_burned_ = 0;
  int interrupts_taken_ = 0;
  int burn_retries_ = 0;
  int arrays_reallocated_ = 0;
  std::vector<std::string> claimed_;  // images owned by running burn tasks
  std::vector<bool> interrupt_requested_;
  sim::ConditionVariable burns_changed_;
  Status last_error_;
  Status fatal_error_;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_BURN_MANAGER_H_
