// Predictive tray prefetch: a per-stream last-successor (first-order
// Markov) model over tray indices. Each tagged read that touches a burned
// tray feeds the model; when the model has seen the stream's current tray
// lead somewhere before, olfs enqueues a low-priority speculative load of
// the predicted tray through the FetchScheduler's background class.
#ifndef ROS_SRC_OLFS_TRAY_PREDICTOR_H_
#define ROS_SRC_OLFS_TRAY_PREDICTOR_H_

#include <cstdint>
#include <map>

namespace ros::olfs {

class TrayPredictor {
 public:
  // Records that `stream` touched `tray` and returns the predicted next
  // tray (>= 0), or -1 when the model has nothing to say. The transition
  // table is shared across streams (trays burned together are read
  // together regardless of who asks); the last-tray state is per stream.
  int Observe(std::uint64_t stream, int tray);

  std::uint64_t transitions() const { return transitions_; }

 private:
  std::map<std::uint64_t, int> last_tray_;
  // from-tray -> (to-tray -> observation count).
  std::map<int, std::map<int, std::uint64_t>> successors_;
  std::uint64_t transitions_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_TRAY_PREDICTOR_H_
