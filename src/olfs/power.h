// Power model of the ROS rack (§5.1: "the idle and peak powers of ROS are
// 185 W and 652 W respectively"; §3.2: rotating the roller consumes less
// than 50 W; §5.1: each drive peaks at 8 W).
//
// The model is compositional: a base server platform plus per-component
// draws as a function of activity. It reproduces the prototype's idle and
// peak figures and lets benches estimate energy for a workload from the
// component busy times the simulation already tracks.
#ifndef ROS_SRC_OLFS_POWER_H_
#define ROS_SRC_OLFS_POWER_H_

#include "src/olfs/system.h"

namespace ros::olfs {

struct PowerModel {
  // Server platform (2x Xeon, 64 GB DDR4, NICs, HBAs) at idle / loaded.
  double controller_idle_w = 120.0;
  double controller_busy_w = 255.0;
  // Disks spun up (SSDs + HDDs) contribute to the idle floor.
  double ssd_idle_w = 1.5;
  double ssd_busy_w = 5.0;
  double hdd_idle_w = 3.4;
  double hdd_busy_w = 7.5;
  // Optical drives: negligible asleep, 8 W peak while reading/burning.
  double drive_sleep_w = 0.2;
  double drive_busy_w = 8.0;
  // Mechanics: roller rotation < 50 W, arm travel ~30 W, both transient.
  double roller_active_w = 50.0;
  double arm_active_w = 30.0;
  // PLC + sensors, always on.
  double plc_w = 10.0;

  struct Activity {
    bool controller_busy = false;
    int ssds_busy = 0;
    int hdds_busy = 0;
    int drives_busy = 0;
    bool roller_rotating = false;
    bool arm_moving = false;
  };

  // Instantaneous draw of a rack with the given hardware complement.
  double Watts(const SystemConfig& config, const Activity& activity) const {
    const int ssds = 2;
    const int hdds = config.data_volumes * config.hdds_per_volume;
    const int drives = config.drive_sets * 12;
    double w = (activity.controller_busy ? controller_busy_w
                                         : controller_idle_w) +
               plc_w;
    w += activity.ssds_busy * ssd_busy_w +
         (ssds - activity.ssds_busy) * ssd_idle_w;
    w += activity.hdds_busy * hdd_busy_w +
         (hdds - activity.hdds_busy) * hdd_idle_w;
    w += activity.drives_busy * drive_busy_w +
         (drives - activity.drives_busy) * drive_sleep_w;
    if (activity.roller_rotating) {
      w += roller_active_w;
    }
    if (activity.arm_moving) {
      w += arm_active_w;
    }
    return w;
  }

  // The §5.1 reference points for the prototype complement.
  double IdleWatts(const SystemConfig& config) const {
    return Watts(config, Activity{});
  }
  double PeakWatts(const SystemConfig& config) const {
    Activity peak;
    peak.controller_busy = true;
    peak.ssds_busy = 2;
    peak.hdds_busy = config.data_volumes * config.hdds_per_volume;
    peak.drives_busy = config.drive_sets * 12;
    peak.roller_rotating = true;
    peak.arm_moving = true;
    return Watts(config, peak);
  }
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_POWER_H_
