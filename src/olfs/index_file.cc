#include "src/olfs/index_file.h"

#include <algorithm>
#include <limits>

namespace ros::olfs {

char LocationCode(LocationKind kind) {
  switch (kind) {
    case LocationKind::kBucket: return 'B';
    case LocationKind::kImage: return 'I';
    case LocationKind::kDisc: return 'D';
  }
  return '?';
}

StatusOr<LocationKind> LocationFromCode(char code) {
  switch (code) {
    case 'B': return LocationKind::kBucket;
    case 'I': return LocationKind::kImage;
    case 'D': return LocationKind::kDisc;
    default:
      return InvalidArgumentError(std::string("bad location code: ") + code);
  }
}

StatusOr<const VersionEntry*> IndexFile::Latest() const {
  if (entries_.empty()) {
    return NotFoundError("no versions for " + path_);
  }
  const VersionEntry* latest = &entries_[0];
  for (const VersionEntry& entry : entries_) {
    if (entry.version > latest->version) {
      latest = &entry;
    }
  }
  if (latest->tombstone) {
    return NotFoundError(path_ + " is deleted");
  }
  return latest;
}

StatusOr<const VersionEntry*> IndexFile::Version(int version) const {
  for (const VersionEntry& entry : entries_) {
    if (entry.version == version) {
      return &entry;
    }
  }
  return NotFoundError("version " + std::to_string(version) + " of " +
                       path_ + " not in the current index ring");
}

void IndexFile::AddVersion(VersionEntry entry, int max_entries) {
  entry.version = next_version_++;
  if (static_cast<int>(entries_.size()) < max_entries) {
    entries_.push_back(std::move(entry));
    return;
  }
  // Ring full: overwrite the oldest entry (§4.6).
  auto oldest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const VersionEntry& a, const VersionEntry& b) {
        return a.version < b.version;
      });
  *oldest = std::move(entry);
}

Status IndexFile::UpdateLatest(const VersionEntry& entry) {
  if (entries_.empty()) {
    return NotFoundError("no versions to update for " + path_);
  }
  VersionEntry* latest = &entries_[0];
  for (VersionEntry& candidate : entries_) {
    if (candidate.version > latest->version) {
      latest = &candidate;
    }
  }
  const int keep_version = latest->version;
  *latest = entry;
  latest->version = keep_version;
  return OkStatus();
}

std::string IndexFile::ToJson() const {
  // Hand-rolled writer into one reserved buffer. json::Object is a
  // std::map, so the tree dump this replaces emitted keys alphabetically;
  // the literals below reproduce that order exactly (root: entries,
  // forepart, next_ver, path, type; entry: del, loc, parts, size, ver;
  // part: img, size) and index_file_test asserts byte equality against the
  // tree dump.
  std::string out;
  out.reserve(96 + path_.size() + entries_.size() * 80 +
              forepart_.size() * 2);
  out += "{\"entries\":[";
  bool first_entry = true;
  for (const VersionEntry& entry : entries_) {
    if (!first_entry) {
      out.push_back(',');
    }
    first_entry = false;
    out += "{\"del\":";
    out += entry.tombstone ? "true" : "false";
    out += ",\"loc\":\"";
    out.push_back(LocationCode(entry.location));
    out += "\",\"parts\":[";
    bool first_part = true;
    for (const FilePart& part : entry.parts) {
      if (!first_part) {
        out.push_back(',');
      }
      first_part = false;
      out += "{\"img\":";
      json::AppendQuoted(out, part.image_id);
      out += ",\"size\":";
      json::AppendInt(out, static_cast<std::int64_t>(part.size));
      out.push_back('}');
    }
    out += "],\"size\":";
    json::AppendInt(out, static_cast<std::int64_t>(entry.total_size));
    out += ",\"ver\":";
    json::AppendInt(out, entry.version);
    out.push_back('}');
  }
  out.push_back(']');
  if (!forepart_.empty()) {
    // Hex-encoded forepart: JSON-safe and platform independent.
    out += ",\"forepart\":\"";
    constexpr char kDigits[] = "0123456789abcdef";
    for (std::uint8_t byte : forepart_) {
      out.push_back(kDigits[byte >> 4]);
      out.push_back(kDigits[byte & 0xF]);
    }
    out.push_back('"');
  }
  out += ",\"next_ver\":";
  json::AppendInt(out, next_version_);
  out += ",\"path\":";
  json::AppendQuoted(out, path_);
  out += ",\"type\":\"";
  out += type_ == EntryType::kFile ? "file" : "dir";
  out += "\"}";
  return out;
}

namespace {

// Typed field extraction for untrusted index-file JSON. Every accessor
// validates the variant alternative before reading it: `as_string()` &
// friends throw std::bad_variant_access on a type mismatch, and a namespace
// rebuild must survive arbitrarily corrupted index files (§4.4).
StatusOr<std::string> GetString(const json::Value& obj, std::string_view key) {
  const json::Value& v = obj[key];
  if (!v.is_string()) {
    return InvalidArgumentError("index field '" + std::string(key) +
                                "' missing or not a string");
  }
  return v.as_string();
}

StatusOr<std::int64_t> GetInt(const json::Value& obj, std::string_view key) {
  const json::Value& v = obj[key];
  if (!v.is_int()) {
    return InvalidArgumentError("index field '" + std::string(key) +
                                "' missing or not an integer");
  }
  return v.as_int();
}

// Sizes ride in signed JSON integers; negative values only appear in
// corrupted files and would wrap to absurd uint64 sizes.
StatusOr<std::uint64_t> GetSize(const json::Value& obj, std::string_view key) {
  ROS_ASSIGN_OR_RETURN(std::int64_t n, GetInt(obj, key));
  if (n < 0) {
    return InvalidArgumentError("index field '" + std::string(key) +
                                "' is negative");
  }
  return static_cast<std::uint64_t>(n);
}

}  // namespace

std::optional<IndexFile> IndexFile::FastParse(std::string_view text) {
  json::Scanner s(text);
  IndexFile out;
  if (!s.Consume('{') || !s.ConsumeKey("entries") || !s.Consume('[')) {
    return std::nullopt;
  }
  if (!s.Peek(']')) {
    do {
      VersionEntry entry;
      std::string loc;
      std::int64_t size = 0;
      std::int64_t ver = 0;
      if (!s.Consume('{') || !s.ConsumeKey("del") ||
          !s.ReadBool(&entry.tombstone) || !s.Consume(',') ||
          !s.ConsumeKey("loc") || !s.ReadString(&loc) || loc.size() != 1) {
        return std::nullopt;
      }
      auto kind = LocationFromCode(loc[0]);
      if (!kind.ok()) {
        return std::nullopt;
      }
      entry.location = *kind;
      if (!s.Consume(',') || !s.ConsumeKey("parts") || !s.Consume('[')) {
        return std::nullopt;
      }
      if (!s.Peek(']')) {
        do {
          FilePart part;
          std::int64_t part_size = 0;
          if (!s.Consume('{') || !s.ConsumeKey("img") ||
              !s.ReadString(&part.image_id) || !s.Consume(',') ||
              !s.ConsumeKey("size") || !s.ReadInt(&part_size) ||
              part_size < 0 || !s.Consume('}')) {
            return std::nullopt;
          }
          part.size = static_cast<std::uint64_t>(part_size);
          entry.parts.push_back(std::move(part));
        } while (s.Consume(','));
      }
      if (!s.Consume(']') || !s.Consume(',') || !s.ConsumeKey("size") ||
          !s.ReadInt(&size) || size < 0 || !s.Consume(',') ||
          !s.ConsumeKey("ver") || !s.ReadInt(&ver) || ver < 1 ||
          ver > std::numeric_limits<int>::max() || !s.Consume('}')) {
        return std::nullopt;
      }
      entry.total_size = static_cast<std::uint64_t>(size);
      entry.version = static_cast<int>(ver);
      out.entries_.push_back(std::move(entry));
    } while (s.Consume(','));
  }
  if (!s.Consume(']')) {
    return std::nullopt;
  }
  if (!s.Consume(',')) {
    return std::nullopt;
  }
  if (s.ConsumeKey("forepart")) {
    std::string hex;
    if (!s.ReadString(&hex) || hex.size() % 2 != 0 || !s.Consume(',')) {
      return std::nullopt;
    }
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    out.forepart_.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
      const int hi = nibble(hex[i]);
      const int lo = nibble(hex[i + 1]);
      if (hi < 0 || lo < 0) {
        return std::nullopt;
      }
      out.forepart_.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
  }
  std::int64_t next_ver = 0;
  std::string type;
  if (!s.ConsumeKey("next_ver") || !s.ReadInt(&next_ver) || next_ver < 1 ||
      next_ver > std::numeric_limits<int>::max() || !s.Consume(',') ||
      !s.ConsumeKey("path") || !s.ReadString(&out.path_) ||
      !s.Consume(',') || !s.ConsumeKey("type") || !s.ReadString(&type) ||
      !s.Consume('}') || !s.AtEnd()) {
    return std::nullopt;
  }
  if (type == "file") {
    out.type_ = EntryType::kFile;
  } else if (type == "dir") {
    out.type_ = EntryType::kDirectory;
  } else {
    return std::nullopt;
  }
  out.next_version_ = static_cast<int>(next_ver);
  // The tree decoder rejects entry versions outside [1, next_ver); bail so
  // it produces its error.
  for (const VersionEntry& entry : out.entries_) {
    if (entry.version >= out.next_version_) {
      return std::nullopt;
    }
  }
  return out;
}

StatusOr<IndexFile> IndexFile::FromJson(std::string_view text) {
  if (std::optional<IndexFile> fast = FastParse(text)) {
    return std::move(*fast);
  }
  return FromJsonTree(text);
}

StatusOr<IndexFile> IndexFile::FromJsonTree(std::string_view text) {
  ROS_ASSIGN_OR_RETURN(json::Value root, json::Parse(text));
  if (!root.is_object()) {
    return InvalidArgumentError("index file is not a JSON object");
  }
  IndexFile index;
  ROS_ASSIGN_OR_RETURN(index.path_, GetString(root, "path"));
  ROS_ASSIGN_OR_RETURN(std::string type, GetString(root, "type"));
  if (type != "file" && type != "dir") {
    return InvalidArgumentError("bad index entry type: " + type);
  }
  index.type_ = type == "dir" ? EntryType::kDirectory : EntryType::kFile;
  ROS_ASSIGN_OR_RETURN(std::int64_t next_ver, GetInt(root, "next_ver"));
  if (next_ver < 1 || next_ver > std::numeric_limits<int>::max()) {
    return InvalidArgumentError("next_ver out of range");
  }
  index.next_version_ = static_cast<int>(next_ver);
  if (!root["entries"].is_array()) {
    return InvalidArgumentError("index field 'entries' missing or not an array");
  }
  for (const json::Value& e : root["entries"].as_array()) {
    if (!e.is_object()) {
      return InvalidArgumentError("index entry is not an object");
    }
    VersionEntry entry;
    ROS_ASSIGN_OR_RETURN(std::int64_t ver, GetInt(e, "ver"));
    if (ver < 1 || ver >= next_ver) {
      return InvalidArgumentError("entry version out of range");
    }
    entry.version = static_cast<int>(ver);
    ROS_ASSIGN_OR_RETURN(std::string loc, GetString(e, "loc"));
    if (loc.size() != 1) {
      return InvalidArgumentError("bad loc field");
    }
    ROS_ASSIGN_OR_RETURN(entry.location, LocationFromCode(loc[0]));
    ROS_ASSIGN_OR_RETURN(entry.total_size, GetSize(e, "size"));
    entry.tombstone = e["del"].is_bool() && e["del"].as_bool();
    if (!e["parts"].is_array()) {
      return InvalidArgumentError("entry field 'parts' missing or not an array");
    }
    for (const json::Value& p : e["parts"].as_array()) {
      if (!p.is_object()) {
        return InvalidArgumentError("file part is not an object");
      }
      FilePart part;
      ROS_ASSIGN_OR_RETURN(part.image_id, GetString(p, "img"));
      ROS_ASSIGN_OR_RETURN(part.size, GetSize(p, "size"));
      entry.parts.push_back(std::move(part));
    }
    index.entries_.push_back(std::move(entry));
  }
  if (root.contains("forepart")) {
    ROS_ASSIGN_OR_RETURN(std::string hex, GetString(root, "forepart"));
    if (hex.size() % 2 != 0) {
      return InvalidArgumentError("bad forepart encoding");
    }
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    index.forepart_.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
      const int hi = nibble(hex[i]);
      const int lo = nibble(hex[i + 1]);
      if (hi < 0 || lo < 0) {
        return InvalidArgumentError("bad forepart hex digit");
      }
      index.forepart_.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
  }
  return index;
}

}  // namespace ros::olfs
