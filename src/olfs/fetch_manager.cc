#include "src/olfs/fetch_manager.h"

#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/sim/retry.h"

namespace ros::olfs {

sim::Task<StatusOr<FetchLease>> FetchManager::FetchDisc(
    std::string image_id) {
  sim::Retrier retrier(
      sim_, params_.mech_retry,
      Fnv1a64({reinterpret_cast<const std::uint8_t*>(image_id.data()),
               image_id.size()}));
  while (true) {
    StatusOr<FetchLease> lease = co_await FetchDiscOnce(image_id);
    if (lease.ok()) {
      co_return std::move(lease);
    }
    if (!co_await retrier.AwaitRetry(lease.status())) {
      co_return lease.status();
    }
    ++retries_;
    ROS_LOG(kWarning) << "retrying fetch of " << image_id << " (attempt "
                      << retrier.attempts() + 1
                      << "): " << lease.status().ToString();
  }
}

sim::Task<StatusOr<FetchLease>> FetchManager::FetchDiscBackground(
    std::string image_id) {
  if (scheduler_ == nullptr) {
    // No background class without the scheduler; the legacy FIFO path is
    // the best a sweep can do.
    co_return co_await FetchDisc(image_id);
  }
  sim::Retrier retrier(
      sim_, params_.mech_retry,
      Fnv1a64({reinterpret_cast<const std::uint8_t*>(image_id.data()),
               image_id.size()}) ^
          0xBA5EBA11u);
  while (true) {
    StatusOr<FetchLease> lease = co_await FetchBackgroundOnce(image_id);
    if (lease.ok()) {
      co_return std::move(lease);
    }
    if (!co_await retrier.AwaitRetry(lease.status())) {
      co_return lease.status();
    }
    ++retries_;
    ROS_LOG(kWarning) << "retrying background fetch of " << image_id
                      << " (attempt " << retrier.attempts() + 1
                      << "): " << lease.status().ToString();
  }
}

sim::Task<StatusOr<FetchLease>> FetchManager::FetchBackgroundOnce(
    std::string image_id) {
  ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record,
                          images_->Lookup(image_id));
  if (!record->disc.has_value()) {
    co_return FailedPreconditionError("image " + image_id +
                                      " is not on any disc");
  }
  const mech::DiscAddress address = *record->disc;
  ROS_CO_ASSIGN_OR_RETURN(
      int bay, co_await scheduler_->AcquireForBackground(address));
  co_return FetchLease(mech_, bay,
                       &mech_->drive_set(bay).drive(address.index),
                       scheduler_);
}

sim::Task<StatusOr<FetchLease>> FetchManager::FetchDiscOnce(
    std::string image_id) {
  ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record,
                          images_->Lookup(image_id));
  if (!record->disc.has_value()) {
    co_return FailedPreconditionError("image " + image_id +
                                      " is not on any disc");
  }
  const mech::DiscAddress address = *record->disc;

  // Under the interrupt-and-swap policy, give burning bays a nudge before
  // queueing: the interrupted burn unloads at the next chunk boundary and
  // our AcquireBay wakes up first in FIFO order.
  if (params_.busy_drive_policy == BusyDrivePolicy::kInterruptAndSwap) {
    bool any_idle = false;
    for (int bay = 0; bay < mech_->num_bays(); ++bay) {
      if (mech_->bay_state(bay) != BayState::kBusy) {
        any_idle = true;
        break;
      }
    }
    if (!any_idle) {
      for (int bay = 0; bay < mech_->num_bays(); ++bay) {
        (void)burns_->InterruptBay(bay);
        break;  // interrupting one bay is enough
      }
    }
  }

  if (scheduler_ != nullptr) {
    ROS_CO_ASSIGN_OR_RETURN(int bay,
                            co_await scheduler_->AcquireForRead(address));
    co_return FetchLease(mech_, bay,
                         &mech_->drive_set(bay).drive(address.index),
                         scheduler_);
  }

  // Legacy FIFO shape (scheduler disabled): share an in-flight load of the
  // same tray instead of double-loading (the second LoadArray would find
  // the tray empty).
  const int tray_index = address.tray.ToIndex();
  int bay = -1;
  while (true) {
    auto inflight = inflight_.find(tray_index);
    if (inflight != inflight_.end()) {
      std::shared_ptr<sim::Event> done = inflight->second;
      co_await done->Wait();
      continue;  // loader finished; re-evaluate
    }
    // ros-lint: allow(acquire-bay): legacy FIFO path, kept as the bench
    // baseline and for fetch_scheduler_enabled=false deployments.
    ROS_CO_ASSIGN_OR_RETURN(
        bay, co_await mech_->AcquireBay(address.tray, /*wait=*/true));

    // Already loaded with the right array?
    if (mech_->bay_tray(bay).has_value() &&
        *mech_->bay_tray(bay) == address.tray) {
      co_return FetchLease(mech_, bay,
                           &mech_->drive_set(bay).drive(address.index));
    }
    // Another reader may have become the loader while our acquisition was
    // pending; hand the bay back and wait for them instead.
    if (inflight_.count(tray_index) > 0) {
      mech_->ReleaseBay(bay);
      continue;
    }
    break;  // we are the loader, holding `bay`
  }

  // Publish the in-flight marker so concurrent readers of this tray wait
  // for us rather than racing (no suspension since the check above).
  auto done = std::make_shared<sim::Event>(sim_);
  inflight_.emplace(tray_index, done);

  // Evict whatever idle array occupies the bay (the 155 s case).
  Status status = OkStatus();
  if (mech_->bay_tray(bay).has_value()) {
    status = co_await mech_->UnloadArray(bay);
  }
  if (status.ok()) {
    status = co_await mech_->LoadArray(address.tray, bay);
  }
  inflight_.erase(tray_index);
  done->Set();
  if (!status.ok()) {
    mech_->ReleaseBay(bay);
    co_return status;
  }
  ++fetches_;
  ROS_LOG(kDebug) << "fetched disc array " << address.tray.ToString()
                  << " for image " << image_id;
  co_return FetchLease(mech_, bay,
                       &mech_->drive_set(bay).drive(address.index));
}

}  // namespace ros::olfs
