#include "src/olfs/parity.h"

#include <algorithm>

#include "src/common/gf256.h"
#include "src/olfs/bucket_manager.h"
#include "src/udf/serializer.h"

namespace ros::olfs {

sim::Task<StatusOr<std::vector<ParityImage>>> ParityBuilder::Build(
    std::vector<std::string> data_ids,
    std::vector<disk::Volume*> data_volumes, int parity_volume_index) {
  if (data_ids.empty()) {
    co_return InvalidArgumentError("no data images");
  }

  // Serialize each member and charge the buffer read of its stripes.
  std::vector<std::vector<std::uint8_t>> streams;
  std::vector<std::uint64_t> logical_sizes;
  streams.reserve(data_ids.size());
  std::uint64_t max_logical = 0;
  std::size_t max_stream = 0;
  for (const std::string& id : data_ids) {
    ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record, images_->Lookup(id));
    if (record->image == nullptr) {
      co_return FailedPreconditionError("image " + id + " not buffered");
    }
    disk::Volume* volume = data_volumes.at(
        static_cast<std::size_t>(record->volume_index));
    auto size = volume->FileSize(record->volume_file);
    if (size.ok() && *size > 0) {
      ROS_CO_RETURN_IF_ERROR(
          co_await volume->ReadDiscard(record->volume_file, 0, *size));
    }
    streams.push_back(udf::Serializer::Serialize(*record->image));
    logical_sizes.push_back(record->image->used_bytes());
    max_logical = std::max(max_logical, logical_sizes.back());
    max_stream = std::max(max_stream, streams.back().size());
  }

  // Compute all parity images in ONE sweep over the member streams: the
  // fused kernel feeds P and Q simultaneously, so each serialized stream is
  // read exactly once regardless of params_.parity_images. Q uses the
  // Horner recurrence q = 2q ^ d, so members are fed last-to-first to end
  // up with Q = sum g^k d_k.
  const int num_parities = params_.parity_images;
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.emplace_back(max_stream, 0);  // P
  if (num_parities >= 2) {
    payloads.emplace_back(max_stream, 0);  // Q
  }
  last_build_stream_passes_ = 0;
  if (num_parities >= 2) {
    for (std::size_t k = streams.size(); k-- > 0;) {
      gf256::PQAcc(payloads[0], payloads[1], streams[k]);
      ++last_build_stream_passes_;
    }
  } else {
    for (const std::vector<std::uint8_t>& stream : streams) {
      gf256::XorAcc(payloads[0], stream);
      ++last_build_stream_passes_;
    }
  }

  const int generation = generation_++;
  std::vector<ParityImage> parities;
  for (int p = 0; p < num_parities; ++p) {
    ParityImage parity;
    parity.index = p;
    parity.id = "par-" + std::to_string(generation) + "-" +
                data_ids.front() + (p == 0 ? "-P" : "-Q");
    parity.logical_bytes = max_logical;
    parity.member_ids = data_ids;

    // Write the parity image to its (ideally independent) volume.
    disk::Volume* volume = data_volumes.at(
        static_cast<std::size_t>(parity_volume_index) %
        data_volumes.size());
    const std::string file = BucketManager::VolumeFileName(parity.id);
    if (!volume->Exists(file)) {
      ROS_CO_RETURN_IF_ERROR(co_await volume->Create(file));
    }
    // Real parity bytes are the serialized-stream parity; the disc
    // footprint matches the largest member image. The builder keeps the
    // one retained copy (served by Get()); the compute buffer itself is
    // moved into the volume write.
    parity.bytes = payloads[static_cast<std::size_t>(p)];
    ROS_CO_RETURN_IF_ERROR(co_await volume->AppendSparse(
        file, std::move(payloads[static_cast<std::size_t>(p)]),
        std::max<std::uint64_t>(max_logical, parity.bytes.size())));
    ROS_CO_RETURN_IF_ERROR(images_->RegisterParity(
        parity.id, parity_volume_index % static_cast<int>(data_volumes.size()),
        file, parity.logical_bytes));

    // Callers get metadata; the payload stays with the builder.
    ParityImage summary;
    summary.id = parity.id;
    summary.index = parity.index;
    summary.logical_bytes = parity.logical_bytes;
    summary.member_ids = parity.member_ids;
    parities.push_back(std::move(summary));
    built_index_.emplace(parity.id, built_.size());
    built_.push_back(std::move(parity));
  }
  co_return parities;
}

StatusOr<std::vector<std::uint8_t>> ParityBuilder::Recover(
    const std::vector<std::vector<std::uint8_t>>& member_streams,
    const std::vector<std::vector<std::uint8_t>>& parity_streams,
    int missing_index) {
  if (parity_streams.empty()) {
    return FailedPreconditionError("no parity streams");
  }
  if (missing_index < 0 ||
      missing_index >= static_cast<int>(member_streams.size())) {
    return InvalidArgumentError("bad missing index");
  }
  // Single loss: P alone suffices.
  const std::vector<std::uint8_t>& p_stream = parity_streams[0];
  std::vector<std::uint8_t> out(p_stream);
  for (std::size_t k = 0; k < member_streams.size(); ++k) {
    if (static_cast<int>(k) == missing_index) {
      if (!member_streams[k].empty()) {
        return InvalidArgumentError("missing slot must be empty");
      }
      continue;
    }
    if (member_streams[k].empty()) {
      return FailedPreconditionError(
          "two members missing; use Q-parity recovery per stream pair");
    }
    if (member_streams[k].size() > out.size()) {
      return InvalidArgumentError("member stream longer than parity");
    }
    gf256::XorAcc(out, member_streams[k]);
  }
  // Trim zero padding down to the serialized anchor; the UDF parser
  // validates the CRC, so callers parse the full buffer safely.
  return out;
}

StatusOr<std::vector<std::uint8_t>> ParityBuilder::RecoverOneFromQ(
    const std::vector<std::vector<std::uint8_t>>& member_streams,
    const std::vector<std::uint8_t>& q_stream, int missing_index) {
  const int n = static_cast<int>(member_streams.size());
  if (missing_index < 0 || missing_index >= n) {
    return InvalidArgumentError("bad missing index");
  }
  if (!member_streams[missing_index].empty()) {
    return InvalidArgumentError("missing slot must be empty");
  }
  // Q' = Q ^ sum(g^i D_i) over the survivors leaves g^j D_j.
  std::vector<std::uint8_t> out(q_stream);
  for (int k = 0; k < n; ++k) {
    if (k == missing_index) {
      continue;
    }
    if (member_streams[k].empty()) {
      return FailedPreconditionError(
          "two members missing; use the P+Q double-erasure solve");
    }
    if (member_streams[k].size() > out.size()) {
      return InvalidArgumentError("member stream longer than parity");
    }
    gf256::MulAcc(out, gf256::Pow2(static_cast<unsigned>(k)),
                  member_streams[k]);
  }
  gf256::Scale(out, gf256::Inv(gf256::Pow2(
                        static_cast<unsigned>(missing_index))));
  return out;
}

StatusOr<std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>>
ParityBuilder::RecoverTwo(
    const std::vector<std::vector<std::uint8_t>>& member_streams,
    const std::vector<std::uint8_t>& p_stream,
    const std::vector<std::uint8_t>& q_stream, int missing_a,
    int missing_b) {
  const int n = static_cast<int>(member_streams.size());
  if (missing_a < 0 || missing_b < 0 || missing_a >= n || missing_b >= n ||
      missing_a == missing_b) {
    return InvalidArgumentError("bad missing indices");
  }
  if (missing_a > missing_b) {
    std::swap(missing_a, missing_b);
  }
  if (!member_streams[missing_a].empty() ||
      !member_streams[missing_b].empty()) {
    return InvalidArgumentError("missing slots must be empty");
  }
  if (p_stream.size() != q_stream.size()) {
    return InvalidArgumentError("P and Q streams differ in length");
  }
  // P' = P ^ sum(surviving D_i);  Q' = Q ^ sum(g^i D_i).
  std::vector<std::uint8_t> pp(p_stream);
  std::vector<std::uint8_t> qp(q_stream);
  for (int k = 0; k < n; ++k) {
    if (k == missing_a || k == missing_b) {
      continue;
    }
    if (member_streams[k].empty()) {
      return FailedPreconditionError("more than two members missing");
    }
    if (member_streams[k].size() > pp.size()) {
      return InvalidArgumentError("member stream longer than parity");
    }
    gf256::XorAcc(pp, member_streams[k]);
    gf256::MulAcc(qp, gf256::Pow2(static_cast<unsigned>(k)),
                  member_streams[k]);
  }
  const std::uint8_t ga = gf256::Pow2(static_cast<unsigned>(missing_a));
  const std::uint8_t gb = gf256::Pow2(static_cast<unsigned>(missing_b));
  std::vector<std::uint8_t> da(pp.size());
  std::vector<std::uint8_t> db(pp.size());
  gf256::SolveTwo(da, db, pp, qp, ga, gb);
  return std::pair{std::move(da), std::move(db)};
}

StatusOr<const ParityImage*> ParityBuilder::Get(const std::string& id) const {
  auto it = built_index_.find(id);
  if (it == built_index_.end()) {
    return NotFoundError("no parity image " + id);
  }
  return &built_[it->second];
}

}  // namespace ros::olfs
