// DAindex (§4.1): per disc-array state, "Empty", "Used" or "Failed", plus
// allocation of empty arrays for new burn tasks.
#ifndef ROS_SRC_OLFS_DA_INDEX_H_
#define ROS_SRC_OLFS_DA_INDEX_H_

#include <vector>

#include "src/common/status.h"
#include "src/mech/geometry.h"

namespace ros::olfs {

enum class ArrayState { kEmpty, kUsed, kFailed };

class DaIndex {
 public:
  explicit DaIndex(int rollers)
      : rollers_(rollers),
        states_(static_cast<std::size_t>(rollers) * mech::kTraysPerRoller,
                ArrayState::kEmpty) {}

  ArrayState state(mech::TrayAddress tray) const {
    return states_.at(static_cast<std::size_t>(tray.ToIndex()));
  }

  void set_state(mech::TrayAddress tray, ArrayState state) {
    states_.at(static_cast<std::size_t>(tray.ToIndex())) = state;
  }

  // Allocates the next empty disc array, scanning from the last allocation
  // (keeps consecutive burns near each other, minimizing arm travel).
  StatusOr<mech::TrayAddress> AllocateEmpty() {
    const int total = static_cast<int>(states_.size());
    for (int step = 0; step < total; ++step) {
      const int index = (cursor_ + step) % total;
      if (states_[static_cast<std::size_t>(index)] == ArrayState::kEmpty) {
        cursor_ = index + 1;
        return mech::TrayAddress::FromIndex(index);
      }
    }
    return ResourceExhaustedError("no empty disc arrays left in the rack");
  }

  int CountState(ArrayState state) const {
    int n = 0;
    for (ArrayState s : states_) {
      if (s == state) {
        ++n;
      }
    }
    return n;
  }

  int rollers() const { return rollers_; }

 private:
  int rollers_;
  std::vector<ArrayState> states_;
  int cursor_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_DA_INDEX_H_
