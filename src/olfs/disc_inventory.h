// The rack's physical disc inventory. Owned by RosSystem (not by the
// controller software) so that media — and the data burned onto it —
// survives a controller replacement, which is exactly the disaster the
// namespace-recovery path (§4.4) exists for.
#ifndef ROS_SRC_OLFS_DISC_INVENTORY_H_
#define ROS_SRC_OLFS_DISC_INVENTORY_H_

#include <map>
#include <memory>

#include "src/drive/disc.h"
#include "src/mech/geometry.h"

namespace ros::olfs {

class DiscInventory {
 public:
  drive::Disc* GetOrCreate(mech::DiscAddress address, drive::DiscType type,
                           std::uint64_t capacity_override) {
    auto it = discs_.find(address.ToIndex());
    if (it == discs_.end()) {
      it = discs_
               .emplace(address.ToIndex(),
                        std::make_unique<drive::Disc>(
                            address.ToString(), type, capacity_override))
               .first;
    }
    return it->second.get();
  }

  std::size_t size() const { return discs_.size(); }

 private:
  std::map<int, std::unique_ptr<drive::Disc>> discs_;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_DISC_INVENTORY_H_
