#include "src/olfs/affinity.h"

#include <algorithm>
#include <cstddef>

namespace ros::olfs {

void AffinityTracker::Record(std::uint64_t stream,
                             const std::string& image_id) {
  if (stream == 0) {
    return;
  }
  if (image_streams_[image_id].insert(stream).second) {
    ++edges_;
  }
}

void AffinityTracker::RecordWrite(std::uint64_t stream,
                                  const std::string& image_id) {
  Record(stream, image_id);
}

void AffinityTracker::RecordRead(std::uint64_t stream,
                                 const std::string& image_id) {
  Record(stream, image_id);
}

std::vector<std::string> AffinityTracker::PlanBatch(
    const std::vector<std::string>& available, int quota) const {
  std::vector<std::string> batch;
  if (quota <= 0 || available.empty()) {
    return batch;
  }
  const std::size_t want =
      std::min(static_cast<std::size_t>(quota), available.size());
  batch.reserve(want);

  auto streams_of =
      [this](const std::string& id) -> const std::set<std::uint64_t>* {
    auto it = image_streams_.find(id);
    return it == image_streams_.end() ? nullptr : &it->second;
  };

  std::set<std::uint64_t> selected_streams;
  std::vector<bool> used(available.size(), false);
  auto take = [&](std::size_t index) {
    used[index] = true;
    batch.push_back(available[index]);
    if (const auto* streams = streams_of(available[index])) {
      selected_streams.insert(streams->begin(), streams->end());
    }
  };

  // Oldest closed image seeds the batch, preserving the FIFO guarantee
  // that nothing waits in the buffer forever.
  take(0);
  while (batch.size() < want) {
    std::size_t best = available.size();
    std::size_t best_shared = 0;
    for (std::size_t i = 0; i < available.size(); ++i) {
      if (used[i]) {
        continue;
      }
      std::size_t shared = 0;
      if (const auto* streams = streams_of(available[i])) {
        for (std::uint64_t stream : *streams) {
          shared += selected_streams.count(stream);
        }
      }
      if (best == available.size() || shared > best_shared) {
        best = i;
        best_shared = shared;
      }
    }
    take(best);
  }
  return batch;
}

}  // namespace ros::olfs
