// Fetching Task Management (FTM), §4.1, §4.8.
//
// When a read misses the disk buffer, FTM brings the disc holding the
// requested image into a drive. The latency depends on where things stand
// (Table 1): the disc may already sit in a drive (parked array), a free
// bay may exist (one load), every bay may hold idle arrays (unload +
// load), or every bay may be burning — in which case the configured
// BusyDrivePolicy either waits for the burn or interrupts it.
//
// After a fetch the array stays parked in its bay so subsequent reads of
// neighbouring discs hit the "disc in drive" case.
#ifndef ROS_SRC_OLFS_FETCH_MANAGER_H_
#define ROS_SRC_OLFS_FETCH_MANAGER_H_

#include <map>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/olfs/burn_manager.h"
#include "src/olfs/disc_image_store.h"
#include "src/olfs/fetch_scheduler.h"
#include "src/olfs/mech_controller.h"
#include "src/olfs/params.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ros::olfs {

// Exclusive use of a drive (and its bay) for the duration of a read.
// Release() parks the array; it is idempotent, and the destructor releases
// any still-held bay, so an error return mid-read can never leak a bay.
// A bay claimed through the FetchScheduler is returned through it, so the
// scheduler can hand it straight to the next same-tray waiter.
class FetchLease {
 public:
  FetchLease() = default;
  FetchLease(MechController* mech, int bay, drive::OpticalDrive* drive,
             FetchScheduler* scheduler = nullptr)
      : mech_(mech), scheduler_(scheduler), bay_(bay), drive_(drive) {}
  ~FetchLease() { Release(); }

  FetchLease(FetchLease&& other) noexcept
      : mech_(other.mech_), scheduler_(other.scheduler_), bay_(other.bay_),
        drive_(other.drive_) {
    other.mech_ = nullptr;
    other.scheduler_ = nullptr;
    other.drive_ = nullptr;
  }
  FetchLease& operator=(FetchLease&& other) noexcept {
    if (this != &other) {
      Release();
      mech_ = other.mech_;
      scheduler_ = other.scheduler_;
      bay_ = other.bay_;
      drive_ = other.drive_;
      other.mech_ = nullptr;
      other.scheduler_ = nullptr;
      other.drive_ = nullptr;
    }
    return *this;
  }
  FetchLease(const FetchLease&) = delete;
  FetchLease& operator=(const FetchLease&) = delete;

  drive::OpticalDrive* drive() { return drive_; }
  int bay() const { return bay_; }
  bool valid() const { return drive_ != nullptr; }

  void Release() {
    if (mech_ != nullptr) {
      if (scheduler_ != nullptr) {
        scheduler_->ReleaseBay(bay_);
      } else {
        mech_->ReleaseBay(bay_);
      }
      mech_ = nullptr;
      scheduler_ = nullptr;
      drive_ = nullptr;
    }
  }

 private:
  MechController* mech_ = nullptr;
  FetchScheduler* scheduler_ = nullptr;
  int bay_ = -1;
  drive::OpticalDrive* drive_ = nullptr;
};

class FetchManager {
 public:
  FetchManager(sim::Simulator& sim, const OlfsParams& params,
               DiscImageStore* images, MechController* mech,
               BurnManager* burns, FetchScheduler* scheduler = nullptr)
      : sim_(sim), params_(params), images_(images), mech_(mech),
        burns_(burns), scheduler_(scheduler) {}

  // In-flight load deduplication: concurrent readers of discs in the same
  // tray share one mechanical fetch (the MC "optimizes the usage of
  // mechanical resources", §4.1). With a FetchScheduler attached the whole
  // queue is batched and reordered there; without one the legacy FIFO
  // shape below applies (kept as the bench/fetch_sched baseline).

  // Ensures the disc holding `image_id` sits in a drive; returns the lease.
  // Transient mechanical faults (kUnavailable) are retried under
  // params.mech_retry; each retry re-enters the scheduler queue (or re-runs
  // bay selection), so a bay whose mechanics misbehaved naturally falls
  // back to another bay.
  sim::Task<StatusOr<FetchLease>> FetchDisc(std::string image_id);

  // Background-class fetch for scrub / audit sweeps (DESIGN.md §5j): the
  // bay claim goes through FetchScheduler::AcquireForBackground, which
  // parks while foreground demand is queued or loading, so sweeps never
  // starve readers. Degenerates to FetchDisc when the scheduler is off.
  sim::Task<StatusOr<FetchLease>> FetchDiscBackground(std::string image_id);

  // Mechanical load cycles performed on behalf of reads.
  std::uint64_t fetches() const {
    return scheduler_ != nullptr ? scheduler_->stats().loads : fetches_;
  }
  std::uint64_t retries() const { return retries_; }
  FetchScheduler* scheduler() { return scheduler_; }

 private:
  // One fetch attempt, no retry.
  sim::Task<StatusOr<FetchLease>> FetchDiscOnce(std::string image_id);
  // One background-class attempt, no retry (scheduler path only).
  sim::Task<StatusOr<FetchLease>> FetchBackgroundOnce(std::string image_id);

  sim::Simulator& sim_;
  OlfsParams params_;
  DiscImageStore* images_;
  MechController* mech_;
  BurnManager* burns_;
  FetchScheduler* scheduler_;
  // Legacy path: tray index -> completion event of the in-flight load.
  std::map<int, std::shared_ptr<sim::Event>> inflight_;
  std::uint64_t fetches_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_FETCH_MANAGER_H_
