// Immutable sorted segment files of the log-structured MV (DESIGN.md §5i).
//
// A segment is one memtable generation (or a compaction of several)
// serialized as: a fixed header [magic "MVSG", version, rank, id, count],
// `count` WAL-framed records in strictly increasing key order, and a
// footer [magic "GSVM", records_bytes, crc] whose presence proves the file
// was written to completion. Records reuse the mvlog frame, so each
// carries its own CRC and point reads self-verify.
//
// Ordering is durable in the file NAME — "/mvseg.<rank>.<id>" — so
// recovery replays segments in lexicographic listing order with no
// manifest: flush segments get fresh ranks (newer rank = newer data);
// a compaction output inherits its oldest input's rank with a fresh id,
// which slots it exactly where its inputs were. Strict parsing contract:
// arbitrary bytes in, clean kInvalidArgument/kDataLoss out.
#ifndef ROS_SRC_OLFS_MV_SEGMENT_H_
#define ROS_SRC_OLFS_MV_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/olfs/mv_log.h"

namespace ros::olfs::mvseg {

inline constexpr std::string_view kFilePrefix = "/mvseg.";
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kFooterBytes = 16;
inline constexpr std::uint32_t kFormatVersion = 1;

struct SegmentHeader {
  std::uint64_t rank = 0;
  std::uint64_t id = 0;
  std::uint64_t count = 0;
};

std::string SegmentFileName(std::uint64_t rank, std::uint64_t id);
// Parses "/mvseg.<rank>.<id>"; nullopt if malformed.
std::optional<SegmentHeader> ParseSegmentFileName(const std::string& name);

// Serializes sorted records into a segment image. Add() must be called in
// strictly increasing key order (checked).
class SegmentBuilder {
 public:
  SegmentBuilder(std::uint64_t rank, std::uint64_t id);

  // Frames the record and remembers its (offset, length) within the file
  // so the caller can point the key directory at it.
  void Add(const mvlog::Record& record);

  std::uint64_t count() const { return count_; }
  std::uint64_t bytes() const { return bytes_.size() + kFooterBytes; }
  // (offset, length) of each added record, in Add() order.
  const std::vector<std::pair<std::uint64_t, std::uint32_t>>& refs() const {
    return refs_;
  }

  // Completes the image (backpatches the count, appends the footer) and
  // returns the bytes. The builder is spent afterwards.
  std::vector<std::uint8_t> Finish() &&;

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> refs_;
  std::uint64_t count_ = 0;
  std::string last_key_;
};

// Strict whole-segment parse: verifies header, footer, per-record frames
// and CRCs, record count, and strictly-increasing key order, calling
// `fn(record, offset, length)` for each record. Any violation is a clean
// error and `fn` sees only the cleanly decoded prefix.
Status ParseSegment(
    std::span<const std::uint8_t> data, SegmentHeader* header,
    const std::function<void(mvlog::Record, std::uint64_t, std::uint32_t)>&
        fn);

// Merges sorted runs ordered oldest to newest, emitting the newest record
// for each key in increasing key order. With `drop_tombstones` (legal only
// when the inputs are the oldest segments in the store — nothing below
// them left to shadow), surviving kRemove records are dropped instead of
// emitted.
void MergeSortedRuns(std::vector<std::vector<mvlog::Record>> runs,
                     bool drop_tombstones,
                     const std::function<void(mvlog::Record)>& fn);

}  // namespace ros::olfs::mvseg

#endif  // ROS_SRC_OLFS_MV_SEGMENT_H_
