// File-granular read cache (§4.1's future-work refinement).
//
// The baseline Read Cache works at disc-image granularity. This cache
// holds individual files fetched from discs, so repeated reads of a cold
// file — and, with sibling prefetch, of its directory neighbours — hit the
// disk buffer even after the disc array has left the drives. LRU over
// bytes, like the image cache.
#ifndef ROS_SRC_OLFS_FILE_CACHE_H_
#define ROS_SRC_OLFS_FILE_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace ros::olfs {

class FileCache {
 public:
  explicit FileCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  bool enabled() const { return capacity_ > 0; }

  static std::string Key(const std::string& image_id,
                         const std::string& internal_path) {
    return image_id + "@" + internal_path;
  }

  // Inserts (or refreshes) a file's full content; evicts LRU overflow.
  void Put(const std::string& key, std::vector<std::uint8_t> content) {
    if (!enabled()) {
      return;
    }
    Remove(key);
    used_ += content.size();
    lru_.push_front({key, std::move(content)});
    index_[key] = lru_.begin();
    while (used_ > capacity_ && !lru_.empty()) {
      used_ -= lru_.back().content.size();
      index_.erase(lru_.back().key);
      lru_.pop_back();
    }
  }

  // Returns the cached content (refreshing recency), or nullptr.
  const std::vector<std::uint8_t>* Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &lru_.front().content;
  }

  bool Contains(const std::string& key) const {
    return index_.count(key) > 0;
  }

  void Remove(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return;
    }
    used_ -= it->second->content.size();
    lru_.erase(it->second);
    index_.erase(it);
  }

  std::uint64_t used_bytes() const { return used_; }
  std::size_t size() const { return index_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;
    std::vector<std::uint8_t> content;
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<Entry> lru_;
  // ros_analyze: allow(unordered-member): point lookups by path only;
  // eviction order comes from lru_, never from this index.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_FILE_CACHE_H_
