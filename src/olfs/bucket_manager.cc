#include "src/olfs/bucket_manager.h"

#include <algorithm>
#include <cstdio>

#include "src/common/logging.h"
#include "src/olfs/affinity.h"

namespace ros::olfs {

std::string InternalPath(const std::string& path, int version) {
  if (version <= 1) {
    return path;
  }
  return path + "#v" + std::to_string(version);
}

std::string SplitLinkPath(const std::string& internal_path, int part) {
  return internal_path + "#prev" + std::to_string(part);
}

BucketManager::BucketManager(sim::Simulator& sim, const OlfsParams& params,
                             std::vector<disk::Volume*> data_volumes,
                             DiscImageStore* images)
    : sim_(sim), params_(params), data_volumes_(std::move(data_volumes)),
      images_(images), write_mutex_(sim) {
  ROS_CHECK(!data_volumes_.empty());
  ROS_CHECK(images_ != nullptr);
}

std::string BucketManager::NextImageId() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "img-%06d", bucket_counter_++);
  return buf;
}

sim::Task<StatusOr<BucketManager::OpenBucket*>> BucketManager::CurrentBucket() {
  if (current_ != nullptr) {
    co_return current_.get();
  }
  auto bucket = std::make_unique<OpenBucket>();
  const std::string id = NextImageId();
  bucket->image = std::make_shared<udf::Image>(id, params_.bucket_capacity());
  bucket->volume_index = bucket_counter_ % num_volumes();
  disk::Volume* volume = data_volumes_[bucket->volume_index];
  const std::string file = VolumeFileName(id);
  ROS_CO_RETURN_IF_ERROR(co_await volume->Create(file));
  ROS_CO_RETURN_IF_ERROR(
      images_->RegisterBucket(bucket->image, bucket->volume_index, file));
  current_ = std::move(bucket);
  ROS_LOG(kDebug) << "opened bucket " << id;
  co_return current_.get();
}

sim::Task<Status> BucketManager::CloseBucket(OpenBucket* bucket) {
  ROS_CHECK(bucket == current_.get());
  const std::string id = bucket->image->id();
  // Append the UDF metadata (directory tree, file entries) that the
  // serialized image carries beyond raw payload bytes.
  const std::uint64_t meta_bytes =
      bucket->image->used_bytes() > bucket->payload_bytes
          ? bucket->image->used_bytes() - bucket->payload_bytes
          : 0;
  disk::Volume* volume = data_volumes_[bucket->volume_index];
  if (meta_bytes > 0) {
    ROS_CO_RETURN_IF_ERROR(co_await volume->AppendSparse(
        VolumeFileName(id), {}, meta_bytes));
  }
  ROS_CO_RETURN_IF_ERROR(images_->MarkClosed(id));
  current_.reset();
  ROS_LOG(kDebug) << "closed bucket " << id;
  if (on_image_closed) {
    on_image_closed(id);
  }
  co_return OkStatus();
}

sim::Task<StatusOr<WriteReceipt>> BucketManager::WriteFile(
    std::string path, int version, std::vector<std::uint8_t> data,
    std::uint64_t logical_size, int first_part, std::string prev_image,
    std::uint64_t stream) {
  if (data.size() > logical_size) {
    co_return InvalidArgumentError("payload exceeds logical size");
  }
  sim::Mutex::ScopedLock lock = co_await write_mutex_.Lock();

  const std::string internal = InternalPath(path, version);
  WriteReceipt receipt;
  receipt.total_size = logical_size;
  std::uint64_t written = 0;        // logical bytes placed so far
  int part_number = first_part;
  std::string previous_image = std::move(prev_image);

  while (true) {
    ROS_CO_ASSIGN_OR_RETURN(OpenBucket * bucket, co_await CurrentBucket());
    udf::Image& image = *bucket->image;
    // A continuation cannot reuse the bucket that already holds an earlier
    // (full) part of this file: roll over to a fresh one.
    if (image.Exists(internal)) {
      ROS_CO_RETURN_IF_ERROR(co_await CloseBucket(bucket));
      continue;
    }
    const std::uint64_t remaining = logical_size - written;

    // Cost of this file's entry (plus missing directories and, for
    // continuations, the link file).
    const std::uint64_t link_overhead =
        part_number > 0 ? udf::kEntryOverhead : 0;
    const std::uint64_t full_cost =
        image.CostOf(internal, remaining) + link_overhead;

    std::uint64_t take = remaining;
    if (full_cost > image.free_bytes()) {
      // How much payload fits alongside the entry/directory overhead?
      const std::uint64_t fixed = image.CostOf(internal, 0) + link_overhead;
      if (image.free_bytes() <= fixed + udf::kBlockSize) {
        // Not even one payload block: close and move on. A brand-new
        // bucket that still cannot fit the fixed overhead is a config
        // error (capacity smaller than the path's directory chain).
        if (image.file_count() == 0 && image.used_bytes() ==
                                           udf::kEntryOverhead) {
          co_return ResourceExhaustedError(
              "file path overhead exceeds bucket capacity");
        }
        ROS_CO_RETURN_IF_ERROR(co_await CloseBucket(bucket));
        continue;
      }
      take = ((image.free_bytes() - fixed) / udf::kBlockSize) *
             udf::kBlockSize;
      take = std::min(take, remaining);
    }

    // Split the real payload bytes covering [written, written + take).
    std::vector<std::uint8_t> piece;
    if (written < data.size()) {
      const std::uint64_t real =
          std::min<std::uint64_t>(take, data.size() - written);
      piece.assign(data.begin() + static_cast<std::ptrdiff_t>(written),
                   data.begin() + static_cast<std::ptrdiff_t>(written + real));
    }

    // Continuation images link back to the previous part (§4.5).
    if (part_number > 0) {
      ROS_CO_RETURN_IF_ERROR(
          image.AddLink(SplitLinkPath(internal, part_number),
                        previous_image));
    }
    ROS_CO_RETURN_IF_ERROR(image.AddFile(internal, std::move(piece), take));

    // Refuse user data that would eat into the burn pipeline's headroom
    // (parity generation must always have room to drain the buffer).
    disk::Volume* volume = data_volumes_[bucket->volume_index];
    if (volume->free_bytes() < take + params_.buffer_reserve_bytes()) {
      co_return ResourceExhaustedError(
          "disk buffer full; waiting for the burn pipeline to reclaim "
          "space");
    }
    std::vector<std::uint8_t> stored;
    if (written < data.size()) {
      const std::uint64_t real =
          std::min<std::uint64_t>(take, data.size() - written);
      stored.assign(data.begin() + static_cast<std::ptrdiff_t>(written),
                    data.begin() +
                        static_cast<std::ptrdiff_t>(written + real));
    }
    ROS_CO_RETURN_IF_ERROR(co_await volume->AppendSparse(
        VolumeFileName(image.id()), std::move(stored), take));
    bucket->payload_bytes += take;

    receipt.parts.push_back({image.id(), take});
    if (affinity_ != nullptr && stream != 0) {
      affinity_->RecordWrite(stream, image.id());
    }
    previous_image = image.id();
    written += take;
    ++part_number;

    if (written >= logical_size) {
      // Close the bucket if it can no longer fit a minimal new file plus
      // its directory entry (§4.5's closing rule).
      if (image.free_bytes() < 2 * udf::kEntryOverhead + udf::kBlockSize) {
        ROS_CO_RETURN_IF_ERROR(co_await CloseBucket(bucket));
      }
      co_return receipt;
    }
    // The current bucket is exhausted for this file; close it and continue
    // in a fresh one.
    ROS_CO_RETURN_IF_ERROR(co_await CloseBucket(bucket));
  }
}

sim::Task<Status> BucketManager::AppendToOpenFile(
    std::string path, int version, std::string image_id,
    std::vector<std::uint8_t> data, std::uint64_t logical_grow,
    std::uint64_t stream) {
  sim::Mutex::ScopedLock lock = co_await write_mutex_.Lock();
  if (current_ == nullptr || current_->image->id() != image_id) {
    co_return FailedPreconditionError("bucket " + image_id +
                                      " is no longer open");
  }
  if (affinity_ != nullptr && stream != 0) {
    affinity_->RecordWrite(stream, image_id);
  }
  const std::string internal = InternalPath(path, version);
  ROS_CO_RETURN_IF_ERROR(
      current_->image->AppendToFile(internal, data, logical_grow));
  disk::Volume* volume = data_volumes_[current_->volume_index];
  ROS_CO_RETURN_IF_ERROR(co_await volume->AppendSparse(
      VolumeFileName(image_id), std::move(data), logical_grow));
  current_->payload_bytes += logical_grow;
  co_return OkStatus();
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> BucketManager::ReadBuffered(
    std::string image_id, std::string internal_path,
    std::uint64_t offset, std::uint64_t length) {
  ROS_CO_ASSIGN_OR_RETURN(const ImageRecord* record,
                          images_->Lookup(image_id));
  if (record->image == nullptr) {
    co_return FailedPreconditionError("image " + image_id +
                                      " has no buffered bytes");
  }
  // Charge buffer-volume read time (approximate placement: same length at
  // the image's file).
  disk::Volume* volume = data_volumes_[record->volume_index];
  auto size = volume->FileSize(record->volume_file);
  if (size.ok() && *size > 0) {
    const std::uint64_t off = std::min(offset, *size - 1);
    const std::uint64_t len = std::min(length, *size - off);
    if (len > 0) {
      ROS_CO_RETURN_IF_ERROR(
          co_await volume->ReadDiscard(record->volume_file, off, len));
    }
  }
  co_return record->image->ReadFile(internal_path, offset, length);
}

sim::Task<Status> BucketManager::CloseCurrentBucket() {
  sim::Mutex::ScopedLock lock = co_await write_mutex_.Lock();
  if (current_ == nullptr) {
    co_return OkStatus();
  }
  co_return co_await CloseBucket(current_.get());
}

sim::Task<Status> BucketManager::AdmitImage(
    std::shared_ptr<udf::Image> image) {
  sim::Mutex::ScopedLock lock = co_await write_mutex_.Lock();
  const std::string id = image->id();
  const int volume_index = bucket_counter_ % num_volumes();
  disk::Volume* volume = data_volumes_[volume_index];
  const std::string file = VolumeFileName(id);
  ROS_CO_RETURN_IF_ERROR(co_await volume->Create(file));
  ROS_CO_RETURN_IF_ERROR(co_await volume->AppendSparse(
      file, {}, image->used_bytes()));
  ROS_CO_RETURN_IF_ERROR(
      images_->RegisterBucket(image, volume_index, file));
  ROS_CO_RETURN_IF_ERROR(images_->MarkClosed(id));
  if (on_image_closed) {
    on_image_closed(id);
  }
  co_return OkStatus();
}

}  // namespace ros::olfs
