// Writing Bucket Management (WBM) and Preliminary Bucket Writing (§4.3,
// §4.5).
//
// Incoming file data is written into updatable UDF buckets on the disk
// write buffer; the write is acknowledged as soon as the bucket holds the
// bytes. A bucket that cannot accommodate the next file (plus its
// directory) closes into an immutable disc image. Files larger than a
// bucket's free space are split: the head fills the current bucket, the
// tail continues in fresh buckets, and the continuation image carries a
// link file pointing back at the previous part's image (§4.5).
//
// Buckets are spread round-robin across the configured data volumes, which
// is also how ROS separates interfering I/O streams (§4.7).
#ifndef ROS_SRC_OLFS_BUCKET_MANAGER_H_
#define ROS_SRC_OLFS_BUCKET_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/disk/volume.h"
#include "src/olfs/disc_image_store.h"
#include "src/olfs/index_file.h"
#include "src/olfs/params.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::olfs {

class AffinityTracker;

// Internal path of a file version inside a bucket/disc image. Version 1
// uses the global path verbatim (unique file path, §4.4); regenerating
// updates are qualified so they can coexist and be recovered (§4.6).
std::string InternalPath(const std::string& path, int version);

// Name of the link file a continuation image carries for split files.
std::string SplitLinkPath(const std::string& internal_path, int part);

struct WriteReceipt {
  std::vector<FilePart> parts;  // ordered
  std::uint64_t total_size = 0;
};

class BucketManager {
 public:
  BucketManager(sim::Simulator& sim, const OlfsParams& params,
                std::vector<disk::Volume*> data_volumes,
                DiscImageStore* images);

  // Invoked (synchronously) whenever a bucket closes into a disc image.
  std::function<void(const std::string& image_id)> on_image_closed;

  // Cross-layer hints: when set, tagged writes (stream != 0) record a
  // (stream, image) co-access edge for each part they place, which the
  // burn planner later clusters onto one tray.
  void set_affinity_tracker(AffinityTracker* tracker) {
    affinity_ = tracker;
  }

  // PBW: stores one version of a file. `data` may be sparse relative to
  // `logical_size`. Returns the parts for the index entry. For streaming
  // continuations of a file whose earlier parts already closed,
  // `first_part` and `prev_image` seed the split-link chain (§4.5).
  // A nonzero `stream` tags every placed part with the writer's identity
  // for affinity placement.
  sim::Task<StatusOr<WriteReceipt>> WriteFile(
      std::string path, int version, std::vector<std::uint8_t> data,
      std::uint64_t logical_size, int first_part = 0,
      std::string prev_image = "", std::uint64_t stream = 0);

  // Appending update (§4.6) to a version that still lives in an open
  // bucket. Fails with kFailedPrecondition once the bucket has closed
  // (the caller then writes a regenerated version instead).
  sim::Task<Status> AppendToOpenFile(std::string path, int version,
                                     std::string image_id,
                                     std::vector<std::uint8_t> data,
                                     std::uint64_t logical_grow,
                                     std::uint64_t stream = 0);

  // Reads from a bucket or buffered image (any tier with bytes in the disk
  // buffer). Charges buffer-volume read time.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadBuffered(
      std::string image_id, std::string internal_path,
      std::uint64_t offset, std::uint64_t length);

  // Closes the current open bucket regardless of fill level (flush).
  sim::Task<Status> CloseCurrentBucket();

  // Writes a fully-formed image (e.g. an MV snapshot) into the buffer as a
  // closed image ready to burn.
  sim::Task<Status> AdmitImage(std::shared_ptr<udf::Image> image);

  int buckets_created() const { return bucket_counter_; }
  // True when the open bucket holds user data (auto-flush policy input).
  bool HasOpenBucketWithData() const {
    return current_ != nullptr && current_->payload_bytes > 0;
  }
  // Checkpoint restore: continue image-id numbering past older images.
  void RestoreCounter(int counter) {
    if (counter > bucket_counter_) {
      bucket_counter_ = counter;
    }
  }
  disk::Volume* volume(int index) { return data_volumes_.at(index); }
  int num_volumes() const { return static_cast<int>(data_volumes_.size()); }

  // Buffer file name for an image id.
  static std::string VolumeFileName(const std::string& image_id) {
    return "/images/" + image_id;
  }

 private:
  struct OpenBucket {
    std::shared_ptr<udf::Image> image;
    int volume_index = 0;
    std::uint64_t payload_bytes = 0;  // real+sparse payload appended so far
  };

  // Ensures an open bucket exists; returns it.
  sim::Task<StatusOr<OpenBucket*>> CurrentBucket();
  sim::Task<Status> CloseBucket(OpenBucket* bucket);
  std::string NextImageId();

  sim::Simulator& sim_;
  OlfsParams params_;
  std::vector<disk::Volume*> data_volumes_;
  DiscImageStore* images_;
  AffinityTracker* affinity_ = nullptr;
  sim::Mutex write_mutex_;  // serializes the FCFS bucket-filling policy
  std::unique_ptr<OpenBucket> current_;
  int bucket_counter_ = 0;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_BUCKET_MANAGER_H_
