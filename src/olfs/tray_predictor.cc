#include "src/olfs/tray_predictor.h"

namespace ros::olfs {

int TrayPredictor::Observe(std::uint64_t stream, int tray) {
  if (stream == 0 || tray < 0) {
    return -1;
  }
  auto last = last_tray_.find(stream);
  if (last != last_tray_.end() && last->second != tray) {
    ++successors_[last->second][tray];
    ++transitions_;
  }
  last_tray_[stream] = tray;

  auto successors = successors_.find(tray);
  if (successors == successors_.end()) {
    return -1;
  }
  int best = -1;
  std::uint64_t best_count = 0;
  // Strict > keeps the smallest tray index on ties (map iteration order).
  for (const auto& [to, count] : successors->second) {
    if (count > best_count) {
      best = to;
      best_count = count;
    }
  }
  return best;
}

}  // namespace ros::olfs
