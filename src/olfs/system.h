// Hardware assembly of a ROS rack (§5.1 prototype by default).
//
// RosSystem wires up the physical substrate: SSDs in RAID-1 for the MV,
// HDDs in one or more RAID-5 data volumes for the disk buffer, rollers +
// robotic arms behind the PLC, and 12-drive sets per bay. Olfs (olfs.h)
// builds the software stack on top.
#ifndef ROS_SRC_OLFS_SYSTEM_H_
#define ROS_SRC_OLFS_SYSTEM_H_

#include <memory>
#include <vector>

#include "src/disk/block_device.h"
#include "src/disk/raid.h"
#include "src/disk/volume.h"
#include "src/drive/optical_drive.h"
#include "src/mech/library.h"
#include "src/olfs/disc_inventory.h"
#include "src/olfs/params.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"

namespace ros::olfs {

struct SystemConfig {
  int rollers = 2;
  int drive_sets = 2;        // 24 drives, the prototype's complement
  int data_volumes = 2;      // two independent RAID-5 arrays (§4.7)
  int hdds_per_volume = 7;
  std::uint64_t hdd_capacity = 4 * kTB;
  std::uint64_t ssd_capacity = 240 * kGB;
  mech::LibraryConfig MechConfig() const {
    mech::LibraryConfig config;
    config.rollers = rollers;
    config.drive_sets = drive_sets;
    return config;
  }
};

// A small rig for unit tests: 1 roller, 1 drive set, modest disks.
inline SystemConfig TestSystemConfig() {
  SystemConfig config;
  config.rollers = 1;
  config.drive_sets = 1;
  config.data_volumes = 2;
  config.hdds_per_volume = 3;
  config.hdd_capacity = 2 * kGiB;
  config.ssd_capacity = 256 * kMiB;
  return config;
}

class RosSystem {
 public:
  RosSystem(sim::Simulator& sim, const SystemConfig& config)
      : config_(config) {
    for (int i = 0; i < 2; ++i) {
      ssds_.push_back(std::make_unique<disk::StorageDevice>(
          sim, "ssd" + std::to_string(i), config.ssd_capacity,
          disk::SsdPerf()));
    }
    mv_raid_ = std::make_unique<disk::RaidVolume>(
        sim, disk::RaidLevel::kRaid1,
        std::vector<disk::StorageDevice*>{ssds_[0].get(), ssds_[1].get()});
    mv_volume_ = std::make_unique<disk::Volume>(
        sim, mv_raid_.get(), disk::MetadataVolumeParams());

    for (int v = 0; v < config.data_volumes; ++v) {
      std::vector<disk::StorageDevice*> members;
      for (int i = 0; i < config.hdds_per_volume; ++i) {
        hdds_.push_back(std::make_unique<disk::StorageDevice>(
            sim, "hdd" + std::to_string(v) + "_" + std::to_string(i),
            config.hdd_capacity, disk::HddPerf()));
        members.push_back(hdds_.back().get());
      }
      data_raids_.push_back(std::make_unique<disk::RaidVolume>(
          sim, disk::RaidLevel::kRaid5, members));
      data_volumes_.push_back(std::make_unique<disk::Volume>(
          sim, data_raids_.back().get(),
          disk::VolumeParams{.journal_metadata = false}));
    }

    library_ = std::make_unique<mech::Library>(sim, config.MechConfig());
    for (int i = 0; i < config.drive_sets; ++i) {
      drive_sets_.push_back(std::make_unique<drive::DriveSet>(sim, i));
    }
  }

  disk::Volume* mv_volume() { return mv_volume_.get(); }
  std::vector<disk::Volume*> data_volumes() {
    std::vector<disk::Volume*> out;
    for (auto& v : data_volumes_) {
      out.push_back(v.get());
    }
    return out;
  }
  disk::RaidVolume* data_raid(int i) { return data_raids_.at(i).get(); }
  disk::RaidVolume* mv_raid() { return mv_raid_.get(); }
  mech::Library* library() { return library_.get(); }
  std::vector<drive::DriveSet*> drive_sets() {
    std::vector<drive::DriveSet*> out;
    for (auto& s : drive_sets_) {
      out.push_back(s.get());
    }
    return out;
  }
  const SystemConfig& config() const { return config_; }
  DiscInventory& discs() { return discs_; }

  // Installs a fault injector on every fault hook in the rack: all SSDs
  // and HDDs, every optical drive, and the PLC. Pass nullptr to detach.
  void InstallFaultInjector(sim::FaultInjector* injector) {
    fault_injector_ = injector;
    for (auto& ssd : ssds_) {
      ssd->set_fault_injector(injector);
    }
    for (auto& hdd : hdds_) {
      hdd->set_fault_injector(injector);
    }
    for (auto& set : drive_sets_) {
      for (int i = 0; i < set->size(); ++i) {
        set->drive(i).set_fault_injector(injector);
      }
    }
    library_->plc().set_fault_injector(injector);
  }
  sim::FaultInjector* fault_injector() { return fault_injector_; }

  // Installs the media-aging model on every optical drive (DESIGN.md
  // §5j). Not owned; the params must outlive the drives. Pass nullptr to
  // detach — and a params object with enabled=false is byte-identical to
  // no model at all.
  void InstallAgingModel(const drive::MediaAgingParams* aging) {
    for (auto& set : drive_sets_) {
      for (int i = 0; i < set->size(); ++i) {
        set->drive(i).set_aging_model(aging);
      }
    }
  }

 private:
  SystemConfig config_;
  std::vector<std::unique_ptr<disk::StorageDevice>> ssds_;
  std::vector<std::unique_ptr<disk::StorageDevice>> hdds_;
  std::unique_ptr<disk::RaidVolume> mv_raid_;
  std::vector<std::unique_ptr<disk::RaidVolume>> data_raids_;
  std::unique_ptr<disk::Volume> mv_volume_;
  std::vector<std::unique_ptr<disk::Volume>> data_volumes_;
  std::unique_ptr<mech::Library> library_;
  std::vector<std::unique_ptr<drive::DriveSet>> drive_sets_;
  DiscInventory discs_;
  sim::FaultInjector* fault_injector_ = nullptr;
};

}  // namespace ros::olfs

#endif  // ROS_SRC_OLFS_SYSTEM_H_
