#include "src/olfs/maintenance.h"

#include "src/udf/serializer.h"

namespace ros::olfs {

namespace {

const char* TierName(ImageTier tier) {
  switch (tier) {
    case ImageTier::kOpenBucket: return "open-bucket";
    case ImageTier::kBuffered: return "buffered";
    case ImageTier::kBurnedCached: return "burned+cached";
    case ImageTier::kBurnedOnly: return "burned";
  }
  return "?";
}

}  // namespace

json::Value Maintenance::StatusReport() const {
  json::Object report;

  json::Object arrays;
  arrays["empty"] = json::Value(
      olfs_->da_index().CountState(ArrayState::kEmpty));
  arrays["used"] = json::Value(
      olfs_->da_index().CountState(ArrayState::kUsed));
  arrays["failed"] = json::Value(
      olfs_->da_index().CountState(ArrayState::kFailed));
  report["disc_arrays"] = json::Value(std::move(arrays));

  json::Object pipeline;
  pipeline["buckets_created"] =
      json::Value(olfs_->buckets().buckets_created());
  pipeline["arrays_burned"] = json::Value(olfs_->burns().arrays_burned());
  pipeline["active_burns"] = json::Value(olfs_->burns().active_burns());
  pipeline["pending_images"] = json::Value(
      static_cast<std::int64_t>(olfs_->images().UnburnedClosed().size()));
  pipeline["fetches"] =
      json::Value(static_cast<std::int64_t>(olfs_->fetches().fetches()));
  report["pipeline"] = json::Value(std::move(pipeline));

  // Fetch scheduler observability: queue shape, batching effectiveness,
  // and the mechanical work the batching avoided.
  if (FetchScheduler* scheduler = olfs_->fetch_scheduler()) {
    const FetchSchedulerStats& stats = scheduler->stats();
    json::Object sched;
    sched["queue_depth"] = json::Value(scheduler->queue_depth());
    sched["max_queue_depth"] =
        json::Value(static_cast<std::int64_t>(stats.max_queue_depth));
    sched["requests"] = json::Value(static_cast<std::int64_t>(stats.requests));
    sched["loads"] = json::Value(static_cast<std::int64_t>(stats.loads));
    sched["unloads"] = json::Value(static_cast<std::int64_t>(stats.unloads));
    sched["parked_hits"] =
        json::Value(static_cast<std::int64_t>(stats.parked_hits));
    sched["handoffs"] =
        json::Value(static_cast<std::int64_t>(stats.handoffs));
    sched["loads_avoided"] =
        json::Value(static_cast<std::int64_t>(stats.loads_avoided()));
    sched["aged_dispatches"] =
        json::Value(static_cast<std::int64_t>(stats.aged_dispatches));
    sched["failed_batches"] =
        json::Value(static_cast<std::int64_t>(stats.failed_batches));
    sched["max_batch"] =
        json::Value(static_cast<std::int64_t>(stats.max_batch));
    sched["mean_queue_delay_s"] =
        json::Value(sim::ToSeconds(stats.mean_queue_delay()));
    sched["max_queue_delay_s"] =
        json::Value(sim::ToSeconds(stats.max_queue_delay));
    sched["est_positioning_s"] =
        json::Value(sim::ToSeconds(stats.est_positioning));
    // Background (speculative) prefetch class: queued, dispatched, and how
    // predictions paid off. speculative_demand_evictions is a runtime
    // self-check and must stay 0.
    sched["speculative_enqueued"] =
        json::Value(static_cast<std::int64_t>(stats.speculative_enqueued));
    sched["speculative_loads"] =
        json::Value(static_cast<std::int64_t>(stats.speculative_loads));
    sched["speculative_canceled"] =
        json::Value(static_cast<std::int64_t>(stats.speculative_canceled));
    sched["speculative_useful"] =
        json::Value(static_cast<std::int64_t>(stats.speculative_useful));
    sched["speculative_wasted"] =
        json::Value(static_cast<std::int64_t>(stats.speculative_wasted));
    sched["speculative_demand_evictions"] = json::Value(
        static_cast<std::int64_t>(stats.speculative_demand_evictions));
    json::Array hist;
    for (int i = 0; i < FetchSchedulerStats::kDelayBuckets; ++i) {
      json::Object bucket;
      bucket["upper_s"] =
          json::Value(FetchSchedulerStats::kDelayBucketUpperS[i]);
      bucket["count"] =
          json::Value(static_cast<std::int64_t>(stats.delay_hist[i]));
      hist.push_back(json::Value(std::move(bucket)));
    }
    sched["queue_delay_histogram"] = json::Value(std::move(hist));
    report["fetch_scheduler"] = json::Value(std::move(sched));
  }

  json::Object cache;
  cache["image_cache_bytes"] =
      json::Value(static_cast<std::int64_t>(olfs_->cache().used_bytes()));
  cache["image_hits"] =
      json::Value(static_cast<std::int64_t>(olfs_->cache().hits()));
  cache["image_misses"] =
      json::Value(static_cast<std::int64_t>(olfs_->cache().misses()));
  cache["image_ghost_hits"] =
      json::Value(static_cast<std::int64_t>(olfs_->cache().ghost_hits()));
  cache["image_ghost_entries"] = json::Value(
      static_cast<std::int64_t>(olfs_->cache().ghost_entries()));
  cache["image_protected_bytes"] = json::Value(
      static_cast<std::int64_t>(olfs_->cache().protected_bytes()));
  cache["image_probationary_bytes"] = json::Value(
      static_cast<std::int64_t>(olfs_->cache().probationary_bytes()));
  cache["shared_image_reads"] = json::Value(
      static_cast<std::int64_t>(olfs_->shared_image_reads()));
  cache["readahead_images"] = json::Value(
      static_cast<std::int64_t>(olfs_->readahead_images()));
  cache["readahead_bytes"] = json::Value(
      static_cast<std::int64_t>(olfs_->readahead_bytes()));
  cache["file_cache_bytes"] = json::Value(
      static_cast<std::int64_t>(olfs_->file_cache().used_bytes()));
  const auto& index_stats = olfs_->mv().cache_stats();
  cache["index_hits"] =
      json::Value(static_cast<std::int64_t>(index_stats.hits));
  cache["index_misses"] =
      json::Value(static_cast<std::int64_t>(index_stats.misses));
  cache["index_evictions"] =
      json::Value(static_cast<std::int64_t>(index_stats.evictions));
  report["caches"] = json::Value(std::move(cache));

  // Namespace store internals (log-structured backend only; the block
  // reports zeros under the legacy layout).
  const auto store = olfs_->mv().store_stats();
  json::Object mv_store;
  mv_store["log_structured"] = json::Value(store.log_structured);
  mv_store["wal_records_appended"] =
      json::Value(static_cast<std::int64_t>(store.wal.records_appended));
  mv_store["wal_batches_committed"] =
      json::Value(static_cast<std::int64_t>(store.wal.batches_committed));
  mv_store["wal_bytes_committed"] =
      json::Value(static_cast<std::int64_t>(store.wal.bytes_committed));
  mv_store["wal_commit_failures"] =
      json::Value(static_cast<std::int64_t>(store.wal.commit_failures));
  mv_store["memtable_entries"] =
      json::Value(static_cast<std::int64_t>(store.memtable_entries));
  mv_store["memtable_bytes"] =
      json::Value(static_cast<std::int64_t>(store.memtable_bytes));
  mv_store["segment_count"] =
      json::Value(static_cast<std::int64_t>(store.segment_count));
  mv_store["segment_bytes"] =
      json::Value(static_cast<std::int64_t>(store.segment_bytes));
  mv_store["segment_records_live"] =
      json::Value(static_cast<std::int64_t>(store.segment_records_live));
  mv_store["segment_records_total"] =
      json::Value(static_cast<std::int64_t>(store.segment_records_total));
  mv_store["memtable_flushes"] =
      json::Value(static_cast<std::int64_t>(store.memtable_flushes));
  mv_store["compactions"] =
      json::Value(static_cast<std::int64_t>(store.compactions));
  mv_store["segments_deleted"] =
      json::Value(static_cast<std::int64_t>(store.segments_deleted));
  report["mv_store"] = json::Value(std::move(mv_store));

  // Self-healing: the fault/retry/repair pipeline (§4.7), plus raw
  // injector telemetry when a chaos plan is installed.
  json::Object resilience;
  resilience["degraded_reads"] =
      json::Value(static_cast<std::int64_t>(olfs_->degraded_reads()));
  resilience["reconstructions"] =
      json::Value(static_cast<std::int64_t>(olfs_->reconstructions()));
  resilience["images_repaired"] =
      json::Value(static_cast<std::int64_t>(olfs_->images_repaired()));
  resilience["burn_retries"] = json::Value(olfs_->burns().burn_retries());
  resilience["arrays_reallocated"] =
      json::Value(olfs_->burns().arrays_reallocated());
  resilience["fetch_retries"] =
      json::Value(static_cast<std::int64_t>(olfs_->fetches().retries()));
  resilience["mech_recoveries"] = json::Value(static_cast<std::int64_t>(
      olfs_->system().library()->fault_recoveries()));
  resilience["mech_reseat_failures"] = json::Value(
      static_cast<std::int64_t>(olfs_->system().library()->reseat_failures()));
  if (sim::FaultInjector* injector = olfs_->system().fault_injector()) {
    json::Object injected;
    for (int k = 0; k < sim::kNumFaultKinds; ++k) {
      const auto kind = static_cast<sim::FaultKind>(k);
      json::Object counts;
      counts["ops_seen"] = json::Value(
          static_cast<std::int64_t>(injector->ops_seen(kind)));
      counts["injected"] = json::Value(
          static_cast<std::int64_t>(injector->injected(kind)));
      injected[std::string(sim::FaultKindName(kind))] =
          json::Value(std::move(counts));
    }
    resilience["injected_faults"] = json::Value(std::move(injected));
  }
  report["resilience"] = json::Value(std::move(resilience));

  // Decades-scale preservation (DESIGN.md §5j): scrub / refresh-migration
  // progress and the audit manifests' verification economics.
  json::Object preservation;
  preservation["scrub_passes"] = json::Value(
      static_cast<std::int64_t>(olfs_->scrub().passes()));
  preservation["scrubbed_bytes"] = json::Value(
      static_cast<std::int64_t>(olfs_->scrub().scrubbed_bytes()));
  preservation["scrub_repairs"] = json::Value(
      static_cast<std::int64_t>(olfs_->scrub().scrub_repairs()));
  preservation["refresh_burns"] = json::Value(
      static_cast<std::int64_t>(olfs_->scrub().refresh_burns()));
  preservation["arrays_refreshed"] = json::Value(
      static_cast<std::int64_t>(olfs_->scrub().arrays_refreshed()));
  preservation["audit_roots_built"] = json::Value(
      static_cast<std::int64_t>(olfs_->audit().roots_built()));
  preservation["audit_manifests"] = json::Value(
      static_cast<std::int64_t>(olfs_->audit().manifests_live()));
  preservation["audit_leaves_sampled"] = json::Value(
      static_cast<std::int64_t>(olfs_->scrub().audit_leaves_sampled()));
  preservation["audit_bytes_read"] = json::Value(
      static_cast<std::int64_t>(olfs_->scrub().audit_bytes_read()));
  preservation["audit_mismatches"] = json::Value(
      static_cast<std::int64_t>(olfs_->scrub().audit_mismatches()));
  report["preservation"] = json::Value(std::move(preservation));

  json::Object namespace_info;
  namespace_info["entries"] =
      json::Value(static_cast<std::int64_t>(olfs_->mv().index_count()));
  namespace_info["images"] =
      json::Value(static_cast<std::int64_t>(olfs_->images().image_count()));
  report["namespace"] = json::Value(std::move(namespace_info));

  json::Array tiers;
  for (const ImageRecord* record : olfs_->images().AllRecords()) {
    json::Object entry;
    entry["id"] = json::Value(record->id);
    entry["tier"] = json::Value(std::string(TierName(record->tier)));
    if (record->disc.has_value()) {
      entry["disc"] = json::Value(record->disc->ToString());
    }
    tiers.push_back(json::Value(std::move(entry)));
  }
  report["images"] = json::Value(std::move(tiers));
  return json::Value(std::move(report));
}

sim::Task<Status> Maintenance::Checkpoint() {
  json::Object state;

  // DAindex.
  json::Array used;
  json::Array failed;
  for (int t = 0;
       t < olfs_->da_index().rollers() * mech::kTraysPerRoller; ++t) {
    switch (olfs_->da_index().state(mech::TrayAddress::FromIndex(t))) {
      case ArrayState::kUsed: used.push_back(json::Value(t)); break;
      case ArrayState::kFailed: failed.push_back(json::Value(t)); break;
      case ArrayState::kEmpty: break;
    }
  }
  state["da_used"] = json::Value(std::move(used));
  state["da_failed"] = json::Value(std::move(failed));
  state["bucket_counter"] =
      json::Value(olfs_->buckets().buckets_created());

  // Image registry + buffered structures flushed to the disk buffer.
  json::Array images;
  for (const ImageRecord* record : olfs_->images().AllRecords()) {
    json::Object entry;
    entry["id"] = json::Value(record->id);
    entry["parity"] = json::Value(record->parity);
    entry["tier"] = json::Value(static_cast<int>(record->tier));
    entry["bytes"] = json::Value(record->logical_bytes);
    entry["vol"] = json::Value(record->volume_index);
    entry["file"] = json::Value(record->volume_file);
    if (record->disc.has_value()) {
      entry["disc"] = json::Value(record->disc->ToIndex());
    }
    json::Array members;
    for (const std::string& member : record->array_members) {
      members.push_back(json::Value(member));
    }
    entry["members"] = json::Value(std::move(members));
    images.push_back(json::Value(std::move(entry)));

    // Persist the serialized structure of every image whose bytes live
    // only in controller memory + buffer (open buckets included: the
    // checkpoint closes over their current content).
    if (record->image != nullptr && !record->parity) {
      disk::Volume* volume = olfs_->buckets().volume(record->volume_index);
      const std::string name = CheckpointFileName(record->id);
      if (!volume->Exists(name)) {
        ROS_CO_RETURN_IF_ERROR(co_await volume->Create(name));
      }
      ROS_CO_RETURN_IF_ERROR(co_await volume->WriteAll(
          name, udf::Serializer::Serialize(*record->image)));
    }
  }
  state["images"] = json::Value(std::move(images));
  co_return co_await olfs_->mv().PutState(kCheckpointKey,
                                          json::Value(std::move(state)));
}

sim::Task<Status> Maintenance::RestoreFromCheckpoint() {
  ROS_CO_ASSIGN_OR_RETURN(json::Value state,
                          co_await olfs_->mv().GetState(kCheckpointKey));
  for (const json::Value& t : state["da_used"].as_array()) {
    olfs_->da_index().set_state(
        mech::TrayAddress::FromIndex(static_cast<int>(t.as_int())),
        ArrayState::kUsed);
  }
  for (const json::Value& t : state["da_failed"].as_array()) {
    olfs_->da_index().set_state(
        mech::TrayAddress::FromIndex(static_cast<int>(t.as_int())),
        ArrayState::kFailed);
  }
  olfs_->buckets().RestoreCounter(
      static_cast<int>(state["bucket_counter"].as_int()));

  for (const json::Value& entry : state["images"].as_array()) {
    ImageRecord record;
    record.id = entry["id"].as_string();
    record.parity = entry["parity"].as_bool();
    record.logical_bytes =
        static_cast<std::uint64_t>(entry["bytes"].as_int());
    record.volume_index = static_cast<int>(entry["vol"].as_int());
    record.volume_file = entry["file"].as_string();
    if (entry.contains("disc")) {
      record.disc = mech::DiscAddress::FromIndex(
          static_cast<int>(entry["disc"].as_int()));
    }
    for (const json::Value& member : entry["members"].as_array()) {
      record.array_members.push_back(member.as_string());
    }
    const auto tier = static_cast<ImageTier>(entry["tier"].as_int());
    // Open buckets are closed by the crash; their checkpointed content
    // survives as a buffered image awaiting burn.
    record.tier = tier == ImageTier::kOpenBucket ? ImageTier::kBuffered
                                                 : tier;

    // Reload the serialized structure for buffer-resident data images.
    if ((record.tier == ImageTier::kBuffered ||
         record.tier == ImageTier::kBurnedCached) &&
        !record.parity) {
      disk::Volume* volume = olfs_->buckets().volume(record.volume_index);
      const std::string name = CheckpointFileName(record.id);
      auto bytes = co_await volume->ReadAll(name);
      if (bytes.ok()) {
        auto image = udf::Serializer::Parse(*bytes);
        if (image.ok()) {
          record.image =
              std::make_shared<udf::Image>(std::move(*image));
          record.logical_bytes = record.image->used_bytes();
        }
      }
      if (record.image == nullptr) {
        if (!record.disc.has_value()) {
          co_return DataLossError("image " + record.id +
                                  " lost: no checkpoint copy and not on "
                                  "any disc");
        }
        record.tier = ImageTier::kBurnedOnly;  // still safe on its disc
      }
    }
    // Parity images in the buffer cannot be reloaded (their bytes are
    // derived); regenerate by re-burning if needed, or keep disc copies.
    if (record.parity && !record.disc.has_value()) {
      continue;  // will be regenerated with its array's next burn
    }
    ROS_CO_RETURN_IF_ERROR(
        olfs_->images().RestoreRecord(std::move(record)));
  }
  co_return OkStatus();
}

}  // namespace ros::olfs
