#include "src/frontend/block_gateway.h"

#include <algorithm>
#include <cstring>

namespace ros::frontend {

sim::Task<StatusOr<std::vector<std::uint8_t>>> BlockGateway::LoadChunk(
    std::uint64_t chunk) {
  const std::string path = ChunkPath(chunk);
  if (!olfs_->mv().Exists(path)) {
    co_return std::vector<std::uint8_t>(chunk_bytes_, 0);
  }
  auto data = co_await olfs_->Read(path, 0, chunk_bytes_);
  if (data.status().code() == StatusCode::kNotFound) {
    // Tombstoned (TRIMmed) chunk: thin again.
    co_return std::vector<std::uint8_t>(chunk_bytes_, 0);
  }
  co_return data;
}

sim::Task<Status> BlockGateway::WriteBlocks(std::uint64_t lba,
                                            std::vector<std::uint8_t> data) {
  if (data.size() % kBlockSize != 0) {
    co_return InvalidArgumentError("write not block-aligned");
  }
  const std::uint64_t offset = lba * kBlockSize;
  if (offset + data.size() > lun_bytes_) {
    co_return OutOfRangeError("write beyond LUN");
  }

  std::uint64_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t chunk = abs / chunk_bytes_;
    const std::uint64_t within = abs % chunk_bytes_;
    const std::uint64_t n =
        std::min(chunk_bytes_ - within, data.size() - pos);

    // Read-modify-write the covering chunk as a new version (§4.6's
    // regenerating update keeps this WORM-legal).
    ROS_CO_ASSIGN_OR_RETURN(std::vector<std::uint8_t> content,
                            co_await LoadChunk(chunk));
    std::memcpy(content.data() + within, data.data() + pos, n);

    const std::string path = ChunkPath(chunk);
    if (olfs_->mv().Exists(path)) {
      auto existing = co_await olfs_->Stat(path);
      if (existing.ok()) {
        ROS_CO_RETURN_IF_ERROR(co_await olfs_->Update(
            path, std::move(content), chunk_bytes_));
      } else {
        // Tombstoned chunk: recreate.
        ROS_CO_RETURN_IF_ERROR(co_await olfs_->Create(
            path, std::move(content), chunk_bytes_));
      }
    } else {
      ROS_CO_RETURN_IF_ERROR(co_await olfs_->Create(
          path, std::move(content), chunk_bytes_));
    }
    pos += n;
  }
  co_return OkStatus();
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> BlockGateway::ReadBlocks(
    std::uint64_t lba, std::uint64_t blocks) {
  const std::uint64_t offset = lba * kBlockSize;
  const std::uint64_t length = blocks * kBlockSize;
  if (offset + length > lun_bytes_) {
    co_return OutOfRangeError("read beyond LUN");
  }
  std::vector<std::uint8_t> out(length);
  std::uint64_t pos = 0;
  while (pos < length) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t chunk = abs / chunk_bytes_;
    const std::uint64_t within = abs % chunk_bytes_;
    const std::uint64_t n = std::min(chunk_bytes_ - within, length - pos);
    ROS_CO_ASSIGN_OR_RETURN(std::vector<std::uint8_t> content,
                            co_await LoadChunk(chunk));
    std::memcpy(out.data() + pos, content.data() + within, n);
    pos += n;
  }
  co_return out;
}

sim::Task<StatusOr<int>> BlockGateway::MaterializedChunks() {
  auto children = co_await olfs_->ReadDir("/luns/" + lun_);
  if (!children.ok()) {
    co_return children.status().code() == StatusCode::kNotFound
        ? StatusOr<int>(0)
        : StatusOr<int>(children.status());
  }
  co_return static_cast<int>(children->size());
}

}  // namespace ros::frontend
