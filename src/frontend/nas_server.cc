#include "src/frontend/nas_server.h"

#include "src/common/logging.h"

namespace ros::frontend {

sim::Task<Status> NasServer::Upload(std::string path,
                                    std::vector<std::uint8_t> data,
                                    std::uint64_t logical_size,
                                    olfs::AccessHint hint) {
  ++uploads_;
  co_await sim_.Delay(config_.protocol_cost);

  if (!config_.direct_write_mode) {
    // Regular path: through the OLFS PI (Samba -> FUSE -> OLFS), charging
    // the wire transfer inline.
    co_await sim_.Delay(
        sim::TransferTime(logical_size, config_.wire_bytes_per_sec));
    if (olfs_->mv().Exists(path)) {
      co_return co_await olfs_->Update(path, std::move(data), logical_size);
    }
    co_return co_await olfs_->Create(path, std::move(data), logical_size,
                                     hint);
  }

  // Direct-writing mode: stage onto the SSD tier at wire speed.
  const std::uint64_t ticket = next_ticket_++;
  disk::Volume* staging = olfs_->mv().volume();
  const std::string name = StagingName(ticket);
  ROS_CO_RETURN_IF_ERROR(co_await staging->Create(name));
  // The SSD tier keeps up with the wire: the client sees wire speed.
  ROS_CO_RETURN_IF_ERROR(
      co_await staging->AppendSparse(name, data, logical_size));
  co_await sim_.Delay(
      sim::TransferTime(logical_size, config_.wire_bytes_per_sec));

  ++pending_;
  sim_.Spawn(
      DeliveryTask(ticket, path, std::move(data), logical_size, hint));
  co_return OkStatus();
}

sim::Task<void> NasServer::DeliveryTask(std::uint64_t ticket,
                                        std::string path,
                                        std::vector<std::uint8_t> data,
                                        std::uint64_t logical_size,
                                        olfs::AccessHint hint) {
  disk::Volume* staging = olfs_->mv().volume();
  const std::string name = StagingName(ticket);

  // Replay the staged bytes into OLFS (reads the staging copy back).
  Status status = co_await staging->ReadDiscard(name, 0, logical_size);
  if (status.ok()) {
    if (olfs_->mv().Exists(path)) {
      status = co_await olfs_->Update(path, std::move(data), logical_size);
    } else {
      status = co_await olfs_->Create(path, std::move(data), logical_size,
                                      hint);
    }
  }
  if (status.ok()) {
    status = co_await staging->Delete(name);
  }
  if (!status.ok()) {
    ROS_LOG(kWarning) << "direct-write delivery of " << path
                      << " failed: " << status.ToString();
    delivery_error_ = status;
  } else {
    ++delivered_;
  }
  --pending_;
  deliveries_done_.NotifyAll();
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> NasServer::Download(
    std::string path, std::uint64_t offset, std::uint64_t length,
    olfs::AccessHint hint) {
  co_await sim_.Delay(config_.protocol_cost);
  auto data = co_await olfs_->Read(path, offset, length, hint);
  if (data.ok()) {
    co_await sim_.Delay(
        sim::TransferTime(length, config_.wire_bytes_per_sec));
  }
  co_return data;
}

sim::Task<Status> NasServer::DrainDeliveries() {
  while (pending_ > 0) {
    co_await deliveries_done_.Wait();
  }
  co_return delivery_error_;
}

}  // namespace ros::frontend
