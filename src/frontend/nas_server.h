// NAS front end with the direct-writing mode (§4.8).
//
// "To further eliminate FUSE performance penalty in some performance-
// critical scenarios, we provide a direct-writing mode where incoming
// files are directly transferred to the SSD tier at full external
// bandwidth through CIFS or NFS, then asynchronously delivered into OLFS."
//
// Uploads in direct mode land as staging files on the SSD tier and
// acknowledge at wire speed (10 GbE by default); a background delivery
// task replays them into OLFS (paying the FUSE-path cost off the client's
// critical path) and removes the staging copy. Normal mode forwards
// straight through the OLFS PI.
#ifndef ROS_SRC_FRONTEND_NAS_SERVER_H_
#define ROS_SRC_FRONTEND_NAS_SERVER_H_

#include <deque>
#include <string>

#include "src/common/status.h"
#include "src/olfs/olfs.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::frontend {

struct NasConfig {
  bool direct_write_mode = false;
  // External network bandwidth (two bonded 10 GbE NICs in the prototype;
  // a single client stream sees one link).
  double wire_bytes_per_sec = 1.25e9;
  // Per-request SMB/NFS protocol cost.
  sim::Duration protocol_cost = sim::Millis(3.0);
};

class NasServer {
 public:
  NasServer(sim::Simulator& sim, olfs::Olfs* olfs, NasConfig config = {})
      : sim_(sim), olfs_(olfs), config_(config), deliveries_done_(sim) {
    ROS_CHECK(olfs != nullptr);
  }

  // Ingests one file from a client. In direct mode the call returns once
  // the bytes are on the SSD staging area; delivery into OLFS happens in
  // the background. `data` may be sparse relative to `logical_size`.
  // A tagged hint (stream != 0) flows down to OLFS's cross-layer channel.
  sim::Task<Status> Upload(std::string path,
                           std::vector<std::uint8_t> data,
                           std::uint64_t logical_size,
                           olfs::AccessHint hint = {});

  // Serves a download through OLFS (direct mode does not change reads).
  sim::Task<StatusOr<std::vector<std::uint8_t>>> Download(
      std::string path, std::uint64_t offset, std::uint64_t length,
      olfs::AccessHint hint = {});

  // Waits until every staged upload has been delivered into OLFS.
  sim::Task<Status> DrainDeliveries();

  std::uint64_t uploads() const { return uploads_; }
  std::uint64_t staged_pending() const { return pending_; }
  std::uint64_t delivered() const { return delivered_; }
  Status last_delivery_error() const { return delivery_error_; }

  // Staging namespace on the SSD (metadata) volume.
  static std::string StagingName(std::uint64_t ticket) {
    return "/staging/upload-" + std::to_string(ticket);
  }

 private:
  sim::Task<void> DeliveryTask(std::uint64_t ticket, std::string path,
                               std::vector<std::uint8_t> data,
                               std::uint64_t logical_size,
                               olfs::AccessHint hint);

  sim::Simulator& sim_;
  olfs::Olfs* olfs_;
  NasConfig config_;
  std::uint64_t uploads_ = 0;
  std::uint64_t pending_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t next_ticket_ = 0;
  sim::ConditionVariable deliveries_done_;
  Status delivery_error_;
};

}  // namespace ros::frontend

#endif  // ROS_SRC_FRONTEND_NAS_SERVER_H_
