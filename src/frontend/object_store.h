// Object-storage adapter (§4.2): "This namespace mapping mechanism can
// also be extended to support other mainstream access interfaces such as
// key-value, object storage, and REST."
//
// A minimal S3-style interface over the OLFS global namespace: buckets map
// to top-level directories under /objects, object keys map to paths (with
// '/' acting as the delimiter, so prefix listing works), and overwriting
// an object produces a new WORM-safe version. Object keys are escaped so
// arbitrary names cannot collide with OLFS's internal path qualifiers.
#ifndef ROS_SRC_FRONTEND_OBJECT_STORE_H_
#define ROS_SRC_FRONTEND_OBJECT_STORE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/olfs/olfs.h"
#include "src/sim/task.h"

namespace ros::frontend {

struct ObjectInfo {
  std::string key;
  std::uint64_t size = 0;
  int version = 0;
};

class ObjectStore {
 public:
  explicit ObjectStore(olfs::Olfs* olfs) : olfs_(olfs) { ROS_CHECK(olfs); }

  sim::Task<Status> CreateBucket(std::string bucket);
  sim::Task<StatusOr<std::vector<std::string>>> ListBuckets();

  // Stores an object; overwriting an existing key creates a new version.
  // A tagged hint (stream != 0) records co-access for affinity placement;
  // a scan hint on GetObject additionally triggers whole-tray readahead.
  sim::Task<Status> PutObject(std::string bucket,
                              std::string key,
                              std::vector<std::uint8_t> data,
                              olfs::AccessHint hint = {});

  sim::Task<StatusOr<std::vector<std::uint8_t>>> GetObject(
      std::string bucket, std::string key, olfs::AccessHint hint = {});

  // Historic version access (data provenance through the S3-ish surface).
  sim::Task<StatusOr<std::vector<std::uint8_t>>> GetObjectVersion(
      std::string bucket, std::string key, int version);

  sim::Task<StatusOr<ObjectInfo>> HeadObject(std::string bucket,
                                             std::string key);

  // Logical delete (tombstone; old versions remain reachable).
  sim::Task<Status> DeleteObject(std::string bucket,
                                 std::string key);

  // Lists keys under a '/'-delimited prefix (recursive).
  sim::Task<StatusOr<std::vector<ObjectInfo>>> ListObjects(
      std::string bucket, std::string prefix = "");

  // Path mapping (exposed for tests): escapes '#' and '%', validates
  // components.
  static StatusOr<std::string> ObjectPath(const std::string& bucket,
                                          const std::string& key);
  static std::string EscapeComponent(const std::string& raw);
  static std::string UnescapeComponent(const std::string& escaped);
  static constexpr const char* kRoot = "/objects";

 private:
  sim::Task<StatusOr<std::vector<ObjectInfo>>> ListRecursive(
      std::string dir, std::string key_prefix);

  olfs::Olfs* olfs_;
};

}  // namespace ros::frontend

#endif  // ROS_SRC_FRONTEND_OBJECT_STORE_H_
