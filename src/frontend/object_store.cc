#include "src/frontend/object_store.h"

#include <algorithm>

namespace ros::frontend {

std::string ObjectStore::EscapeComponent(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    // '#' is OLFS's internal-path qualifier; '%' is our escape prefix.
    if (c == '#') {
      out += "%23";
    } else if (c == '%') {
      out += "%25";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string ObjectStore::UnescapeComponent(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%' && i + 2 < escaped.size()) {
      if (escaped.compare(i, 3, "%23") == 0) {
        out.push_back('#');
        i += 2;
        continue;
      }
      if (escaped.compare(i, 3, "%25") == 0) {
        out.push_back('%');
        i += 2;
        continue;
      }
    }
    out.push_back(escaped[i]);
  }
  return out;
}

StatusOr<std::string> ObjectStore::ObjectPath(const std::string& bucket,
                                              const std::string& key) {
  if (bucket.empty() || bucket.find('/') != std::string::npos) {
    return InvalidArgumentError("bad bucket name: " + bucket);
  }
  if (key.empty() || key.front() == '/' || key.back() == '/') {
    return InvalidArgumentError("bad object key: " + key);
  }
  std::string path = std::string(kRoot) + "/" + EscapeComponent(bucket);
  std::size_t start = 0;
  while (start <= key.size()) {
    std::size_t slash = key.find('/', start);
    if (slash == std::string::npos) {
      slash = key.size();
    }
    const std::string component = key.substr(start, slash - start);
    if (component.empty() || component == "." || component == "..") {
      return InvalidArgumentError("bad key component in " + key);
    }
    path += "/" + EscapeComponent(component);
    start = slash + 1;
  }
  return path;
}

sim::Task<Status> ObjectStore::CreateBucket(std::string bucket) {
  if (bucket.empty() || bucket.find('/') != std::string::npos) {
    co_return InvalidArgumentError("bad bucket name");
  }
  co_return co_await olfs_->Mkdir(std::string(kRoot) + "/" +
                                  EscapeComponent(bucket));
}

sim::Task<StatusOr<std::vector<std::string>>> ObjectStore::ListBuckets() {
  co_return co_await olfs_->ReadDir(kRoot);
}

sim::Task<Status> ObjectStore::PutObject(std::string bucket,
                                         std::string key,
                                         std::vector<std::uint8_t> data,
                                         olfs::AccessHint hint) {
  ROS_CO_ASSIGN_OR_RETURN(std::string path, ObjectPath(bucket, key));
  const std::uint64_t size = data.size();
  if (olfs_->mv().Exists(path)) {
    co_return co_await olfs_->Update(path, std::move(data), size);
  }
  co_return co_await olfs_->Create(path, std::move(data), size, hint);
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> ObjectStore::GetObject(
    std::string bucket, std::string key, olfs::AccessHint hint) {
  ROS_CO_ASSIGN_OR_RETURN(std::string path, ObjectPath(bucket, key));
  auto info = co_await olfs_->Stat(path);
  if (!info.ok()) {
    co_return info.status();
  }
  co_return co_await olfs_->Read(path, 0, info->size, hint);
}

sim::Task<StatusOr<std::vector<std::uint8_t>>> ObjectStore::GetObjectVersion(
    std::string bucket, std::string key, int version) {
  ROS_CO_ASSIGN_OR_RETURN(std::string path, ObjectPath(bucket, key));
  auto index = co_await olfs_->mv().GetRef(path);
  if (!index.ok()) {
    co_return index.status();
  }
  auto entry = (*index)->Version(version);
  if (!entry.ok()) {
    co_return entry.status();
  }
  co_return co_await olfs_->ReadVersion(path, version, 0,
                                        (*entry)->total_size);
}

sim::Task<StatusOr<ObjectInfo>> ObjectStore::HeadObject(
    std::string bucket, std::string key) {
  ROS_CO_ASSIGN_OR_RETURN(std::string path, ObjectPath(bucket, key));
  auto info = co_await olfs_->Stat(path);
  if (!info.ok()) {
    co_return info.status();
  }
  if (info->is_directory) {
    co_return NotFoundError(key + " is a prefix, not an object");
  }
  co_return ObjectInfo{key, info->size, info->version};
}

sim::Task<Status> ObjectStore::DeleteObject(std::string bucket,
                                            std::string key) {
  ROS_CO_ASSIGN_OR_RETURN(std::string path, ObjectPath(bucket, key));
  co_return co_await olfs_->Unlink(path);
}

sim::Task<StatusOr<std::vector<ObjectInfo>>> ObjectStore::ListRecursive(
    std::string dir, std::string key_prefix) {
  std::vector<ObjectInfo> out;
  auto children = co_await olfs_->ReadDir(dir);
  if (!children.ok()) {
    co_return children.status();
  }
  for (const std::string& name : *children) {
    const std::string child_path = dir + "/" + name;
    const std::string display = UnescapeComponent(name);
    const std::string child_key =
        key_prefix.empty() ? display : key_prefix + "/" + display;
    auto info = co_await olfs_->Stat(child_path);
    if (!info.ok()) {
      continue;
    }
    if (info->is_directory) {
      auto nested = co_await ListRecursive(child_path, child_key);
      if (nested.ok()) {
        out.insert(out.end(), nested->begin(), nested->end());
      }
    } else {
      out.push_back({child_key, info->size, info->version});
    }
  }
  co_return out;
}

sim::Task<StatusOr<std::vector<ObjectInfo>>> ObjectStore::ListObjects(
    std::string bucket, std::string prefix) {
  std::string dir = std::string(kRoot) + "/" + EscapeComponent(bucket);
  if (!olfs_->mv().Exists(dir)) {
    co_return NotFoundError("no bucket " + bucket);
  }
  ROS_CO_ASSIGN_OR_RETURN(std::vector<ObjectInfo> all,
                          co_await ListRecursive(dir, ""));
  if (prefix.empty()) {
    co_return all;
  }
  std::vector<ObjectInfo> filtered;
  for (ObjectInfo& info : all) {
    if (info.key.rfind(prefix, 0) == 0) {
      filtered.push_back(std::move(info));
    }
  }
  co_return filtered;
}

}  // namespace ros::frontend
