// Block-level gateway (§4.2): "OLFS can also provide a block-level
// interface via the iSCSI protocol."
//
// A virtual LUN is mapped onto the OLFS namespace as a directory of
// fixed-size chunk files (/luns/<name>/chunk-N). Block writes become
// regenerating updates of the covering chunks — WORM-compatible, since
// every overwrite is a new version and old LUN states remain reachable
// through the version history. Unwritten chunks read as zeros (thin
// provisioning).
#ifndef ROS_SRC_FRONTEND_BLOCK_GATEWAY_H_
#define ROS_SRC_FRONTEND_BLOCK_GATEWAY_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/olfs/olfs.h"
#include "src/sim/task.h"

namespace ros::frontend {

class BlockGateway {
 public:
  static constexpr std::uint64_t kBlockSize = 512;  // SCSI logical block

  // Exposes a `lun_bytes` LUN backed by `chunk_bytes` OLFS files.
  BlockGateway(olfs::Olfs* olfs, std::string lun, std::uint64_t lun_bytes,
               std::uint64_t chunk_bytes = 4 * kMiB)
      : olfs_(olfs), lun_(std::move(lun)), lun_bytes_(lun_bytes),
        chunk_bytes_(chunk_bytes) {
    ROS_CHECK(olfs != nullptr);
    ROS_CHECK(chunk_bytes_ % kBlockSize == 0);
  }

  std::uint64_t lun_bytes() const { return lun_bytes_; }
  std::uint64_t num_blocks() const { return lun_bytes_ / kBlockSize; }

  // SCSI WRITE: stores `data` starting at logical block `lba`.
  sim::Task<Status> WriteBlocks(std::uint64_t lba,
                                std::vector<std::uint8_t> data);

  // SCSI READ: returns `blocks * kBlockSize` bytes from `lba`.
  sim::Task<StatusOr<std::vector<std::uint8_t>>> ReadBlocks(
      std::uint64_t lba, std::uint64_t blocks);

  // Number of chunk files materialized so far (thin-provisioning probe).
  sim::Task<StatusOr<int>> MaterializedChunks();

  std::string ChunkPath(std::uint64_t chunk) const {
    return "/luns/" + lun_ + "/chunk-" + std::to_string(chunk);
  }

 private:
  // Reads a chunk's current content (zeros when never written).
  sim::Task<StatusOr<std::vector<std::uint8_t>>> LoadChunk(
      std::uint64_t chunk);

  olfs::Olfs* olfs_;
  std::string lun_;
  std::uint64_t lun_bytes_;
  std::uint64_t chunk_bytes_;
};

}  // namespace ros::frontend

#endif  // ROS_SRC_FRONTEND_BLOCK_GATEWAY_H_
