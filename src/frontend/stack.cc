#include "src/frontend/stack.h"

namespace ros::frontend {

std::string_view StackConfigName(StackConfig config) {
  switch (config) {
    case StackConfig::kExt4: return "ext4";
    case StackConfig::kExt4Fuse: return "ext4+FUSE";
    case StackConfig::kExt4Olfs: return "ext4+OLFS";
    case StackConfig::kSamba: return "samba";
    case StackConfig::kSambaFuse: return "samba+FUSE";
    case StackConfig::kSambaOlfs: return "samba+OLFS";
  }
  return "?";
}

double FrontendStack::LayerCostPerByte(bool write) const {
  // The storage layer's cost comes from the real backend I/O; the layers
  // above add their marginal copies/protocol work. The FUSE marginal is
  // split between a per-byte share and the per-request cost charged in
  // FuseRequestCost, so it is reduced by the big_writes request rate.
  double cost = 0;
  if (HasFuse()) {
    const double per_request =
        sim::ToSeconds(costs_.fuse_request) /
        static_cast<double>(costs_.fuse_chunk_big_writes);
    cost += (write ? costs_.fuse_write : costs_.fuse_read) - per_request;
  }
  // The OLFS marginal is charged by the real OLFS backend (its streaming
  // request cost plus its actual bucket I/O), not re-added here.
  if (HasSamba()) {
    cost += write ? costs_.samba_write : costs_.samba_read;
  }
  return cost < 0 ? 0 : cost;
}

sim::Duration FrontendStack::FuseRequestCost(std::uint64_t size) const {
  if (!HasFuse()) {
    return 0;
  }
  const std::uint64_t chunk =
      big_writes ? costs_.fuse_chunk_big_writes : costs_.fuse_chunk_plain;
  const std::uint64_t requests = (size + chunk - 1) / chunk;
  return static_cast<sim::Duration>(requests) * costs_.fuse_request;
}

sim::Task<Status> FrontendStack::BackendWrite(std::string path,
                                              std::uint64_t io_size,
                                              olfs::AccessHint hint) {
  if (HasOlfs()) {
    ROS_CHECK(olfs_ != nullptr);
    // OLFS backend: real streaming append (its own internal-op cost plus
    // the bucket write on the data volume).
    if (!olfs_->mv().Exists(path)) {
      ROS_CO_RETURN_IF_ERROR(co_await olfs_->Create(path, {}, 0, hint));
    }
    co_return co_await olfs_->AppendStream(path, {}, io_size, hint);
  }
  ROS_CHECK(volume_ != nullptr);
  if (!volume_->Exists(path)) {
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Create(path));
  }
  co_return co_await volume_->AppendSparse(path, {}, io_size);
}

sim::Task<Status> FrontendStack::BackendRead(std::string path,
                                             std::uint64_t offset,
                                             std::uint64_t io_size,
                                             olfs::AccessHint hint) {
  if (HasOlfs()) {
    ROS_CHECK(olfs_ != nullptr);
    auto data = co_await olfs_->ReadStream(path, offset, io_size, hint);
    co_return data.status().ok() ? OkStatus() : data.status();
  }
  ROS_CHECK(volume_ != nullptr);
  co_return co_await volume_->ReadDiscard(path, offset, io_size);
}

sim::Task<Status> FrontendStack::StreamWrite(std::string path,
                                             std::uint64_t io_size,
                                             olfs::AccessHint hint) {
  // Layer copies + FUSE kernel round trips + Samba protocol work, then the
  // real backend write.
  co_await sim_.Delay(static_cast<sim::Duration>(
      LayerCostPerByte(/*write=*/true) * static_cast<double>(io_size) *
      1e9));
  co_await sim_.Delay(FuseRequestCost(io_size));
  co_return co_await BackendWrite(path, io_size, hint);
}

sim::Task<Status> FrontendStack::StreamRead(std::string path,
                                            std::uint64_t offset,
                                            std::uint64_t io_size,
                                            olfs::AccessHint hint) {
  co_await sim_.Delay(static_cast<sim::Duration>(
      LayerCostPerByte(/*write=*/false) * static_cast<double>(io_size) *
      1e9));
  co_await sim_.Delay(FuseRequestCost(io_size));
  co_return co_await BackendRead(path, offset, io_size, hint);
}

sim::Task<StatusOr<sim::Duration>> FrontendStack::TimedCreate(
    std::string path, std::uint64_t size) {
  const sim::TimePoint start = sim_.now();
  trace_.clear();

  if (HasSamba()) {
    // Samba issues extra stat round trips when creating a file (Fig 7),
    // each paying the SMB protocol cost on top of the stat itself.
    for (int i = 0; i < costs_.samba_write_extra_stats; ++i) {
      trace_.emplace_back("stat");
      co_await sim_.Delay(costs_.samba_op);
      if (HasOlfs()) {
        auto ignored = co_await olfs_->Stat(path);
        (void)ignored;
      } else {
        co_await sim_.Delay(sim::Millis(2.5));
      }
    }
  }

  if (HasOlfs()) {
    ROS_CO_RETURN_IF_ERROR(co_await olfs_->Create(
        path, std::vector<std::uint8_t>(size, 0x5A)));
    for (const std::string& op : olfs_->last_op_trace()) {
      trace_.push_back(op);
    }
  } else {
    ROS_CHECK(volume_ != nullptr);
    co_await sim_.Delay(FuseRequestCost(size));
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Create(path));
    ROS_CO_RETURN_IF_ERROR(co_await volume_->Write(
        path, 0, std::vector<std::uint8_t>(size, 0x5A)));
    trace_.emplace_back("create");
    trace_.emplace_back("write");
  }
  co_return sim_.now() - start;
}

sim::Task<StatusOr<sim::Duration>> FrontendStack::TimedRead(
    std::string path, std::uint64_t size) {
  const sim::TimePoint start = sim_.now();
  trace_.clear();
  if (HasSamba()) {
    // Open + read round trips.
    co_await sim_.Delay(2 * costs_.samba_op);
    trace_.emplace_back("smb");
  }
  if (HasOlfs()) {
    auto data = co_await olfs_->Read(path, 0, size);
    if (!data.ok()) {
      co_return data.status();
    }
    for (const std::string& op : olfs_->last_op_trace()) {
      trace_.push_back(op);
    }
  } else {
    ROS_CHECK(volume_ != nullptr);
    co_await sim_.Delay(FuseRequestCost(size));
    auto data = co_await volume_->Read(path, 0, size);
    if (!data.ok()) {
      co_return data.status();
    }
    trace_.emplace_back("read");
  }
  co_return sim_.now() - start;
}

}  // namespace ros::frontend
