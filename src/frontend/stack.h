// The NAS software stack model (§5.3, Figures 6 and 7).
//
// ROS serves clients over Samba (CIFS) on top of FUSE on top of OLFS on
// top of ext4. The paper evaluates five stackings against raw ext4 on one
// RAID-5 volume (1.2 GB/s read / 1.0 GB/s write):
//
//   configuration | normalized read | normalized write
//   --------------+-----------------+-----------------
//   ext4          | 1.000           | 1.000
//   ext4+FUSE     | 0.759           | 0.482
//   ext4+OLFS     | 0.540 (= .759 x .711) | 0.433 (= .482 x .899)
//   samba         | 0.311           | 0.320
//   samba+FUSE    | composed        | composed
//   samba+OLFS    | ~0.27 R / ~0.24 W (paper: 323.6 / 236.1 MB/s swapped
//                   in §5.3's text; the abstract's R 323 / W 236 is the
//                   consistent reading)
//
// Layer costs compose additively per byte (each layer's copies and
// protocol work serialize on the single client stream), which reproduces
// the measured stack within ~10%. Per-operation latency follows Fig 7's
// internal-op model, with Samba adding 7 extra stat round-trips on writes.
#ifndef ROS_SRC_FRONTEND_STACK_H_
#define ROS_SRC_FRONTEND_STACK_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/disk/volume.h"
#include "src/olfs/olfs.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace ros::frontend {

enum class StackConfig {
  kExt4,       // baseline: the RAID-5 volume through ext4
  kExt4Fuse,   // an empty FUSE pass-through on ext4
  kExt4Olfs,   // OLFS (FUSE-based) on ext4
  kSamba,      // Samba exporting ext4
  kSambaFuse,  // Samba exporting the FUSE pass-through
  kSambaOlfs,  // the deployed configuration: Samba exporting OLFS
};

std::string_view StackConfigName(StackConfig config);

// Per-layer marginal costs, calibrated from Fig 6 (see header table).
struct LayerCosts {
  // Marginal seconds per byte, derived from the paper's measured
  // throughput of each incremental configuration.
  double ext4_read = 1.0 / 1.2e9;
  double ext4_write = 1.0 / 1.0e9;
  double fuse_read = 1.0 / (0.759 * 1.2e9) - 1.0 / 1.2e9;
  double fuse_write = 1.0 / (0.482 * 1.0e9) - 1.0 / 1.0e9;
  double olfs_read = 1.0 / (0.540 * 1.2e9) - 1.0 / (0.759 * 1.2e9);
  double olfs_write = 1.0 / (0.433 * 1.0e9) - 1.0 / (0.482 * 1.0e9);
  double samba_read = 1.0 / (0.311 * 1.2e9) - 1.0 / 1.2e9;
  double samba_write = 1.0 / (0.320 * 1.0e9) - 1.0 / 1.0e9;

  // FUSE per-request overhead: one kernel round trip per flushed chunk.
  // With big_writes FUSE flushes 128 KiB at a time; without it, 4 KiB
  // (§4.8's ablation).
  sim::Duration fuse_request = sim::Micros(30);
  std::uint64_t fuse_chunk_big_writes = 128 * kKiB;
  std::uint64_t fuse_chunk_plain = 4 * kKiB;

  // Samba per-round-trip protocol cost (request parsing, SMB signing,
  // 10 GbE round trip); each extra stat it issues pays this on top of the
  // OLFS stat itself.
  sim::Duration samba_op = sim::Millis(3.0);
  // Extra stat operations Samba issues when creating a file (Fig 7).
  int samba_write_extra_stats = 7;
};

// Drives I/O through a configured stack. The underlying storage is real
// (an ext4-style Volume or the full OLFS); the FUSE/Samba layers charge
// their modeled marginal costs on top.
class FrontendStack {
 public:
  // `volume` backs the ext4/samba paths; `olfs` backs the OLFS paths
  // (only the one matching `config` needs to be non-null).
  FrontendStack(sim::Simulator& sim, StackConfig config,
                disk::Volume* volume, olfs::Olfs* olfs,
                LayerCosts costs = {})
      : sim_(sim), config_(config), volume_(volume), olfs_(olfs),
        costs_(costs) {}

  StackConfig config() const { return config_; }
  bool big_writes = true;  // FUSE big_writes mount option (§4.8)

  // Streaming write of `io_size` bytes to (the end of) `path`; the file is
  // created on first use. Models filebench singlestreamwrite. A tagged
  // hint rides down to OLFS's cross-layer channel (affinity placement,
  // tray prediction); untagged calls behave exactly as before.
  sim::Task<Status> StreamWrite(std::string path,
                                std::uint64_t io_size,
                                olfs::AccessHint hint = {});

  // Streaming read of `io_size` bytes at `offset`.
  sim::Task<Status> StreamRead(std::string path, std::uint64_t offset,
                               std::uint64_t io_size,
                               olfs::AccessHint hint = {});

  // Small-file operation latency (Fig 7): creates a file of `size` bytes
  // and returns the simulated latency; ditto for reading it.
  sim::Task<StatusOr<sim::Duration>> TimedCreate(std::string path,
                                                 std::uint64_t size);
  sim::Task<StatusOr<sim::Duration>> TimedRead(std::string path,
                                               std::uint64_t size);

  // The internal-op sequence of the last operation (Fig 7's breakdown).
  const std::vector<std::string>& last_op_trace() const { return trace_; }

 private:
  bool HasFuse() const {
    return config_ == StackConfig::kExt4Fuse ||
           config_ == StackConfig::kExt4Olfs ||
           config_ == StackConfig::kSambaFuse ||
           config_ == StackConfig::kSambaOlfs;
  }
  bool HasOlfs() const {
    return config_ == StackConfig::kExt4Olfs ||
           config_ == StackConfig::kSambaOlfs;
  }
  bool HasSamba() const {
    return config_ == StackConfig::kSamba ||
           config_ == StackConfig::kSambaFuse ||
           config_ == StackConfig::kSambaOlfs;
  }

  // Marginal per-byte cost of the layers above the storage, for one
  // direction.
  double LayerCostPerByte(bool write) const;
  // FUSE request overhead for an I/O of `size` bytes.
  sim::Duration FuseRequestCost(std::uint64_t size) const;

  sim::Task<Status> BackendWrite(std::string path, std::uint64_t io_size,
                                 olfs::AccessHint hint);
  sim::Task<Status> BackendRead(std::string path, std::uint64_t offset,
                                std::uint64_t io_size,
                                olfs::AccessHint hint);

  sim::Simulator& sim_;
  StackConfig config_;
  disk::Volume* volume_;
  olfs::Olfs* olfs_;
  LayerCosts costs_;
  std::vector<std::string> trace_;
};

}  // namespace ros::frontend

#endif  // ROS_SRC_FRONTEND_STACK_H_
