// Total-cost-of-ownership model for long-term preservation (§2.1).
//
// The paper cites Gupta et al.'s analytical model for a 1 PB datacenter
// over 100 years: the optical-disc design lands at ~250 K$/PB, roughly a
// third of an HDD datacenter and half of a tape datacenter, because HDDs
// (5-year life) force repeated repurchase+migration and tapes (10-year
// life) add strict climate control and biennial rewinds.
#ifndef ROS_SRC_WORKLOAD_TCO_H_
#define ROS_SRC_WORKLOAD_TCO_H_

#include <string>
#include <vector>

namespace ros::workload {

struct MediaProfile {
  std::string name;
  double media_cost_per_pb;       // $ per PB of raw media (one purchase)
  double media_lifetime_years;    // reliable retention period
  double migration_cost_per_pb;   // $ per PB per media-generation migration
  double annual_op_cost_per_pb;   // power, climate, floor space, handling
};

// Parameter sets calibrated to §2.1's discussion.
MediaProfile OpticalProfile();
MediaProfile HddProfile();
MediaProfile TapeProfile();

struct TcoBreakdown {
  std::string name;
  double purchases = 0;          // number of full media generations bought
  double media_cost = 0;         // $
  double migration_cost = 0;     // $
  double operations_cost = 0;    // $
  double total = 0;              // $
};

// Computes the 100-year (by default) TCO of storing `petabytes` of data.
TcoBreakdown ComputeTco(const MediaProfile& profile, double petabytes = 1.0,
                        double horizon_years = 100.0);

}  // namespace ros::workload

#endif  // ROS_SRC_WORKLOAD_TCO_H_
