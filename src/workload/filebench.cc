#include "src/workload/filebench.h"

#include <cmath>

namespace ros::workload {

// ros-lint: allow(coro-ref-param): the simulator and stack are the long-
// lived bench fixtures; identity matters and both outlive the workload.
sim::Task<StatusOr<StreamResult>> SinglestreamWrite(
    sim::Simulator& sim, frontend::FrontendStack& stack,
    std::string path, std::uint64_t total_bytes,
    std::uint64_t io_size, olfs::AccessHint hint) {
  StreamResult result;
  const sim::TimePoint start = sim.now();
  for (std::uint64_t written = 0; written < total_bytes;
       written += io_size) {
    const std::uint64_t n = std::min(io_size, total_bytes - written);
    ROS_CO_RETURN_IF_ERROR(co_await stack.StreamWrite(path, n, hint));
    result.bytes += n;
  }
  result.elapsed = sim.now() - start;
  co_return result;
}

// ros-lint: allow(coro-ref-param): the simulator and stack are the long-
// lived bench fixtures; identity matters and both outlive the workload.
sim::Task<StatusOr<StreamResult>> SinglestreamRead(
    sim::Simulator& sim, frontend::FrontendStack& stack,
    std::string path, std::uint64_t total_bytes,
    std::uint64_t io_size, olfs::AccessHint hint) {
  StreamResult result;
  const sim::TimePoint start = sim.now();
  for (std::uint64_t done = 0; done < total_bytes; done += io_size) {
    const std::uint64_t n = std::min(io_size, total_bytes - done);
    ROS_CO_RETURN_IF_ERROR(co_await stack.StreamRead(path, done, n, hint));
    result.bytes += n;
  }
  result.elapsed = sim.now() - start;
  co_return result;
}

// ros-lint: allow(coro-ref-param): same long-lived bench fixtures as the
// singlestream personalities; `files` is owned by the calling bench.
sim::Task<StatusOr<StreamResult>> ScanRead(
    sim::Simulator& sim, frontend::FrontendStack& stack,
    const std::vector<ArchivalFile>& files, std::uint64_t stream,
    std::uint64_t io_size) {
  const olfs::AccessHint hint{stream, /*scan=*/true};
  StreamResult result;
  const sim::TimePoint start = sim.now();
  for (const ArchivalFile& file : files) {
    ROS_CO_ASSIGN_OR_RETURN(
        StreamResult one,
        co_await SinglestreamRead(sim, stack, file.path, file.size, io_size,
                                  hint));
    result.bytes += one.bytes;
  }
  result.elapsed = sim.now() - start;
  co_return result;
}

std::vector<ArchivalFile> GenerateArchivalFiles(Rng& rng, int count,
                                                const std::string& root,
                                                std::uint64_t min_size,
                                                std::uint64_t max_size) {
  std::vector<ArchivalFile> files;
  files.reserve(static_cast<std::size_t>(count));
  const char* kCategories[] = {"records", "sensors", "media", "logs",
                               "science"};
  for (int i = 0; i < count; ++i) {
    ArchivalFile file;
    file.path = root + "/" + kCategories[rng.Below(5)] + "/batch" +
                std::to_string(i / 50) + "/item" + std::to_string(i);
    // Log-uniform sizes: many small records, few huge payloads.
    const double t = rng.NextDouble();
    const double lo = static_cast<double>(min_size);
    const double hi = static_cast<double>(max_size);
    file.size = static_cast<std::uint64_t>(lo *
                                           std::pow(hi / lo, t));
    files.push_back(std::move(file));
  }
  return files;
}

}  // namespace ros::workload
