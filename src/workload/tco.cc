#include "src/workload/tco.h"

#include <cmath>

namespace ros::workload {

MediaProfile OpticalProfile() {
  // ~40,000 25 GB archival discs per PB at ~$1 each; >50-year life means a
  // single mid-horizon migration; no climate control (§2.1).
  return {.name = "optical",
          .media_cost_per_pb = 40'000,
          .media_lifetime_years = 50,
          .migration_cost_per_pb = 20'000,
          .annual_op_cost_per_pb = 1'500};
}

MediaProfile HddProfile() {
  // Commodity nearline drives: cheap per purchase but a 5-year life means
  // 20 generations, each with a full-fleet migration, plus spinning power.
  return {.name = "hdd",
          .media_cost_per_pb = 25'000,
          .media_lifetime_years = 5,
          .migration_cost_per_pb = 5'000,
          .annual_op_cost_per_pb = 1'600};
}

MediaProfile TapeProfile() {
  // Tape media is cheap, but §2.1: constant temperature, strict humidity
  // and biennial rewinds dominate the operational budget.
  return {.name = "tape",
          .media_cost_per_pb = 10'000,
          .media_lifetime_years = 10,
          .migration_cost_per_pb = 5'000,
          .annual_op_cost_per_pb = 3'500};
}

TcoBreakdown ComputeTco(const MediaProfile& profile, double petabytes,
                        double horizon_years) {
  TcoBreakdown out;
  out.name = profile.name;
  out.purchases = std::ceil(horizon_years / profile.media_lifetime_years);
  out.media_cost = out.purchases * profile.media_cost_per_pb * petabytes;
  // A migration accompanies every media replacement (all but the first
  // purchase).
  out.migration_cost =
      (out.purchases - 1) * profile.migration_cost_per_pb * petabytes;
  out.operations_cost =
      horizon_years * profile.annual_op_cost_per_pb * petabytes;
  out.total = out.media_cost + out.migration_cost + out.operations_cost;
  return out;
}

}  // namespace ros::workload
