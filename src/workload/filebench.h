// filebench-style workloads (§5.2): the paper evaluates the software stack
// with filebench's singlestreamread / singlestreamwrite personalities at a
// 1 MB I/O size, plus archival ingest mixes for the examples and benches.
#ifndef ROS_SRC_WORKLOAD_FILEBENCH_H_
#define ROS_SRC_WORKLOAD_FILEBENCH_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/frontend/stack.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ros::workload {

struct StreamResult {
  std::uint64_t bytes = 0;
  sim::Duration elapsed = 0;

  double bytes_per_sec() const {
    return elapsed > 0
               ? static_cast<double>(bytes) / sim::ToSeconds(elapsed)
               : 0.0;
  }
};

// Sequentially writes `total_bytes` in `io_size` chunks to one file
// through the given stack (filebench singlestreamwrite, default 1 MB I/O).
sim::Task<StatusOr<StreamResult>> SinglestreamWrite(
    sim::Simulator& sim, frontend::FrontendStack& stack,
    std::string path, std::uint64_t total_bytes,
    std::uint64_t io_size = 1 * kMB);

// Sequentially reads `total_bytes` in `io_size` chunks (the file must
// exist; filebench singlestreamread).
sim::Task<StatusOr<StreamResult>> SinglestreamRead(
    sim::Simulator& sim, frontend::FrontendStack& stack,
    std::string path, std::uint64_t total_bytes,
    std::uint64_t io_size = 1 * kMB);

// A synthetic archival ingest description: file sizes follow a mixed
// small/large distribution typical of archives (metadata-heavy records
// plus bulky payloads).
struct ArchivalFile {
  std::string path;
  std::uint64_t size;
};

std::vector<ArchivalFile> GenerateArchivalFiles(Rng& rng, int count,
                                                const std::string& root,
                                                std::uint64_t min_size,
                                                std::uint64_t max_size);

}  // namespace ros::workload

#endif  // ROS_SRC_WORKLOAD_FILEBENCH_H_
