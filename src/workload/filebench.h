// filebench-style workloads (§5.2): the paper evaluates the software stack
// with filebench's singlestreamread / singlestreamwrite personalities at a
// 1 MB I/O size, plus archival ingest mixes for the examples and benches.
#ifndef ROS_SRC_WORKLOAD_FILEBENCH_H_
#define ROS_SRC_WORKLOAD_FILEBENCH_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/frontend/stack.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ros::workload {

struct StreamResult {
  std::uint64_t bytes = 0;
  sim::Duration elapsed = 0;

  double bytes_per_sec() const {
    return elapsed > 0
               ? static_cast<double>(bytes) / sim::ToSeconds(elapsed)
               : 0.0;
  }
};

// Sequentially writes `total_bytes` in `io_size` chunks to one file
// through the given stack (filebench singlestreamwrite, default 1 MB I/O).
// A tagged hint (stream != 0) marks the writes as one job's output so
// OLFS co-locates the job's files at burn-plan time.
sim::Task<StatusOr<StreamResult>> SinglestreamWrite(
    sim::Simulator& sim, frontend::FrontendStack& stack,
    std::string path, std::uint64_t total_bytes,
    std::uint64_t io_size = 1 * kMB, olfs::AccessHint hint = {});

// Sequentially reads `total_bytes` in `io_size` chunks (the file must
// exist; filebench singlestreamread).
sim::Task<StatusOr<StreamResult>> SinglestreamRead(
    sim::Simulator& sim, frontend::FrontendStack& stack,
    std::string path, std::uint64_t total_bytes,
    std::uint64_t io_size = 1 * kMB, olfs::AccessHint hint = {});

// A synthetic archival ingest description: file sizes follow a mixed
// small/large distribution typical of archives (metadata-heavy records
// plus bulky payloads).
struct ArchivalFile {
  std::string path;
  std::uint64_t size;
};

std::vector<ArchivalFile> GenerateArchivalFiles(Rng& rng, int count,
                                                const std::string& root,
                                                std::uint64_t min_size,
                                                std::uint64_t max_size);

// Batch-scan helper: reads a job's files sequentially with a scan-tagged
// hint, announcing the sweep to OLFS so each fetched tray is read ahead
// wholesale. `stream` must be non-zero to have any effect.
sim::Task<StatusOr<StreamResult>> ScanRead(
    sim::Simulator& sim, frontend::FrontendStack& stack,
    const std::vector<ArchivalFile>& files, std::uint64_t stream,
    std::uint64_t io_size = 1 * kMB);

}  // namespace ros::workload

#endif  // ROS_SRC_WORKLOAD_FILEBENCH_H_
