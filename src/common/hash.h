// CRC32 checksums used by the UDF serializer and disc scrubbing.
#ifndef ROS_SRC_COMMON_HASH_H_
#define ROS_SRC_COMMON_HASH_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>

namespace ros {

namespace internal {
constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace internal

// Standard CRC-32 (IEEE 802.3). Suitable for detecting media bit-rot in the
// simulated disc scrubber; not a cryptographic hash.
inline std::uint32_t Crc32(std::span<const std::uint8_t> data,
                           std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = internal::kCrc32Table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// 64-bit FNV-1a, used for content fingerprints in tests.
inline std::uint64_t Fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace ros

#endif  // ROS_SRC_COMMON_HASH_H_
