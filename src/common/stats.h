// Shared summary statistics for benches and harnesses.
//
// bench/fetch_sched and bench/chaos_harness need deterministic latency
// summaries; keeping one percentile definition here ensures committed
// bench JSON stays comparable across tools. Percentile uses the
// nearest-rank method (ceil(p * n)), matching the original fetch_sched
// definition so regenerated numbers line up with earlier baselines.
#ifndef ROS_SRC_COMMON_STATS_H_
#define ROS_SRC_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ros {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

// Nearest-rank percentile over an ascending-sorted vector; p in (0, 1].
inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  rank = std::max<std::size_t>(1, std::min(rank, sorted.size()));
  return sorted[rank - 1];
}

inline SummaryStats Summarize(std::vector<double> values) {
  SummaryStats out;
  out.count = values.size();
  if (values.empty()) {
    return out;
  }
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  out.mean = sum / static_cast<double>(values.size());
  out.p50 = PercentileSorted(values, 0.50);
  out.p99 = PercentileSorted(values, 0.99);
  out.min = values.front();
  out.max = values.back();
  return out;
}

}  // namespace ros

#endif  // ROS_SRC_COMMON_STATS_H_
