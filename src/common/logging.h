// Leveled logging for the ROS library. Log lines carry the simulated time
// when a simulator is attached, which makes event traces readable.
#ifndef ROS_SRC_COMMON_LOGGING_H_
#define ROS_SRC_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace ros {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

// Global log configuration. Not thread-safe by design: the DES engine is
// single-threaded and tests set this up before running.
class LogConfig {
 public:
  static LogConfig& Get();

  LogLevel min_level = LogLevel::kWarning;
  // When set, returns a prefix (e.g. the simulated timestamp).
  std::function<std::string()> prefix_provider;
  // When set, receives formatted lines instead of stderr (used in tests).
  std::function<void(LogLevel, const std::string&)> sink;
};

namespace internal {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define ROS_LOG(level)                                                       \
  if (static_cast<int>(::ros::LogLevel::level) <                             \
      static_cast<int>(::ros::LogConfig::Get().min_level)) {                 \
  } else                                                                     \
    ::ros::internal::LogMessage(::ros::LogLevel::level, __FILE__, __LINE__)  \
        .stream()

}  // namespace ros

#endif  // ROS_SRC_COMMON_LOGGING_H_
