// Lightweight status / status-or error handling for the ROS library.
//
// The library does not use exceptions on hot paths: operations that can fail
// return a Status or a StatusOr<T>, in the spirit of absl::Status. Fatal
// programming errors (precondition violations) abort via ROS_CHECK.
#ifndef ROS_SRC_COMMON_STATUS_H_
#define ROS_SRC_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ros {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // entity (file, disc, image) does not exist
  kAlreadyExists,   // create of an existing entity
  kInvalidArgument, // malformed request
  kOutOfRange,      // offset/length beyond entity size
  kResourceExhausted, // no free buckets/drives/slots/capacity
  kFailedPrecondition, // operation illegal in current state (e.g. WORM rewrite)
  kUnavailable,     // transient: resource busy, retry later
  kDataLoss,        // unrecoverable media corruption
  kInternal,        // invariant broken inside the library
};

// Returns a stable human-readable name for a status code.
constexpr std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

// A success-or-error value with an optional message.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  // Full equality: two statuses are equal when both the code and the
  // message match. Callers that only care about the error class should
  // compare `code()` directly.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DataLossError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// A value of type T or a non-OK Status, similar to absl::StatusOr.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status(StatusCode::kInternal, "OK status used to build StatusOr");
    }
  }
  StatusOr(T value) : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(rep_));
  }

  // Returns the contained value, or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }
  T value_or(T fallback) && {
    return ok() ? std::get<T>(std::move(rep_)) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   std::get<Status>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<Status, T> rep_;
};

// Aborts with a message when a runtime invariant fails.
#define ROS_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ROS_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Propagates a non-OK Status from the current function.
#define ROS_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::ros::Status ros_status__ = (expr);     \
    if (!ros_status__.ok()) {                \
      return ros_status__;                   \
    }                                        \
  } while (0)

// Evaluates a StatusOr expression, propagating errors and otherwise
// assigning the contained value to `lhs`.
#define ROS_ASSIGN_OR_RETURN(lhs, expr)      \
  ROS_ASSIGN_OR_RETURN_IMPL_(                \
      ROS_STATUS_CONCAT_(sor__, __LINE__), lhs, expr)

#define ROS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define ROS_STATUS_CONCAT_INNER_(a, b) a##b
#define ROS_STATUS_CONCAT_(a, b) ROS_STATUS_CONCAT_INNER_(a, b)

// Coroutine variants: identical semantics but exit with co_return, for use
// inside sim::Task<Status> / sim::Task<StatusOr<T>> coroutines.
#define ROS_CO_RETURN_IF_ERROR(expr)         \
  do {                                       \
    ::ros::Status ros_status__ = (expr);     \
    if (!ros_status__.ok()) {                \
      co_return ros_status__;                \
    }                                        \
  } while (0)

#define ROS_CO_ASSIGN_OR_RETURN(lhs, expr)   \
  ROS_CO_ASSIGN_OR_RETURN_IMPL_(             \
      ROS_STATUS_CONCAT_(sor__, __LINE__), lhs, expr)

#define ROS_CO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    co_return tmp.status();                           \
  }                                                   \
  lhs = std::move(tmp).value()

}  // namespace ros

#endif  // ROS_SRC_COMMON_STATUS_H_
