#include "src/common/logging.h"

#include <cstdio>

namespace ros {

LogConfig& LogConfig::Get() {
  static LogConfig config;
  return config;
}

namespace internal {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << LevelName(level) << " ";
  auto& config = LogConfig::Get();
  if (config.prefix_provider) {
    stream_ << "[" << config.prefix_provider() << "] ";
  }
  stream_ << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  auto& config = LogConfig::Get();
  std::string line = stream_.str();
  if (config.sink) {
    config.sink(level_, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace internal
}  // namespace ros
