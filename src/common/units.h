// Byte-size and rate units used throughout the ROS library.
#ifndef ROS_SRC_COMMON_UNITS_H_
#define ROS_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace ros {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kTiB = 1024ull * kGiB;

// Decimal units: optical media capacities are quoted in decimal GB
// (a "25 GB" BD-R holds 25 * 10^9 bytes).
inline constexpr std::uint64_t kKB = 1000ull;
inline constexpr std::uint64_t kMB = 1000ull * kKB;
inline constexpr std::uint64_t kGB = 1000ull * kMB;
inline constexpr std::uint64_t kTB = 1000ull * kGB;
inline constexpr std::uint64_t kPB = 1000ull * kTB;

// Converts a byte count to decimal megabytes as a double (for reporting).
constexpr double BytesToMB(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMB);
}

constexpr double BytesToGB(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGB);
}

}  // namespace ros

#endif  // ROS_SRC_COMMON_UNITS_H_
