#include "src/common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace ros::json {

namespace {
const Value kNullValue{};
}  // namespace

void AppendQuoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendInt(std::string& out, std::int64_t v) {
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 24 bytes always fit an int64
  out.append(buf, p);
}

namespace {
void AppendIndent(std::string& out, int indent, int depth) {
  if (indent > 0) {
    out.push_back('\n');
    out.append(static_cast<size_t>(indent) * depth, ' ');
  }
}
}  // namespace

const Value& Value::operator[](std::string_view key) const {
  if (is_object()) {
    const auto& obj = as_object();
    auto it = obj.find(std::string(key));
    if (it != obj.end()) {
      return it->second;
    }
  }
  return kNullValue;
}

bool Value::contains(std::string_view key) const {
  return is_object() && as_object().count(std::string(key)) > 0;
}

void Value::DumpTo(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    AppendInt(out, as_int());
  } else if (is_double()) {
    double d = as_double();
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
      // Keep the value a double on reparse: integral renderings like
      // "-0" would otherwise come back as int (and "-0" as int 0, which
      // breaks Dump/Parse idempotence).
      if (std::strcspn(buf, ".eE") == std::strlen(buf)) {
        out += ".0";
      }
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else if (is_string()) {
    AppendQuoted(out, as_string());
  } else if (is_array()) {
    const Array& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const Value& v : arr) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      AppendIndent(out, indent, depth + 1);
      v.DumpTo(out, indent, depth + 1);
    }
    AppendIndent(out, indent, depth);
    out.push_back(']');
  } else {
    const Object& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, v] : obj) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      AppendIndent(out, indent, depth + 1);
      AppendQuoted(out, key);
      out.push_back(':');
      if (indent > 0) {
        out.push_back(' ');
      }
      v.DumpTo(out, indent, depth + 1);
    }
    AppendIndent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Value::DumpPretty() const {
  std::string out;
  DumpTo(out, /*indent=*/2, /*depth=*/0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Value> ParseDocument() {
    SkipSpace();
    ROS_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Fail(std::string msg) {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + std::move(msg));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<Value> ParseValue() {
    if (depth_ > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
        return ParseLiteral("true", Value(true));
      case 'f':
        return ParseLiteral("false", Value(false));
      case 'n':
        return ParseLiteral("null", Value(nullptr));
      default:
        return ParseNumber();
    }
  }

  StatusOr<Value> ParseLiteral(std::string_view lit, Value v) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Fail("invalid literal");
    }
    pos_ += lit.size();
    return v;
  }

  // Enforces the JSON number grammar `-?(0|[1-9][0-9]*)(.[0-9]+)?
  // ([eE][+-]?[0-9]+)?` up front: from_chars would also accept C-style
  // spellings like `-.5`, `1.` or leading zeros, and some of those break
  // the Dump/Parse fixed point the fuzz harness checks (e.g. `-.0`).
  StatusOr<Value> ParseNumber() {
    size_t start = pos_;
    Consume('-');
    auto digits = [this]() -> size_t {
      size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;  // a leading 0 must stand alone
    } else if (digits() == 0) {
      return Fail("expected a number");
    }
    if (Consume('.') && digits() == 0) {
      return Fail("malformed number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) {
        return Fail("malformed number");
      }
    }
    std::string_view tok = text_.substr(start, pos_ - start);
    bool is_float = tok.find_first_of(".eE") != std::string_view::npos;
    if (!is_float) {
      std::int64_t i = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        return Value(i);
      }
    }
    double d = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      return Fail("malformed number");
    }
    return Value(d);
  }

  StatusOr<Value> ParseString() {
    ROS_ASSIGN_OR_RETURN(std::string s, ParseRawString());
    return Value(std::move(s));
  }

  StatusOr<std::string> ParseRawString() {
    if (!Consume('"')) {
      return Fail("expected '\"'");
    }
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return Fail("unterminated escape");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Encode as UTF-8 (basic multilingual plane only; surrogate pairs
          // are not needed by OLFS index files).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  StatusOr<Value> ParseArray() {
    ++depth_;
    ROS_CHECK(Consume('['));
    Array arr;
    SkipSpace();
    if (Consume(']')) {
      --depth_;
      return Value(std::move(arr));
    }
    while (true) {
      SkipSpace();
      ROS_ASSIGN_OR_RETURN(Value v, ParseValue());
      arr.push_back(std::move(v));
      SkipSpace();
      if (Consume(']')) {
        --depth_;
        return Value(std::move(arr));
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']' in array");
      }
    }
  }

  StatusOr<Value> ParseObject() {
    ++depth_;
    ROS_CHECK(Consume('{'));
    Object obj;
    SkipSpace();
    if (Consume('}')) {
      --depth_;
      return Value(std::move(obj));
    }
    while (true) {
      SkipSpace();
      ROS_ASSIGN_OR_RETURN(std::string key, ParseRawString());
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':' in object");
      }
      SkipSpace();
      ROS_ASSIGN_OR_RETURN(Value v, ParseValue());
      obj[std::move(key)] = std::move(v);
      SkipSpace();
      if (Consume('}')) {
        --depth_;
        return Value(std::move(obj));
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}' in object");
      }
    }
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

// --- Scanner ---------------------------------------------------------------

void Scanner::SkipSpace() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

bool Scanner::Consume(char c) {
  SkipSpace();
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool Scanner::Peek(char c) {
  SkipSpace();
  return pos_ < text_.size() && text_[pos_] == c;
}

bool Scanner::ConsumeKey(std::string_view key) {
  const std::size_t saved = pos_;
  SkipSpace();
  if (pos_ + key.size() + 2 > text_.size() || text_[pos_] != '"' ||
      text_.substr(pos_ + 1, key.size()) != key ||
      text_[pos_ + 1 + key.size()] != '"') {
    pos_ = saved;
    return false;
  }
  pos_ += key.size() + 2;
  if (!Consume(':')) {
    pos_ = saved;
    return false;
  }
  return true;
}

bool Scanner::ReadString(std::string* out) {
  if (!Consume('"')) {
    return false;
  }
  const std::size_t start = pos_;
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '"') {
      out->assign(text_.data() + start, pos_ - start);
      ++pos_;
      return true;
    }
    if (c == '\\') {
      return false;  // escapes are the tree parser's job
    }
    ++pos_;
  }
  return false;  // unterminated
}

bool Scanner::ReadInt(std::int64_t* out) {
  SkipSpace();
  const std::size_t start = pos_;
  if (pos_ < text_.size() && text_[pos_] == '-') {
    ++pos_;
  }
  const std::size_t digits_start = pos_;
  while (pos_ < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
  const std::size_t ndigits = pos_ - digits_start;
  // Mirror the strict grammar: no empty/leading-zero forms, and anything
  // continuing into a fraction or exponent is a double, not an int.
  if (ndigits == 0 ||
      (ndigits > 1 && text_[digits_start] == '0') ||
      (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' ||
                               text_[pos_] == 'E'))) {
    pos_ = start;
    return false;
  }
  auto [p, ec] = std::from_chars(text_.data() + start, text_.data() + pos_,
                                 *out);
  if (ec != std::errc() || p != text_.data() + pos_) {
    pos_ = start;
    return false;  // overflow: the tree parser turns this into a double
  }
  return true;
}

bool Scanner::ReadBool(bool* out) {
  SkipSpace();
  if (text_.substr(pos_, 4) == "true") {
    pos_ += 4;
    *out = true;
    return true;
  }
  if (text_.substr(pos_, 5) == "false") {
    pos_ += 5;
    *out = false;
    return true;
  }
  return false;
}

bool Scanner::AtEnd() {
  SkipSpace();
  return pos_ == text_.size();
}

}  // namespace ros::json
