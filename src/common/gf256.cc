// Word-sliced GF(2^8) parity kernels.
//
// All multi-byte loads/stores go through std::memcpy, which compiles to a
// single (possibly unaligned) 64-bit access on every target we care about
// while staying free of strict-aliasing and alignment UB — the kernels are
// run under -fsanitize=undefined in CI (see ROS_SANITIZE).
#include "src/common/gf256.h"

#include <algorithm>
#include <cstring>

namespace ros::gf256 {

namespace {

using internal::kNibbleTables;
using internal::NibbleTables;

inline std::uint64_t LoadWord(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

inline void StoreWord(std::uint8_t* p, std::uint64_t w) {
  std::memcpy(p, &w, sizeof(w));
}

// Bytewise x2 in GF(2^8) on eight packed lanes: shift each byte's low seven
// bits left, then XOR 0x1D into every lane whose top bit was set. The
// (mask >> 7) * 0x1D trick spreads 0x1D into exactly those lanes without
// cross-lane carries (each product term stays below 256).
constexpr std::uint64_t kLowSeven = 0x7F7F7F7F7F7F7F7Full;
constexpr std::uint64_t kTopBits = 0x8080808080808080ull;

inline std::uint64_t Mul2Word(std::uint64_t w) {
  return ((w & kLowSeven) << 1) ^ (((w & kTopBits) >> 7) * 0x1D);
}

// P/Q updates stay blocked so all three streams fit in L1/L2 per block even
// for multi-MiB disc-image sweeps.
constexpr std::size_t kBlockBytes = 64 * 1024;

inline std::uint8_t NibbleMul(const NibbleTables& t, std::uint8_t x) {
  return static_cast<std::uint8_t>(t.lo[x & 0xF] ^ t.hi[x >> 4]);
}

// One-time CPU probe; when the SSSE3 tier is unavailable (old CPU or the
// compiler lacked -mssse3) every kernel below takes its portable branch.
inline bool UseSimd() {
  static const bool use = internal::SimdAvailable();
  return use;
}

}  // namespace

// ---------------------------------------------------------------------------
// Word-sliced / split-nibble kernels.

void XorAcc(std::span<std::uint8_t> out, std::span<const std::uint8_t> in) {
  ROS_CHECK(out.size() >= in.size());
  std::uint8_t* o = out.data();
  const std::uint8_t* d = in.data();
  const std::size_t n = in.size();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    StoreWord(o + i, LoadWord(o + i) ^ LoadWord(d + i));
    StoreWord(o + i + 8, LoadWord(o + i + 8) ^ LoadWord(d + i + 8));
    StoreWord(o + i + 16, LoadWord(o + i + 16) ^ LoadWord(d + i + 16));
    StoreWord(o + i + 24, LoadWord(o + i + 24) ^ LoadWord(d + i + 24));
  }
  for (; i + 8 <= n; i += 8) {
    StoreWord(o + i, LoadWord(o + i) ^ LoadWord(d + i));
  }
  for (; i < n; ++i) {
    o[i] ^= d[i];
  }
}

void MulAcc(std::span<std::uint8_t> out, std::uint8_t coeff,
            std::span<const std::uint8_t> in) {
  ROS_CHECK(out.size() >= in.size());
  if (coeff == 0) {
    return;
  }
  if (coeff == 1) {
    XorAcc(out, in);
    return;
  }
  const NibbleTables& t = kNibbleTables[coeff];
  std::uint8_t* o = out.data();
  const std::uint8_t* d = in.data();
  const std::size_t n = in.size();
  if (UseSimd()) {
    internal::MulAccSimd(o, d, n, t);
    return;
  }
  std::size_t i = 0;
  // Gather eight products into one word so `out` is touched once per eight
  // bytes; the nibble tables are 32 bytes per coefficient and stay in L1.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t r = 0;
    for (int j = 7; j >= 0; --j) {
      r = (r << 8) | NibbleMul(t, d[i + static_cast<std::size_t>(j)]);
    }
    StoreWord(o + i, LoadWord(o + i) ^ r);
  }
  for (; i < n; ++i) {
    o[i] ^= NibbleMul(t, d[i]);
  }
}

void Scale(std::span<std::uint8_t> buf, std::uint8_t coeff) {
  if (coeff == 1) {
    return;
  }
  if (coeff == 0) {
    std::memset(buf.data(), 0, buf.size());
    return;
  }
  const NibbleTables& t = kNibbleTables[coeff];
  if (UseSimd()) {
    internal::ScaleSimd(buf.data(), buf.size(), t);
    return;
  }
  for (auto& b : buf) {
    b = NibbleMul(t, b);
  }
}

void PQAcc(std::span<std::uint8_t> p, std::span<std::uint8_t> q,
           std::span<const std::uint8_t> in) {
  ROS_CHECK(p.size() == q.size());
  ROS_CHECK(p.size() >= in.size());
  std::uint8_t* pp = p.data();
  std::uint8_t* qq = q.data();
  const std::uint8_t* d = in.data();
  const std::size_t n = in.size();
  if (UseSimd()) {
    internal::PQAccSimd(pp, qq, d, n);
    internal::QDoubleSimd(qq + n, q.size() - n);
    return;
  }
  for (std::size_t base = 0; base < n; base += kBlockBytes) {
    const std::size_t end = std::min(n, base + kBlockBytes);
    std::size_t i = base;
    for (; i + 8 <= end; i += 8) {
      const std::uint64_t w = LoadWord(d + i);
      StoreWord(pp + i, LoadWord(pp + i) ^ w);
      StoreWord(qq + i, Mul2Word(LoadWord(qq + i)) ^ w);
    }
    for (; i < end; ++i) {
      pp[i] ^= d[i];
      qq[i] = static_cast<std::uint8_t>(Mul2(qq[i]) ^ d[i]);
    }
  }
  // Horner tail: past this member's end its contribution is zero, but the
  // previously accumulated members still pick up their factor of two.
  std::size_t i = n;
  for (; i + 8 <= q.size(); i += 8) {
    StoreWord(qq + i, Mul2Word(LoadWord(qq + i)));
  }
  for (; i < q.size(); ++i) {
    qq[i] = Mul2(qq[i]);
  }
}

void SolveTwo(std::span<std::uint8_t> da, std::span<std::uint8_t> db,
              std::span<const std::uint8_t> pp,
              std::span<const std::uint8_t> qp, std::uint8_t g_a,
              std::uint8_t g_b) {
  ROS_CHECK(g_a != g_b);
  ROS_CHECK(da.size() == db.size());
  ROS_CHECK(pp.size() == da.size() && qp.size() == da.size());
  const NibbleTables& tb = kNibbleTables[g_b];
  const NibbleTables& ti =
      kNibbleTables[Inv(static_cast<std::uint8_t>(g_a ^ g_b))];
  if (UseSimd()) {
    internal::SolveTwoSimd(da.data(), db.data(), pp.data(), qp.data(),
                           da.size(), tb, ti);
    return;
  }
  for (std::size_t i = 0; i < da.size(); ++i) {
    const std::uint8_t v = NibbleMul(
        ti, static_cast<std::uint8_t>(qp[i] ^ NibbleMul(tb, pp[i])));
    da[i] = v;
    db[i] = static_cast<std::uint8_t>(pp[i] ^ v);
  }
}

// ---------------------------------------------------------------------------
// Scalar reference kernels.

void XorAccScalar(std::span<std::uint8_t> out,
                  std::span<const std::uint8_t> in) {
  ROS_CHECK(out.size() >= in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] ^= in[i];
  }
}

void MulAccScalar(std::span<std::uint8_t> out, std::uint8_t coeff,
                  std::span<const std::uint8_t> in) {
  ROS_CHECK(out.size() >= in.size());
  if (coeff == 0) {
    return;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] ^= Mul(coeff, in[i]);
  }
}

void ScaleScalar(std::span<std::uint8_t> buf, std::uint8_t coeff) {
  for (auto& b : buf) {
    b = Mul(coeff, b);
  }
}

void PQAccScalar(std::span<std::uint8_t> p, std::span<std::uint8_t> q,
                 std::span<const std::uint8_t> in) {
  ROS_CHECK(p.size() == q.size());
  ROS_CHECK(p.size() >= in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    p[i] ^= in[i];
    q[i] = static_cast<std::uint8_t>(Mul2(q[i]) ^ in[i]);
  }
  for (std::size_t i = in.size(); i < q.size(); ++i) {
    q[i] = Mul2(q[i]);
  }
}

void SolveTwoScalar(std::span<std::uint8_t> da, std::span<std::uint8_t> db,
                    std::span<const std::uint8_t> pp,
                    std::span<const std::uint8_t> qp, std::uint8_t g_a,
                    std::uint8_t g_b) {
  ROS_CHECK(g_a != g_b);
  ROS_CHECK(da.size() == db.size());
  ROS_CHECK(pp.size() == da.size() && qp.size() == da.size());
  const std::uint8_t inv = Inv(static_cast<std::uint8_t>(g_a ^ g_b));
  for (std::size_t i = 0; i < da.size(); ++i) {
    const std::uint8_t v =
        Mul(inv, static_cast<std::uint8_t>(qp[i] ^ Mul(g_b, pp[i])));
    da[i] = v;
    db[i] = static_cast<std::uint8_t>(pp[i] ^ v);
  }
}

}  // namespace ros::gf256
