// SSSE3 tier of the GF(2^8) kernels: PSHUFB-driven split-nibble multiply
// (16 products per instruction pair) and the packed-lane RAID-6 Q doubling,
// the same construction as the Linux RAID-6 SSE kernels and ISA-L's
// erasure-code path.
//
// This translation unit is the only one compiled with -mssse3 (see
// src/common/CMakeLists.txt), so SSSE3 instructions cannot leak into code
// that runs before the runtime CPU check. On compilers/targets without the
// flag the #else branch provides stubs and SimdAvailable() reports false,
// which routes the public kernels to the portable word-sliced tier.
#include "src/common/gf256.h"

#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif

namespace ros::gf256::internal {

#if defined(__SSSE3__)

namespace {

inline __m128i LoadTable(const std::array<std::uint8_t, 16>& t) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.data()));
}

inline __m128i Load(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void Store(std::uint8_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

// c * x on 16 lanes: split each byte into nibbles and use PSHUFB as a
// 16-entry table lookup, one shuffle per nibble half.
inline __m128i MulVec(__m128i x, __m128i lo_t, __m128i hi_t,
                      __m128i low_mask) {
  const __m128i lo = _mm_and_si128(x, low_mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(x, 4), low_mask);
  return _mm_xor_si128(_mm_shuffle_epi8(lo_t, lo),
                       _mm_shuffle_epi8(hi_t, hi));
}

// x * 2 on 16 lanes: byte-wise shift via add, then fold 0x1D into every
// lane whose top bit was set (signed compare against zero finds them).
inline __m128i Mul2Vec(__m128i x, __m128i poly, __m128i zero) {
  const __m128i mask = _mm_cmpgt_epi8(zero, x);
  return _mm_xor_si128(_mm_add_epi8(x, x), _mm_and_si128(mask, poly));
}

inline std::uint8_t NibbleMul(const NibbleTables& t, std::uint8_t x) {
  return static_cast<std::uint8_t>(t.lo[x & 0xF] ^ t.hi[x >> 4]);
}

}  // namespace

bool SimdAvailable() { return __builtin_cpu_supports("ssse3"); }

void MulAccSimd(std::uint8_t* out, const std::uint8_t* in, std::size_t n,
                const NibbleTables& t) {
  const __m128i lo_t = LoadTable(t.lo);
  const __m128i hi_t = LoadTable(t.hi);
  const __m128i low_mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    Store(out + i, _mm_xor_si128(Load(out + i),
                                 MulVec(Load(in + i), lo_t, hi_t, low_mask)));
    Store(out + i + 16,
          _mm_xor_si128(Load(out + i + 16),
                        MulVec(Load(in + i + 16), lo_t, hi_t, low_mask)));
  }
  for (; i + 16 <= n; i += 16) {
    Store(out + i, _mm_xor_si128(Load(out + i),
                                 MulVec(Load(in + i), lo_t, hi_t, low_mask)));
  }
  for (; i < n; ++i) {
    out[i] ^= NibbleMul(t, in[i]);
  }
}

void ScaleSimd(std::uint8_t* buf, std::size_t n, const NibbleTables& t) {
  const __m128i lo_t = LoadTable(t.lo);
  const __m128i hi_t = LoadTable(t.hi);
  const __m128i low_mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    Store(buf + i, MulVec(Load(buf + i), lo_t, hi_t, low_mask));
  }
  for (; i < n; ++i) {
    buf[i] = NibbleMul(t, buf[i]);
  }
}

void PQAccSimd(std::uint8_t* p, std::uint8_t* q, const std::uint8_t* d,
               std::size_t n) {
  const __m128i poly = _mm_set1_epi8(0x1D);
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i dd = Load(d + i);
    Store(p + i, _mm_xor_si128(Load(p + i), dd));
    Store(q + i, _mm_xor_si128(Mul2Vec(Load(q + i), poly, zero), dd));
  }
  for (; i < n; ++i) {
    p[i] ^= d[i];
    q[i] = static_cast<std::uint8_t>(Mul2(q[i]) ^ d[i]);
  }
}

void QDoubleSimd(std::uint8_t* q, std::size_t n) {
  const __m128i poly = _mm_set1_epi8(0x1D);
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    Store(q + i, Mul2Vec(Load(q + i), poly, zero));
  }
  for (; i < n; ++i) {
    q[i] = Mul2(q[i]);
  }
}

void SolveTwoSimd(std::uint8_t* da, std::uint8_t* db, const std::uint8_t* pp,
                  const std::uint8_t* qp, std::size_t n,
                  const NibbleTables& t_gb, const NibbleTables& t_inv) {
  const __m128i gb_lo = LoadTable(t_gb.lo);
  const __m128i gb_hi = LoadTable(t_gb.hi);
  const __m128i inv_lo = LoadTable(t_inv.lo);
  const __m128i inv_hi = LoadTable(t_inv.hi);
  const __m128i low_mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i vpp = Load(pp + i);
    const __m128i t =
        _mm_xor_si128(Load(qp + i), MulVec(vpp, gb_lo, gb_hi, low_mask));
    const __m128i va = MulVec(t, inv_lo, inv_hi, low_mask);
    Store(da + i, va);
    Store(db + i, _mm_xor_si128(vpp, va));
  }
  for (; i < n; ++i) {
    const std::uint8_t v = NibbleMul(
        t_inv, static_cast<std::uint8_t>(qp[i] ^ NibbleMul(t_gb, pp[i])));
    da[i] = v;
    db[i] = static_cast<std::uint8_t>(pp[i] ^ v);
  }
}

#else  // !defined(__SSSE3__)

bool SimdAvailable() { return false; }

void MulAccSimd(std::uint8_t*, const std::uint8_t*, std::size_t,
                const NibbleTables&) {
  ROS_CHECK(false);
}
void ScaleSimd(std::uint8_t*, std::size_t, const NibbleTables&) {
  ROS_CHECK(false);
}
void PQAccSimd(std::uint8_t*, std::uint8_t*, const std::uint8_t*,
               std::size_t) {
  ROS_CHECK(false);
}
void QDoubleSimd(std::uint8_t*, std::size_t) { ROS_CHECK(false); }
void SolveTwoSimd(std::uint8_t*, std::uint8_t*, const std::uint8_t*,
                  const std::uint8_t*, std::size_t, const NibbleTables&,
                  const NibbleTables&) {
  ROS_CHECK(false);
}

#endif  // defined(__SSSE3__)

}  // namespace ros::gf256::internal
