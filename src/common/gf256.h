// GF(2^8) arithmetic and bulk parity kernels for Reed-Solomon P+Q parity
// (RAID-6).
//
// Uses the standard polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and the
// generator g = 2, the same construction as the Linux RAID-6 driver:
//   P = d_0 ^ d_1 ^ ... ^ d_{n-1}
//   Q = g^0*d_0 ^ g^1*d_1 ^ ... ^ g^{n-1}*d_{n-1}
//
// Two kernel tiers are provided:
//  - The default kernels (XorAcc, MulAcc, Scale, PQAcc, SolveTwo) are
//    word-sliced: XOR and the Q doubling recurrence run over uint64_t words
//    (8 bytes per step, memcpy loads so unaligned spans are fine), and GF
//    multiplies go through per-coefficient split-nibble tables (two
//    16-entry tables instead of a branch plus log/exp double lookup per
//    byte).
//  - The *Scalar kernels are the byte-at-a-time reference implementations.
//    They are kept for differential testing and for the kernel benchmark
//    (bench/gf256_kernels.cc); production code should never call them.
#ifndef ROS_SRC_COMMON_GF256_H_
#define ROS_SRC_COMMON_GF256_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/status.h"

namespace ros::gf256 {

namespace internal {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 511> exp{};
};

constexpr Tables MakeTables() {
  Tables t{};
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) {
      x ^= 0x11D;
    }
  }
  // Duplicate so exp[i + j] never needs a mod 255 for i, j < 255.
  for (int i = 255; i < 511; ++i) {
    t.exp[i] = t.exp[i - 255];
  }
  return t;
}

inline constexpr Tables kTables = MakeTables();

}  // namespace internal

constexpr std::uint8_t Mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return internal::kTables.exp[internal::kTables.log[a] +
                               internal::kTables.log[b]];
}

constexpr std::uint8_t Inv(std::uint8_t a) {
  ROS_CHECK(a != 0);
  return internal::kTables.exp[255 - internal::kTables.log[a]];
}

constexpr std::uint8_t Div(std::uint8_t a, std::uint8_t b) {
  return Mul(a, Inv(b));
}

// g^n for generator 2.
constexpr std::uint8_t Pow2(unsigned n) {
  return internal::kTables.exp[n % 255];
}

// x * 2 in GF(2^8): shift, then reduce by 0x11D if bit 7 was set.
constexpr std::uint8_t Mul2(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1D : 0));
}

namespace internal {

// Split-nibble multiply tables for one coefficient c:
//   c * x == lo[x & 0xF] ^ hi[x >> 4]
// because multiplication distributes over XOR and x == (x & 0xF) ^ (x & 0xF0).
struct NibbleTables {
  std::array<std::uint8_t, 16> lo{};
  std::array<std::uint8_t, 16> hi{};
};

constexpr NibbleTables MakeNibbleTables(std::uint8_t c) {
  NibbleTables t{};
  for (int x = 0; x < 16; ++x) {
    t.lo[x] = Mul(c, static_cast<std::uint8_t>(x));
    t.hi[x] = Mul(c, static_cast<std::uint8_t>(x << 4));
  }
  return t;
}

constexpr std::array<NibbleTables, 256> MakeAllNibbleTables() {
  std::array<NibbleTables, 256> all{};
  for (int c = 0; c < 256; ++c) {
    all[c] = MakeNibbleTables(static_cast<std::uint8_t>(c));
  }
  return all;
}

// 8 KiB of precomputed tables, one pair per coefficient; L1-resident and
// branch-free to index, unlike the log/exp path.
inline constexpr std::array<NibbleTables, 256> kNibbleTables =
    MakeAllNibbleTables();

// SIMD tier (gf256_simd.cc, compiled with -mssse3 where the compiler
// supports it): the same split-nibble tables drive a PSHUFB table lookup on
// 16 lanes at once. SimdAvailable() checks the CPU at runtime; when it
// returns false the public kernels fall back to the portable word-sliced
// implementations. All Simd kernels process the full [0, n) range,
// including unaligned heads/tails.
bool SimdAvailable();
void MulAccSimd(std::uint8_t* out, const std::uint8_t* in, std::size_t n,
                const NibbleTables& t);
void ScaleSimd(std::uint8_t* buf, std::size_t n, const NibbleTables& t);
void PQAccSimd(std::uint8_t* p, std::uint8_t* q, const std::uint8_t* d,
               std::size_t n);
void QDoubleSimd(std::uint8_t* q, std::size_t n);
void SolveTwoSimd(std::uint8_t* da, std::uint8_t* db, const std::uint8_t* pp,
                  const std::uint8_t* qp, std::size_t n,
                  const NibbleTables& t_gb, const NibbleTables& t_inv);

}  // namespace internal

// ---------------------------------------------------------------------------
// Bulk kernels (word-sliced / split-nibble; the default tier).

// out ^= in (plain XOR accumulate, used for P parity). out may be longer
// than in; the tail is untouched.
void XorAcc(std::span<std::uint8_t> out, std::span<const std::uint8_t> in);

// out ^= coeff * in (GF multiply-accumulate, used for Q parity).
void MulAcc(std::span<std::uint8_t> out, std::uint8_t coeff,
            std::span<const std::uint8_t> in);

// Scales a buffer in place: buf *= coeff.
void Scale(std::span<std::uint8_t> buf, std::uint8_t coeff);

// Fused single-sweep P+Q update (the RAID-6 Horner recurrence):
//   p ^= in;  q = 2*q ^ in
// over [0, in.size()), and q = 2*q alone over [in.size(), q.size()) so a
// member stream shorter than the parity still doubles the accumulated Q
// contributions of longer members. Feeding member streams LAST-to-FIRST
// yields exactly Q = sum g^k * d_k (and P = xor of members): after
// processing d_{n-1}, ..., d_0 the accumulator holds
//   q = 2^{n-1} d_{n-1} ^ ... ^ 2^0 d_0.
// p and q must be the same length, at least in.size(). Data is processed in
// 64 KiB blocks so p/q/in stay cache-resident per block.
void PQAcc(std::span<std::uint8_t> p, std::span<std::uint8_t> q,
           std::span<const std::uint8_t> in);

// RAID-6 double-erasure solve: given the partial parities
//   pp = P ^ xor(surviving data),  qp = Q ^ sum(g^i * surviving data)
// and the two missing members' coefficients g_a, g_b (g_a != g_b),
// reconstructs
//   da = (qp ^ g_b * pp) / (g_a ^ g_b),   db = pp ^ da.
// All four spans must have the same length; da/db may alias nothing.
void SolveTwo(std::span<std::uint8_t> da, std::span<std::uint8_t> db,
              std::span<const std::uint8_t> pp,
              std::span<const std::uint8_t> qp, std::uint8_t g_a,
              std::uint8_t g_b);

// ---------------------------------------------------------------------------
// Scalar reference kernels (byte-at-a-time; differential testing + bench
// baselines only).

void XorAccScalar(std::span<std::uint8_t> out,
                  std::span<const std::uint8_t> in);
void MulAccScalar(std::span<std::uint8_t> out, std::uint8_t coeff,
                  std::span<const std::uint8_t> in);
void ScaleScalar(std::span<std::uint8_t> buf, std::uint8_t coeff);
void PQAccScalar(std::span<std::uint8_t> p, std::span<std::uint8_t> q,
                 std::span<const std::uint8_t> in);
void SolveTwoScalar(std::span<std::uint8_t> da, std::span<std::uint8_t> db,
                    std::span<const std::uint8_t> pp,
                    std::span<const std::uint8_t> qp, std::uint8_t g_a,
                    std::uint8_t g_b);

}  // namespace ros::gf256

#endif  // ROS_SRC_COMMON_GF256_H_
