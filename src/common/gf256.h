// GF(2^8) arithmetic for Reed-Solomon P+Q parity (RAID-6).
//
// Uses the standard polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and the
// generator g = 2, the same construction as the Linux RAID-6 driver:
//   P = d_0 ^ d_1 ^ ... ^ d_{n-1}
//   Q = g^0*d_0 ^ g^1*d_1 ^ ... ^ g^{n-1}*d_{n-1}
#ifndef ROS_SRC_COMMON_GF256_H_
#define ROS_SRC_COMMON_GF256_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/status.h"

namespace ros::gf256 {

namespace internal {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 511> exp{};
};

constexpr Tables MakeTables() {
  Tables t{};
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) {
      x ^= 0x11D;
    }
  }
  // Duplicate so exp[i + j] never needs a mod 255 for i, j < 255.
  for (int i = 255; i < 511; ++i) {
    t.exp[i] = t.exp[i - 255];
  }
  return t;
}

inline constexpr Tables kTables = MakeTables();

}  // namespace internal

constexpr std::uint8_t Mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return internal::kTables.exp[internal::kTables.log[a] +
                               internal::kTables.log[b]];
}

constexpr std::uint8_t Inv(std::uint8_t a) {
  ROS_CHECK(a != 0);
  return internal::kTables.exp[255 - internal::kTables.log[a]];
}

constexpr std::uint8_t Div(std::uint8_t a, std::uint8_t b) {
  return Mul(a, Inv(b));
}

// g^n for generator 2.
constexpr std::uint8_t Pow2(unsigned n) {
  return internal::kTables.exp[n % 255];
}

// out ^= in (plain XOR accumulate, used for P parity).
inline void XorAcc(std::span<std::uint8_t> out,
                   std::span<const std::uint8_t> in) {
  ROS_CHECK(out.size() >= in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] ^= in[i];
  }
}

// out ^= coeff * in (GF multiply-accumulate, used for Q parity).
inline void MulAcc(std::span<std::uint8_t> out, std::uint8_t coeff,
                   std::span<const std::uint8_t> in) {
  ROS_CHECK(out.size() >= in.size());
  if (coeff == 0) {
    return;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] ^= Mul(coeff, in[i]);
  }
}

// Scales a buffer in place: buf *= coeff.
inline void Scale(std::span<std::uint8_t> buf, std::uint8_t coeff) {
  for (auto& b : buf) {
    b = Mul(coeff, b);
  }
}

}  // namespace ros::gf256

#endif  // ROS_SRC_COMMON_GF256_H_
