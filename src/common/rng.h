// Deterministic pseudo-random number generation for simulations and
// workload generators. All randomness in the library flows through Rng so
// experiments are reproducible from a seed.
#ifndef ROS_SRC_COMMON_RNG_H_
#define ROS_SRC_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace ros {

// xoshiro256** by Blackman & Vigna: fast, high-quality, and trivially
// seedable, which matters more here than cryptographic strength.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used in simulation (<< 2^64).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ros

#endif  // ROS_SRC_COMMON_RNG_H_
