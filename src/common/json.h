// Minimal JSON value model, parser and serializer.
//
// The paper stores OLFS index files, system state and maintenance records in
// JSON "for its ease of processing and translation" (§4.2). This is a small
// from-scratch implementation covering the JSON subset OLFS needs: objects,
// arrays, strings (with escapes), integers, doubles, booleans and null.
#ifndef ROS_SRC_COMMON_JSON_H_
#define ROS_SRC_COMMON_JSON_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/common/status.h"

namespace ros::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps serialized objects in deterministic key order, which makes
// index files byte-stable across runs — important for parity determinism.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : rep_(nullptr) {}
  Value(std::nullptr_t) : rep_(nullptr) {}
  Value(bool b) : rep_(b) {}
  Value(std::int64_t i) : rep_(i) {}
  Value(int i) : rep_(static_cast<std::int64_t>(i)) {}
  Value(std::uint64_t u) : rep_(static_cast<std::int64_t>(u)) {}
  Value(double d) : rep_(d) {}
  Value(const char* s) : rep_(std::string(s)) {}
  Value(std::string s) : rep_(std::move(s)) {}
  Value(Array a) : rep_(std::move(a)) {}
  Value(Object o) : rep_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_array() const { return std::holds_alternative<Array>(rep_); }
  bool is_object() const { return std::holds_alternative<Object>(rep_); }

  bool as_bool() const { return std::get<bool>(rep_); }
  std::int64_t as_int() const {
    if (is_double()) {
      // Saturating conversion: casting a double outside the int64 range is
      // UB, and corrupted index files can carry arbitrary numbers.
      const double d = std::get<double>(rep_);
      constexpr double kTwo63 = 9223372036854775808.0;  // 2^63
      if (std::isnan(d)) {
        return 0;
      }
      if (d >= kTwo63) {
        return std::numeric_limits<std::int64_t>::max();
      }
      if (d < -kTwo63) {
        return std::numeric_limits<std::int64_t>::min();
      }
      return static_cast<std::int64_t>(d);
    }
    return std::get<std::int64_t>(rep_);
  }
  double as_double() const {
    if (is_int()) {
      return static_cast<double>(std::get<std::int64_t>(rep_));
    }
    return std::get<double>(rep_);
  }
  const std::string& as_string() const { return std::get<std::string>(rep_); }
  const Array& as_array() const { return std::get<Array>(rep_); }
  Array& as_array() { return std::get<Array>(rep_); }
  const Object& as_object() const { return std::get<Object>(rep_); }
  Object& as_object() { return std::get<Object>(rep_); }

  // Object field access; returns a shared null value when absent.
  const Value& operator[](std::string_view key) const;
  bool contains(std::string_view key) const;

  // Serializes to compact JSON (no insignificant whitespace).
  std::string Dump() const;
  // Serializes with 2-space indentation.
  std::string DumpPretty() const;
  // Appends the compact serialization to `out`: one output buffer threaded
  // through the whole tree, no per-node temporaries. Hot serializers can
  // reserve + reuse the buffer across calls.
  void DumpTo(std::string& out) const { DumpTo(out, /*indent=*/0,
                                               /*depth=*/0); }

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      rep_;
};

// Parses a JSON document. Returns InvalidArgument on malformed input.
StatusOr<Value> Parse(std::string_view text);

// Building blocks for hand-rolled serializers of hot, fixed-shape
// documents (e.g. MV index files): byte-identical to what Value::Dump
// emits for the same data, without building a Value tree first.

// Appends `s` as a quoted JSON string with the same escaping as Dump.
void AppendQuoted(std::string& out, std::string_view s);
// Appends the decimal rendering of `v` (no allocation).
void AppendInt(std::string& out, std::int64_t v);

// Pull-scanner for hot decoders of documents in the canonical shape that
// Value::Dump produces (compact, known key order). Every method skips
// leading whitespace and returns false on any mismatch; decoders treat a
// false as "not the canonical shape" and fall back to the tree parser, so
// the fast path never has to produce error messages — only to agree with
// the tree parser on every input it accepts.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  // Consumes a single structural character.
  bool Consume(char c);
  // True when the next non-space character is `c` (nothing consumed).
  bool Peek(char c);
  // Consumes `"key":` where `key` contains no characters needing escapes.
  bool ConsumeKey(std::string_view key);
  // Reads a string literal. Bails (false) on any backslash escape — the
  // tree parser handles those rare documents.
  bool ReadString(std::string* out);
  // Reads an integer per the strict JSON grammar (no leading zeros, and
  // bails on fraction/exponent forms, which parse as doubles).
  bool ReadInt(std::int64_t* out);
  bool ReadBool(bool* out);
  // True when only trailing whitespace remains.
  bool AtEnd();

 private:
  void SkipSpace();

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace ros::json

#endif  // ROS_SRC_COMMON_JSON_H_
