// Synchronization primitives for coroutine tasks in simulated time.
//
// All primitives are single-threaded (the DES engine runs one event at a
// time); "blocking" means suspending the coroutine until another task or a
// scheduled callback wakes it. Wakeups go through the event queue at the
// current timestamp, preserving deterministic FIFO ordering.
#ifndef ROS_SRC_SIM_SYNC_H_
#define ROS_SRC_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>

#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace ros::sim {

// A manually-reset event. Wait() suspends until Set() is called; once set,
// waits complete immediately until Reset().
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }

  void Set() {
    set_ = true;
    WakeAll();
  }

  void Reset() { set_ = false; }

  // Wakes current waiters without latching the event (pulse semantics).
  void Pulse() { WakeAll(); }

  auto Wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const { return event->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  void WakeAll() {
    while (!waiters_.empty()) {
      sim_.ScheduleHandle(sim_.now(), waiters_.front());
      waiters_.pop_front();
    }
  }

  Simulator& sim_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Counting semaphore with FIFO fairness. Used to model pools of scarce
// hardware (optical drives, the robotic arm, RAID volume queue slots).
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t count) : sim_(sim), count_(count) {
    ROS_CHECK(count >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t available() const { return count_; }
  std::size_t waiters() const { return waiters_.size(); }

  auto Acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const {
        if (sem->count_ > 0 && sem->waiters_.empty()) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem->waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

  bool TryAcquire() {
    if (count_ > 0 && waiters_.empty()) {
      --count_;
      return true;
    }
    return false;
  }

  void Release() {
    if (!waiters_.empty()) {
      // Hand the permit directly to the oldest waiter.
      sim_.ScheduleHandle(sim_.now(), waiters_.front());
      waiters_.pop_front();
    } else {
      ++count_;
    }
  }

 private:
  Simulator& sim_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Mutual exclusion built on Semaphore, with a co_await-able scoped guard:
//
//   ScopedLock lock = co_await mutex.Lock();
class Mutex {
 public:
  explicit Mutex(Simulator& sim) : sem_(sim, 1) {}

  class ScopedLock {
   public:
    explicit ScopedLock(Semaphore* sem) : sem_(sem) {}
    ScopedLock(ScopedLock&& other) noexcept
        : sem_(std::exchange(other.sem_, nullptr)) {}
    ScopedLock& operator=(ScopedLock&& other) noexcept {
      if (this != &other) {
        Unlock();
        sem_ = std::exchange(other.sem_, nullptr);
      }
      return *this;
    }
    ScopedLock(const ScopedLock&) = delete;
    ScopedLock& operator=(const ScopedLock&) = delete;
    ~ScopedLock() { Unlock(); }

    void Unlock() {
      if (sem_ != nullptr) {
        sem_->Release();
        sem_ = nullptr;
      }
    }

   private:
    Semaphore* sem_;
  };

  Task<ScopedLock> Lock() {
    co_await sem_.Acquire();
    co_return ScopedLock(&sem_);
  }

 private:
  Semaphore sem_;
};

// Condition-variable-style wait queue: tasks Wait() until another task
// Notifies. Always re-check the guarded predicate in a loop after waking.
class ConditionVariable {
 public:
  explicit ConditionVariable(Simulator& sim) : event_(sim) {}

  auto Wait() { return event_.Wait(); }
  void NotifyAll() { event_.Pulse(); }

 private:
  Event event_;
};

}  // namespace ros::sim

#endif  // ROS_SRC_SIM_SYNC_H_
