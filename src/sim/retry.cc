#include "src/sim/retry.h"

#include <algorithm>

namespace ros::sim {

bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

Task<bool> Retrier::AwaitRetry(Status status) {
  last_error_ = status;
  if (status.ok() || !IsTransient(status.code())) {
    co_return false;
  }
  if (!started_) {
    started_ = true;
    first_failure_ = sim_.now();
  }
  if (attempts_ >= policy_.max_attempts) {
    co_return false;
  }
  Duration backoff = next_backoff_;
  if (policy_.jitter > 0) {
    const double factor =
        1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    backoff = static_cast<Duration>(static_cast<double>(backoff) * factor);
  }
  if (policy_.deadline > 0 &&
      sim_.now() - first_failure_ + backoff > policy_.deadline) {
    co_return false;
  }
  ++attempts_;
  co_await sim_.Delay(backoff);
  next_backoff_ = std::min<Duration>(
      policy_.max_backoff,
      static_cast<Duration>(static_cast<double>(next_backoff_) *
                            policy_.multiplier));
  co_return true;
}

}  // namespace ros::sim
