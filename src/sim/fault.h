// Deterministic fault injection for the simulated rack.
//
// A FaultInjector holds a seeded fault plan: scripted one-shot triggers
// ("fail the 3rd burn on drive 2") and rate-based background faults
// (latent sector errors, burn failures, mechanical pick/place faults, HDD
// death). Components expose a hook point per fault kind and consult the
// injector only when one is installed, so the default configuration is
// zero-cost and — because the plan consumes random numbers only for kinds
// with a non-zero rate — an installed-but-empty injector leaves behaviour
// and simulated timings bit-identical to no injector at all.
//
// Sites name the physical unit a hook fires on: "drive:<id>" for optical
// drives, the device name ("hdd0_1") for block devices, and the PLC opcode
// name ("GRAB_ARRAY") for mechanical instructions. A one-shot with an
// empty site matches the kind's global operation counter instead.
#ifndef ROS_SRC_SIM_FAULT_H_
#define ROS_SRC_SIM_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"

namespace ros::sim {

class EventHasher;

enum class FaultKind {
  kBurnFailure = 0,    // an optical burn aborts; the media is suspect
  kLatentSectorError,  // a sector under the read head has rotted
  kMechFault,          // a PLC actuation faults out (pick/place/rotate)
  kHddFailure,         // whole-device death; I/O fails until Replace()
  kHddReadError,       // one block-device read returns kDataLoss
};

inline constexpr int kNumFaultKinds = 5;

std::string_view FaultKindName(FaultKind kind);

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 1) : rng_(seed) {}

  // Scripts the nth (1-based) operation of `kind` to fail. With a
  // non-empty `site` the count is per-site ("fail burn #3 on drive 2");
  // empty counts every site together. Each trigger fires exactly once.
  void FailNth(FaultKind kind, std::string site, std::uint64_t nth);

  // Background fault rate: every operation of `kind` fails independently
  // with probability `rate`. A rate of 0 (the default) consumes no
  // randomness at all.
  void SetRate(FaultKind kind, double rate);
  double rate(FaultKind kind) const;

  // Hook point. Counts the operation and decides whether it should fail.
  // Scripted triggers are checked first (no RNG), then the kind's rate.
  bool ShouldInject(FaultKind kind, std::string_view site);

  // Age-scaled hook point: like ShouldInject, but the caller supplies an
  // extra per-operation failure probability derived from the component's
  // age (an old disc's elevated latent-sector-error rate). The extra rate
  // combines with the kind's flat background rate into one Bernoulli draw,
  // so `extra_rate == 0` is byte- and tick-identical to ShouldInject and
  // the unset aging model costs nothing.
  bool ShouldInjectAged(FaultKind kind, std::string_view site,
                        double extra_rate);

  // Accounts `count` faults of `kind` materialized outside the injector
  // (the media-aging accrual corrupts sectors with its own per-disc RNG).
  // Counted in the injection telemetry and folded into the event hasher so
  // replay-check runs cover the aging path; consumes no injector
  // randomness and never fires anything itself.
  void RecordExternal(FaultKind kind, std::string_view site,
                      std::uint64_t count);

  // Divergence oracle hook: when installed, every ShouldInject decision
  // (kind, site, operation count, outcome) is folded into the hasher so
  // replay-check runs catch fault-plan divergence at the injection point
  // rather than downstream. Not owned; nullptr disables folding.
  void set_event_hasher(EventHasher* hasher) { hasher_ = hasher; }

  // Telemetry for maintenance reports and chaos assertions.
  std::uint64_t ops_seen(FaultKind kind) const;
  std::uint64_t injected(FaultKind kind) const;
  std::uint64_t total_injected() const;

 private:
  struct OneShot {
    std::string site;  // empty = match the global counter
    std::uint64_t nth = 0;
    bool fired = false;
  };

  Rng rng_;
  EventHasher* hasher_ = nullptr;
  double rates_[kNumFaultKinds] = {};
  std::uint64_t seen_[kNumFaultKinds] = {};
  std::uint64_t injected_[kNumFaultKinds] = {};
  std::vector<OneShot> one_shots_[kNumFaultKinds];
  std::map<std::string, std::uint64_t, std::less<>>
      site_seen_[kNumFaultKinds];
};

}  // namespace ros::sim

#endif  // ROS_SRC_SIM_FAULT_H_
