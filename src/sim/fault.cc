#include "src/sim/fault.h"

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/sim/event_hasher.h"

namespace ros::sim {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBurnFailure: return "burn_failure";
    case FaultKind::kLatentSectorError: return "latent_sector_error";
    case FaultKind::kMechFault: return "mech_fault";
    case FaultKind::kHddFailure: return "hdd_failure";
    case FaultKind::kHddReadError: return "hdd_read_error";
  }
  return "unknown";
}

void FaultInjector::FailNth(FaultKind kind, std::string site,
                            std::uint64_t nth) {
  ROS_CHECK(nth >= 1);
  one_shots_[static_cast<int>(kind)].push_back(
      {.site = std::move(site), .nth = nth});
}

void FaultInjector::SetRate(FaultKind kind, double rate) {
  ROS_CHECK(rate >= 0.0 && rate <= 1.0);
  rates_[static_cast<int>(kind)] = rate;
}

double FaultInjector::rate(FaultKind kind) const {
  return rates_[static_cast<int>(kind)];
}

bool FaultInjector::ShouldInject(FaultKind kind, std::string_view site) {
  return ShouldInjectAged(kind, site, /*extra_rate=*/0.0);
}

bool FaultInjector::ShouldInjectAged(FaultKind kind, std::string_view site,
                                     double extra_rate) {
  const int k = static_cast<int>(kind);
  const std::uint64_t global = ++seen_[k];
  std::uint64_t site_count = 0;
  if (!one_shots_[k].empty()) {
    auto it = site_seen_[k].find(site);
    if (it == site_seen_[k].end()) {
      it = site_seen_[k].emplace(std::string(site), 0).first;
    }
    site_count = ++it->second;
  }

  bool hit = false;
  for (OneShot& shot : one_shots_[k]) {
    if (shot.fired) {
      continue;
    }
    const bool match = shot.site.empty() ? global == shot.nth
                                         : (shot.site == site &&
                                            site_count == shot.nth);
    if (match) {
      shot.fired = true;
      hit = true;
    }
  }
  // Rate check runs even after a scripted hit so the RNG stream — and
  // with it every later rate decision — is independent of the script. The
  // age-scaled extra rate folds into the same single draw: the combined
  // rate is P(flat or extra) and degenerates to the flat rate (same RNG
  // consumption, same outcomes) whenever extra_rate is zero.
  const double combined =
      rates_[k] + extra_rate * (1.0 - rates_[k]);
  if (combined > 0 && rng_.Chance(combined)) {
    hit = true;
  }
  if (hit) {
    ++injected_[k];
    ROS_LOG(kDebug) << "injected " << FaultKindName(kind) << " at "
                    << site;
  }
  if (hasher_ != nullptr) {
    hasher_->Fold("fault", site,
                  (static_cast<std::uint64_t>(k) << 1) | (hit ? 1 : 0),
                  global);
  }
  return hit;
}

void FaultInjector::RecordExternal(FaultKind kind, std::string_view site,
                                   std::uint64_t count) {
  if (count == 0) {
    return;
  }
  const int k = static_cast<int>(kind);
  injected_[k] += count;
  ROS_LOG(kDebug) << "recorded " << count << " external "
                  << FaultKindName(kind) << " at " << site;
  if (hasher_ != nullptr) {
    hasher_->Fold("fault-ext", site, static_cast<std::uint64_t>(k), count);
  }
}

std::uint64_t FaultInjector::ops_seen(FaultKind kind) const {
  return seen_[static_cast<int>(kind)];
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  return injected_[static_cast<int>(kind)];
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    total += injected_[k];
  }
  return total;
}

}  // namespace ros::sim
