// Runtime divergence oracle for simulator determinism.
//
// An EventHasher folds the simulation's observable event stream — every
// scheduler dispatch, fault-injection decision and PLC actuation — into a
// running 64-bit FNV-1a digest. Two runs of the same seeded workload must
// produce the same digest; any divergence is a determinism bug (wall-clock
// leak, unordered-container iteration, pointer-order dependence, ...).
//
// The oracle runs in one of two modes:
//
//   record  (default ctor)  Every Fold() extends the digest and appends
//                           the post-fold value to a trail, one entry per
//                           event. The trail is the reference for a check
//                           run.
//
//   check   (trail ctor)    Every Fold() extends the digest and compares
//                           it against the reference trail at the same
//                           index. The FIRST mismatching event is captured
//                           with a human-readable description built from
//                           the fold arguments; later folds keep hashing
//                           but record nothing more. Finish() additionally
//                           flags a check run that ended with fewer events
//                           than the reference.
//
// Hashing per event is O(length of the two strings); the description
// string is only materialized for the single divergent event, so the
// happy path allocates nothing. The static analyzer counterpart of this
// oracle is tools/ros_analyze.py — see DESIGN.md §5h for the contract.
#ifndef ROS_SRC_SIM_EVENT_HASHER_H_
#define ROS_SRC_SIM_EVENT_HASHER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ros::sim {

class EventHasher {
 public:
  // First event of the check run whose chained digest differs from the
  // reference trail (or an event past the reference's end).
  struct Divergence {
    std::uint64_t index = 0;     // 0-based event index
    std::string description;     // the check run's event at that index
  };

  // Record mode.
  EventHasher() = default;

  // Check mode, verifying against a record-mode run's trail().
  explicit EventHasher(std::vector<std::uint64_t> reference)
      : checking_(true), reference_(std::move(reference)) {}

  // Folds one event into the digest. `category` names the hook ("dispatch",
  // "fault", "plc"), `detail` the per-event payload (site, opcode, ...);
  // `a` and `b` carry numeric payload (timestamps, sequence numbers).
  void Fold(std::string_view category, std::string_view detail,
            std::uint64_t a = 0, std::uint64_t b = 0);

  // In check mode: records a divergence if the run folded fewer events
  // than the reference (a truncated run would otherwise pass). No-op in
  // record mode and on an already-diverged run.
  void Finish();

  std::uint64_t digest() const { return digest_; }
  std::uint64_t event_count() const { return count_; }
  bool checking() const { return checking_; }

  // Record mode: one chained digest per folded event.
  const std::vector<std::uint64_t>& trail() const { return trail_; }

  // Check mode: the first divergent event, if any.
  const std::optional<Divergence>& divergence() const { return divergence_; }
  bool diverged() const { return divergence_.has_value(); }

 private:
  void FoldBytes(std::string_view bytes);
  void FoldWord(std::uint64_t word);

  std::uint64_t digest_ = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  std::uint64_t count_ = 0;
  bool checking_ = false;
  std::vector<std::uint64_t> trail_;      // record mode
  std::vector<std::uint64_t> reference_;  // check mode
  std::optional<Divergence> divergence_;
};

}  // namespace ros::sim

#endif  // ROS_SRC_SIM_EVENT_HASHER_H_
