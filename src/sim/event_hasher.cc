#include "src/sim/event_hasher.h"

namespace ros::sim {

void EventHasher::FoldBytes(std::string_view bytes) {
  for (unsigned char byte : bytes) {
    digest_ ^= byte;
    digest_ *= 0x100000001B3ull;
  }
  // Length separator: "ab"+"c" must not collide with "a"+"bc".
  FoldWord(bytes.size());
}

void EventHasher::FoldWord(std::uint64_t word) {
  for (int shift = 0; shift < 64; shift += 8) {
    digest_ ^= (word >> shift) & 0xFF;
    digest_ *= 0x100000001B3ull;
  }
}

void EventHasher::Fold(std::string_view category, std::string_view detail,
                       std::uint64_t a, std::uint64_t b) {
  FoldBytes(category);
  FoldBytes(detail);
  FoldWord(a);
  FoldWord(b);
  const std::uint64_t index = count_++;
  if (!checking_) {
    trail_.push_back(digest_);
    return;
  }
  if (divergence_.has_value()) {
    return;  // only the first divergence is interesting
  }
  if (index >= reference_.size() || reference_[index] != digest_) {
    std::string desc;
    desc.reserve(category.size() + detail.size() + 48);
    desc.append(category).append("(").append(detail).append(", a=")
        .append(std::to_string(a)).append(", b=")
        .append(std::to_string(b)).append(")");
    if (index >= reference_.size()) {
      desc.append(" [past the reference run's end]");
    }
    divergence_ = Divergence{index, std::move(desc)};
  }
}

void EventHasher::Finish() {
  if (!checking_ || divergence_.has_value() || count_ >= reference_.size()) {
    return;
  }
  divergence_ = Divergence{
      count_, "run ended after " + std::to_string(count_) + " events; the "
              "reference run had " + std::to_string(reference_.size())};
}

}  // namespace ros::sim
