// Simulated time types. The DES clock counts nanoseconds from simulation
// start; all hardware latencies in the ROS model are expressed as Durations.
#ifndef ROS_SRC_SIM_TIME_H_
#define ROS_SRC_SIM_TIME_H_

#include <cstdint>

namespace ros::sim {

// Nanoseconds. A signed 64-bit count covers ~292 years of simulated time,
// comfortably beyond the 100-year TCO horizon in the paper.
using Duration = std::int64_t;
using TimePoint = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

constexpr Duration Seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}
constexpr Duration Millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
constexpr Duration Micros(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMillis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

// Duration to move `bytes` at `bytes_per_second`.
constexpr Duration TransferTime(std::uint64_t bytes, double bytes_per_second) {
  if (bytes_per_second <= 0) {
    return 0;
  }
  return static_cast<Duration>(static_cast<double>(bytes) /
                               bytes_per_second *
                               static_cast<double>(kSecond));
}

}  // namespace ros::sim

#endif  // ROS_SRC_SIM_TIME_H_
