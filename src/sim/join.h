// Fork/join helper for running Status-returning tasks concurrently.
#ifndef ROS_SRC_SIM_JOIN_H_
#define ROS_SRC_SIM_JOIN_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ros::sim {

namespace internal {
struct JoinState {
  explicit JoinState(Simulator& sim) : done(sim) {}
  int remaining = 0;
  Status first_error;
  Event done;
};

inline Task<void> RunOne(Task<Status> task, std::shared_ptr<JoinState> state) {
  Status status = co_await std::move(task);
  if (!status.ok() && state->first_error.ok()) {
    state->first_error = status;
  }
  if (--state->remaining == 0) {
    state->done.Set();
  }
}
}  // namespace internal

// Runs all tasks concurrently; completes when every task has completed.
// Returns the first error encountered (by completion order), or OK.
// ros-lint: allow(coro-ref-param): the Simulator is the scheduler itself
// and by construction outlives every task it runs.
inline Task<Status> AllOk(Simulator& sim, std::vector<Task<Status>> tasks) {
  if (tasks.empty()) {
    co_return OkStatus();
  }
  auto state = std::make_shared<internal::JoinState>(sim);
  state->remaining = static_cast<int>(tasks.size());
  for (auto& task : tasks) {
    sim.Spawn(internal::RunOne(std::move(task), state));
  }
  co_await state->done.Wait();
  co_return state->first_error;
}

}  // namespace ros::sim

#endif  // ROS_SRC_SIM_JOIN_H_
