// Sim-time retry with exponential backoff and deterministic jitter.
//
// Long-running subsystems (burn pipeline, mechanical fetches) must not
// treat a transient fault — a PLC actuation that faulted out, a drive bay
// that is momentarily dead — as the end of the world. A Retrier classifies
// a failed attempt's Status, charges an exponentially growing, seeded-
// jittered backoff to simulated time, and tells the caller whether another
// attempt is within the policy's attempt/deadline budget.
//
// The canonical retry loop:
//
//   sim::Retrier retrier(sim, policy, seed);
//   while (true) {
//     Status status = co_await Attempt();
//     if (status.ok()) break;
//     if (!co_await retrier.AwaitRetry(status)) co_return status;
//   }
#ifndef ROS_SRC_SIM_RETRY_H_
#define ROS_SRC_SIM_RETRY_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace ros::sim {

struct RetryPolicy {
  int max_attempts = 4;  // total tries, including the first
  Duration initial_backoff = Millis(500);
  Duration max_backoff = Seconds(30);
  double multiplier = 2.0;
  // Each backoff is scaled by a deterministic factor in [1-j, 1+j] so
  // synchronized retriers de-correlate without breaking reproducibility.
  double jitter = 0.25;
  // Total elapsed-sim-time budget from the first AwaitRetry; 0 = none.
  Duration deadline = 0;
};

// Transient errors are worth retrying; everything else (bad arguments,
// media data loss, exhausted resources) is permanent for the operation
// that observed it and must be handled, not repeated.
bool IsTransient(StatusCode code);

class Retrier {
 public:
  Retrier(Simulator& sim, RetryPolicy policy, std::uint64_t seed = 1)
      : sim_(sim), policy_(policy), rng_(seed),
        next_backoff_(policy.initial_backoff) {}

  // Call after a failed attempt. Returns true after charging the backoff
  // delay when the error is transient and budget remains; false when the
  // error is permanent or the attempt/deadline budget is spent (the
  // caller should give up and propagate `status`).
  Task<bool> AwaitRetry(Status status);

  // Attempts consumed so far (1 = only the initial attempt).
  int attempts() const { return attempts_; }
  const Status& last_error() const { return last_error_; }

 private:
  Simulator& sim_;
  RetryPolicy policy_;
  Rng rng_;
  Duration next_backoff_;
  int attempts_ = 1;
  bool started_ = false;
  TimePoint first_failure_ = 0;
  Status last_error_;
};

}  // namespace ros::sim

#endif  // ROS_SRC_SIM_RETRY_H_
