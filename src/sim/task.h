// Coroutine task type for the discrete-event simulator.
//
// Task<T> is a lazily-started coroutine: nothing runs until the task is
// co_awaited (by another task) or spawned onto a Simulator. When the task
// finishes, control transfers symmetrically back to the awaiter. Exceptions
// escaping the coroutine body are captured and rethrown at the await site.
#ifndef ROS_SRC_SIM_TASK_H_
#define ROS_SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace ros::sim {

template <typename T>
class Task;

namespace internal {

class PromiseBase {
 public:
  std::suspend_always initial_suspend() noexcept { return {}; }

  // At final suspend, hand control back to whoever awaited this task.
  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> h) noexcept {
      auto& promise =
          std::coroutine_handle<PromiseBase>::from_address(h.address())
              .promise();
      if (promise.continuation_) {
        return promise.continuation_;
      }
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception_ = std::current_exception(); }

  void set_continuation(std::coroutine_handle<> continuation) {
    continuation_ = continuation;
  }

  void RethrowIfException() {
    if (exception_) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  std::coroutine_handle<> continuation_;
  std::exception_ptr exception_;
};

template <typename T>
class Promise : public PromiseBase {
 public:
  Task<T> get_return_object();
  void return_value(T value) { value_.emplace(std::move(value)); }

  T TakeValue() {
    RethrowIfException();
    ROS_CHECK(value_.has_value());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
};

template <>
class Promise<void> : public PromiseBase {
 public:
  Task<void> get_return_object();
  void return_void() {}
  void TakeValue() { RethrowIfException(); }
};

}  // namespace internal

// An owning handle to a lazily-started coroutine producing T.
template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::Promise<T>;

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting a task starts it and suspends the awaiter until it completes.
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
        handle.promise().set_continuation(awaiter);
        return handle;  // symmetric transfer: start the child task
      }
      T await_resume() { return handle.promise().TakeValue(); }
    };
    return Awaiter{handle_};
  }

  // Used by the Simulator to start/observe a detached task.
  std::coroutine_handle<promise_type> raw_handle() const { return handle_; }
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, nullptr);
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace internal {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace internal

}  // namespace ros::sim

#endif  // ROS_SRC_SIM_TASK_H_
