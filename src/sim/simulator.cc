#include "src/sim/simulator.h"

#include <algorithm>

#include "src/sim/event_hasher.h"

namespace ros::sim {

Simulator::~Simulator() = default;

void Simulator::Shutdown() {
  // Destroying a suspended frame can release a lock, which schedules the
  // next (equally doomed) waiter; clear the queue on both sides so no
  // dangling handle survives the sweep.
  queue_ = {};
  spawned_.clear();
  queue_ = {};
}

void Simulator::ScheduleAt(TimePoint when, std::function<void()> fn) {
  ROS_CHECK(when >= now_);
  queue_.push(Event{when, next_seq_++, nullptr, std::move(fn)});
}

void Simulator::ScheduleHandle(TimePoint when,
                               std::coroutine_handle<> handle) {
  ROS_CHECK(when >= now_);
  ROS_CHECK(handle != nullptr);
  queue_.push(Event{when, next_seq_++, handle, nullptr});
}

void Simulator::Spawn(Task<void> task) {
  ROS_CHECK(task.valid());
  auto handle = task.raw_handle();
  spawned_.push_back(std::move(task));
  // Start the task inline; it will suspend at its first co_await.
  handle.resume();
  if (handle.done()) {
    // Surface exceptions from tasks that completed synchronously.
    handle.promise().RethrowIfException();
  }
  ReapFinishedSpawns();
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  Event event = queue_.top();
  queue_.pop();
  ROS_CHECK(event.when >= now_);
  now_ = event.when;
  ++events_processed_;
  if (hasher_ != nullptr) {
    hasher_->Fold("dispatch", event.handle ? "coro" : "fn",
                  static_cast<std::uint64_t>(event.when), event.seq);
  }
  if (event.handle) {
    event.handle.resume();
  } else {
    event.fn();
  }
  return true;
}

TimePoint Simulator::Run() {
  while (Step()) {
  }
  ReapFinishedSpawns();
  return now_;
}

TimePoint Simulator::RunUntil(TimePoint deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  ReapFinishedSpawns();
  return now_;
}

void Simulator::DrainWhile(const std::function<bool()>& keep_going) {
  while (keep_going()) {
    if (!Step()) {
      break;
    }
  }
  ReapFinishedSpawns();
}

void Simulator::ReapFinishedSpawns() {
  // Propagate exceptions from finished background tasks before reaping:
  // a crashed burner/fetcher must fail the run loudly, not vanish.
  for (auto& task : spawned_) {
    if (task.valid() && task.done()) {
      task.raw_handle().promise().RethrowIfException();
    }
  }
  spawned_.erase(std::remove_if(spawned_.begin(), spawned_.end(),
                                [](const Task<void>& t) { return t.done(); }),
                 spawned_.end());
}

}  // namespace ros::sim
