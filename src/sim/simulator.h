// The discrete-event simulator driving all ROS hardware models.
//
// The simulator owns a virtual clock and an event queue. Model code is
// written as coroutines (Task<T>) that co_await Delay(...) to let virtual
// time pass; the simulator resumes them in timestamp order. Within one
// timestamp, events run in FIFO scheduling order, which makes runs fully
// deterministic.
#ifndef ROS_SRC_SIM_SIMULATOR_H_
#define ROS_SRC_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace ros::sim {

class EventHasher;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  TimePoint now() const { return now_; }

  // Total events processed; useful for run statistics and loop guards.
  std::uint64_t events_processed() const { return events_processed_; }

  // Divergence oracle hook (see src/sim/event_hasher.h). When installed,
  // every dispatched event is folded into the hasher; components with
  // their own hook points (FaultInjector, Plc) reach it through
  // event_hasher(). Not owned; nullptr disables folding at zero cost.
  void set_event_hasher(EventHasher* hasher) { hasher_ = hasher; }
  EventHasher* event_hasher() const { return hasher_; }

  // Awaitable that resumes the awaiting coroutine `d` later. A zero delay
  // still yields through the event queue (it never runs inline).
  auto Delay(Duration d) {
    struct Awaiter {
      Simulator* sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->ScheduleHandle(sim->now_ + d, h);
      }
      void await_resume() const noexcept {}
    };
    ROS_CHECK(d >= 0);
    return Awaiter{this, d};
  }

  // Schedules a plain callback at an absolute time.
  void ScheduleAt(TimePoint when, std::function<void()> fn);
  void ScheduleAfter(Duration d, std::function<void()> fn) {
    ScheduleAt(now_ + d, std::move(fn));
  }

  // Resumes a suspended coroutine at an absolute time. Used by Delay and by
  // the synchronization primitives in sync.h.
  void ScheduleHandle(TimePoint when, std::coroutine_handle<> handle);

  // Starts a detached background task. The simulator keeps the coroutine
  // frame alive until it completes (or the simulator is destroyed).
  void Spawn(Task<void> task);

  // Destroys every still-suspended spawned coroutine and drops all queued
  // events, leaving the simulator inert. Owners whose components are
  // *borrowed* by background tasks (devices, volumes, caches built after
  // the simulator) must call this before destroying those components:
  // destroying a suspended frame runs its pending destructors (e.g.
  // ScopedLock) against the borrowed objects, so the frames have to go
  // first. ~Simulator alone runs too late for that — members declared
  // after the simulator are destroyed before it.
  void Shutdown();

  // Runs events until the queue is empty. Returns the final time.
  TimePoint Run();

  // Runs events with timestamp <= deadline. Pending later events remain.
  TimePoint RunUntil(TimePoint deadline);
  TimePoint RunFor(Duration d) { return RunUntil(now_ + d); }

  // Starts `task`, runs the simulation until it completes, and returns its
  // result. Aborts if the event queue drains before the task finishes
  // (which would indicate a deadlock in model code).
  template <typename T>
  T RunUntilComplete(Task<T> task) {
    std::optional<T> result;
    Task<void> wrapper = CompletionWrapper(std::move(task), &result);
    auto handle = wrapper.raw_handle();
    handle.resume();
    DrainWhile([&] { return !handle.done(); });
    ROS_CHECK(handle.done());
    handle.promise().TakeValue();  // rethrows task exceptions, if any
    return std::move(*result);
  }

  void RunUntilComplete(Task<void> task) {
    auto handle = task.raw_handle();
    handle.resume();
    DrainWhile([&] { return !handle.done(); });
    ROS_CHECK(handle.done());
    handle.promise().TakeValue();
  }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    std::coroutine_handle<> handle;  // exactly one of handle/fn is set
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  template <typename T>
  static Task<void> CompletionWrapper(Task<T> task, std::optional<T>* out) {
    *out = co_await std::move(task);
  }

  // Processes one event. Returns false if the queue is empty.
  bool Step();
  void DrainWhile(const std::function<bool()>& keep_going);
  void ReapFinishedSpawns();

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  EventHasher* hasher_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<Task<void>> spawned_;
};

}  // namespace ros::sim

#endif  // ROS_SRC_SIM_SIMULATOR_H_
