#include "src/udf/image.h"

#include <algorithm>
#include <limits>

namespace ros::udf {

StatusOr<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("path must be absolute: " +
                                std::string(path));
  }
  std::vector<std::string> parts;
  std::size_t pos = 1;
  while (pos <= path.size()) {
    std::size_t next = path.find('/', pos);
    if (next == std::string_view::npos) {
      next = path.size();
    }
    std::string_view part = path.substr(pos, next - pos);
    if (part.empty()) {
      if (next == path.size() && parts.empty() && path == "/") {
        break;  // root itself
      }
      return InvalidArgumentError("empty path component in " +
                                  std::string(path));
    }
    if (part == "." || part == "..") {
      return InvalidArgumentError("relative components not allowed");
    }
    parts.emplace_back(part);
    pos = next + 1;
  }
  return parts;
}

Image::Image(std::string image_id, std::uint64_t capacity)
    : image_id_(std::move(image_id)), capacity_(capacity),
      used_bytes_(kEntryOverhead) {  // the root directory entry
  root_.type = NodeType::kDirectory;
}

std::uint64_t Image::CostOf(std::string_view path,
                            std::uint64_t size) const {
  if (size > kMaxFileSize) {
    return std::numeric_limits<std::uint64_t>::max();  // can never fit
  }
  std::uint64_t cost = kEntryOverhead + BlocksFor(size) * kBlockSize;
  // Count ancestor directories that do not exist yet.
  auto parts = SplitPath(path);
  if (!parts.ok()) {
    return cost;
  }
  const Node* node = &root_;
  for (std::size_t i = 0; i + 1 < parts->size(); ++i) {
    if (node != nullptr) {
      auto it = node->children.find((*parts)[i]);
      node = it == node->children.end() ? nullptr : it->second.get();
    }
    if (node == nullptr) {
      cost += kEntryOverhead;
    }
  }
  return cost;
}

StatusOr<std::pair<Node*, std::string>> Image::WalkToParent(
    std::string_view path, bool create) {
  ROS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return InvalidArgumentError("root has no parent");
  }
  Node* node = &root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    auto it = node->children.find(parts[i]);
    if (it == node->children.end()) {
      if (!create) {
        return NotFoundError("missing directory " + parts[i]);
      }
      auto dir = std::make_unique<Node>();
      dir->type = NodeType::kDirectory;
      dir->name = parts[i];
      used_bytes_ += kEntryOverhead;
      it = node->children.emplace(parts[i], std::move(dir)).first;
    } else if (it->second->type != NodeType::kDirectory) {
      return InvalidArgumentError("path component is a file: " + parts[i]);
    }
    node = it->second.get();
  }
  return std::pair<Node*, std::string>{node, parts.back()};
}

Status Image::MakeDirs(std::string_view path) {
  if (closed_) {
    return FailedPreconditionError("image is closed");
  }
  if (path == "/") {
    return OkStatus();
  }
  ROS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Node* node = &root_;
  for (const std::string& part : parts) {
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      if (kEntryOverhead > free_bytes()) {
        return ResourceExhaustedError("image full");
      }
      auto dir = std::make_unique<Node>();
      dir->type = NodeType::kDirectory;
      dir->name = part;
      used_bytes_ += kEntryOverhead;
      it = node->children.emplace(part, std::move(dir)).first;
    } else if (it->second->type != NodeType::kDirectory) {
      return InvalidArgumentError("not a directory: " + part);
    }
    node = it->second.get();
  }
  return OkStatus();
}

Status Image::AddFile(std::string_view path, std::vector<std::uint8_t> data,
                      std::uint64_t logical_size) {
  if (closed_) {
    return FailedPreconditionError("image " + image_id_ + " is closed");
  }
  if (logical_size > kMaxFileSize) {
    return InvalidArgumentError("file size exceeds kMaxFileSize");
  }
  if (data.size() > logical_size) {
    return InvalidArgumentError("payload larger than logical size");
  }
  if (!WouldFit(path, logical_size)) {
    return ResourceExhaustedError("file does not fit in image " + image_id_);
  }
  ROS_ASSIGN_OR_RETURN(auto parent_leaf, WalkToParent(path, /*create=*/true));
  auto [parent, leaf] = parent_leaf;
  if (parent->children.count(leaf) > 0) {
    return AlreadyExistsError("path exists: " + std::string(path));
  }
  auto node = std::make_unique<Node>();
  node->type = NodeType::kFile;
  node->name = leaf;
  node->logical_size = logical_size;
  node->data = std::move(data);
  used_bytes_ += kEntryOverhead + BlocksFor(logical_size) * kBlockSize;
  ++file_count_;
  parent->children.emplace(leaf, std::move(node));
  return OkStatus();
}

Status Image::AddLink(std::string_view path, std::string target_image) {
  if (closed_) {
    return FailedPreconditionError("image is closed");
  }
  if (!WouldFit(path, 0)) {
    return ResourceExhaustedError("link does not fit");
  }
  ROS_ASSIGN_OR_RETURN(auto parent_leaf, WalkToParent(path, /*create=*/true));
  auto [parent, leaf] = parent_leaf;
  if (parent->children.count(leaf) > 0) {
    return AlreadyExistsError("path exists: " + std::string(path));
  }
  auto node = std::make_unique<Node>();
  node->type = NodeType::kLink;
  node->name = leaf;
  node->link_target_image = std::move(target_image);
  used_bytes_ += kEntryOverhead;
  parent->children.emplace(leaf, std::move(node));
  return OkStatus();
}

Status Image::AppendToFile(std::string_view path,
                           std::vector<std::uint8_t> data,
                           std::uint64_t logical_grow) {
  if (closed_) {
    return FailedPreconditionError("image is closed");
  }
  if (data.size() > logical_grow) {
    return InvalidArgumentError("payload larger than logical growth");
  }
  ROS_ASSIGN_OR_RETURN(auto parent_leaf, WalkToParent(path, /*create=*/false));
  auto [parent, leaf] = parent_leaf;
  auto it = parent->children.find(leaf);
  if (it == parent->children.end() || it->second->type != NodeType::kFile) {
    return NotFoundError("no file " + std::string(path));
  }
  Node* node = it->second.get();
  if (logical_grow > kMaxFileSize - node->logical_size) {
    return InvalidArgumentError("file size exceeds kMaxFileSize");
  }
  const std::uint64_t old_blocks = BlocksFor(node->logical_size);
  const std::uint64_t new_blocks =
      BlocksFor(node->logical_size + logical_grow);
  if ((new_blocks - old_blocks) * kBlockSize > free_bytes()) {
    return ResourceExhaustedError("append does not fit");
  }
  // Materialize the sparse tail before appending real bytes.
  if (!data.empty()) {
    node->data.resize(node->logical_size, 0);
    node->data.insert(node->data.end(), data.begin(), data.end());
  }
  node->logical_size += logical_grow;
  used_bytes_ += (new_blocks - old_blocks) * kBlockSize;
  return OkStatus();
}

StatusOr<const Node*> Image::Lookup(std::string_view path) const {
  ROS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  const Node* node = &root_;
  for (const std::string& part : parts) {
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      return NotFoundError("no entry " + std::string(path) + " in image " +
                           image_id_);
    }
    node = it->second.get();
  }
  return node;
}

StatusOr<std::vector<std::uint8_t>> Image::ReadFile(
    std::string_view path, std::uint64_t offset, std::uint64_t length) const {
  ROS_ASSIGN_OR_RETURN(const Node* node, Lookup(path));
  if (node->type != NodeType::kFile) {
    return InvalidArgumentError("not a file: " + std::string(path));
  }
  // Two-step form: `offset + length` can wrap for hostile u64 arguments.
  if (offset > node->logical_size ||
      length > node->logical_size - offset) {
    return OutOfRangeError("read beyond file end");
  }
  std::vector<std::uint8_t> out(length, 0);
  if (offset < node->data.size()) {
    const std::uint64_t n =
        std::min<std::uint64_t>(length, node->data.size() - offset);
    std::copy_n(node->data.begin() + static_cast<std::ptrdiff_t>(offset), n,
                out.begin());
  }
  return out;
}

StatusOr<std::vector<std::string>> Image::List(std::string_view path) const {
  const Node* node = &root_;
  if (path != "/") {
    ROS_ASSIGN_OR_RETURN(node, Lookup(path));
  }
  if (node->type != NodeType::kDirectory) {
    return InvalidArgumentError("not a directory: " + std::string(path));
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    names.push_back(name);
  }
  return names;
}

namespace {
void WalkNode(const std::string& prefix, const Node& node,
              const std::function<void(const std::string&, const Node&)>&
                  visitor) {
  for (const auto& [name, child] : node.children) {
    const std::string path = prefix == "/" ? "/" + name : prefix + "/" + name;
    visitor(path, *child);
    if (child->type == NodeType::kDirectory) {
      WalkNode(path, *child, visitor);
    }
  }
}
}  // namespace

void Image::Walk(const std::function<void(const std::string& path,
                                          const Node&)>& visitor) const {
  WalkNode("/", root_, visitor);
}

}  // namespace ros::udf
