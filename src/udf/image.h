// UDF disc-image model (§4.1, §4.3-4.5).
//
// OLFS formats every bucket / disc image as a single-volume UDF file
// system. This is a from-scratch implementation of the properties OLFS
// depends on:
//   - 2 KiB blocks; every file/directory entry is allocated at a minimum
//     of one block (§4.5: small files can waste up to half the bucket);
//   - a full directory tree replicated from the global namespace (unique
//     file path, §4.4), so every image is self-descriptive;
//   - link files pointing at the image holding the first part of a file
//     that was split across buckets (§4.5);
//   - an updatable (open) state for buckets and a finalized (closed,
//     write-once) state for disc images;
//   - byte-level serialization (serializer.h) so a scan of survived discs
//     can rebuild the namespace (§4.4).
//
// File payloads may be sparse: `data` can be shorter than `logical_size`
// (the tail reads as zeros) so PB-scale workloads stay laptop-sized.
#ifndef ROS_SRC_UDF_IMAGE_H_
#define ROS_SRC_UDF_IMAGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace ros::udf {

inline constexpr std::uint64_t kBlockSize = 2 * kKiB;  // UDF basic block
// Every entry (file or directory) costs at least one block of metadata.
inline constexpr std::uint64_t kEntryOverhead = kBlockSize;

// Upper bound on a single file's logical size (1 EiB). Far beyond any
// optical medium; exists so block math on sizes read from corrupted image
// streams can never overflow uint64.
inline constexpr std::uint64_t kMaxFileSize = 1ull << 60;

// Rounds a payload size up to whole blocks. Division form: the naive
// `(bytes + kBlockSize - 1) / kBlockSize` wraps for sizes near 2^64.
constexpr std::uint64_t BlocksFor(std::uint64_t bytes) {
  return bytes / kBlockSize + (bytes % kBlockSize != 0 ? 1 : 0);
}

enum class NodeType { kDirectory, kFile, kLink };

struct Node {
  NodeType type = NodeType::kDirectory;
  std::string name;
  // kFile: payload. data.size() may be < logical_size (sparse tail).
  std::vector<std::uint8_t> data;
  std::uint64_t logical_size = 0;
  // kLink: the image holding the first subfile of a split file (§4.5).
  std::string link_target_image;
  std::map<std::string, std::unique_ptr<Node>> children;
};

// Normalizes an absolute path: must start with '/', no trailing '/',
// no empty or '.'/'..' components.
StatusOr<std::vector<std::string>> SplitPath(std::string_view path);

class Image {
 public:
  Image(std::string image_id, std::uint64_t capacity);

  const std::string& id() const { return image_id_; }
  std::uint64_t capacity() const { return capacity_; }
  bool closed() const { return closed_; }
  void Close() { closed_ = true; }

  // Bytes consumed: entry overhead + block-rounded payloads, including the
  // root directory.
  std::uint64_t used_bytes() const { return used_bytes_; }
  // Saturating: a deserialized image whose (corrupted) capacity field is
  // smaller than its root-directory overhead must read as full, not wrap.
  std::uint64_t free_bytes() const {
    return capacity_ > used_bytes_ ? capacity_ - used_bytes_ : 0;
  }

  // Space a new file at `path` with `size` payload bytes would consume,
  // counting the directory entries that would have to be created.
  std::uint64_t CostOf(std::string_view path, std::uint64_t size) const;
  bool WouldFit(std::string_view path, std::uint64_t size) const {
    return CostOf(path, size) <= free_bytes();
  }

  // Creates the directory chain for `path` (all ancestors).
  Status MakeDirs(std::string_view path);

  // Adds a file, creating ancestor directories (unique file path). `data`
  // may be sparse relative to logical_size. Fails on closed images, on
  // existing paths, or if it would not fit.
  Status AddFile(std::string_view path, std::vector<std::uint8_t> data,
                 std::uint64_t logical_size);

  // Convenience: logical_size == data.size().
  Status AddFile(std::string_view path, std::vector<std::uint8_t> data) {
    const std::uint64_t n = data.size();
    return AddFile(path, std::move(data), n);
  }

  // Adds a link file pointing at the image holding the first subfile.
  Status AddLink(std::string_view path, std::string target_image);

  // Appends to an existing file (buckets are updatable until closed).
  Status AppendToFile(std::string_view path, std::vector<std::uint8_t> data,
                      std::uint64_t logical_grow);

  StatusOr<const Node*> Lookup(std::string_view path) const;
  bool Exists(std::string_view path) const { return Lookup(path).ok(); }

  // Reads file payload (zero-filled past the sparse tail).
  StatusOr<std::vector<std::uint8_t>> ReadFile(std::string_view path,
                                               std::uint64_t offset,
                                               std::uint64_t length) const;

  // Lists child names of a directory.
  StatusOr<std::vector<std::string>> List(std::string_view path) const;

  // Pre-order walk over all nodes; visitor receives the absolute path.
  void Walk(const std::function<void(const std::string& path, const Node&)>&
                visitor) const;

  std::uint64_t file_count() const { return file_count_; }

  const Node& root() const { return root_; }

 private:
  friend class Serializer;

  // Walks to the parent directory of `path`, creating directories when
  // `create` is set; returns the parent node and leaf name.
  StatusOr<std::pair<Node*, std::string>> WalkToParent(std::string_view path,
                                                       bool create);

  std::string image_id_;
  std::uint64_t capacity_;
  bool closed_ = false;
  Node root_;
  std::uint64_t used_bytes_;
  std::uint64_t file_count_ = 0;
};

}  // namespace ros::udf

#endif  // ROS_SRC_UDF_IMAGE_H_
