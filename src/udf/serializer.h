// Byte-level serialization of UDF images.
//
// Closed disc images are burned to media as a self-describing byte stream:
// a volume descriptor, one record per node (pre-order), and an anchor with
// a CRC32 of the whole stream. A scan of survived discs parses these
// streams to rebuild the global namespace (§4.4) even with every other
// component of ROS destroyed.
//
// Format (little-endian):
//   [magic "ROSUDF01"] [u32 version] [u32 id_len] [id bytes]
//   [u64 capacity] [u64 node_count]
//   node*: [u8 type] [u32 path_len] [path] then per type:
//     file: [u64 logical_size] [u64 data_len] [data bytes]
//     link: [u32 target_len] [target]
//     dir:  (nothing)
//   [u32 crc32 of everything before the anchor] [magic "ROSUDFED"]
#ifndef ROS_SRC_UDF_SERIALIZER_H_
#define ROS_SRC_UDF_SERIALIZER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/udf/image.h"

namespace ros::udf {

class Serializer {
 public:
  // Serializes the image's directory tree and payloads. The result is the
  // byte stream burned to a disc (sparse: real payload bytes only; the
  // image's logical size is carried in the header records).
  static std::vector<std::uint8_t> Serialize(const Image& image);

  // Parses a serialized image; verifies magic and CRC.
  static StatusOr<Image> Parse(std::span<const std::uint8_t> bytes);
};

}  // namespace ros::udf

#endif  // ROS_SRC_UDF_SERIALIZER_H_
