#include "src/udf/serializer.h"

#include <cstring>

#include "src/common/hash.h"

namespace ros::udf {

namespace {

constexpr char kMagic[8] = {'R', 'O', 'S', 'U', 'D', 'F', '0', '1'};
constexpr char kAnchor[8] = {'R', 'O', 'S', 'U', 'D', 'F', 'E', 'D'};
constexpr std::uint32_t kVersion = 1;

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutStr(std::vector<std::uint8_t>& out, std::string_view s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  // All bounds checks are written as `n > remaining()` rather than
  // `pos_ + n > size()`: length fields come straight off (possibly
  // corrupted) media, and `pos_ + n` can wrap around for a hostile u64.
  std::size_t remaining() const { return bytes_.size() - pos_; }

  StatusOr<std::uint32_t> U32() {
    if (remaining() < 4) {
      return DataLossError("truncated image stream (u32)");
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  StatusOr<std::uint64_t> U64() {
    if (remaining() < 8) {
      return DataLossError("truncated image stream (u64)");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  StatusOr<std::uint8_t> U8() {
    if (remaining() < 1) {
      return DataLossError("truncated image stream (u8)");
    }
    return bytes_[pos_++];
  }

  StatusOr<std::string> Str() {
    ROS_ASSIGN_OR_RETURN(std::uint32_t n, U32());
    if (n > remaining()) {
      return DataLossError("truncated image stream (string)");
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  StatusOr<std::vector<std::uint8_t>> Bytes(std::uint64_t n) {
    if (n > remaining()) {
      return DataLossError("truncated image stream (payload)");
    }
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  Status Expect(std::span<const char> magic) {
    if (magic.size() > remaining() ||
        std::memcmp(bytes_.data() + pos_, magic.data(), magic.size()) != 0) {
      return DataLossError("bad magic in image stream");
    }
    pos_ += magic.size();
    return OkStatus();
  }

  std::size_t pos() const { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> Serializer::Serialize(const Image& image) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  PutU32(out, kVersion);
  PutStr(out, image.id());
  PutU64(out, image.capacity());

  std::uint64_t node_count = 0;
  image.Walk([&](const std::string&, const Node&) { ++node_count; });
  PutU64(out, node_count);

  image.Walk([&](const std::string& path, const Node& node) {
    out.push_back(static_cast<std::uint8_t>(node.type));
    PutStr(out, path);
    switch (node.type) {
      case NodeType::kFile:
        PutU64(out, node.logical_size);
        PutU64(out, node.data.size());
        out.insert(out.end(), node.data.begin(), node.data.end());
        break;
      case NodeType::kLink:
        PutStr(out, node.link_target_image);
        break;
      case NodeType::kDirectory:
        break;
    }
  });

  PutU32(out, Crc32(out));
  out.insert(out.end(), kAnchor, kAnchor + sizeof(kAnchor));
  return out;
}

StatusOr<Image> Serializer::Parse(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  ROS_RETURN_IF_ERROR(reader.Expect({kMagic, sizeof(kMagic)}));
  ROS_ASSIGN_OR_RETURN(std::uint32_t version, reader.U32());
  if (version != kVersion) {
    return DataLossError("unsupported image version");
  }
  ROS_ASSIGN_OR_RETURN(std::string id, reader.Str());
  ROS_ASSIGN_OR_RETURN(std::uint64_t capacity, reader.U64());
  ROS_ASSIGN_OR_RETURN(std::uint64_t node_count, reader.U64());

  Image image(id, capacity);
  // Rebuild errors (duplicate paths, entries that no longer fit the declared
  // capacity, non-absolute paths) all mean the stream is not something the
  // serializer ever wrote: report them uniformly as media corruption.
  auto corrupt = [](const Status& status) {
    return DataLossError("corrupt image stream: " + status.ToString());
  };
  for (std::uint64_t i = 0; i < node_count; ++i) {
    ROS_ASSIGN_OR_RETURN(std::uint8_t type_byte, reader.U8());
    if (type_byte > static_cast<std::uint8_t>(NodeType::kLink)) {
      return DataLossError("bad node type");
    }
    const NodeType type = static_cast<NodeType>(type_byte);
    ROS_ASSIGN_OR_RETURN(std::string path, reader.Str());
    switch (type) {
      case NodeType::kDirectory: {
        Status status = image.MakeDirs(path);
        if (!status.ok()) {
          return corrupt(status);
        }
        break;
      }
      case NodeType::kFile: {
        ROS_ASSIGN_OR_RETURN(std::uint64_t logical, reader.U64());
        ROS_ASSIGN_OR_RETURN(std::uint64_t data_len, reader.U64());
        ROS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> data,
                             reader.Bytes(data_len));
        Status status = image.AddFile(path, std::move(data), logical);
        if (!status.ok()) {
          return corrupt(status);
        }
        break;
      }
      case NodeType::kLink: {
        ROS_ASSIGN_OR_RETURN(std::string target, reader.Str());
        Status status = image.AddLink(path, std::move(target));
        if (!status.ok()) {
          return corrupt(status);
        }
        break;
      }
    }
  }

  const std::uint32_t computed = Crc32(bytes.subspan(0, reader.pos()));
  ROS_ASSIGN_OR_RETURN(std::uint32_t stored, reader.U32());
  if (computed != stored) {
    return DataLossError("image CRC mismatch");
  }
  ROS_RETURN_IF_ERROR(reader.Expect({kAnchor, sizeof(kAnchor)}));
  image.Close();
  return image;
}

}  // namespace ros::udf
