// Fuzz target: ros::json::Parse (the MV's on-disk metadata format, §4.2).
//
// Build with -DROS_FUZZ=ON. Links against libFuzzer when the compiler
// provides -fsanitize=fuzzer, otherwise against the standalone mutational
// driver (fuzz/standalone_driver.cc). Seed corpus: fuzz/corpus/json/.
#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ros::fuzz::FuzzJson(data, size);
  return 0;
}
