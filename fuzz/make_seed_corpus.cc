// Regenerates the checked-in seed corpus under fuzz/corpus/.
//
// Usage: ros_make_seed_corpus <corpus-dir>
//
// The seeds are *valid* artifacts produced by the real encoders (plus a few
// hand-written edge cases), so mutation starts from deep inside the accept
// language of each parser. Regression inputs for specific fixed bugs are
// crafted by tests / past fuzz runs and live next to these seeds; this tool
// never deletes files, it only (re)writes the generated ones.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/olfs/audit.h"
#include "src/olfs/index_file.h"
#include "src/olfs/mv_log.h"
#include "src/olfs/mv_segment.h"
#include "src/udf/serializer.h"

namespace fs = std::filesystem;

namespace {

void WriteBytes(const fs::path& path, const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

void WriteText(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  fs::create_directories(root / "json");
  fs::create_directories(root / "index");
  fs::create_directories(root / "udf");
  fs::create_directories(root / "mvlog");
  fs::create_directories(root / "audit");

  // --- json seeds ---
  WriteText(root / "json" / "seed_scalars.json",
            R"({"i":42,"neg":-7,"d":3.25,"b":true,"n":null,"s":"hi"})");
  WriteText(root / "json" / "seed_nested.json",
            R"({"a":[1,[2,[3,[4]]]],"o":{"k":{"k":{"k":[]}}}})");
  WriteText(root / "json" / "seed_escapes.json",
            "{\"e\":\"line\\nquote\\\"u\\u0041tab\\t\",\"u\":\"\\u00e9\\u4e2d\"}");
  WriteText(root / "json" / "seed_numbers.json",
            R"([0,-1,9223372036854775807,-9223372036854775808,1e10,1.5e-3,0.0])");

  // --- index-file seeds (emitted by the real encoder) ---
  {
    ros::olfs::IndexFile simple("/docs/report.pdf",
                                ros::olfs::EntryType::kFile);
    ros::olfs::VersionEntry v;
    v.location = ros::olfs::LocationKind::kBucket;
    v.total_size = 1234;
    v.parts.push_back({"img-0001", 1234});
    simple.AddVersion(v, /*max_entries=*/15);
    WriteText(root / "index" / "seed_simple.json", simple.ToJson());
  }
  {
    // Wrapped 15-entry ring with tier promotions, split parts, a tombstone
    // and a forepart — every field the decoder knows about.
    ros::olfs::IndexFile rich("/photos/2016/trip.raw",
                              ros::olfs::EntryType::kFile);
    for (int i = 0; i < 18; ++i) {
      ros::olfs::VersionEntry v;
      v.location = i % 3 == 0 ? ros::olfs::LocationKind::kDisc
                  : i % 3 == 1 ? ros::olfs::LocationKind::kImage
                               : ros::olfs::LocationKind::kBucket;
      v.total_size = 1000 + static_cast<std::uint64_t>(i) * 77;
      v.parts.push_back({"img-" + std::to_string(i), 500});
      v.parts.push_back({"img-" + std::to_string(i) + "b",
                         500 + static_cast<std::uint64_t>(i) * 77});
      v.tombstone = i == 16;
      rich.AddVersion(v, /*max_entries=*/15);
    }
    rich.set_forepart({0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01});
    WriteText(root / "index" / "seed_ring_wrapped.json", rich.ToJson());
  }
  {
    ros::olfs::IndexFile dir("/docs", ros::olfs::EntryType::kDirectory);
    WriteText(root / "index" / "seed_directory.json", dir.ToJson());
  }

  // --- udf image seeds (emitted by the real serializer) ---
  {
    ros::udf::Image img("img-seed-small", 1 << 20);
    (void)img.AddFile("/a.txt", {'h', 'i'});
    (void)img.MakeDirs("/docs/sub");
    img.Close();
    WriteBytes(root / "udf" / "seed_small.bin",
               ros::udf::Serializer::Serialize(img));
  }
  {
    ros::udf::Image img("img-seed-tree", 8 << 20);
    (void)img.MakeDirs("/photos/2016");
    (void)img.AddFile("/photos/2016/a.jpg",
                      std::vector<std::uint8_t>(300, 0xAB));
    // Sparse payload: logical size beyond the stored bytes.
    (void)img.AddFile("/photos/2016/b.jpg",
                      std::vector<std::uint8_t>(10, 0xCD), 5000);
    (void)img.AddLink("/photos/2016/c.jpg#link", "img-elsewhere");
    (void)img.AddFile("/readme", {});
    img.Close();
    WriteBytes(root / "udf" / "seed_tree.bin",
               ros::udf::Serializer::Serialize(img));
  }
  {
    // MV snapshot-shaped image (§4.2): index files burned under /.mv.
    ros::udf::Image img("img-seed-mv", 4 << 20);
    ros::olfs::IndexFile idx("/docs/x", ros::olfs::EntryType::kFile);
    ros::olfs::VersionEntry v;
    v.total_size = 9;
    v.parts.push_back({"img-seed-mv", 9});
    idx.AddVersion(v, 15);
    const std::string idx_json = idx.ToJson();
    (void)img.AddFile("/.mv/docs/x#idx",
                      std::vector<std::uint8_t>(idx_json.begin(),
                                                idx_json.end()));
    img.Close();
    WriteBytes(root / "udf" / "seed_mv_snapshot.bin",
               ros::udf::Serializer::Serialize(img));
  }

  // --- log-structured MV seeds (WAL streams + segment images) ---
  {
    // A WAL stream as the group-commit writer lands it: puts, a state
    // write, a tombstone. Keys carry the store's real domain prefixes.
    ros::olfs::IndexFile idx("/docs/a", ros::olfs::EntryType::kFile);
    ros::olfs::VersionEntry v;
    v.total_size = 42;
    v.parts.push_back({"img-0007", 42});
    idx.AddVersion(v, 15);
    std::vector<std::uint8_t> wal;
    ros::olfs::mvlog::AppendRecord(
        {ros::olfs::mvlog::RecordType::kPut, "i/docs/a", idx.ToJson()},
        &wal);
    ros::olfs::mvlog::AppendRecord(
        {ros::olfs::mvlog::RecordType::kPutState, "s/burn/cursor",
         "{\"at\":7}"},
        &wal);
    ros::olfs::mvlog::AppendRecord(
        {ros::olfs::mvlog::RecordType::kRemove, "i/docs/a", ""}, &wal);
    WriteBytes(root / "mvlog" / "seed_wal_stream.bin", wal);

    // The same stream torn mid-record: the shape crash replay must handle.
    std::vector<std::uint8_t> torn(wal.begin(), wal.end() - 9);
    WriteBytes(root / "mvlog" / "seed_wal_torn.bin", torn);
  }
  {
    // A segment image as the memtable flusher writes it: sorted records,
    // real header/footer/CRCs.
    ros::olfs::mvseg::SegmentBuilder builder(/*rank=*/3, /*id=*/12);
    builder.Add({ros::olfs::mvlog::RecordType::kPut, "i/docs/a", "{}"});
    builder.Add({ros::olfs::mvlog::RecordType::kPut, "i/docs/b",
                 "{\"entries\":[]}"});
    builder.Add({ros::olfs::mvlog::RecordType::kRemove, "i/docs/c", ""});
    builder.Add({ros::olfs::mvlog::RecordType::kPutState, "s/gc", "1"});
    const std::vector<std::uint8_t> seg = std::move(builder).Finish();
    WriteBytes(root / "mvlog" / "seed_segment.bin", seg);

    // Truncated footer: written-to-completion proof missing.
    std::vector<std::uint8_t> cut(seg.begin(), seg.end() - 5);
    WriteBytes(root / "mvlog" / "seed_segment_truncated.bin", cut);

    // One flipped payload bit: per-record CRC must catch it.
    std::vector<std::uint8_t> flipped = seg;
    flipped[flipped.size() / 2] ^= 0x10;
    WriteBytes(root / "mvlog" / "seed_segment_bitflip.bin", flipped);
  }
  {
    // Empty segment (header + footer only) — a legal degenerate image.
    ros::olfs::mvseg::SegmentBuilder builder(/*rank=*/1, /*id=*/1);
    WriteBytes(root / "mvlog" / "seed_segment_empty.bin",
               std::move(builder).Finish());
  }

  // --- audit-manifest seeds (emitted by the real codec) ---
  {
    // A RAID-6-shaped array: two data members, P and Q, with real leaf
    // hashes over distinct synthetic streams.
    ros::olfs::AuditManifest manifest;
    manifest.tray_index = 3;
    manifest.leaf_bytes = 64;
    const char* ids[] = {"img-0001", "img-0002", "img-0001-P", "img-0001-Q"};
    for (int m = 0; m < 4; ++m) {
      std::vector<std::uint8_t> stream(150 + m * 37);
      for (std::size_t i = 0; i < stream.size(); ++i) {
        stream[i] = static_cast<std::uint8_t>(i * 7 + m * 13);
      }
      ros::olfs::AuditMember member;
      member.image_id = ids[m];
      member.stream_bytes = stream.size();
      member.leaves =
          ros::olfs::AuditLeafHashes(stream, manifest.leaf_bytes);
      member.root = ros::olfs::AuditMerkleRoot(member.leaves);
      manifest.members.push_back(std::move(member));
    }
    manifest.array_root = ros::olfs::AuditArrayRoot(manifest);
    const std::vector<std::uint8_t> blob =
        ros::olfs::SerializeAuditManifest(manifest);
    WriteBytes(root / "audit" / "seed_array.bin", blob);

    // Truncated mid-leaf-table: the parser must reject it cleanly.
    std::vector<std::uint8_t> cut(blob.begin(), blob.end() - 11);
    WriteBytes(root / "audit" / "seed_truncated.bin", cut);

    // One flipped leaf-hash bit: CRC (or a root recompute) must catch it.
    std::vector<std::uint8_t> flipped = blob;
    flipped[flipped.size() / 2] ^= 0x04;
    WriteBytes(root / "audit" / "seed_bitflip.bin", flipped);
  }
  {
    // Degenerate but legal shapes: an empty array and an empty member.
    ros::olfs::AuditManifest manifest;
    manifest.tray_index = 0;
    manifest.leaf_bytes = 4096;
    manifest.array_root = ros::olfs::AuditArrayRoot(manifest);
    WriteBytes(root / "audit" / "seed_empty_array.bin",
               ros::olfs::SerializeAuditManifest(manifest));

    ros::olfs::AuditMember empty;
    empty.image_id = "img-empty";
    empty.root = ros::olfs::AuditMerkleRoot(empty.leaves);
    manifest.members.push_back(std::move(empty));
    manifest.array_root = ros::olfs::AuditArrayRoot(manifest);
    WriteBytes(root / "audit" / "seed_empty_member.bin",
               ros::olfs::SerializeAuditManifest(manifest));
  }

  std::printf("seed corpus written under %s\n", root.string().c_str());
  return 0;
}
