// Fuzz target: the audit-manifest binary codec (DESIGN.md §5j) — the
// durable integrity proof an auditor trusts decades after the burn.
//
// Build with -DROS_FUZZ=ON. Links against libFuzzer when the compiler
// provides -fsanitize=fuzzer, otherwise against the standalone mutational
// driver (fuzz/standalone_driver.cc). Seed corpus: fuzz/corpus/audit/.
#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ros::fuzz::FuzzAuditManifest(data, size);
  return 0;
}
