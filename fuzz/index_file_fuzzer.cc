// Fuzz target: olfs::IndexFile::FromJson (namespace entries in the MV,
// §4.2/§4.6 — including the 15-entry version-history ring).
//
// Build with -DROS_FUZZ=ON. Seed corpus: fuzz/corpus/index/.
#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ros::fuzz::FuzzIndexFile(data, size);
  return 0;
}
