// Fuzz target: udf::Serializer::Parse (the self-describing byte stream a
// disc scan replays to rebuild the namespace, §4.4).
//
// Build with -DROS_FUZZ=ON. Seed corpus: fuzz/corpus/udf/.
#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ros::fuzz::FuzzUdfImage(data, size);
  return 0;
}
