// Standalone driver for fuzz targets on toolchains without libFuzzer.
//
// libFuzzer ships with clang only; this container builds with GCC. The
// driver gives every fuzz target a `main` that speaks a subset of the
// libFuzzer CLI so the same binaries work in both worlds:
//
//   json_fuzzer CORPUS_DIR [FILE...]          replay-only (like libFuzzer
//                                             with -runs=0)
//   json_fuzzer -runs=100000 CORPUS_DIR       replay seeds, then run a
//                                             built-in mutational loop
//   json_fuzzer -seed=42 -max_len=65536 ...   deterministic RNG seed and
//                                             mutant size cap
//
// The mutation engine is a deliberately small flipping/splicing mutator
// (xorshift RNG; bit flips, byte stores, chunk erase/dup/insert, truncation,
// interesting integers). It is no match for coverage-guided libFuzzer,
// but paired with ASan/UBSan it reliably reaches the length-field and
// type-confusion bugs a parser of burned media has to survive.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

using Input = std::vector<std::uint8_t>;

// The input currently inside LLVMFuzzerTestOneInput; dumped to disk when
// the harness (or a sanitizer) aborts, so every failure is reproducible:
//   json_fuzzer crash-standalone.bin
const Input* g_current_input = nullptr;

void DumpCurrentInput() {
  if (g_current_input == nullptr) {
    return;
  }
  // Async-signal-safe: open/write/close only.
  const int fd = ::open("crash-standalone.bin", O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd >= 0) {
    ssize_t ignored = ::write(fd, g_current_input->data(),
                              g_current_input->size());
    (void)ignored;
    ::close(fd);
    constexpr char kMsg[] =
        "standalone: failing input written to crash-standalone.bin\n";
    ignored = ::write(2, kMsg, sizeof(kMsg) - 1);
    (void)ignored;
  }
}

void AbortHandler(int sig) {
  DumpCurrentInput();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void RunOne(const Input& input) {
  g_current_input = &input;
  LLVMFuzzerTestOneInput(input.data(), input.size());
  g_current_input = nullptr;
}

class XorShift {
 public:
  explicit XorShift(std::uint64_t seed) : state_(seed ? seed : 0x5eed5eed) {}
  std::uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  // Uniform-ish in [0, n); n must be > 0.
  std::size_t Below(std::size_t n) { return Next() % n; }

 private:
  std::uint64_t state_;
};

Input ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Input(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void CollectInputs(const std::string& arg, std::vector<Input>* corpus,
                   std::size_t* files) {
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(arg, ec)) {
      if (entry.is_regular_file()) {
        corpus->push_back(ReadFileBytes(entry.path()));
        ++*files;
      }
    }
  } else if (fs::is_regular_file(arg, ec)) {
    corpus->push_back(ReadFileBytes(arg));
    ++*files;
  } else {
    std::fprintf(stderr, "warning: ignoring missing input %s\n", arg.c_str());
  }
}

constexpr std::uint64_t kInteresting[] = {
    0,    1,          0x7F,       0x80,               0xFF,
    0x100, 0x7FFF,    0xFFFF,     0x7FFFFFFFull,      0xFFFFFFFFull,
    0x100000000ull,   0x7FFFFFFFFFFFFFFFull,          0xFFFFFFFFFFFFFFFFull};

void Mutate(Input& data, XorShift& rng, std::size_t max_len) {
  const int kind = static_cast<int>(rng.Below(8));
  switch (kind) {
    case 0:  // bit flip
      if (!data.empty()) {
        data[rng.Below(data.size())] ^=
            static_cast<std::uint8_t>(1u << rng.Below(8));
      }
      break;
    case 1:  // random byte store
      if (!data.empty()) {
        data[rng.Below(data.size())] = static_cast<std::uint8_t>(rng.Next());
      }
      break;
    case 2: {  // erase a chunk
      if (!data.empty()) {
        const std::size_t at = rng.Below(data.size());
        const std::size_t n = 1 + rng.Below(data.size() - at);
        data.erase(data.begin() + static_cast<std::ptrdiff_t>(at),
                   data.begin() + static_cast<std::ptrdiff_t>(at + n));
      }
      break;
    }
    case 3: {  // truncate (the canonical torn-burn failure)
      if (!data.empty()) {
        data.resize(rng.Below(data.size()));
      }
      break;
    }
    case 4: {  // insert random bytes
      const std::size_t n = 1 + rng.Below(8);
      if (data.size() + n <= max_len) {
        const std::size_t at = data.empty() ? 0 : rng.Below(data.size() + 1);
        Input chunk(n);
        for (auto& b : chunk) {
          b = static_cast<std::uint8_t>(rng.Next());
        }
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(at),
                    chunk.begin(), chunk.end());
      }
      break;
    }
    case 5: {  // duplicate a chunk (duplicate keys / duplicate nodes)
      if (!data.empty()) {
        const std::size_t at = rng.Below(data.size());
        const std::size_t n = 1 + rng.Below(data.size() - at);
        if (data.size() + n <= max_len) {
          Input chunk(data.begin() + static_cast<std::ptrdiff_t>(at),
                      data.begin() + static_cast<std::ptrdiff_t>(at + n));
          const std::size_t dst = rng.Below(data.size() + 1);
          data.insert(data.begin() + static_cast<std::ptrdiff_t>(dst),
                      chunk.begin(), chunk.end());
        }
      }
      break;
    }
    case 6: {  // overwrite with an interesting little-endian integer
      const std::uint64_t v =
          kInteresting[rng.Below(sizeof(kInteresting) / sizeof(std::uint64_t))];
      const std::size_t width = std::size_t{1} << rng.Below(4);  // 1/2/4/8
      if (data.size() >= width) {
        const std::size_t at = rng.Below(data.size() - width + 1);
        for (std::size_t i = 0; i < width; ++i) {
          data[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
        }
      }
      break;
    }
    default:  // byte swap two positions
      if (data.size() >= 2) {
        std::swap(data[rng.Below(data.size())], data[rng.Below(data.size())]);
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 0;
  long long max_total_time = 0;
  std::uint64_t seed = 0x5eed;
  std::size_t max_len = 1 << 16;
  std::vector<Input> corpus;
  std::size_t files = 0;

  std::signal(SIGABRT, AbortHandler);
  std::signal(SIGSEGV, AbortHandler);
  std::signal(SIGBUS, AbortHandler);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<std::size_t>(std::atoll(arg.c_str() + 9));
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::atoll(arg.c_str() + 16);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      CollectInputs(arg, &corpus, &files);
    }
  }

  // Replay phase: every seed/corpus file under plain asserts.
  for (const Input& input : corpus) {
    RunOne(input);
  }
  std::printf("standalone: replayed %zu file(s)\n", files);

  if (runs > 0 || max_total_time > 0) {
    if (corpus.empty()) {
      corpus.push_back({});  // grow everything from the empty input
    }
    const std::time_t deadline =
        max_total_time > 0 ? std::time(nullptr) + max_total_time : 0;
    XorShift rng(seed);
    long long done = 0;
    while (true) {
      if (runs > 0 && done >= runs) {
        break;
      }
      if (deadline != 0 && (done % 512 == 0) &&
          std::time(nullptr) >= deadline) {
        break;
      }
      if (runs == 0 && deadline == 0) {
        break;
      }
      Input mutant = corpus[rng.Below(corpus.size())];
      const std::size_t mutations = 1 + rng.Below(8);
      for (std::size_t m = 0; m < mutations; ++m) {
        Mutate(mutant, rng, max_len);
      }
      if (mutant.size() > max_len) {
        mutant.resize(max_len);
      }
      RunOne(mutant);
      ++done;
      if (done % 100000 == 0) {
        std::printf("standalone: %lld runs\n", done);
        std::fflush(stdout);
      }
    }
    std::printf("standalone: completed %lld mutational run(s), seed=%llu\n",
                done, static_cast<unsigned long long>(seed));
  }
  return 0;
}
