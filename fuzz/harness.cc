#include "fuzz/harness.h"

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/olfs/index_file.h"
#include "src/udf/serializer.h"

namespace ros::fuzz {

namespace {

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "fuzz harness invariant failed: %s\n", what);
  std::abort();
}

void Require(bool cond, const char* what) {
  if (!cond) {
    Die(what);
  }
}

// Parsers must fail with a *parse-shaped* status. Anything else (say,
// kInternal) means an invariant broke while digesting corrupt input.
bool IsCleanParseFailure(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument ||
         status.code() == StatusCode::kDataLoss;
}

}  // namespace

void FuzzJson(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  StatusOr<json::Value> parsed = json::Parse(text);
  if (!parsed.ok()) {
    Require(IsCleanParseFailure(parsed.status()),
            "json::Parse failed with a non-parse status");
    return;
  }
  // Serialization idempotence: Dump -> Parse -> Dump is a fixed point.
  // (Dump itself is not inverse to Parse: "1.0" re-parses as the integer 1.)
  const std::string dump1 = parsed->Dump();
  StatusOr<json::Value> reparsed = json::Parse(dump1);
  Require(reparsed.ok(), "Dump() of a parsed value does not re-parse");
  Require(reparsed->Dump() == dump1, "json Dump/Parse is not idempotent");
}

void FuzzIndexFile(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  StatusOr<olfs::IndexFile> parsed = olfs::IndexFile::FromJson(text);
  if (!parsed.ok()) {
    Require(IsCleanParseFailure(parsed.status()),
            "IndexFile::FromJson failed with a non-parse status");
    return;
  }
  // Probe the accessors a namespace rebuild would hit.
  (void)parsed->Latest();
  (void)parsed->Version(parsed->latest_version());
  (void)parsed->has_versions();
  (void)parsed->ApproximateSize();

  // Round trip: an accepted index file re-encodes to a stable fixed point.
  const std::string json1 = parsed->ToJson();
  StatusOr<olfs::IndexFile> reparsed = olfs::IndexFile::FromJson(json1);
  Require(reparsed.ok(), "ToJson() of an accepted index does not re-parse");
  Require(reparsed->ToJson() == json1,
          "IndexFile ToJson/FromJson is not idempotent");
}

void FuzzUdfImage(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  StatusOr<udf::Image> parsed = udf::Serializer::Parse(bytes);
  if (!parsed.ok()) {
    Require(IsCleanParseFailure(parsed.status()),
            "Serializer::Parse failed with a non-parse status");
    return;
  }
  // Probe the read paths a disc scan uses.
  std::uint64_t walked = 0;
  parsed->Walk([&](const std::string& path, const udf::Node& node) {
    ++walked;
    if (node.type == udf::NodeType::kFile) {
      (void)parsed->ReadFile(path, 0, node.data.size());
    }
  });
  Require(walked >= parsed->file_count(), "Walk lost file nodes");

  // Round trip: Serialize(Parse(x)) is a fixed point of Parse∘Serialize.
  const std::vector<std::uint8_t> ser1 = udf::Serializer::Serialize(*parsed);
  StatusOr<udf::Image> reparsed = udf::Serializer::Parse(ser1);
  Require(reparsed.ok(), "re-serialized image does not parse");
  Require(udf::Serializer::Serialize(*reparsed) == ser1,
          "UDF Serialize/Parse is not idempotent");
}

}  // namespace ros::fuzz
