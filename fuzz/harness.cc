#include "fuzz/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/olfs/audit.h"
#include "src/olfs/index_file.h"
#include "src/olfs/mv_log.h"
#include "src/olfs/mv_segment.h"
#include "src/udf/serializer.h"

namespace ros::fuzz {

namespace {

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "fuzz harness invariant failed: %s\n", what);
  std::abort();
}

void Require(bool cond, const char* what) {
  if (!cond) {
    Die(what);
  }
}

// Parsers must fail with a *parse-shaped* status. Anything else (say,
// kInternal) means an invariant broke while digesting corrupt input.
bool IsCleanParseFailure(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument ||
         status.code() == StatusCode::kDataLoss;
}

}  // namespace

void FuzzJson(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  StatusOr<json::Value> parsed = json::Parse(text);
  if (!parsed.ok()) {
    Require(IsCleanParseFailure(parsed.status()),
            "json::Parse failed with a non-parse status");
    return;
  }
  // Serialization idempotence: Dump -> Parse -> Dump is a fixed point.
  // (Dump itself is not inverse to Parse: "1.0" re-parses as the integer 1.)
  const std::string dump1 = parsed->Dump();
  StatusOr<json::Value> reparsed = json::Parse(dump1);
  Require(reparsed.ok(), "Dump() of a parsed value does not re-parse");
  Require(reparsed->Dump() == dump1, "json Dump/Parse is not idempotent");
}

void FuzzIndexFile(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  StatusOr<olfs::IndexFile> parsed = olfs::IndexFile::FromJson(text);
  if (!parsed.ok()) {
    Require(IsCleanParseFailure(parsed.status()),
            "IndexFile::FromJson failed with a non-parse status");
    return;
  }
  // Probe the accessors a namespace rebuild would hit.
  (void)parsed->Latest();
  (void)parsed->Version(parsed->latest_version());
  (void)parsed->has_versions();
  (void)parsed->ApproximateSize();

  // Round trip: an accepted index file re-encodes to a stable fixed point.
  const std::string json1 = parsed->ToJson();
  StatusOr<olfs::IndexFile> reparsed = olfs::IndexFile::FromJson(json1);
  Require(reparsed.ok(), "ToJson() of an accepted index does not re-parse");
  Require(reparsed->ToJson() == json1,
          "IndexFile ToJson/FromJson is not idempotent");
}

void FuzzUdfImage(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  StatusOr<udf::Image> parsed = udf::Serializer::Parse(bytes);
  if (!parsed.ok()) {
    Require(IsCleanParseFailure(parsed.status()),
            "Serializer::Parse failed with a non-parse status");
    return;
  }
  // Probe the read paths a disc scan uses.
  std::uint64_t walked = 0;
  parsed->Walk([&](const std::string& path, const udf::Node& node) {
    ++walked;
    if (node.type == udf::NodeType::kFile) {
      (void)parsed->ReadFile(path, 0, node.data.size());
    }
  });
  Require(walked >= parsed->file_count(), "Walk lost file nodes");

  // Round trip: Serialize(Parse(x)) is a fixed point of Parse∘Serialize.
  const std::vector<std::uint8_t> ser1 = udf::Serializer::Serialize(*parsed);
  StatusOr<udf::Image> reparsed = udf::Serializer::Parse(ser1);
  Require(reparsed.ok(), "re-serialized image does not parse");
  Require(udf::Serializer::Serialize(*reparsed) == ser1,
          "UDF Serialize/Parse is not idempotent");
}

void FuzzMvLog(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  // Lenient WAL replay scan: arbitrary bytes are a legitimate "crashed
  // log". The scan must terminate and report a consistent clean prefix.
  std::vector<olfs::mvlog::Record> scanned;
  const olfs::mvlog::ScanStats stats = olfs::mvlog::ScanRecords(
      bytes, [&scanned](olfs::mvlog::Record record) {
        scanned.push_back(std::move(record));
      });
  Require(stats.records == scanned.size(), "WAL scan miscounted records");
  Require(stats.valid_bytes <= size, "WAL clean prefix past the buffer");
  Require(stats.torn == (stats.valid_bytes < size),
          "WAL torn flag inconsistent with the clean prefix");

  // The clean prefix is exactly the replayable part: re-scanning it sees
  // the same records and no tear.
  std::vector<olfs::mvlog::Record> rescanned;
  const olfs::mvlog::ScanStats again = olfs::mvlog::ScanRecords(
      bytes.first(stats.valid_bytes),
      [&rescanned](olfs::mvlog::Record record) {
        rescanned.push_back(std::move(record));
      });
  Require(!again.torn, "WAL clean prefix re-scan saw a tear");
  Require(rescanned == scanned, "WAL clean prefix re-scan diverged");

  // Every recovered record survives an encode/decode round trip. (Byte
  // identity is not required: the reserved flags byte re-encodes as zero.)
  std::vector<std::uint8_t> reencoded;
  for (const olfs::mvlog::Record& record : scanned) {
    olfs::mvlog::AppendRecord(record, &reencoded);
  }
  std::vector<olfs::mvlog::Record> decoded;
  const olfs::mvlog::ScanStats round = olfs::mvlog::ScanRecords(
      reencoded, [&decoded](olfs::mvlog::Record record) {
        decoded.push_back(std::move(record));
      });
  Require(!round.torn, "re-encoded WAL records do not decode");
  Require(decoded == scanned, "WAL record round trip is not lossless");

  // Strict segment parse over the same bytes: either a clean parse error
  // or a fully verified segment.
  olfs::mvseg::SegmentHeader header;
  std::vector<olfs::mvlog::Record> seg_records;
  Status parsed = olfs::mvseg::ParseSegment(
      bytes, &header,
      [&seg_records](olfs::mvlog::Record record, std::uint64_t,
                     std::uint32_t) {
        seg_records.push_back(std::move(record));
      });
  if (!parsed.ok()) {
    Require(IsCleanParseFailure(parsed),
            "ParseSegment failed with a non-parse status");
    return;
  }
  Require(header.count == seg_records.size(),
          "segment header count disagrees with parsed records");
  for (std::size_t i = 0; i + 1 < seg_records.size(); ++i) {
    Require(seg_records[i].key < seg_records[i + 1].key,
            "accepted segment records are not strictly increasing");
  }

  // An accepted segment rebuilds (same rank/id) into an image that parses
  // back to the same records.
  olfs::mvseg::SegmentBuilder builder(header.rank, header.id);
  for (const olfs::mvlog::Record& record : seg_records) {
    builder.Add(record);
  }
  const std::vector<std::uint8_t> image = std::move(builder).Finish();
  olfs::mvseg::SegmentHeader header2;
  std::vector<olfs::mvlog::Record> rebuilt;
  Status reparsed = olfs::mvseg::ParseSegment(
      image, &header2,
      [&rebuilt](olfs::mvlog::Record record, std::uint64_t, std::uint32_t) {
        rebuilt.push_back(std::move(record));
      });
  Require(reparsed.ok(), "rebuilt segment does not parse");
  Require(header2.rank == header.rank && header2.id == header.id,
          "rebuilt segment header diverged");
  Require(rebuilt == seg_records, "segment rebuild is not lossless");
}

void FuzzAuditManifest(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  StatusOr<olfs::AuditManifest> parsed = olfs::ParseAuditManifest(bytes);
  if (!parsed.ok()) {
    Require(IsCleanParseFailure(parsed.status()),
            "ParseAuditManifest failed with a non-parse status");
    return;
  }
  // Accepted manifests are internally verified: stored member roots and
  // the array root must recompute from the stored leaves.
  for (const olfs::AuditMember& member : parsed->members) {
    Require(olfs::AuditMerkleRoot(member.leaves) == member.root,
            "accepted audit member root does not recompute");
  }
  Require(olfs::AuditArrayRoot(*parsed) == parsed->array_root,
          "accepted audit array root does not recompute");

  // The codec is canonical: Serialize(Parse(x)) == x byte for byte.
  const std::vector<std::uint8_t> ser1 =
      olfs::SerializeAuditManifest(*parsed);
  Require(ser1.size() == size, "audit manifest re-serialized size differs");
  Require(std::equal(ser1.begin(), ser1.end(), bytes.begin()),
          "audit manifest codec is not canonical");
  StatusOr<olfs::AuditManifest> reparsed = olfs::ParseAuditManifest(ser1);
  Require(reparsed.ok(), "re-serialized audit manifest does not parse");
}

}  // namespace ros::fuzz
