// Fuzz target: the log-structured MV's durable-state parsers — the WAL
// record scan (crash replay, DESIGN.md §5i) and the strict segment parser.
//
// Build with -DROS_FUZZ=ON. Links against libFuzzer when the compiler
// provides -fsanitize=fuzzer, otherwise against the standalone mutational
// driver (fuzz/standalone_driver.cc). Seed corpus: fuzz/corpus/mvlog/.
#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ros::fuzz::FuzzMvLog(data, size);
  return 0;
}
