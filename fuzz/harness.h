// Shared fuzz-harness bodies for the three durable-state deserializers.
//
// ROS's durability story (§4.4) rests on rebuilding the namespace from
// whatever bytes survive on media, so the MV JSON parser, the index-file
// decoder, and the UDF image deserializer must map *arbitrary* input to
// either a parsed value or a clean kDataLoss / kInvalidArgument status —
// never a crash, throw, or undefined behavior.
//
// Each harness returns normally on every input; any abort, uncaught
// exception, or sanitizer report is a bug. The same functions back three
// consumers:
//   - the libFuzzer entry points (fuzz/*_fuzzer.cc) when the compiler
//     provides -fsanitize=fuzzer;
//   - the standalone mutational driver (fuzz/standalone_driver.cc) used
//     with toolchains that lack libFuzzer (e.g. GCC);
//   - the tier-1 corpus replay test (tests/corpus_replay_test.cc), which
//     re-runs every checked-in corpus file on every ctest run.
#ifndef ROS_FUZZ_HARNESS_H_
#define ROS_FUZZ_HARNESS_H_

#include <cstddef>
#include <cstdint>

namespace ros::fuzz {

// ros::json::Parse + serialization idempotence.
void FuzzJson(const std::uint8_t* data, std::size_t size);

// olfs::IndexFile::FromJson + ToJson round trip + accessor probing.
void FuzzIndexFile(const std::uint8_t* data, std::size_t size);

// udf::Serializer::Parse + re-serialization idempotence.
void FuzzUdfImage(const std::uint8_t* data, std::size_t size);

// Log-structured MV parsers (mvlog::ScanRecords crash-replay scan +
// mvseg::ParseSegment strict parse): arbitrary bytes must terminate with a
// consistent clean prefix / a clean parse status, and everything accepted
// must round-trip through the encoders.
void FuzzMvLog(const std::uint8_t* data, std::size_t size);

// olfs::ParseAuditManifest (DESIGN.md §5j): arbitrary bytes parse to a
// fully root-verified manifest or fail with kInvalidArgument/kDataLoss,
// and every accepted manifest re-serializes to the identical blob.
void FuzzAuditManifest(const std::uint8_t* data, std::size_t size);

}  // namespace ros::fuzz

#endif  // ROS_FUZZ_HARNESS_H_
