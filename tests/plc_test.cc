// Instruction-level tests of the PLC state machine (§3.3).
#include "src/mech/plc.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::mech {
namespace {

using sim::Seconds;
using sim::ToSeconds;

class PlcTest : public ::testing::Test {
 protected:
  PlcTest() : plc_(sim_, MechTimingModel{}, /*rollers=*/2) {}

  Status Exec(PlcInstruction instruction) {
    return sim_.RunUntilComplete(plc_.Execute(instruction));
  }

  sim::Simulator sim_;
  Plc plc_;
};

TEST_F(PlcTest, OpNamesAreStable) {
  EXPECT_EQ(PlcOpName(PlcOp::kRotateRoller), "ROTATE_ROLLER");
  EXPECT_EQ(PlcOpName(PlcOp::kSeparateDisc), "SEPARATE_DISC");
  EXPECT_EQ(PlcOpName(PlcOp::kEjectDriveTrays), "EJECT_DRIVE_TRAYS");
}

TEST_F(PlcTest, RotateTracksFacingSlot) {
  ASSERT_TRUE(Exec({.op = PlcOp::kRotateRoller, .slot = 4}).ok());
  EXPECT_EQ(plc_.roller_state(0).facing_slot, 4);
  // Re-rotating to the same slot is free.
  sim::TimePoint t0 = sim_.now();
  ASSERT_TRUE(Exec({.op = PlcOp::kRotateRoller, .slot = 4}).ok());
  EXPECT_EQ(sim_.now(), t0);
}

TEST_F(PlcTest, RotateWorstCaseUnderTwoSeconds) {
  sim::TimePoint t0 = sim_.now();
  ASSERT_TRUE(Exec({.op = PlcOp::kRotateRoller, .slot = 3}).ok());
  EXPECT_LE(ToSeconds(sim_.now() - t0), 2.0);
}

TEST_F(PlcTest, RotateBlockedWhileTrayFannedOut) {
  ASSERT_TRUE(Exec({.op = PlcOp::kFanOutTray, .slot = 0}).ok());
  EXPECT_EQ(Exec({.op = PlcOp::kRotateRoller, .slot = 1}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(Exec({.op = PlcOp::kFanInTray}).ok());
  EXPECT_TRUE(Exec({.op = PlcOp::kRotateRoller, .slot = 1}).ok());
}

TEST_F(PlcTest, FanOutRequiresFacingSlot) {
  EXPECT_EQ(Exec({.op = PlcOp::kFanOutTray, .slot = 3}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(Exec({.op = PlcOp::kRotateRoller, .slot = 3}).ok());
  EXPECT_TRUE(Exec({.op = PlcOp::kFanOutTray, .slot = 3}).ok());
  // Only one tray can be fanned out at a time.
  EXPECT_EQ(Exec({.op = PlcOp::kFanOutTray, .slot = 3}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PlcTest, GrabAndSeparateLifecycle) {
  // Grab requires a fanned-out tray.
  EXPECT_EQ(Exec({.op = PlcOp::kGrabArray}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(Exec({.op = PlcOp::kFanOutTray, .slot = 0}).ok());
  ASSERT_TRUE(Exec({.op = PlcOp::kGrabArray}).ok());
  EXPECT_TRUE(plc_.arm_state(0).carrying);
  EXPECT_EQ(plc_.arm_state(0).discs_held, kDiscsPerTray);
  // Cannot double-grab.
  EXPECT_EQ(Exec({.op = PlcOp::kGrabArray}).code(),
            StatusCode::kFailedPrecondition);

  // Separate all 12; the 13th fails.
  for (int i = 0; i < kDiscsPerTray; ++i) {
    ASSERT_TRUE(Exec({.op = PlcOp::kSeparateDisc}).ok()) << i;
  }
  EXPECT_FALSE(plc_.arm_state(0).carrying);
  EXPECT_EQ(Exec({.op = PlcOp::kSeparateDisc}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PlcTest, CollectRebuildsArray) {
  for (int i = 0; i < kDiscsPerTray; ++i) {
    ASSERT_TRUE(Exec({.op = PlcOp::kCollectDisc}).ok());
  }
  EXPECT_EQ(plc_.arm_state(0).discs_held, kDiscsPerTray);
  EXPECT_EQ(Exec({.op = PlcOp::kCollectDisc}).code(),
            StatusCode::kFailedPrecondition);
  // Place it back.
  ASSERT_TRUE(Exec({.op = PlcOp::kFanOutTray, .slot = 0}).ok());
  ASSERT_TRUE(Exec({.op = PlcOp::kPlaceArray}).ok());
  EXPECT_FALSE(plc_.arm_state(0).carrying);
  EXPECT_EQ(Exec({.op = PlcOp::kPlaceArray}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PlcTest, ArmTravelAndReturn) {
  ASSERT_TRUE(Exec({.op = PlcOp::kMoveArm, .layer = 84}).ok());
  EXPECT_EQ(plc_.arm_state(0).layer, 84);
  sim::TimePoint t0 = sim_.now();
  ASSERT_TRUE(Exec({.op = PlcOp::kReturnArm}).ok());
  EXPECT_EQ(plc_.arm_state(0).layer, 0);
  // Fast return: under the descent time.
  EXPECT_LT(ToSeconds(sim_.now() - t0), 3.0);
}

TEST_F(PlcTest, RollersAreIndependent) {
  ASSERT_TRUE(Exec({.op = PlcOp::kRotateRoller, .roller = 0, .slot = 2}).ok());
  ASSERT_TRUE(Exec({.op = PlcOp::kRotateRoller, .roller = 1, .slot = 5}).ok());
  EXPECT_EQ(plc_.roller_state(0).facing_slot, 2);
  EXPECT_EQ(plc_.roller_state(1).facing_slot, 5);
  EXPECT_EQ(plc_.arm_state(1).layer, 0);
}

TEST_F(PlcTest, InvalidArgumentsRejected) {
  EXPECT_EQ(Exec({.op = PlcOp::kRotateRoller, .roller = 7}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Exec({.op = PlcOp::kRotateRoller, .slot = 6}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Exec({.op = PlcOp::kMoveArm, .layer = 85}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlcTest, FaultExhaustionSurfacesUnavailable) {
  plc_.set_fault_model({.miscalibration_rate = 1.0, .max_retries = 2});
  EXPECT_EQ(Exec({.op = PlcOp::kRotateRoller, .slot = 1}).code(),
            StatusCode::kUnavailable);
  EXPECT_GT(plc_.recalibrations(), 0u);
}

TEST_F(PlcTest, TelemetryAccumulates) {
  ASSERT_TRUE(Exec({.op = PlcOp::kRotateRoller, .slot = 1}).ok());
  ASSERT_TRUE(Exec({.op = PlcOp::kMoveArm, .layer = 10}).ok());
  EXPECT_EQ(plc_.instructions_executed(), 2u);
  EXPECT_GT(plc_.busy_time(), 0);
}

}  // namespace
}  // namespace ros::mech
