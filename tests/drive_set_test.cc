// Tests of the DriveSet bandwidth arbitration (§3.3): the shared burn-path
// cap that shapes Figure 9 and the read-side HBA contention of Table 2.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/drive/optical_drive.h"
#include "src/sim/join.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::drive {
namespace {

using sim::Seconds;
using sim::ToSeconds;

struct Rig {
  Rig() : set(sim, 0) {
    for (int i = 0; i < set.size(); ++i) {
      discs.push_back(std::make_unique<Disc>("d" + std::to_string(i),
                                             DiscType::kBdr25));
      ROS_CHECK(set.drive(i).InsertDisc(discs.back().get()).ok());
    }
  }

  sim::Simulator sim;
  DriveSet set;
  std::vector<std::unique_ptr<Disc>> discs;
};

TEST(DriveSet, SingleBurnRunsAtProfileSpeed) {
  Rig rig;
  sim::TimePoint t0 = rig.sim.now();
  auto result = rig.sim.RunUntilComplete(
      rig.set.drive(0).BurnImage("img", 25 * kGB, {}));
  ASSERT_TRUE(result.ok());
  // One drive never hits the 380 MB/s cap: ~675 s + 2 s wake.
  EXPECT_NEAR(ToSeconds(rig.sim.now() - t0), 677.0, 12.0);
}

TEST(DriveSet, TwelveSimultaneousBurnsHitTheCap) {
  Rig rig;
  sim::TimePoint t0 = rig.sim.now();
  std::vector<sim::Task<Status>> burns;
  for (int i = 0; i < rig.set.size(); ++i) {
    burns.push_back([](OpticalDrive* d) -> sim::Task<Status> {
      auto r = co_await d->BurnImage("img", 25 * kGB, {});
      co_return r.status().ok() ? OkStatus() : r.status();
    }(&rig.set.drive(i)));
  }
  ASSERT_TRUE(rig.sim.RunUntilComplete(
                  sim::AllOk(rig.sim, std::move(burns))).ok());
  const double seconds = ToSeconds(rig.sim.now() - t0);
  // Uncapped, 12 synchronized drives would finish in ~677 s; the shared
  // 380 MB/s write path stretches the array to ~300 GB / 380 MB/s.
  const double cap_bound = 12.0 * 25e9 / DriveSet::kBurnBandwidthCap;
  EXPECT_GT(seconds, cap_bound * 0.95);
  EXPECT_LT(seconds, cap_bound * 1.25);
}

TEST(DriveSet, ArbiterTracksDesiredRates) {
  Rig rig;
  EXPECT_EQ(rig.set.active_burners(), 0);
  EXPECT_EQ(rig.set.total_desired_burn_rate(), 0.0);
  // Below the cap: demand passes through unthrottled.
  EXPECT_DOUBLE_EQ(rig.set.EffectiveBurnRate(50e6), 50e6);
}

TEST(DriveSet, ReadContentionScalesWithActiveReaders) {
  Rig rig;
  const double single = ReadSpeedBytesPerSec(DiscType::kBdr25);
  rig.set.AddReader();
  EXPECT_DOUBLE_EQ(rig.set.EffectiveReadRate(single), single);
  for (int i = 0; i < 11; ++i) {
    rig.set.AddReader();
  }
  // 12 active readers: each loses 11 contention steps.
  EXPECT_NEAR(rig.set.EffectiveReadRate(single),
              single * (1 - 11 * DriveSet::kReadContentionPerDrive), 1.0);
  for (int i = 0; i < 12; ++i) {
    rig.set.RemoveReader();
  }
  EXPECT_EQ(rig.set.active_readers(), 0);
}

TEST(DriveSet, FindImageLocatesBurnedDisc) {
  Rig rig;
  ASSERT_TRUE(rig.discs[5]->AppendSession("wanted", kMB, {}, true).ok());
  OpticalDrive* found = rig.set.FindImage("wanted");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id(), rig.set.drive(5).id());
  EXPECT_EQ(rig.set.FindImage("missing"), nullptr);
}

}  // namespace
}  // namespace ros::drive
