// Tests of the iSCSI-style block gateway (§4.2's block-level interface).
#include "src/frontend/block_gateway.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace ros::frontend {
namespace {

using olfs::Olfs;
using olfs::RosSystem;

std::vector<std::uint8_t> RandomBlocks(std::uint64_t blocks,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(blocks * BlockGateway::kBlockSize);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

class BlockGatewayTest : public ::testing::Test {
 protected:
  BlockGatewayTest() {
    system_ = std::make_unique<RosSystem>(sim_, olfs::TestSystemConfig());
    olfs::OlfsParams params;
    params.disc_capacity_override = 16 * kMiB;
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = sim::Seconds(1);
    lun_ = std::make_unique<BlockGateway>(olfs_.get(), "lun0", 64 * kMiB,
                                          1 * kMiB);
  }

  // Destroy suspended background coroutines (burn/snapshot/scrub loops)
  // while the system objects they borrow are still alive.
  ~BlockGatewayTest() override { sim_.Shutdown(); }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
  std::unique_ptr<BlockGateway> lun_;
};

TEST_F(BlockGatewayTest, WriteReadRoundTrip) {
  auto data = RandomBlocks(16, 1);
  ASSERT_TRUE(sim_.RunUntilComplete(lun_->WriteBlocks(100, data)).ok());
  auto read = sim_.RunUntilComplete(lun_->ReadBlocks(100, 16));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(BlockGatewayTest, UnwrittenBlocksReadZero) {
  auto read = sim_.RunUntilComplete(lun_->ReadBlocks(5000, 4));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, std::vector<std::uint8_t>(4 * 512, 0));
}

TEST_F(BlockGatewayTest, ThinProvisioningMaterializesLazily) {
  auto chunks = sim_.RunUntilComplete(lun_->MaterializedChunks());
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(*chunks, 0);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  lun_->WriteBlocks(0, RandomBlocks(1, 2))).ok());
  chunks = sim_.RunUntilComplete(lun_->MaterializedChunks());
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(*chunks, 1);  // only the touched 1 MiB chunk exists
}

TEST_F(BlockGatewayTest, WriteSpanningChunkBoundary) {
  // Chunk = 1 MiB = 2048 blocks; write across the 2048-block boundary.
  auto data = RandomBlocks(64, 3);
  ASSERT_TRUE(sim_.RunUntilComplete(lun_->WriteBlocks(2048 - 32, data)).ok());
  auto read = sim_.RunUntilComplete(lun_->ReadBlocks(2048 - 32, 64));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  auto chunks = sim_.RunUntilComplete(lun_->MaterializedChunks());
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(*chunks, 2);
}

TEST_F(BlockGatewayTest, OverwritePreservesNeighbours) {
  auto first = RandomBlocks(8, 4);
  ASSERT_TRUE(sim_.RunUntilComplete(lun_->WriteBlocks(10, first)).ok());
  auto overwrite = RandomBlocks(2, 5);
  ASSERT_TRUE(sim_.RunUntilComplete(lun_->WriteBlocks(12, overwrite)).ok());

  auto read = sim_.RunUntilComplete(lun_->ReadBlocks(10, 8));
  ASSERT_TRUE(read.ok());
  std::vector<std::uint8_t> expect = first;
  std::copy(overwrite.begin(), overwrite.end(), expect.begin() + 2 * 512);
  EXPECT_EQ(*read, expect);
}

TEST_F(BlockGatewayTest, OverwritesAreWormVersions) {
  ASSERT_TRUE(sim_.RunUntilComplete(
                  lun_->WriteBlocks(0, RandomBlocks(1, 6))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  lun_->WriteBlocks(0, RandomBlocks(1, 7))).ok());
  auto info = sim_.RunUntilComplete(olfs_->Stat(lun_->ChunkPath(0)));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 2);
  // The pre-overwrite LUN state is still reachable (provenance).
  auto v1 = sim_.RunUntilComplete(
      olfs_->ReadVersion(lun_->ChunkPath(0), 1, 0, 512));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(std::equal(v1->begin(), v1->end(),
                         RandomBlocks(1, 6).begin()));
}

TEST_F(BlockGatewayTest, BoundsAndAlignmentEnforced) {
  EXPECT_EQ(sim_.RunUntilComplete(
                lun_->WriteBlocks(lun_->num_blocks() - 1,
                                  RandomBlocks(2, 8)))
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(sim_.RunUntilComplete(
                lun_->WriteBlocks(0, std::vector<std::uint8_t>(100)))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sim_.RunUntilComplete(
                lun_->ReadBlocks(lun_->num_blocks(), 1))
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST_F(BlockGatewayTest, LunContentSurvivesBurning) {
  auto data = RandomBlocks(32, 9);
  ASSERT_TRUE(sim_.RunUntilComplete(lun_->WriteBlocks(64, data)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  auto read = sim_.RunUntilComplete(lun_->ReadBlocks(64, 32));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

}  // namespace
}  // namespace ros::frontend
