#include "src/sim/join.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::sim {
namespace {

Task<Status> SleepOk(Simulator& sim, Duration d) {
  co_await sim.Delay(d);
  co_return OkStatus();
}

Task<Status> SleepFail(Simulator& sim, Duration d, StatusCode code) {
  co_await sim.Delay(d);
  co_return Status(code, "boom");
}

TEST(AllOk, EmptyCompletesImmediately) {
  Simulator sim;
  EXPECT_TRUE(sim.RunUntilComplete(AllOk(sim, {})).ok());
  EXPECT_EQ(sim.now(), 0);
}

TEST(AllOk, RunsConcurrently) {
  Simulator sim;
  std::vector<Task<Status>> tasks;
  for (int i = 1; i <= 5; ++i) {
    tasks.push_back(SleepOk(sim, Seconds(i)));
  }
  EXPECT_TRUE(sim.RunUntilComplete(AllOk(sim, std::move(tasks))).ok());
  // Max, not sum.
  EXPECT_EQ(sim.now(), Seconds(5));
}

TEST(AllOk, ReturnsFirstErrorByCompletion) {
  Simulator sim;
  std::vector<Task<Status>> tasks;
  tasks.push_back(SleepFail(sim, Seconds(3), StatusCode::kInternal));
  tasks.push_back(SleepFail(sim, Seconds(1), StatusCode::kDataLoss));
  tasks.push_back(SleepOk(sim, Seconds(2)));
  Status status = sim.RunUntilComplete(AllOk(sim, std::move(tasks)));
  // The DataLoss task finished first; its error wins.
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  // But everything still ran to completion.
  EXPECT_EQ(sim.now(), Seconds(3));
}

TEST(AllOk, WaitsForAllEvenAfterError) {
  Simulator sim;
  bool late_finished = false;
  auto late = [](Simulator& s, bool* done) -> Task<Status> {
    co_await s.Delay(Seconds(10));
    *done = true;
    co_return OkStatus();
  };
  std::vector<Task<Status>> tasks;
  tasks.push_back(SleepFail(sim, Seconds(1), StatusCode::kUnavailable));
  tasks.push_back(late(sim, &late_finished));
  Status status = sim.RunUntilComplete(AllOk(sim, std::move(tasks)));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(late_finished);
}

}  // namespace
}  // namespace ros::sim
