// Buffer-space lifecycle: the disk buffer is finite; burning + eviction
// must reclaim it so ingest can continue indefinitely (the steady state a
// PB-scale archival deployment lives in).
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/olfs/olfs.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::Seconds;

class BufferLifecycleTest : public ::testing::Test {
 protected:
  BufferLifecycleTest() {
    SystemConfig config = TestSystemConfig();
    config.hdd_capacity = 256 * kMiB;  // tiny buffer: pressure builds fast
    system_ = std::make_unique<RosSystem>(sim_, config);
    OlfsParams params;
    params.disc_capacity_override = 16 * kMiB;
    params.read_cache_bytes = 0;  // burned images leave the buffer at once
    olfs_ = std::make_unique<Olfs>(sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  std::uint64_t FreeBufferBytes() {
    std::uint64_t free = 0;
    for (int i = 0; i < olfs_->buckets().num_volumes(); ++i) {
      free += olfs_->buckets().volume(i)->free_bytes();
    }
    return free;
  }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
};

TEST_F(BufferLifecycleTest, BurnAndEvictionReclaimBufferSpace) {
  const std::uint64_t initial_free = FreeBufferBytes();

  // Several waves of ingest, each flushed to discs: total logical volume
  // far exceeds the buffer, yet every wave fits because eviction reclaims.
  for (int wave = 0; wave < 6; ++wave) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(sim_.RunUntilComplete(
                      olfs_->Create("/w" + std::to_string(wave) + "/f" +
                                        std::to_string(i),
                                    std::vector<std::uint8_t>(512, 0x77),
                                    10 * kMiB))
                      .ok())
          << "wave " << wave << " file " << i;
    }
    ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok())
        << "wave " << wave << ": "
        << olfs_->burns().fatal_error().ToString();
    // Burned + evicted: the buffer is (nearly) back to its initial state.
    EXPECT_GT(FreeBufferBytes(), initial_free - 24 * kMiB)
        << "wave " << wave;
  }
  // 6 waves x 80 MiB >> the 2 x ~170 MiB buffer volumes: reclamation is
  // the only reason this sequence of ingests fits.
  EXPECT_GE(olfs_->burns().arrays_burned(), 6);

  // Old data is still fully readable from discs.
  auto data = sim_.RunUntilComplete(olfs_->Read("/w0/f3", 0, 512));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, std::vector<std::uint8_t>(512, 0x77));
}

TEST_F(BufferLifecycleTest, BufferExhaustionSurfacesCleanly) {
  // Without flushing, ingest beyond the raw buffer must fail with
  // ResourceExhausted — not corrupt state.
  Status status = OkStatus();
  int accepted = 0;
  while (status.ok() && accepted < 200) {
    status = sim_.RunUntilComplete(olfs_->Create(
        "/flood/f" + std::to_string(accepted),
        std::vector<std::uint8_t>(512, 1), 12 * kMiB));
    accepted += status.ok() ? 1 : 0;
  }
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(accepted, 5);

  // Accepted data remains readable; draining recovers the system.
  auto data = sim_.RunUntilComplete(olfs_->Read("/flood/f0", 0, 512));
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(sim_.RunUntilComplete(olfs_->FlushAndDrain()).ok());
  // And ingest works again after reclamation.
  EXPECT_TRUE(sim_.RunUntilComplete(
                  olfs_->Create("/after/ok",
                                std::vector<std::uint8_t>(512, 2),
                                4 * kMiB))
                  .ok());
}

}  // namespace
}  // namespace ros::olfs
