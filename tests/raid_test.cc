#include "src/disk/raid.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::disk {
namespace {

using sim::ToSeconds;

struct Rig {
  explicit Rig(RaidLevel level, int n, std::uint64_t dev_cap = 64 * kMiB,
               DevicePerf perf = HddPerf(),
               std::uint64_t stripe_unit = 64 * kKiB) {
    for (int i = 0; i < n; ++i) {
      devices.push_back(std::make_unique<StorageDevice>(
          sim, "dev" + std::to_string(i), dev_cap, perf));
    }
    std::vector<StorageDevice*> ptrs;
    for (auto& d : devices) {
      ptrs.push_back(d.get());
    }
    volume = std::make_unique<RaidVolume>(sim, level, ptrs, stripe_unit);
  }

  // Destroy suspended background coroutines (destage writes) while the
  // devices they borrow are still alive.
  ~Rig() { sim.Shutdown(); }

  std::vector<std::uint8_t> MakeData(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.Next());
    }
    return data;
  }

  sim::Simulator sim;
  std::vector<std::unique_ptr<StorageDevice>> devices;
  std::unique_ptr<RaidVolume> volume;
};

TEST(RaidCapacity, PerLevel) {
  const std::uint64_t cap = 64 * kMiB;
  EXPECT_EQ(Rig(RaidLevel::kRaid0, 4).volume->capacity(), 4 * cap);
  EXPECT_EQ(Rig(RaidLevel::kRaid1, 2).volume->capacity(), cap);
  EXPECT_EQ(Rig(RaidLevel::kRaid5, 7).volume->capacity(), 6 * cap);
  EXPECT_EQ(Rig(RaidLevel::kRaid6, 12).volume->capacity(), 10 * cap);
}

class RaidRoundTrip
    : public ::testing::TestWithParam<std::tuple<RaidLevel, int>> {};

TEST_P(RaidRoundTrip, RandomOffsetsAndSizes) {
  auto [level, n] = GetParam();
  Rig rig(level, n);
  Rng rng(n * 100 + static_cast<int>(level));
  // Property: any write followed by a read of the same range returns the
  // written bytes, across unaligned offsets and sizes.
  for (int iter = 0; iter < 12; ++iter) {
    std::uint64_t offset = rng.Below(rig.volume->capacity() - kMiB);
    std::uint64_t size = 1 + rng.Below(700 * kKiB);
    auto data = rig.MakeData(size, iter);
    ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(offset, data)).ok());
    auto read = rig.sim.RunUntilComplete(rig.volume->Read(offset, size));
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, data) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Levels, RaidRoundTrip,
    ::testing::Values(std::tuple{RaidLevel::kRaid0, 4},
                      std::tuple{RaidLevel::kRaid1, 2},
                      std::tuple{RaidLevel::kRaid5, 3},
                      std::tuple{RaidLevel::kRaid5, 7},
                      std::tuple{RaidLevel::kRaid6, 4},
                      std::tuple{RaidLevel::kRaid6, 12}));

TEST(Raid5, DegradedReadReconstructs) {
  Rig rig(RaidLevel::kRaid5, 7);
  auto data = rig.MakeData(3 * kMiB, 1);
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(kMiB, data)).ok());
  for (int fail = 0; fail < 7; ++fail) {
    rig.devices[fail]->Fail();
    EXPECT_TRUE(rig.volume->operational());
    auto read = rig.sim.RunUntilComplete(rig.volume->Read(kMiB, data.size()));
    ASSERT_TRUE(read.ok()) << "failed device " << fail;
    EXPECT_EQ(*read, data) << "failed device " << fail;
    rig.devices[fail]->Replace();
    ASSERT_TRUE(
        rig.sim.RunUntilComplete(rig.volume->Rebuild(fail)).ok());
  }
}

TEST(Raid5, TwoFailuresFatal) {
  Rig rig(RaidLevel::kRaid5, 7);
  rig.devices[0]->Fail();
  rig.devices[1]->Fail();
  EXPECT_FALSE(rig.volume->operational());
  EXPECT_EQ(rig.sim.RunUntilComplete(rig.volume->Read(0, 16)).status().code(),
            StatusCode::kUnavailable);
}

class Raid6DoubleFailure
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Raid6DoubleFailure, ReconstructsAnyTwoDevices) {
  auto [a, b] = GetParam();
  if (a >= b) {
    GTEST_SKIP();
  }
  Rig rig(RaidLevel::kRaid6, 6);
  auto data = rig.MakeData(2 * kMiB + 777, 99);
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(12345, data)).ok());
  rig.devices[a]->Fail();
  rig.devices[b]->Fail();
  EXPECT_TRUE(rig.volume->operational());
  auto read = rig.sim.RunUntilComplete(rig.volume->Read(12345, data.size()));
  ASSERT_TRUE(read.ok()) << "devices " << a << "," << b;
  EXPECT_EQ(*read, data);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, Raid6DoubleFailure,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 6)));

// An odd, non-multiple-of-8 stripe unit drives the word-sliced kernels'
// head/tail paths through the full RAID-6 write → double-degraded read →
// rebuild cycle, not just through unit-level differential tests.
TEST(Raid6, OddStripeUnitSurvivesDoubleFailureAndRebuild) {
  Rig rig(RaidLevel::kRaid6, 5, 4 * kMiB, HddPerf(), /*stripe_unit=*/1031);
  rig.volume->set_write_cache(false);
  auto data = rig.MakeData(300 * 1031 + 17, 42);
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(513, data)).ok());
  rig.devices[0]->Fail();
  rig.devices[2]->Fail();
  ASSERT_TRUE(rig.volume->operational());
  auto read = rig.sim.RunUntilComplete(rig.volume->Read(513, data.size()));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  rig.devices[0]->Replace();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Rebuild(0)).ok());
  rig.devices[2]->Replace();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Rebuild(2)).ok());
  read = rig.sim.RunUntilComplete(rig.volume->Read(513, data.size()));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(Raid6, WritesWhileDoubleDegradedThenRebuild) {
  Rig rig(RaidLevel::kRaid6, 5);
  auto data = rig.MakeData(kMiB, 5);
  rig.devices[1]->Fail();
  rig.devices[3]->Fail();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(0, data)).ok());
  // Repair both, rebuild, then verify with the original devices healthy.
  rig.devices[1]->Replace();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Rebuild(1)).ok());
  rig.devices[3]->Replace();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Rebuild(3)).ok());
  auto read = rig.sim.RunUntilComplete(rig.volume->Read(0, data.size()));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(Raid1, MirrorsSurviveSingleFailureAndRebuild) {
  Rig rig(RaidLevel::kRaid1, 2);
  auto data = rig.MakeData(256 * kKiB, 3);
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(0, data)).ok());
  rig.devices[0]->Fail();
  auto read = rig.sim.RunUntilComplete(rig.volume->Read(0, data.size()));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  rig.devices[0]->Replace();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Rebuild(0)).ok());
  rig.devices[1]->Fail();  // now the other mirror dies
  read = rig.sim.RunUntilComplete(rig.volume->Read(0, data.size()));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(Raid5, RebuiltDeviceHoldsCorrectParity) {
  Rig rig(RaidLevel::kRaid5, 4);
  auto data = rig.MakeData(4 * kMiB, 8);
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(0, data)).ok());
  // Snapshot-by-proxy: fail+replace+rebuild device 2, then fail a DIFFERENT
  // device; reads must still reconstruct correctly, proving the rebuilt
  // device's data+parity chunks are right.
  rig.devices[2]->Fail();
  rig.devices[2]->Replace();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Rebuild(2)).ok());
  rig.devices[0]->Fail();
  auto read = rig.sim.RunUntilComplete(rig.volume->Read(0, data.size()));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

// §3.3: each RAID-5 of 7 HDDs sustains ~1.2 GB/s reads / ~1.0 GB/s writes.
TEST(Raid5, SevenDriveVolumeMatchesPaperThroughput) {
  Rig rig(RaidLevel::kRaid5, 7, kGiB);
  const std::uint64_t n = 600 * kMB;
  std::vector<std::uint8_t> data(n, 7);
  sim::TimePoint t0 = rig.sim.now();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Write(0, data)).ok());
  double write_rate = static_cast<double>(n) / ToSeconds(rig.sim.now() - t0);
  EXPECT_NEAR(write_rate / 1e9, 1.0, 0.12);

  t0 = rig.sim.now();
  ASSERT_TRUE(rig.sim.RunUntilComplete(rig.volume->Read(0, n)).ok());
  double read_rate = static_cast<double>(n) / ToSeconds(rig.sim.now() - t0);
  EXPECT_NEAR(read_rate / 1e9, 1.2, 0.12);
}

TEST(Raid, OutOfRangeRejected) {
  Rig rig(RaidLevel::kRaid5, 3);
  EXPECT_EQ(rig.sim
                .RunUntilComplete(rig.volume->Write(
                    rig.volume->capacity(), std::vector<std::uint8_t>(1)))
                .code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ros::disk
