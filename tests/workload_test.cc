#include "src/workload/filebench.h"
#include "src/workload/tco.h"

#include <gtest/gtest.h>

namespace ros::workload {
namespace {

TEST(ArchivalGenerator, SizesWithinBoundsAndLogUniform) {
  Rng rng(3);
  auto files = GenerateArchivalFiles(rng, 2000, "/archive", 1024,
                                     100 * 1024 * 1024);
  ASSERT_EQ(files.size(), 2000u);
  int small = 0;
  for (const auto& file : files) {
    EXPECT_GE(file.size, 1024u);
    EXPECT_LE(file.size, 100u * 1024 * 1024);
    EXPECT_EQ(file.path.rfind("/archive/", 0), 0u);
    small += file.size < 1024 * 1024 ? 1 : 0;
  }
  // Log-uniform: around 60% of files fall below 1 MiB for this range.
  EXPECT_GT(small, 1000);
  EXPECT_LT(small, 1500);
}

TEST(ArchivalGenerator, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  auto fa = GenerateArchivalFiles(a, 50, "/r", 100, 1000);
  auto fb = GenerateArchivalFiles(b, 50, "/r", 100, 1000);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].path, fb[i].path);
    EXPECT_EQ(fa[i].size, fb[i].size);
  }
}

// §2.1: optical ~250 K$/PB over 100 years, about 1/3 of HDD and 1/2 of
// tape.
TEST(TcoModel, MatchesPaperRatios) {
  auto optical = ComputeTco(OpticalProfile());
  auto hdd = ComputeTco(HddProfile());
  auto tape = ComputeTco(TapeProfile());

  EXPECT_NEAR(optical.total, 250'000, 25'000);
  EXPECT_NEAR(hdd.total / optical.total, 3.0, 0.45);
  EXPECT_NEAR(tape.total / optical.total, 2.0, 0.3);
}

TEST(TcoModel, HddDominatedByRepurchase) {
  auto hdd = ComputeTco(HddProfile());
  EXPECT_EQ(hdd.purchases, 20);
  EXPECT_GT(hdd.media_cost, hdd.operations_cost);
  EXPECT_GT(hdd.media_cost, hdd.migration_cost);
}

TEST(TcoModel, TapeDominatedByOperations) {
  auto tape = ComputeTco(TapeProfile());
  EXPECT_GT(tape.operations_cost, tape.media_cost);
}

TEST(TcoModel, ScalesLinearlyWithCapacity) {
  auto one = ComputeTco(OpticalProfile(), 1.0);
  auto ten = ComputeTco(OpticalProfile(), 10.0);
  EXPECT_NEAR(ten.total, 10 * one.total, 1.0);
}

TEST(TcoModel, ShorterHorizonAvoidsMigrations) {
  // Within one optical media lifetime there is nothing to migrate.
  auto short_term = ComputeTco(OpticalProfile(), 1.0, 40.0);
  EXPECT_EQ(short_term.purchases, 1);
  EXPECT_EQ(short_term.migration_cost, 0);
}

}  // namespace
}  // namespace ros::workload
