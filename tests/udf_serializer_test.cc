#include "src/udf/serializer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/udf/image.h"

namespace ros::udf {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

Image SampleImage() {
  Image image("image-0042", 25 * kGB);
  ROS_CHECK(image.AddFile("/archive/2016/trace.bin", Bytes("trace-data"),
                          4096).ok());
  ROS_CHECK(image.AddFile("/archive/2016/notes.txt", Bytes("hello")).ok());
  ROS_CHECK(image.AddLink("/archive/2017/huge.part1", "image-0041").ok());
  ROS_CHECK(image.MakeDirs("/empty/dir/chain").ok());
  image.Close();
  return image;
}

TEST(UdfSerializer, RoundTripPreservesEverything) {
  Image original = SampleImage();
  auto bytes = Serializer::Serialize(original);
  auto parsed = Serializer::Parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->id(), "image-0042");
  EXPECT_EQ(parsed->capacity(), 25 * kGB);
  EXPECT_TRUE(parsed->closed());
  EXPECT_EQ(parsed->file_count(), original.file_count());
  EXPECT_EQ(parsed->used_bytes(), original.used_bytes());

  auto data = parsed->ReadFile("/archive/2016/trace.bin", 0, 10);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("trace-data"));
  // Sparse logical size survives.
  auto node = parsed->Lookup("/archive/2016/trace.bin");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->logical_size, 4096u);

  auto link = parsed->Lookup("/archive/2017/huge.part1");
  ASSERT_TRUE(link.ok());
  EXPECT_EQ((*link)->link_target_image, "image-0041");

  EXPECT_TRUE(parsed->Exists("/empty/dir/chain"));
}

TEST(UdfSerializer, WalkOrderIsDeterministic) {
  Image original = SampleImage();
  auto a = Serializer::Serialize(original);
  auto b = Serializer::Serialize(original);
  EXPECT_EQ(a, b);
}

TEST(UdfSerializer, CorruptionDetectedByCrc) {
  auto bytes = Serializer::Serialize(SampleImage());
  for (std::size_t pos : {std::size_t{20}, bytes.size() / 2,
                          bytes.size() - 20}) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0xFF;
    auto parsed = Serializer::Parse(corrupted);
    EXPECT_FALSE(parsed.ok()) << "flip at " << pos;
  }
}

TEST(UdfSerializer, TruncationDetected) {
  auto bytes = Serializer::Serialize(SampleImage());
  for (std::size_t keep : {std::size_t{4}, std::size_t{30},
                           bytes.size() - 1}) {
    auto truncated = std::vector<std::uint8_t>(bytes.begin(),
                                               bytes.begin() + keep);
    EXPECT_FALSE(Serializer::Parse(truncated).ok()) << "keep " << keep;
  }
}

TEST(UdfSerializer, BadMagicRejected) {
  auto bytes = Serializer::Serialize(SampleImage());
  bytes[0] = 'X';
  EXPECT_EQ(Serializer::Parse(bytes).status().code(), StatusCode::kDataLoss);
}

TEST(UdfSerializer, EmptyImageRoundTrips) {
  Image empty("empty-img", kGB);
  auto parsed = Serializer::Parse(Serializer::Serialize(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->file_count(), 0u);
  EXPECT_EQ(parsed->id(), "empty-img");
}

// Property sweep: random trees round-trip byte-identically.
class SerializerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SerializerFuzz, RandomTreeRoundTrip) {
  Rng rng(GetParam());
  Image image("fuzz-" + std::to_string(GetParam()), kGB);
  const char* dirs[] = {"/a", "/a/b", "/c", "/c/d/e", "/f"};
  for (int i = 0; i < 40; ++i) {
    std::string dir = dirs[rng.Below(5)];
    std::string path = dir + "/file" + std::to_string(i);
    std::vector<std::uint8_t> data(rng.Below(5000));
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.Next());
    }
    const std::uint64_t logical = data.size() + rng.Below(3) * 1000;
    ROS_CHECK(image.AddFile(path, data, logical).ok());
  }
  image.Close();

  auto bytes = Serializer::Serialize(image);
  auto parsed = Serializer::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(Serializer::Serialize(*parsed), bytes);
  EXPECT_EQ(parsed->file_count(), image.file_count());
  EXPECT_EQ(parsed->used_bytes(), image.used_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace ros::udf
