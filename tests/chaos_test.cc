// Chaos tests: deterministic fault injection against the full OLFS stack.
//
// Every test runs a seeded fault plan and asserts the self-healing
// invariants of §4.7: acked writes stay readable byte-for-byte, failed
// burns migrate to spare arrays, transient mechanical faults are retried
// in place, and an installed-but-empty injector leaves the simulation
// bit-identical to running with none at all.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/olfs/maintenance.h"
#include "src/olfs/olfs.h"
#include "src/sim/fault.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

using sim::FaultKind;
using sim::Seconds;

OlfsParams ChaosParams() {
  OlfsParams params;
  params.disc_type = drive::DiscType::kBdr25;
  params.disc_capacity_override = 16 * kMiB;
  // No read cache: every read exercises the fetch + optical read path,
  // which is where the fault hooks live.
  params.read_cache_bytes = 0;
  return params;
}

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest() { Reset(ChaosParams()); }

  ~ChaosTest() override {
    if (sim_ != nullptr) {
      sim_->Shutdown();
    }
  }

  void Reset(OlfsParams params) {
    if (sim_ != nullptr) {
      sim_->Shutdown();
    }
    olfs_.reset();
    system_.reset();
    faults_.reset();
    sim_ = std::make_unique<sim::Simulator>();
    system_ = std::make_unique<RosSystem>(*sim_, TestSystemConfig());
    olfs_ = std::make_unique<Olfs>(*sim_, system_.get(), params);
    olfs_->burns().burn_start_interval = Seconds(1);
  }

  // Installs a fresh injector on every hook in the rack.
  sim::FaultInjector& InstallInjector(std::uint64_t seed) {
    faults_ = std::make_unique<sim::FaultInjector>(seed);
    system_->InstallFaultInjector(faults_.get());
    return *faults_;
  }

  std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) {
      b = static_cast<std::uint8_t>(rng.Next());
    }
    return out;
  }

  Status Create(const std::string& path,
                const std::vector<std::uint8_t>& data) {
    return sim_->RunUntilComplete(olfs_->Create(path, data, data.size()));
  }

  // Reads `path` fully and requires the bytes to match `expect`.
  void ExpectReadsBack(const std::string& path,
                       const std::vector<std::uint8_t>& expect) {
    auto data = sim_->RunUntilComplete(
        olfs_->Read(path, 0, expect.size()));
    ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    EXPECT_EQ(*data, expect) << path;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<RosSystem> system_;
  std::unique_ptr<Olfs> olfs_;
  std::unique_ptr<sim::FaultInjector> faults_;
};

// An installed injector with no configured faults must not perturb the
// simulation: same bytes, same simulated clock, tick for tick.
TEST_F(ChaosTest, EmptyInjectorIsTickAndByteIdentical) {
  auto workload = [&]() -> std::pair<sim::TimePoint,
                                     std::vector<std::uint8_t>> {
    std::vector<std::uint8_t> all;
    for (int i = 0; i < 3; ++i) {
      auto payload = RandomBytes(24 * kKiB + i * 1000, 100 + i);
      ROS_CHECK(Create("/d/f" + std::to_string(i), payload).ok());
    }
    ROS_CHECK(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
    for (int i = 0; i < 3; ++i) {
      auto data = sim_->RunUntilComplete(olfs_->Read(
          "/d/f" + std::to_string(i), 0, 24 * kKiB + i * 1000));
      ROS_CHECK(data.ok());
      all.insert(all.end(), data->begin(), data->end());
    }
    return {sim_->now(), std::move(all)};
  };

  auto [baseline_now, baseline_bytes] = workload();

  Reset(ChaosParams());
  sim::FaultInjector& faults = InstallInjector(/*seed=*/42);
  auto [chaos_now, chaos_bytes] = workload();

  EXPECT_EQ(baseline_now, chaos_now);
  EXPECT_EQ(baseline_bytes, chaos_bytes);
  // The hooks were consulted but injected nothing and drew no randomness.
  EXPECT_GT(faults.ops_seen(FaultKind::kLatentSectorError), 0u);
  EXPECT_EQ(faults.total_injected(), 0u);
}

// The aged injector hook with extra_rate=0 is indistinguishable from the
// plain hook: same decisions, same randomness consumed, so installing the
// (disabled) aging model can never perturb a run.
TEST_F(ChaosTest, DisabledAgingHookIsDrawForDrawIdentical) {
  sim::FaultInjector plain(/*seed=*/123);
  sim::FaultInjector aged(/*seed=*/123);
  plain.SetRate(FaultKind::kLatentSectorError, 0.3);
  aged.SetRate(FaultKind::kLatentSectorError, 0.3);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(plain.ShouldInject(FaultKind::kLatentSectorError, "read"),
              aged.ShouldInjectAged(FaultKind::kLatentSectorError, "read",
                                    /*extra_rate=*/0.0))
        << "diverged at draw " << i;
  }
  EXPECT_EQ(plain.injected(FaultKind::kLatentSectorError),
            aged.injected(FaultKind::kLatentSectorError));
  // Both injectors are in the same RNG state afterwards: their futures
  // agree too.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(plain.ShouldInject(FaultKind::kMechFault, "mech"),
              aged.ShouldInject(FaultKind::kMechFault, "mech"));
  }
  // RecordExternal bumps telemetry without consuming randomness.
  aged.RecordExternal(FaultKind::kLatentSectorError, "aging", 5);
  EXPECT_EQ(aged.injected(FaultKind::kLatentSectorError),
            plain.injected(FaultKind::kLatentSectorError) + 5);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(plain.ShouldInject(FaultKind::kMechFault, "mech"),
              aged.ShouldInject(FaultKind::kMechFault, "mech"));
  }
}

// A populated-but-disabled media aging model must leave the simulation
// bit-identical to the default configuration — same clock, same bytes —
// exactly like an installed-but-empty fault injector.
TEST_F(ChaosTest, DisabledAgingModelIsTickAndByteIdentical) {
  auto workload = [&]() -> std::pair<sim::TimePoint,
                                     std::vector<std::uint8_t>> {
    std::vector<std::uint8_t> all;
    for (int i = 0; i < 3; ++i) {
      auto payload = RandomBytes(24 * kKiB + i * 1000, 500 + i);
      ROS_CHECK(Create("/age/f" + std::to_string(i), payload).ok());
    }
    ROS_CHECK(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
    sim_->RunFor(Seconds(3600));  // idle time the aging clock could use
    for (int i = 0; i < 3; ++i) {
      auto data = sim_->RunUntilComplete(olfs_->Read(
          "/age/f" + std::to_string(i), 0, 24 * kKiB + i * 1000));
      ROS_CHECK(data.ok());
      all.insert(all.end(), data->begin(), data->end());
    }
    return {sim_->now(), std::move(all)};
  };

  auto [baseline_now, baseline_bytes] = workload();

  OlfsParams aged = ChaosParams();
  // Every rate dialed up, but the master switch off: nothing may change.
  aged.media_aging.enabled = false;
  aged.media_aging.lse_per_sector_year = 10.0;
  aged.media_aging.growth_per_year = 10.0;
  aged.media_aging.read_fault_per_year = 10.0;
  Reset(aged);
  sim::FaultInjector& faults = InstallInjector(/*seed=*/42);
  auto [aged_now, aged_bytes] = workload();

  EXPECT_EQ(baseline_now, aged_now);
  EXPECT_EQ(baseline_bytes, aged_bytes);
  EXPECT_EQ(faults.total_injected(), 0u);
}

// The deep scrub runs strictly in the scheduler's background class: under
// a concurrent foreground read stream every read completes, queue delays
// stay bounded, and the scheduler's self-checks hold.
TEST_F(ChaosTest, BackgroundScrubNeverStarvesForegroundReads) {
  OlfsParams params = ChaosParams();
  params.media_aging.enabled = true;
  params.media_aging.lse_per_sector_year = 0.0005;
  params.media_aging.seed = 77;
  Reset(params);

  std::map<std::string, std::vector<std::uint8_t>> acked;
  std::vector<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    const std::string path = "/busy/f" + std::to_string(i);
    auto payload = RandomBytes(12 * kKiB + i * 2000, 700 + i);
    ASSERT_TRUE(Create(path, payload).ok()) << path;
    ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
    acked[path] = std::move(payload);
    paths.push_back(path);
  }
  ASSERT_NE(olfs_->fetch_scheduler(), nullptr);
  sim_->RunFor(Seconds(3 * 365 * 24 * 3600.0));  // three years of rot

  // Scrub pass and foreground reads in flight together.
  StatusOr<ScrubPassReport> pass = UnavailableError("still running");
  sim_->Spawn([](Olfs* olfs,
                 StatusOr<ScrubPassReport>* out) -> sim::Task<void> {
    *out = co_await olfs->scrub().RunPass();
  }(olfs_.get(), &pass));

  std::vector<Status> results(paths.size(), UnavailableError("running"));
  for (std::size_t i = 0; i < paths.size(); ++i) {
    sim_->Spawn([](Olfs* olfs, std::string path,
                   const std::vector<std::uint8_t>* expect,
                   Status* out) -> sim::Task<void> {
      auto data = co_await olfs->Read(path, 0, expect->size());
      if (!data.ok()) {
        *out = data.status();
      } else {
        *out = *data == *expect ? OkStatus()
                                : DataLossError("content mismatch");
      }
    }(olfs_.get(), paths[i], &acked[paths[i]], &results[i]));
  }
  sim_->Run();  // drain: scrub + every foreground read complete

  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  EXPECT_GT(pass->images, 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok())
        << paths[i] << ": " << results[i].ToString();
  }
  const FetchSchedulerStats& stats = olfs_->fetch_scheduler()->stats();
  // The scrub went through the background class, which yields while
  // foreground demand is queued — and foreground delay stays bounded by
  // at most a handful of array swaps, not the length of the scrub.
  EXPECT_GT(stats.background_acquires, 0u);
  EXPECT_EQ(stats.speculative_demand_evictions, 0u);
  EXPECT_LT(stats.max_queue_delay, Seconds(900));
  for (int b = 0; b < olfs_->mech().num_bays(); ++b) {
    EXPECT_NE(olfs_->mech().bay_state(b), BayState::kBusy) << "bay " << b;
  }
}

// A latent sector error under the read head is served degraded from
// parity — correct bytes, counters ticking — and repaired onto fresh
// media in the background.
TEST_F(ChaosTest, InjectedSectorErrorServedDegradedAndRepaired) {
  auto payload = RandomBytes(48 * kKiB, 7);
  ASSERT_TRUE(Create("/chaos/rot.bin", payload).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  sim::FaultInjector& faults = InstallInjector(/*seed=*/7);
  faults.FailNth(FaultKind::kLatentSectorError, /*site=*/"", /*nth=*/1);

  ExpectReadsBack("/chaos/rot.bin", payload);
  EXPECT_EQ(faults.injected(FaultKind::kLatentSectorError), 1u);
  EXPECT_EQ(olfs_->degraded_reads(), 1u);
  EXPECT_EQ(olfs_->reconstructions(), 1u);
  EXPECT_EQ(olfs_->images_repaired(), 1u);

  // The repair re-burn drains; afterwards the file reads clean.
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
  ExpectReadsBack("/chaos/rot.bin", payload);
  EXPECT_EQ(olfs_->degraded_reads(), 1u);
}

// A permanent burn failure marks the array kFailed and the job completes
// on a spare array: the acked data ends up safely on other media.
TEST_F(ChaosTest, FailedBurnEndsOnSpareArray) {
  sim::FaultInjector& faults = InstallInjector(/*seed=*/3);
  faults.FailNth(FaultKind::kBurnFailure, /*site=*/"", /*nth=*/1);

  auto payload = RandomBytes(32 * kKiB, 9);
  ASSERT_TRUE(Create("/chaos/burnme.bin", payload).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  EXPECT_EQ(faults.injected(FaultKind::kBurnFailure), 1u);
  EXPECT_EQ(olfs_->burns().arrays_reallocated(), 1);
  EXPECT_EQ(olfs_->da_index().CountState(ArrayState::kFailed), 1);
  EXPECT_EQ(olfs_->da_index().CountState(ArrayState::kUsed), 1);
  EXPECT_TRUE(olfs_->burns().fatal_error().ok());
  EXPECT_EQ(olfs_->burns().last_error().code(), StatusCode::kDataLoss);

  auto index = sim_->RunUntilComplete(olfs_->mv().Get("/chaos/burnme.bin"));
  ASSERT_TRUE(index.ok());
  auto record =
      olfs_->images().Lookup((*index->Latest())->parts[0].image_id);
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE((*record)->disc.has_value());
  // The image's home is the spare (kUsed) array, not the failed one.
  EXPECT_EQ(olfs_->da_index().state((*record)->disc->tray),
            ArrayState::kUsed);
  ExpectReadsBack("/chaos/burnme.bin", payload);
}

// S3: a transient mechanical fault mid-burn is retried in place.
// last_error() records the transient error for telemetry while
// fatal_error() — what DrainAll reports — stays clean.
TEST_F(ChaosTest, TransientMechFaultRetriedInPlace) {
  sim::FaultInjector& faults = InstallInjector(/*seed=*/5);
  faults.FailNth(FaultKind::kMechFault, /*site=*/"", /*nth=*/1);

  auto payload = RandomBytes(20 * kKiB, 11);
  ASSERT_TRUE(Create("/chaos/retry.bin", payload).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  EXPECT_EQ(faults.injected(FaultKind::kMechFault), 1u);
  EXPECT_GE(olfs_->burns().burn_retries(), 1);
  EXPECT_EQ(olfs_->burns().arrays_reallocated(), 0);
  EXPECT_EQ(olfs_->burns().last_error().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(olfs_->burns().fatal_error().ok());
  ExpectReadsBack("/chaos/retry.bin", payload);
}

// S3: when every burn attempt fails permanently, reallocation gives up
// after exhausting the spare budget and DrainAll reports the terminal
// error — but the acked bytes are still served from the disk buffer.
TEST_F(ChaosTest, TerminalBurnFailureReportedByDrainAll) {
  sim::FaultInjector& faults = InstallInjector(/*seed=*/13);
  faults.SetRate(FaultKind::kBurnFailure, 1.0);

  auto payload = RandomBytes(16 * kKiB, 17);
  ASSERT_TRUE(Create("/chaos/doomed.bin", payload).ok());
  Status drained = sim_->RunUntilComplete(olfs_->FlushAndDrain());
  EXPECT_EQ(drained.code(), StatusCode::kDataLoss);
  EXPECT_EQ(olfs_->burns().fatal_error().code(), StatusCode::kDataLoss);
  EXPECT_EQ(olfs_->burns().last_error().code(), StatusCode::kDataLoss);
  EXPECT_GT(olfs_->da_index().CountState(ArrayState::kFailed), 0);
  ExpectReadsBack("/chaos/doomed.bin", payload);
}

// S1 regression: a FetchLease parks its bay when dropped, and a fetch
// that errors out mid-flight never leaks a busy bay.
TEST_F(ChaosTest, FetchLeaseReleasesBayOnDropAndOnError) {
  auto payload = RandomBytes(24 * kKiB, 23);
  ASSERT_TRUE(Create("/chaos/lease.bin", payload).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
  auto index = sim_->RunUntilComplete(olfs_->mv().Get("/chaos/lease.bin"));
  ASSERT_TRUE(index.ok());
  const std::string image_id = (*index->Latest())->parts[0].image_id;

  // Drop a live lease without calling Release(): the destructor parks it.
  int bay = -1;
  {
    auto lease =
        sim_->RunUntilComplete(olfs_->fetches().FetchDisc(image_id));
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    bay = lease->bay();
    EXPECT_EQ(olfs_->mech().bay_state(bay), BayState::kBusy);
    lease->Release();
    lease->Release();  // idempotent
    EXPECT_EQ(olfs_->mech().bay_state(bay), BayState::kParked);
  }
  // Park the array back on its tray so later fetches must reload it.
  {
    auto again =
        sim_->RunUntilComplete(olfs_->fetches().FetchDisc(image_id));
    ASSERT_TRUE(again.ok());
    ASSERT_TRUE(sim_->RunUntilComplete(
                    olfs_->mech().UnloadArray(again->bay())).ok());
  }

  // Every mechanical op faults: the fetch retries, then errors out.
  sim::FaultInjector& faults = InstallInjector(/*seed=*/29);
  faults.SetRate(FaultKind::kMechFault, 1.0);
  auto lease = sim_->RunUntilComplete(olfs_->fetches().FetchDisc(image_id));
  EXPECT_FALSE(lease.ok());
  EXPECT_GE(olfs_->fetches().retries(), 1u);
  for (int b = 0; b < olfs_->mech().num_bays(); ++b) {
    EXPECT_NE(olfs_->mech().bay_state(b), BayState::kBusy) << "bay " << b;
  }

  // With the mechanics healthy again the same bay serves the read.
  faults.SetRate(FaultKind::kMechFault, 0.0);
  ExpectReadsBack("/chaos/lease.bin", payload);
}

// The headline invariant: under a seeded mix of at least three fault
// kinds, every acked write reads back byte-identical, and after the storm
// a physical disc scan (RebuildNamespace) still recovers the namespace.
TEST_F(ChaosTest, SeededChaosRunLosesNoAckedWrites) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    Reset(ChaosParams());
    sim::FaultInjector& faults = InstallInjector(seed);
    // Scripted one-shots guarantee kind coverage; low background rates
    // add seed-dependent extra damage on top.
    faults.FailNth(FaultKind::kBurnFailure, /*site=*/"", /*nth=*/2);
    faults.FailNth(FaultKind::kMechFault, /*site=*/"", /*nth=*/10);
    faults.FailNth(FaultKind::kLatentSectorError, /*site=*/"", /*nth=*/3);
    faults.SetRate(FaultKind::kLatentSectorError, 0.002);
    faults.SetRate(FaultKind::kMechFault, 0.002);

    std::map<std::string, std::vector<std::uint8_t>> acked;
    for (int i = 0; i < 5; ++i) {
      const std::string path = "/storm/f" + std::to_string(i);
      auto payload = RandomBytes(8 * kKiB + i * 5000, seed * 100 + i);
      ASSERT_TRUE(Create(path, payload).ok()) << path;
      acked[path] = std::move(payload);
    }
    Status drained = sim_->RunUntilComplete(olfs_->FlushAndDrain());
    ASSERT_TRUE(drained.ok()) << drained.ToString();

    // Every acked write reads back byte-identical (degraded is fine).
    for (const auto& [path, expect] : acked) {
      ExpectReadsBack(path, expect);
    }
    int kinds_hit = 0;
    for (int k = 0; k < sim::kNumFaultKinds; ++k) {
      kinds_hit += faults.injected(static_cast<FaultKind>(k)) > 0;
    }
    EXPECT_GE(kinds_hit, 3);

    // Storm over: scrub out the physical rot, drain repairs, then prove
    // the namespace survives a from-scratch disc scan.
    system_->InstallFaultInjector(nullptr);
    auto scrubbed = sim_->RunUntilComplete(olfs_->ScrubAndRepair());
    ASSERT_TRUE(scrubbed.ok()) << scrubbed.status().ToString();
    ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

    std::set<int> tray_indices;
    for (const std::string& id : olfs_->images().BurnedImages()) {
      auto record = olfs_->images().Lookup(id);
      ASSERT_TRUE(record.ok());
      if ((*record)->disc.has_value()) {
        tray_indices.insert((*record)->disc->tray.ToIndex());
      }
    }
    ASSERT_FALSE(tray_indices.empty());
    std::vector<mech::TrayAddress> trays;
    for (int t : tray_indices) {
      trays.push_back(mech::TrayAddress::FromIndex(t));
    }
    olfs_ = std::make_unique<Olfs>(*sim_, system_.get(), ChaosParams());
    olfs_->burns().burn_start_interval = Seconds(1);
    auto report = sim_->RunUntilComplete(olfs_->RebuildNamespace(trays));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // Rotted sectors stay rotted on WORM media (repairs re-burn onto
    // fresh discs), so the scan may skip old damaged media — what must
    // hold is that every acked write is recovered regardless.
    EXPECT_GE(report->images_parsed, 1);
    for (const auto& [path, expect] : acked) {
      ExpectReadsBack(path, expect);
    }
  }
}

// The fetch scheduler under a mechanical fault storm: a failed load
// fails its whole batch, every waiter re-enters the queue through the
// fetch retry policy, and once the storm passes all reads complete
// byte-identical with no bay left busy and no request stranded.
TEST_F(ChaosTest, SchedulerFaultStormRetriesRequeueWithoutBayLeaks) {
  OlfsParams params = ChaosParams();
  // Give fetches enough retry budget to outlast the storm window.
  params.mech_retry.max_attempts = 10;
  Reset(params);

  // Three files on three separate arrays: the scheduler has real
  // dispatch decisions to make while the mechanics are failing.
  std::vector<std::string> paths;
  std::map<std::string, std::vector<std::uint8_t>> acked;
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/storm/s" + std::to_string(i);
    auto payload = RandomBytes(8 * kKiB + i * 1000, 60 + i);
    ASSERT_TRUE(Create(path, payload).ok()) << path;
    ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());
    acked[path] = std::move(payload);
    paths.push_back(path);
  }
  ASSERT_NE(olfs_->fetch_scheduler(), nullptr);

  sim::FaultInjector& faults = InstallInjector(/*seed=*/41);
  faults.SetRate(FaultKind::kMechFault, 1.0);

  std::vector<Status> results(paths.size(), UnavailableError("running"));
  for (std::size_t i = 0; i < paths.size(); ++i) {
    sim_->Spawn([](Olfs* olfs, std::string path,
                   const std::vector<std::uint8_t>* expect,
                   Status* out) -> sim::Task<void> {
      auto data = co_await olfs->Read(path, 0, expect->size());
      if (!data.ok()) {
        *out = data.status();
      } else {
        *out = *data == *expect ? OkStatus()
                                : DataLossError("content mismatch");
      }
    }(olfs_.get(), paths[i], &acked[paths[i]], &results[i]));
  }

  // Storm: every mechanical op faults; loads fail and batches fan out to
  // their waiters, which re-enter the queue with backoff.
  sim_->RunFor(Seconds(100));
  faults.SetRate(FaultKind::kMechFault, 0.0);
  sim_->RunFor(Seconds(900));  // heal: retries drain the queue

  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok())
        << paths[i] << ": " << results[i].ToString();
  }
  const FetchSchedulerStats& stats = olfs_->fetch_scheduler()->stats();
  EXPECT_GE(stats.failed_batches, 1u);
  EXPECT_GE(olfs_->fetches().retries(), 1u);
  // No bay leaked busy, no request stranded in the queue.
  for (int b = 0; b < olfs_->mech().num_bays(); ++b) {
    EXPECT_NE(olfs_->mech().bay_state(b), BayState::kBusy) << "bay " << b;
  }
  EXPECT_EQ(olfs_->fetch_scheduler()->queue_depth(), 0);
  EXPECT_EQ(stats.completed, stats.requests);
}

// The maintenance report surfaces the self-healing counters and the raw
// injector telemetry for the administrator console.
TEST_F(ChaosTest, MaintenanceReportExposesResilienceCounters) {
  auto payload = RandomBytes(24 * kKiB, 31);
  ASSERT_TRUE(Create("/mi/report.bin", payload).ok());
  ASSERT_TRUE(sim_->RunUntilComplete(olfs_->FlushAndDrain()).ok());

  sim::FaultInjector& faults = InstallInjector(/*seed=*/37);
  faults.FailNth(FaultKind::kLatentSectorError, /*site=*/"", /*nth=*/1);
  ExpectReadsBack("/mi/report.bin", payload);

  Maintenance mi(olfs_.get());
  json::Value report = mi.StatusReport();
  ASSERT_TRUE(report.contains("resilience"));
  const json::Value& res = report["resilience"];
  EXPECT_EQ(res["degraded_reads"].as_int(), 1);
  EXPECT_EQ(res["reconstructions"].as_int(), 1);
  EXPECT_EQ(res["images_repaired"].as_int(), 1);
  EXPECT_EQ(res["burn_retries"].as_int(), 0);
  EXPECT_EQ(res["arrays_reallocated"].as_int(), 0);
  EXPECT_EQ(res["fetch_retries"].as_int(), 0);
  EXPECT_EQ(res["mech_recoveries"].as_int(), 0);
  ASSERT_TRUE(res.contains("injected_faults"));
  const json::Value& injected = res["injected_faults"];
  EXPECT_EQ(injected["latent_sector_error"]["injected"].as_int(), 1);
  EXPECT_GE(injected["latent_sector_error"]["ops_seen"].as_int(), 1);
  EXPECT_EQ(injected["burn_failure"]["injected"].as_int(), 0);
}

}  // namespace
}  // namespace ros::olfs
