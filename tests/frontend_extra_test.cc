// Additional frontend-stack coverage: the ext4/samba (non-OLFS) timed
// paths, layer-cost arithmetic, and configuration naming.
#include "src/frontend/stack.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/disk/block_device.h"
#include "src/disk/volume.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::frontend {
namespace {

TEST(StackConfigName, AllNamed) {
  EXPECT_EQ(StackConfigName(StackConfig::kExt4), "ext4");
  EXPECT_EQ(StackConfigName(StackConfig::kExt4Fuse), "ext4+FUSE");
  EXPECT_EQ(StackConfigName(StackConfig::kExt4Olfs), "ext4+OLFS");
  EXPECT_EQ(StackConfigName(StackConfig::kSamba), "samba");
  EXPECT_EQ(StackConfigName(StackConfig::kSambaFuse), "samba+FUSE");
  EXPECT_EQ(StackConfigName(StackConfig::kSambaOlfs), "samba+OLFS");
}

TEST(LayerCosts, DerivedFromFig6Normalization) {
  LayerCosts costs;
  // ext4 baselines.
  EXPECT_NEAR(1.0 / costs.ext4_read, 1.2e9, 1);
  EXPECT_NEAR(1.0 / costs.ext4_write, 1.0e9, 1);
  // Composing ext4 + fuse must give Fig 6's 0.759 / 0.482.
  EXPECT_NEAR(1.0 / (costs.ext4_read + costs.fuse_read) / 1.2e9, 0.759,
              1e-9);
  EXPECT_NEAR(1.0 / (costs.ext4_write + costs.fuse_write) / 1.0e9, 0.482,
              1e-9);
  // samba likewise.
  EXPECT_NEAR(1.0 / (costs.ext4_read + costs.samba_read) / 1.2e9, 0.311,
              1e-9);
  EXPECT_NEAR(1.0 / (costs.ext4_write + costs.samba_write) / 1.0e9, 0.320,
              1e-9);
}

class NonOlfsStackTest : public ::testing::Test {
 protected:
  NonOlfsStackTest()
      : device_(sim_, "hdd", 8 * kGiB, disk::HddPerf()),
        volume_(sim_, &device_,
                disk::VolumeParams{.journal_metadata = false}) {}

  sim::Simulator sim_;
  disk::StorageDevice device_;
  disk::Volume volume_;
};

TEST_F(NonOlfsStackTest, TimedCreateAndReadOnExt4) {
  FrontendStack stack(sim_, StackConfig::kExt4, &volume_, nullptr);
  auto create = sim_.RunUntilComplete(stack.TimedCreate("/f", 1 * kKiB));
  ASSERT_TRUE(create.ok());
  EXPECT_LT(sim::ToMillis(*create), 20.0);  // raw ext4 is fast
  auto read = sim_.RunUntilComplete(stack.TimedRead("/f", 1 * kKiB));
  ASSERT_TRUE(read.ok());
  EXPECT_LT(sim::ToMillis(*read), 10.0);
  EXPECT_EQ(stack.last_op_trace(), (std::vector<std::string>{"read"}));
}

TEST_F(NonOlfsStackTest, SambaAddsProtocolWorkToSmallOps) {
  FrontendStack ext4(sim_, StackConfig::kExt4, &volume_, nullptr);
  FrontendStack samba(sim_, StackConfig::kSamba, &volume_, nullptr);
  auto plain = sim_.RunUntilComplete(ext4.TimedCreate("/a", 1 * kKiB));
  auto remote = sim_.RunUntilComplete(samba.TimedCreate("/b", 1 * kKiB));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(remote.ok());
  // 7 extra stats + protocol round trips dominate.
  EXPECT_GT(sim::ToMillis(*remote), sim::ToMillis(*plain) + 30.0);
}

TEST_F(NonOlfsStackTest, StreamReadRequiresExistingFile) {
  FrontendStack stack(sim_, StackConfig::kExt4, &volume_, nullptr);
  EXPECT_FALSE(sim_.RunUntilComplete(
                   stack.StreamRead("/missing", 0, 1024)).ok());
}

}  // namespace
}  // namespace ros::frontend
