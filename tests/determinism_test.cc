// Determinism oracle tests (DESIGN.md §5h).
//
// Unit-level: the EventHasher's record/check modes, first-divergence
// capture, and truncation detection. System-level: a mixed OLFS workload
// (writes under fault injection, read-back, scrub) double-run with the
// oracle installed must replay its event stream bit-identically.
#include "src/sim/event_hasher.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/olfs/olfs.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::sim {
namespace {

TEST(EventHasher, RecordBuildsTrailAndDigest) {
  EventHasher hasher;
  EXPECT_FALSE(hasher.checking());
  hasher.Fold("dispatch", "coro", 1, 2);
  hasher.Fold("fault", "drive:0", 3, 4);
  EXPECT_EQ(hasher.event_count(), 2u);
  ASSERT_EQ(hasher.trail().size(), 2u);
  // The trail is chained: the last entry IS the running digest.
  EXPECT_EQ(hasher.trail().back(), hasher.digest());
  EXPECT_NE(hasher.trail()[0], hasher.trail()[1]);
}

TEST(EventHasher, IdenticalFoldsProduceIdenticalDigests) {
  EventHasher a;
  EventHasher b;
  for (int i = 0; i < 100; ++i) {
    a.Fold("dispatch", "coro", static_cast<std::uint64_t>(i), 7);
    b.Fold("dispatch", "coro", static_cast<std::uint64_t>(i), 7);
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.trail(), b.trail());
}

TEST(EventHasher, OrderAndPayloadChangeTheDigest) {
  EventHasher ab;
  ab.Fold("plc", "GRAB_ARRAY", 1);
  ab.Fold("plc", "PLACE_ARRAY", 1);
  EventHasher ba;
  ba.Fold("plc", "PLACE_ARRAY", 1);
  ba.Fold("plc", "GRAB_ARRAY", 1);
  EXPECT_NE(ab.digest(), ba.digest());

  // Concatenation boundaries must matter: ("ab","c") != ("a","bc").
  EventHasher split1;
  split1.Fold("ab", "c");
  EventHasher split2;
  split2.Fold("a", "bc");
  EXPECT_NE(split1.digest(), split2.digest());
}

TEST(EventHasher, CheckModePassesOnIdenticalStream) {
  EventHasher record;
  record.Fold("dispatch", "fn", 10, 0);
  record.Fold("dispatch", "coro", 10, 1);
  EventHasher check(record.trail());
  EXPECT_TRUE(check.checking());
  check.Fold("dispatch", "fn", 10, 0);
  check.Fold("dispatch", "coro", 10, 1);
  check.Finish();
  EXPECT_FALSE(check.diverged());
  EXPECT_EQ(check.digest(), record.digest());
}

TEST(EventHasher, CheckModeNamesTheFirstDivergentEvent) {
  EventHasher record;
  record.Fold("dispatch", "coro", 10, 0);
  record.Fold("fault", "drive:0", 2, 1);
  record.Fold("dispatch", "coro", 20, 2);
  EventHasher check(record.trail());
  check.Fold("dispatch", "coro", 10, 0);
  check.Fold("fault", "drive:1", 2, 1);  // diverges HERE
  check.Fold("dispatch", "coro", 20, 2);
  check.Finish();
  ASSERT_TRUE(check.diverged());
  EXPECT_EQ(check.divergence()->index, 1u);
  // The description names the check run's event, not the reference's.
  EXPECT_NE(check.divergence()->description.find("drive:1"),
            std::string::npos);
  // Only the first divergence is captured even though the chained digest
  // never re-converges afterwards.
  EXPECT_NE(check.digest(), record.digest());
}

TEST(EventHasher, CheckModeFlagsExtraAndMissingEvents) {
  EventHasher record;
  record.Fold("dispatch", "coro", 1, 0);
  record.Fold("dispatch", "coro", 2, 1);

  EventHasher longer(record.trail());
  longer.Fold("dispatch", "coro", 1, 0);
  longer.Fold("dispatch", "coro", 2, 1);
  longer.Fold("dispatch", "coro", 3, 2);  // one past the reference
  ASSERT_TRUE(longer.diverged());
  EXPECT_EQ(longer.divergence()->index, 2u);

  EventHasher shorter(record.trail());
  shorter.Fold("dispatch", "coro", 1, 0);
  EXPECT_FALSE(shorter.diverged());  // not yet: only Finish() can tell
  shorter.Finish();
  ASSERT_TRUE(shorter.diverged());
  EXPECT_EQ(shorter.divergence()->index, 1u);
}

TEST(EventHasher, SimulatorFoldsDispatches) {
  auto run = [](EventHasher* hasher) {
    Simulator sim;
    sim.set_event_hasher(hasher);
    sim.ScheduleAfter(Seconds(2), [] {});
    sim.ScheduleAfter(Seconds(1), [] {});
    sim.Run();
  };
  EventHasher record;
  run(&record);
  EXPECT_EQ(record.event_count(), 2u);
  EventHasher check(record.trail());
  run(&check);
  check.Finish();
  EXPECT_FALSE(check.diverged());
}

TEST(EventHasher, FaultInjectorFoldsDecisions) {
  auto run = [](EventHasher* hasher, double rate) {
    FaultInjector faults(/*seed=*/42);
    faults.set_event_hasher(hasher);
    faults.SetRate(FaultKind::kLatentSectorError, rate);
    for (int i = 0; i < 50; ++i) {
      faults.ShouldInject(FaultKind::kLatentSectorError, "drive:0");
    }
  };
  EventHasher record;
  run(&record, 0.2);
  EXPECT_EQ(record.event_count(), 50u);
  EventHasher same(record.trail());
  run(&same, 0.2);
  same.Finish();
  EXPECT_FALSE(same.diverged());
  // A different fault plan diverges at the first differing decision.
  EventHasher other(record.trail());
  run(&other, 0.9);
  other.Finish();
  EXPECT_TRUE(other.diverged());
}

// --- system-level double run -------------------------------------------

std::vector<std::uint8_t> DeterministicBytes(std::size_t n,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  return out;
}

// One seeded mixed workload: writes under a fault storm, a burn drain,
// read-back, scrub. Returns the total simulated time as a cheap secondary
// fingerprint; the hasher carries the real one. With the log-structured
// MV on by default, every create/remove here also runs the WAL group
// commit and any background memtable flushes, so their device I/O is part
// of the hashed event stream (compaction-vs-foreground determinism at
// store granularity is pinned separately by mv_store_test).
TimePoint RunMixedWorkload(EventHasher* hasher) {
  Simulator sim;
  sim.set_event_hasher(hasher);
  olfs::RosSystem system(sim, olfs::TestSystemConfig());
  olfs::OlfsParams params;
  params.disc_type = drive::DiscType::kBdr25;
  params.disc_capacity_override = 16 * kMiB;
  params.read_cache_bytes = 0;
  auto olfs = std::make_unique<olfs::Olfs>(sim, &system, params);
  olfs->burns().burn_start_interval = Seconds(1);

  FaultInjector faults(/*seed=*/7);
  faults.set_event_hasher(hasher);
  faults.FailNth(FaultKind::kBurnFailure, "", 1);
  faults.SetRate(FaultKind::kLatentSectorError, 0.01);
  system.InstallFaultInjector(&faults);

  for (int i = 0; i < 3; ++i) {
    const std::string path = "/det/f" + std::to_string(i);
    auto payload = DeterministicBytes(8 * kKiB, 100 + i);
    EXPECT_TRUE(
        sim.RunUntilComplete(olfs->Create(path, payload)).ok());
  }
  EXPECT_TRUE(sim.RunUntilComplete(olfs->FlushAndDrain()).ok());
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/det/f" + std::to_string(i);
    auto data = sim.RunUntilComplete(olfs->Read(path, 0, 8 * kKiB));
    EXPECT_TRUE(data.ok());
  }
  system.InstallFaultInjector(nullptr);
  EXPECT_TRUE(sim.RunUntilComplete(olfs->ScrubAndRepair()).ok());
  const TimePoint end = sim.now();
  sim.Shutdown();
  return end;
}

TEST(Determinism, MixedWorkloadDoubleRunReplaysExactly) {
  EventHasher record;
  const TimePoint first = RunMixedWorkload(&record);
  ASSERT_GT(record.event_count(), 0u);

  EventHasher check(record.trail());
  const TimePoint second = RunMixedWorkload(&check);
  check.Finish();
  if (check.diverged()) {
    FAIL() << "event stream diverged at event #"
           << check.divergence()->index << ": "
           << check.divergence()->description;
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(check.digest(), record.digest());
  EXPECT_EQ(check.event_count(), record.event_count());
}

}  // namespace
}  // namespace ros::sim
