#include "src/disk/volume.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace ros::disk {
namespace {

class VolumeTest : public ::testing::Test {
 protected:
  VolumeTest()
      : device_(sim_, "ssd", 64 * kMiB, SsdPerf()),
        volume_(sim_, &device_, MetadataVolumeParams()) {}

  std::vector<std::uint8_t> Bytes(const std::string& s) {
    return {s.begin(), s.end()};
  }

  sim::Simulator sim_;
  StorageDevice device_;
  Volume volume_;
};

TEST_F(VolumeTest, CreateWriteReadDelete) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/idx/a.json")).ok());
  EXPECT_TRUE(volume_.Exists("/idx/a.json"));
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.Write("/idx/a.json", 0, Bytes("hello")))
                  .ok());
  EXPECT_EQ(*volume_.FileSize("/idx/a.json"), 5u);
  auto data = sim_.RunUntilComplete(volume_.ReadAll("/idx/a.json"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("hello"));
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Delete("/idx/a.json")).ok());
  EXPECT_FALSE(volume_.Exists("/idx/a.json"));
}

TEST_F(VolumeTest, DuplicateCreateFails) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("f")).ok());
  EXPECT_EQ(sim_.RunUntilComplete(volume_.Create("f")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(VolumeTest, MissingFileErrors) {
  EXPECT_EQ(sim_.RunUntilComplete(volume_.Read("nope", 0, 1)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(sim_.RunUntilComplete(volume_.Delete("nope")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(volume_.FileSize("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(VolumeTest, AppendGrowsFile) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("log")).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Append("log", Bytes("ab"))).ok());
  }
  EXPECT_EQ(*volume_.FileSize("log"), 10u);
  auto data = sim_.RunUntilComplete(volume_.ReadAll("log"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("ababababab"));
}

TEST_F(VolumeTest, SparseWriteBeyondEnd) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("sparse")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("sparse", 5000, Bytes("X")))
                  .ok());
  EXPECT_EQ(*volume_.FileSize("sparse"), 5001u);
  auto data = sim_.RunUntilComplete(volume_.Read("sparse", 4998, 3));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[2], 'X');
  EXPECT_EQ((*data)[0], 0);
}

TEST_F(VolumeTest, WriteAllTruncates) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("f")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.WriteAll("f", std::vector<std::uint8_t>(10000, 1)))
                  .ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.WriteAll("f", Bytes("tiny"))).ok());
  EXPECT_EQ(*volume_.FileSize("f"), 4u);
  auto data = sim_.RunUntilComplete(volume_.ReadAll("f"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("tiny"));
}

TEST_F(VolumeTest, ReadBeyondEofRejected) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("f")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("f", 0, Bytes("abc"))).ok());
  EXPECT_EQ(sim_.RunUntilComplete(volume_.Read("f", 2, 2)).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(VolumeTest, ListByPrefix) {
  for (const char* name : {"/a/1", "/a/2", "/b/1"}) {
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create(name)).ok());
  }
  EXPECT_EQ(volume_.List("/a/").size(), 2u);
  EXPECT_EQ(volume_.List().size(), 3u);
  EXPECT_EQ(volume_.List("/c").size(), 0u);
}

TEST_F(VolumeTest, SpaceAccountingAndReuse) {
  const std::uint64_t before = volume_.used_blocks();
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("big")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.Write("big", 0, std::vector<std::uint8_t>(
                                              100 * volume_.block_size())))
                  .ok());
  EXPECT_EQ(volume_.used_blocks(), before + 100);
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Delete("big")).ok());
  EXPECT_EQ(volume_.used_blocks(), before);
}

TEST_F(VolumeTest, FillsAndReportsExhaustion) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("huge")).ok());
  const std::uint64_t free = volume_.free_bytes();
  EXPECT_EQ(sim_.RunUntilComplete(
                volume_.Write("huge", 0,
                              std::vector<std::uint8_t>(free + kKiB)))
                .code(),
            StatusCode::kResourceExhausted);
  // Failed allocation must not leak blocks.
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.Write("huge", 0, std::vector<std::uint8_t>(free)))
                  .ok());
}

TEST_F(VolumeTest, FragmentationHandledByExtentChaining) {
  // Create interleaved files, delete every other one, then write a file
  // larger than any single hole.
  std::vector<std::string> names;
  for (int i = 0; i < 20; ++i) {
    std::string name = "frag" + std::to_string(i);
    names.push_back(name);
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create(name)).ok());
    ASSERT_TRUE(sim_.RunUntilComplete(
                    volume_.Write(name, 0, std::vector<std::uint8_t>(
                                               8 * volume_.block_size(), 1)))
                    .ok());
  }
  for (int i = 0; i < 20; i += 2) {
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Delete(names[i])).ok());
  }
  Rng rng(4);
  std::vector<std::uint8_t> data(60 * volume_.block_size());
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("big")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("big", 0, data)).ok());
  auto read = sim_.RunUntilComplete(volume_.ReadAll("big"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(VolumeTest, CountAndAnyWithPrefix) {
  for (const char* name : {"/a/1", "/a/2", "/a/3", "/ab", "/b/1"}) {
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create(name)).ok());
  }
  EXPECT_EQ(volume_.CountPrefix("/a/"), 3u);
  EXPECT_EQ(volume_.CountPrefix("/a"), 4u);  // "/ab" matches too
  EXPECT_EQ(volume_.CountPrefix(""), 5u);
  EXPECT_EQ(volume_.CountPrefix("/c"), 0u);
  EXPECT_TRUE(volume_.AnyWithPrefix("/a/"));
  EXPECT_TRUE(volume_.AnyWithPrefix("/b"));
  EXPECT_FALSE(volume_.AnyWithPrefix("/c"));
  EXPECT_FALSE(volume_.AnyWithPrefix("/a/4"));
}

TEST_F(VolumeTest, ForEachPrefixVisitsInOrderWithSizes) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/p/b")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/p/a")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("/p/a", 0, Bytes("xy")))
                  .ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/q")).ok());
  std::vector<std::pair<std::string, std::uint64_t>> seen;
  volume_.ForEachPrefix("/p/", [&seen](const std::string& name,
                                       std::uint64_t size) {
    seen.emplace_back(name, size);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::uint64_t>{"/p/a", 2u}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::uint64_t>{"/p/b", 0u}));
}

TEST_F(VolumeTest, ListChildrenSkipsSubtrees) {
  // A child is a name that exists itself (the MV gives every directory its
  // own index file); names deeper under it are skipped as one subtree.
  for (const char* name : {"/d", "/d/file", "/d/sub", "/d/sub/a",
                           "/d/sub/b/deep", "/d/zzz", "/e"}) {
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create(name)).ok());
  }
  EXPECT_EQ(volume_.ListChildren("/d/"),
            (std::vector<std::string>{"file", "sub", "zzz"}));
  EXPECT_EQ(volume_.ListChildren("/"), (std::vector<std::string>{"d", "e"}));
  // "/d/sub/b" never existed as its own name: descendants alone do not
  // make it a child, and the whole "/d/sub/b/..." subtree costs one seek.
  EXPECT_EQ(volume_.ListChildren("/d/sub/"),
            (std::vector<std::string>{"a"}));
  EXPECT_TRUE(volume_.ListChildren("/nope/").empty());
}

TEST_F(VolumeTest, WriteGenerationsMonotonicAndNeverReused) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("g")).ok());
  const auto created = volume_.StatFile("g");
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("g", 0, Bytes("a"))).ok());
  const auto written = volume_.StatFile("g");
  ASSERT_TRUE(written.ok());
  EXPECT_GT(written->write_gen, created->write_gen);
  EXPECT_EQ(written->size, 1u);

  // Even a Delete/Create cycle of the same name must advance, so stale
  // cached state can never alias a recreated file.
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Delete("g")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("g")).ok());
  const auto recreated = volume_.StatFile("g");
  ASSERT_TRUE(recreated.ok());
  EXPECT_GT(recreated->write_gen, written->write_gen);

  // FormatQuick keeps the counter too.
  volume_.FormatQuick();
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("g")).ok());
  const auto after_format = volume_.StatFile("g");
  ASSERT_TRUE(after_format.ok());
  EXPECT_GT(after_format->write_gen, recreated->write_gen);

  EXPECT_EQ(volume_.StatFile("missing").status().code(),
            StatusCode::kNotFound);
}

TEST_F(VolumeTest, MapFileRangeReplaysSameCharges) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("m")).ok());
  std::vector<std::uint8_t> data(3 * volume_.block_size() + 17, 7);
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("m", 0, data)).ok());

  auto segments = volume_.MapFileRange("m", 0, data.size());
  ASSERT_TRUE(segments.ok());
  std::uint64_t mapped = 0;
  for (const auto& [dev_offset, length] : *segments) {
    mapped += length;
  }
  EXPECT_EQ(mapped, data.size());

  // Replaying the mapping must cost exactly what ReadDiscard costs.
  const sim::TimePoint t0 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.ReadDiscard("m", 0, data.size())).ok());
  const sim::TimePoint direct = sim_.now() - t0;
  const sim::TimePoint t1 = sim_.now();
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.ReadDiscardSegments(*segments)).ok());
  const sim::TimePoint replay = sim_.now() - t1;
  EXPECT_EQ(direct, replay);

  // Single-segment overload agrees with the vector form.
  if (segments->size() == 1) {
    const auto [dev_offset, length] = segments->front();
    const sim::TimePoint t2 = sim_.now();
    ASSERT_TRUE(sim_.RunUntilComplete(
                    volume_.ReadDiscardSegment(dev_offset, length)).ok());
    EXPECT_EQ(sim_.now() - t2, replay);
  }

  EXPECT_EQ(volume_.MapFileRange("m", data.size(), 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(volume_.MapFileRange("nope", 0, 1).status().code(),
            StatusCode::kNotFound);
}

TEST_F(VolumeTest, MutationObserverSeesEveryMutation) {
  std::vector<std::string> events;
  volume_.SetMutationObserver(
      [&events](const std::string& name) { events.push_back(name); });

  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/f")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("/f", 0, Bytes("a"))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Append("/f", Bytes("b"))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.WriteAll("/f", Bytes("c"))).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.AppendSparse("/f", Bytes("d"), 8)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Delete("/f")).ok());
  // Every mutation named the file it touched, at least once each.
  EXPECT_GE(events.size(), 6u);
  for (const auto& name : events) {
    EXPECT_EQ(name, "/f");
  }

  // FormatQuick notifies with the empty name ("everything changed").
  events.clear();
  volume_.FormatQuick();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front(), "");

  // Reads never notify.
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/r")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("/r", 0, Bytes("x"))).ok());
  events.clear();
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.ReadAll("/r")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.ReadDiscard("/r", 0, 1)).ok());
  (void)volume_.StatFile("/r");
  (void)volume_.List("/");
  EXPECT_TRUE(events.empty());

  volume_.SetMutationObserver(nullptr);  // unregister must be safe
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/s")).ok());
  EXPECT_TRUE(events.empty());
}

TEST_F(VolumeTest, MetadataVolumeUses1KBlocks) {
  EXPECT_EQ(volume_.block_size(), 1 * kKiB);
}

TEST_F(VolumeTest, FormatQuickResets) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("x")).ok());
  volume_.FormatQuick();
  EXPECT_FALSE(volume_.Exists("x"));
  EXPECT_EQ(volume_.file_count(), 0u);
}

TEST_F(VolumeTest, AppendBatchLandsAsOneMutation) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/wal")).ok());
  ASSERT_TRUE(
      sim_.RunUntilComplete(volume_.Append("/wal", Bytes("head-"))).ok());
  const std::uint64_t gen_before = volume_.StatFile("/wal")->write_gen;

  // N pieces, one concatenated write: this is the group-commit primitive
  // (DESIGN.md §5i) — the batch must cost one generation step, not N.
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.AppendBatch(
                      "/wal", {Bytes("one-"), Bytes("two-"), Bytes("three")}))
                  .ok());
  auto data = sim_.RunUntilComplete(volume_.ReadAll("/wal"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("head-one-two-three"));
  EXPECT_EQ(volume_.StatFile("/wal")->write_gen, gen_before + 1);

  // Degenerate batches: empty piece list is a free no-op, and a batch
  // against a missing file is NotFound before any bytes move.
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.AppendBatch("/wal", {})).ok());
  EXPECT_EQ(volume_.StatFile("/wal")->write_gen, gen_before + 1);
  auto missing =
      sim_.RunUntilComplete(volume_.AppendBatch("/nope", {Bytes("x")}));
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
}

TEST_F(VolumeTest, TruncateShrinksAndFreesBlocks) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/wal")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.Write("/wal", 0,
                                std::vector<std::uint8_t>(3000, 0x5A)))
                  .ok());
  const std::uint64_t used_before = volume_.used_blocks();

  // Shrink to a non-block-aligned size: the tail past the cut is gone,
  // whole blocks past the new end return to the allocator.
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Truncate("/wal", 1100)).ok());
  EXPECT_EQ(*volume_.FileSize("/wal"), 1100u);
  EXPECT_LT(volume_.used_blocks(), used_before);
  auto data = sim_.RunUntilComplete(volume_.ReadAll("/wal"));
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), 1100u);
  EXPECT_EQ((*data)[1099], 0x5A);

  // Truncate never grows a file, and to-same-size is a no-op.
  auto grow = sim_.RunUntilComplete(volume_.Truncate("/wal", 5000));
  EXPECT_EQ(grow.code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Truncate("/wal", 1100)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Truncate("/wal", 0)).ok());
  EXPECT_EQ(*volume_.FileSize("/wal"), 0u);
}

}  // namespace
}  // namespace ros::disk
