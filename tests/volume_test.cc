#include "src/disk/volume.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace ros::disk {
namespace {

class VolumeTest : public ::testing::Test {
 protected:
  VolumeTest()
      : device_(sim_, "ssd", 64 * kMiB, SsdPerf()),
        volume_(sim_, &device_, MetadataVolumeParams()) {}

  std::vector<std::uint8_t> Bytes(const std::string& s) {
    return {s.begin(), s.end()};
  }

  sim::Simulator sim_;
  StorageDevice device_;
  Volume volume_;
};

TEST_F(VolumeTest, CreateWriteReadDelete) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("/idx/a.json")).ok());
  EXPECT_TRUE(volume_.Exists("/idx/a.json"));
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.Write("/idx/a.json", 0, Bytes("hello")))
                  .ok());
  EXPECT_EQ(*volume_.FileSize("/idx/a.json"), 5u);
  auto data = sim_.RunUntilComplete(volume_.ReadAll("/idx/a.json"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("hello"));
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Delete("/idx/a.json")).ok());
  EXPECT_FALSE(volume_.Exists("/idx/a.json"));
}

TEST_F(VolumeTest, DuplicateCreateFails) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("f")).ok());
  EXPECT_EQ(sim_.RunUntilComplete(volume_.Create("f")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(VolumeTest, MissingFileErrors) {
  EXPECT_EQ(sim_.RunUntilComplete(volume_.Read("nope", 0, 1)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(sim_.RunUntilComplete(volume_.Delete("nope")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(volume_.FileSize("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(VolumeTest, AppendGrowsFile) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("log")).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Append("log", Bytes("ab"))).ok());
  }
  EXPECT_EQ(*volume_.FileSize("log"), 10u);
  auto data = sim_.RunUntilComplete(volume_.ReadAll("log"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("ababababab"));
}

TEST_F(VolumeTest, SparseWriteBeyondEnd) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("sparse")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("sparse", 5000, Bytes("X")))
                  .ok());
  EXPECT_EQ(*volume_.FileSize("sparse"), 5001u);
  auto data = sim_.RunUntilComplete(volume_.Read("sparse", 4998, 3));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[2], 'X');
  EXPECT_EQ((*data)[0], 0);
}

TEST_F(VolumeTest, WriteAllTruncates) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("f")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.WriteAll("f", std::vector<std::uint8_t>(10000, 1)))
                  .ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.WriteAll("f", Bytes("tiny"))).ok());
  EXPECT_EQ(*volume_.FileSize("f"), 4u);
  auto data = sim_.RunUntilComplete(volume_.ReadAll("f"));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Bytes("tiny"));
}

TEST_F(VolumeTest, ReadBeyondEofRejected) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("f")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("f", 0, Bytes("abc"))).ok());
  EXPECT_EQ(sim_.RunUntilComplete(volume_.Read("f", 2, 2)).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(VolumeTest, ListByPrefix) {
  for (const char* name : {"/a/1", "/a/2", "/b/1"}) {
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create(name)).ok());
  }
  EXPECT_EQ(volume_.List("/a/").size(), 2u);
  EXPECT_EQ(volume_.List().size(), 3u);
  EXPECT_EQ(volume_.List("/c").size(), 0u);
}

TEST_F(VolumeTest, SpaceAccountingAndReuse) {
  const std::uint64_t before = volume_.used_blocks();
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("big")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.Write("big", 0, std::vector<std::uint8_t>(
                                              100 * volume_.block_size())))
                  .ok());
  EXPECT_EQ(volume_.used_blocks(), before + 100);
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Delete("big")).ok());
  EXPECT_EQ(volume_.used_blocks(), before);
}

TEST_F(VolumeTest, FillsAndReportsExhaustion) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("huge")).ok());
  const std::uint64_t free = volume_.free_bytes();
  EXPECT_EQ(sim_.RunUntilComplete(
                volume_.Write("huge", 0,
                              std::vector<std::uint8_t>(free + kKiB)))
                .code(),
            StatusCode::kResourceExhausted);
  // Failed allocation must not leak blocks.
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.Write("huge", 0, std::vector<std::uint8_t>(free)))
                  .ok());
}

TEST_F(VolumeTest, FragmentationHandledByExtentChaining) {
  // Create interleaved files, delete every other one, then write a file
  // larger than any single hole.
  std::vector<std::string> names;
  for (int i = 0; i < 20; ++i) {
    std::string name = "frag" + std::to_string(i);
    names.push_back(name);
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create(name)).ok());
    ASSERT_TRUE(sim_.RunUntilComplete(
                    volume_.Write(name, 0, std::vector<std::uint8_t>(
                                               8 * volume_.block_size(), 1)))
                    .ok());
  }
  for (int i = 0; i < 20; i += 2) {
    ASSERT_TRUE(sim_.RunUntilComplete(volume_.Delete(names[i])).ok());
  }
  Rng rng(4);
  std::vector<std::uint8_t> data(60 * volume_.block_size());
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.Next());
  }
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("big")).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Write("big", 0, data)).ok());
  auto read = sim_.RunUntilComplete(volume_.ReadAll("big"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(VolumeTest, MetadataVolumeUses1KBlocks) {
  EXPECT_EQ(volume_.block_size(), 1 * kKiB);
}

TEST_F(VolumeTest, FormatQuickResets) {
  ASSERT_TRUE(sim_.RunUntilComplete(volume_.Create("x")).ok());
  volume_.FormatQuick();
  EXPECT_FALSE(volume_.Exists("x"));
  EXPECT_EQ(volume_.file_count(), 0u);
}

}  // namespace
}  // namespace ros::disk
