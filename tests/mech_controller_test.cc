// Unit tests for the Mechanical Controller's bay/array management.
#include "src/olfs/mech_controller.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/olfs/system.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace ros::olfs {
namespace {

class MechControllerTest : public ::testing::Test {
 protected:
  MechControllerTest() {
    SystemConfig config = TestSystemConfig();
    config.drive_sets = 2;
    config.rollers = 1;
    system_ = std::make_unique<RosSystem>(sim_, config);
    params_.disc_capacity_override = 16 * kMiB;
    mc_ = std::make_unique<MechController>(sim_, system_->library(),
                                           system_->drive_sets(),
                                           &system_->discs(), params_);
  }

  sim::Simulator sim_;
  std::unique_ptr<RosSystem> system_;
  OlfsParams params_;
  std::unique_ptr<MechController> mc_;
};

TEST_F(MechControllerTest, AcquirePrefersEmptyBays) {
  auto bay = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  ASSERT_TRUE(bay.ok());
  EXPECT_EQ(mc_->bay_state(*bay), BayState::kBusy);
  auto bay2 = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  ASSERT_TRUE(bay2.ok());
  EXPECT_NE(*bay, *bay2);
  // All busy now: non-waiting acquisition fails.
  EXPECT_EQ(sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false))
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST_F(MechControllerTest, AcquirePrefersBayHoldingWantedArray) {
  mech::TrayAddress tray{0, 3, 1};
  auto bay = sim_.RunUntilComplete(mc_->AcquireBay(tray, false));
  ASSERT_TRUE(bay.ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mc_->LoadArray(tray, *bay)).ok());
  mc_->ReleaseBay(*bay);
  EXPECT_EQ(mc_->bay_state(*bay), BayState::kParked);

  // Asking for that tray again returns the same bay, array still loaded.
  auto again = sim_.RunUntilComplete(mc_->AcquireBay(tray, false));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *bay);
  ASSERT_TRUE(mc_->bay_tray(*again).has_value());
  EXPECT_EQ(*mc_->bay_tray(*again), tray);
  mc_->ReleaseBay(*again);
}

TEST_F(MechControllerTest, WaitingAcquireWakesOnRelease) {
  auto a = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  auto b = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  bool acquired = false;
  sim_.Spawn([](MechController* mc, bool* done) -> sim::Task<void> {
    auto bay = co_await mc->AcquireBay(std::nullopt, true);
    ROS_CHECK(bay.ok());
    *done = true;
    mc->ReleaseBay(*bay);
  }(mc_.get(), &acquired));
  sim_.RunFor(sim::Seconds(1));
  EXPECT_FALSE(acquired);
  mc_->ReleaseBay(*a);
  sim_.Run();
  EXPECT_TRUE(acquired);
}

TEST_F(MechControllerTest, LoadInsertsDiscsIntoDrives) {
  mech::TrayAddress tray{0, 7, 2};
  auto bay = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  ASSERT_TRUE(bay.ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mc_->LoadArray(tray, *bay)).ok());
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(mc_->drive_set(*bay).drive(i).has_disc());
    EXPECT_EQ(mc_->drive_set(*bay).drive(i).disc()->id(),
              (mech::DiscAddress{tray, i}.ToString()));
  }
  EXPECT_NE(mc_->DriveHolding({tray, 5}), nullptr);
  EXPECT_EQ(mc_->DriveHolding({{0, 8, 2}, 5}), nullptr);

  ASSERT_TRUE(sim_.RunUntilComplete(mc_->UnloadArray(*bay)).ok());
  for (int i = 0; i < 12; ++i) {
    EXPECT_FALSE(mc_->drive_set(*bay).drive(i).has_disc());
  }
  mc_->ReleaseBay(*bay);
  EXPECT_EQ(mc_->bay_state(*bay), BayState::kEmpty);
}

TEST_F(MechControllerTest, DiscIdentityStableAcrossLoads) {
  mech::TrayAddress tray{0, 1, 0};
  drive::Disc* disc = mc_->DiscAt({tray, 4});
  ASSERT_TRUE(disc->AppendSession("img", 100, {1, 2, 3}, true).ok());

  auto bay = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  ASSERT_TRUE(bay.ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mc_->LoadArray(tray, *bay)).ok());
  // The same physical media (with its burned session) is in the drive.
  EXPECT_TRUE(mc_->drive_set(*bay).drive(4).disc()->FindSession("img").ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mc_->UnloadArray(*bay)).ok());
  mc_->ReleaseBay(*bay);
}

TEST_F(MechControllerTest, BootInventoryFindsParkedArrays) {
  mech::TrayAddress tray{0, 2, 3};
  auto bay = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  ASSERT_TRUE(bay.ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mc_->LoadArray(tray, *bay)).ok());
  mc_->ReleaseBay(*bay);

  // Controller replacement: physical state is rediscovered.
  MechController fresh(sim_, system_->library(), system_->drive_sets(),
                       &system_->discs(), params_);
  EXPECT_EQ(fresh.bay_state(*bay), BayState::kParked);
  ASSERT_TRUE(fresh.bay_tray(*bay).has_value());
  EXPECT_EQ(*fresh.bay_tray(*bay), tray);
}

TEST_F(MechControllerTest, NonWaitingAcquireOfBusyWantedArrayFails) {
  mech::TrayAddress tray{0, 4, 1};
  auto bay = sim_.RunUntilComplete(mc_->AcquireBay(tray, false));
  ASSERT_TRUE(bay.ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mc_->LoadArray(tray, *bay)).ok());

  // The wanted array sits in a busy bay. Even though the other bay is
  // free, a non-waiting acquire must not grab it: reloading the same
  // array elsewhere while its discs are in drives would fork the media.
  ASSERT_EQ(mc_->bay_state(1 - *bay), BayState::kEmpty);
  auto blocked = sim_.RunUntilComplete(mc_->AcquireBay(tray, false));
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);

  // A waiting acquire parks until the burnlike owner releases, then gets
  // the bay that already holds the array (§4.8's wait-for-burn shape).
  std::optional<int> woken;
  sim_.Spawn([](MechController* mc, mech::TrayAddress want,
                std::optional<int>* out) -> sim::Task<void> {
    auto got = co_await mc->AcquireBay(want, true);
    ROS_CHECK(got.ok());
    *out = *got;
    mc->ReleaseBay(*got);
  }(mc_.get(), tray, &woken));
  sim_.RunFor(sim::Seconds(5));
  EXPECT_FALSE(woken.has_value());
  mc_->ReleaseBay(*bay);
  sim_.Run();
  ASSERT_TRUE(woken.has_value());
  EXPECT_EQ(*woken, *bay);
}

TEST_F(MechControllerTest, NonWaitingAcquireWithAllBaysBusyFails) {
  auto a = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  auto b = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto blocked = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  // Releasing one bay makes non-waiting acquisition succeed again.
  mc_->ReleaseBay(*a);
  auto again = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *a);
  mc_->ReleaseBay(*again);
  mc_->ReleaseBay(*b);
}

TEST_F(MechControllerTest, LoadIntoOccupiedBayFails) {
  auto bay = sim_.RunUntilComplete(mc_->AcquireBay(std::nullopt, false));
  ASSERT_TRUE(bay.ok());
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mc_->LoadArray({0, 0, 0}, *bay)).ok());
  EXPECT_EQ(sim_.RunUntilComplete(mc_->LoadArray({0, 0, 1}, *bay)).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ros::olfs
