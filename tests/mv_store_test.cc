// Store-level tests for the log-structured MetadataVolume backend
// (DESIGN.md §5i): backend parity, memtable flush + compaction, crash
// recovery (incl. mid-group-commit device loss and torn WAL tails),
// cross-backend snapshots, and double-run determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/disk/block_device.h"
#include "src/olfs/metadata_volume.h"
#include "src/olfs/mv_log.h"
#include "src/sim/fault.h"
#include "src/sim/join.h"
#include "src/sim/simulator.h"

namespace ros::olfs {
namespace {

std::string PathOf(int i) {
  return "/d" + std::to_string(i % 4) + "/f" + std::to_string(i);
}

IndexFile FileIndex(const std::string& path, std::uint64_t size) {
  IndexFile index(path, EntryType::kFile);
  VersionEntry entry;
  entry.total_size = size;
  entry.parts.push_back({"img-000000", size});
  index.AddVersion(std::move(entry), 15);
  return index;
}

// --- driver coroutines (free functions: params by value, no captures) ---

sim::Task<Status> PutOne(MetadataVolume* mv, int i, std::uint64_t size) {
  IndexFile index = FileIndex(PathOf(i), size);
  co_return co_await mv->Put(std::move(index));
}

sim::Task<Status> PutRange(MetadataVolume* mv, int first, int count,
                           std::uint64_t size) {
  for (int i = first; i < first + count; ++i) {
    Status status = co_await PutOne(mv, i, size);
    if (!status.ok()) {
      co_return status;
    }
  }
  co_return OkStatus();
}

// Records the per-put ack (AllOk would only surface the first error; the
// crash tests need to know exactly which mutations were acknowledged).
sim::Task<Status> PutRecording(MetadataVolume* mv, int i,
                               std::vector<std::pair<int, bool>>* acks) {
  Status status = co_await PutOne(mv, i, 64);
  acks->push_back({i, status.ok()});
  co_return OkStatus();
}

sim::Task<Status> PutBurstRecording(sim::Simulator* sim, MetadataVolume* mv,
                                    int first, int count,
                                    std::vector<std::pair<int, bool>>* acks) {
  std::vector<sim::Task<Status>> puts;
  for (int i = first; i < first + count; ++i) {
    puts.push_back(PutRecording(mv, i, acks));
  }
  co_return co_await sim::AllOk(*sim, std::move(puts));
}

class MvStoreTest : public ::testing::Test {
 protected:
  MvStoreTest()
      : device_(sim_, "ssd", 256 * kMiB, disk::SsdPerf()),
        volume_(sim_, &device_, disk::MetadataVolumeParams()) {}

  static MetadataVolume::Options LsOptions() {
    MetadataVolume::Options options;
    options.log_structured = true;
    options.cache_capacity = 16;
    return options;
  }

  // Small enough that a few dozen ~300-byte entries roll the memtable.
  static MetadataVolume::Options TinyFlushOptions() {
    MetadataVolume::Options options = LsOptions();
    options.memtable_flush_bytes = 2 * kKiB;
    options.compact_min_segments = 2;
    options.compact_fan_in = 2;
    return options;
  }

  void Attach(MetadataVolume::Options options) {
    // Destroy first so the old store's volume observer unregisters — this
    // is the crash model: the process dies, a new one opens the volume.
    mv_.reset();
    mv_ = std::make_unique<MetadataVolume>(sim_, &volume_, std::move(options));
  }

  // Runs the simulated clock forward so detached background work (memtable
  // flushes, compaction rounds) finishes.
  void DrainBackground() { sim_.RunFor(sim::Seconds(10)); }

  std::vector<std::uint8_t> ReadRaw(const std::string& name) {
    auto bytes = sim_.RunUntilComplete(volume_.ReadAll(name));
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    return bytes.ok() ? *bytes : std::vector<std::uint8_t>{};
  }

  std::string GetJson(MetadataVolume* mv, const std::string& path) {
    auto index = sim_.RunUntilComplete(mv->Get(path));
    EXPECT_TRUE(index.ok()) << path << ": " << index.status().ToString();
    return index.ok() ? index->ToJson() : std::string();
  }

  sim::Simulator sim_;
  disk::StorageDevice device_;
  disk::Volume volume_;
  std::unique_ptr<MetadataVolume> mv_;
};

TEST_F(MvStoreTest, BackendsAgreeOnEveryObserver) {
  // Same op sequence against legacy and log-structured stores (each on its
  // own volume); every read-side observer must agree.
  disk::StorageDevice device2(sim_, "ssd2", 256 * kMiB, disk::SsdPerf());
  disk::Volume volume2(sim_, &device2, disk::MetadataVolumeParams());
  MetadataVolume legacy(&volume2, /*cache_capacity=*/16);
  Attach(LsOptions());

  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 0, 40, 100)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(&legacy, 0, 40, 100)).ok());
  // Overwrites and removals.
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 8, 4, 999)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(&legacy, 8, 4, 999)).ok());
  for (int i = 20; i < 26; ++i) {
    ASSERT_TRUE(sim_.RunUntilComplete(mv_->Remove(PathOf(i))).ok());
    ASSERT_TRUE(sim_.RunUntilComplete(legacy.Remove(PathOf(i))).ok());
  }

  EXPECT_EQ(mv_->index_count(), legacy.index_count());
  EXPECT_EQ(mv_->AllPaths(), legacy.AllPaths());
  for (const char* dir : {"/", "/d0", "/d1", "/d2", "/d3", "/nope"}) {
    EXPECT_EQ(mv_->ListChildren(dir), legacy.ListChildren(dir)) << dir;
    EXPECT_EQ(mv_->HasChildren(dir), legacy.HasChildren(dir)) << dir;
  }
  for (const std::string& path : legacy.AllPaths()) {
    EXPECT_TRUE(mv_->Exists(path)) << path;
    EXPECT_EQ(GetJson(mv_.get(), path), GetJson(&legacy, path)) << path;
  }
  EXPECT_FALSE(mv_->Exists(PathOf(20)));
  EXPECT_FALSE(
      sim_.RunUntilComplete(mv_->Get(PathOf(20))).status().ok());
}

TEST_F(MvStoreTest, MemtableFlushPublishesSegments) {
  Attach(TinyFlushOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 0, 60, 100)).ok());
  DrainBackground();

  const MetadataVolume::StoreStats stats = mv_->store_stats();
  EXPECT_GT(stats.memtable_flushes, 0u);
  EXPECT_GT(stats.segment_count, 0u);
  // The flush threshold bounds what stays decoded in RAM.
  EXPECT_LT(stats.memtable_bytes, 2 * 2 * kKiB);

  // Every entry is still readable — most now through a segment point read.
  EXPECT_EQ(mv_->index_count(), 60u);
  for (int i = 0; i < 60; ++i) {
    auto index = sim_.RunUntilComplete(mv_->GetRef(PathOf(i)));
    ASSERT_TRUE(index.ok()) << PathOf(i) << ": " << index.status().ToString();
    EXPECT_EQ((*index)->path(), PathOf(i));
  }
}

TEST_F(MvStoreTest, CompactionDropsDeadRecordsAndKeepsTruth) {
  Attach(TinyFlushOptions());
  // Overwrite a small key set many times: every generation but the last is
  // garbage, which is exactly what compaction exists to drop.
  for (int round = 0; round < 12; ++round) {
    ASSERT_TRUE(sim_.RunUntilComplete(
                    PutRange(mv_.get(), 0, 16, 100 + round))
                    .ok());
    DrainBackground();
  }
  for (int i = 12; i < 16; ++i) {
    ASSERT_TRUE(sim_.RunUntilComplete(mv_->Remove(PathOf(i))).ok());
  }
  DrainBackground();

  const MetadataVolume::StoreStats stats = mv_->store_stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.segments_deleted, 0u);
  EXPECT_EQ(mv_->index_count(), 12u);
  for (int i = 0; i < 12; ++i) {
    auto index = sim_.RunUntilComplete(mv_->Get(PathOf(i)));
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    auto latest = index->Latest();
    ASSERT_TRUE(latest.ok()) << latest.status().ToString();
    EXPECT_EQ((*latest)->total_size, 111u) << PathOf(i);
  }

  // The removals must stay removed across a crash: compaction is not
  // allowed to drop a tombstone that still shadows older segments.
  Attach(TinyFlushOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->Open()).ok());
  EXPECT_EQ(mv_->index_count(), 12u);
  for (int i = 12; i < 16; ++i) {
    EXPECT_FALSE(mv_->Exists(PathOf(i))) << "resurrected " << PathOf(i);
  }
}

TEST_F(MvStoreTest, RecoveryReplaysSegmentsAndWalTail) {
  Attach(TinyFlushOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 0, 50, 100)).ok());
  DrainBackground();
  // A few more acked puts that stay WAL-only (no drain: the flush may not
  // have caught them yet — recovery must replay the tail regardless).
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 50, 5, 100)).ok());

  Attach(TinyFlushOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->Open()).ok());

  EXPECT_EQ(mv_->index_count(), 55u);
  for (int i = 0; i < 55; ++i) {
    EXPECT_TRUE(mv_->Exists(PathOf(i))) << PathOf(i);
  }
  const MetadataVolume::StoreStats stats = mv_->store_stats();
  EXPECT_GT(stats.recovered_segments, 0u);
  EXPECT_EQ(stats.corrupt_segments, 0u);
}

TEST_F(MvStoreTest, DeviceLossMidGroupCommitLosesNoAckedMutation) {
  Attach(LsOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 0, 10, 100)).ok());

  // Kill the device under a concurrent burst: the in-flight group commit
  // fails, so none of its members may claim durability.
  sim::FaultInjector faults(/*seed=*/11);
  device_.set_fault_injector(&faults);
  faults.FailNth(sim::FaultKind::kHddFailure, "ssd", 1);
  std::vector<std::pair<int, bool>> acks;
  ASSERT_TRUE(sim_.RunUntilComplete(
                  PutBurstRecording(&sim_, mv_.get(), 10, 8, &acks))
                  .ok());
  ASSERT_EQ(acks.size(), 8u);
  std::size_t failed = 0;
  for (const auto& [i, ok] : acks) {
    if (!ok) {
      ++failed;
    }
  }
  EXPECT_GT(failed, 0u) << "fault injector never fired";

  // Power comes back; a fresh store opens the same volume.
  device_.Revive();
  Attach(LsOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->Open()).ok());

  // The durability contract: every acked put is present; nothing else is
  // promised (a failed put may or may not have reached the platter).
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(mv_->Exists(PathOf(i))) << "lost acked " << PathOf(i);
  }
  for (const auto& [i, ok] : acks) {
    if (ok) {
      EXPECT_TRUE(mv_->Exists(PathOf(i))) << "lost acked " << PathOf(i);
    }
  }
  // And the recovered store still takes writes.
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 100, 3, 1)).ok());
  EXPECT_TRUE(mv_->Exists(PathOf(100)));
}

TEST_F(MvStoreTest, TornWalTailIsTruncatedAway) {
  Attach(LsOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 0, 20, 100)).ok());
  const std::uint64_t wal_seq = 1;
  mv_.reset();  // crash

  // A torn final sector: half a record's worth of garbage lands after the
  // last committed frame.
  std::vector<std::uint8_t> garbage(9, 0xEE);
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.Append(MvLog::FileName(wal_seq), std::move(garbage)))
                  .ok());

  Attach(LsOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->Open()).ok());
  EXPECT_EQ(mv_->index_count(), 20u);
  const MetadataVolume::StoreStats stats = mv_->store_stats();
  EXPECT_EQ(stats.torn_tail_bytes, 9u);
  EXPECT_EQ(stats.replayed_wal_records, 20u);

  // The next write must land on a clean tail: crash again and re-open.
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 20, 1, 100)).ok());
  Attach(LsOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->Open()).ok());
  EXPECT_EQ(mv_->index_count(), 21u);
  EXPECT_TRUE(mv_->Exists(PathOf(20)));
}

TEST_F(MvStoreTest, CorruptSegmentIsSkippedNotFatal) {
  Attach(TinyFlushOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 0, 60, 100)).ok());
  DrainBackground();
  ASSERT_GT(mv_->store_stats().segment_count, 0u);
  mv_.reset();  // crash

  // Flip one bit in the middle of the first segment file.
  std::vector<std::string> segs = volume_.List("/mvseg.");
  ASSERT_FALSE(segs.empty());
  std::sort(segs.begin(), segs.end());
  std::vector<std::uint8_t> bytes = ReadRaw(segs.front());
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x04;
  ASSERT_TRUE(sim_.RunUntilComplete(
                  volume_.WriteAll(segs.front(), std::move(bytes)))
                  .ok());

  // Recovery survives: the damaged segment is quarantined, everything else
  // replays, and the store stays internally consistent.
  Attach(TinyFlushOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->Open()).ok());
  const MetadataVolume::StoreStats stats = mv_->store_stats();
  EXPECT_EQ(stats.corrupt_segments, 1u);
  EXPECT_EQ(mv_->index_count(), mv_->AllPaths().size());
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 200, 2, 1)).ok());
  EXPECT_TRUE(mv_->Exists(PathOf(200)));
}

TEST_F(MvStoreTest, SnapshotsRestoreAcrossBackends) {
  // Legacy writes the snapshot, the log-structured store restores it —
  // and the other way around. The image layout is backend-independent.
  disk::StorageDevice device2(sim_, "ssd2", 256 * kMiB, disk::SsdPerf());
  disk::Volume volume2(sim_, &device2, disk::MetadataVolumeParams());
  MetadataVolume legacy(&volume2, /*cache_capacity=*/16);
  Attach(LsOptions());

  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(&legacy, 0, 25, 100)).ok());
  auto image = sim_.RunUntilComplete(
      legacy.BuildSnapshotImage("img-mv-1", 64 * kMiB));
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->RestoreFromSnapshot(*image)).ok());
  EXPECT_EQ(mv_->AllPaths(), legacy.AllPaths());
  for (const std::string& path : legacy.AllPaths()) {
    EXPECT_EQ(GetJson(mv_.get(), path), GetJson(&legacy, path)) << path;
  }

  // Reverse: mutate the LS store, snapshot it, restore into a wiped
  // legacy store (restore replaces matching entries but never deletes —
  // MV-loss recovery starts from a clean volume).
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 25, 10, 7)).ok());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->Remove(PathOf(0))).ok());
  auto image2 = sim_.RunUntilComplete(
      mv_->BuildSnapshotImage("img-mv-2", 64 * kMiB));
  ASSERT_TRUE(image2.ok()) << image2.status().ToString();
  legacy.WipeAll();
  ASSERT_TRUE(
      sim_.RunUntilComplete(legacy.RestoreFromSnapshot(*image2)).ok());
  EXPECT_EQ(legacy.AllPaths(), mv_->AllPaths());
  for (const std::string& path : mv_->AllPaths()) {
    EXPECT_EQ(GetJson(&legacy, path), GetJson(mv_.get(), path)) << path;
  }
}

TEST_F(MvStoreTest, StateKeysSurviveRecovery) {
  Attach(LsOptions());
  json::Object cursor;
  cursor["at"] = 7;
  cursor["img"] = "img-0042";
  ASSERT_TRUE(sim_.RunUntilComplete(
                  mv_->PutState("burn/cursor", json::Value(cursor)))
                  .ok());
  const auto before = sim_.RunUntilComplete(mv_->GetState("burn/cursor"));
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  Attach(LsOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->Open()).ok());
  const auto after = sim_.RunUntilComplete(mv_->GetState("burn/cursor"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->Dump(), before->Dump());
  // State keys live in the "s/" domain: they never count as namespace
  // entries.
  EXPECT_EQ(mv_->index_count(), 0u);
}

TEST_F(MvStoreTest, WipeAllEmptiesTheStoreDurably) {
  Attach(TinyFlushOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 0, 40, 100)).ok());
  DrainBackground();
  mv_->WipeAll();
  EXPECT_EQ(mv_->index_count(), 0u);
  EXPECT_TRUE(mv_->AllPaths().empty());

  // The wipe must hold across recovery, and the store must accept new
  // writes on the clean slate.
  ASSERT_TRUE(sim_.RunUntilComplete(PutRange(mv_.get(), 300, 2, 5)).ok());
  Attach(TinyFlushOptions());
  ASSERT_TRUE(sim_.RunUntilComplete(mv_->Open()).ok());
  EXPECT_EQ(mv_->index_count(), 2u);
  EXPECT_TRUE(mv_->Exists(PathOf(300)));
  EXPECT_FALSE(mv_->Exists(PathOf(0)));
}

TEST_F(MvStoreTest, IndexCountTracksAllPathsThroughChurn) {
  Attach(TinyFlushOptions());
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(sim_.RunUntilComplete(
                    PutRange(mv_.get(), round * 10, 15, 100))
                    .ok());
    ASSERT_TRUE(
        sim_.RunUntilComplete(mv_->Remove(PathOf(round * 10 + 3))).ok());
    DrainBackground();
    EXPECT_EQ(mv_->index_count(), mv_->AllPaths().size()) << round;
  }
}

// --- double-run determinism --------------------------------------------

struct WorldResult {
  sim::TimePoint now = 0;
  std::vector<std::string> paths;
  std::uint64_t batches = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
};

sim::Task<Status> DriveSeededWorkload(sim::Simulator* sim,
                                      MetadataVolume* mv) {
  for (int round = 0; round < 8; ++round) {
    std::vector<sim::Task<Status>> burst;
    for (int i = 0; i < 12; ++i) {
      // Overwrites (i % 30) collide across rounds, creating garbage for
      // the compactor; sizes vary so record lengths differ.
      burst.push_back(PutOne(mv, (round * 12 + i) % 30,
                             100 + static_cast<std::uint64_t>(round)));
    }
    Status status = co_await sim::AllOk(*sim, std::move(burst));
    if (!status.ok()) {
      co_return status;
    }
    Status removed = co_await mv->Remove(PathOf(round));
    if (!removed.ok()) {
      co_return removed;
    }
  }
  co_return OkStatus();
}

WorldResult RunSeededWorld() {
  sim::Simulator sim;
  disk::StorageDevice device(sim, "ssd", 256 * kMiB, disk::SsdPerf());
  disk::Volume volume(sim, &device, disk::MetadataVolumeParams());
  MetadataVolume::Options options;
  options.log_structured = true;
  options.cache_capacity = 16;
  options.memtable_flush_bytes = 2 * kKiB;
  options.compact_min_segments = 2;
  options.compact_fan_in = 2;
  MetadataVolume mv(sim, &volume, options);

  WorldResult result;
  Status status = sim.RunUntilComplete(DriveSeededWorkload(&sim, &mv));
  EXPECT_TRUE(status.ok()) << status.ToString();
  sim.RunFor(sim::Seconds(10));  // drain flush + compaction
  result.now = sim.now();
  result.paths = mv.AllPaths();
  const MetadataVolume::StoreStats stats = mv.store_stats();
  result.batches = stats.wal.batches_committed;
  result.flushes = stats.memtable_flushes;
  result.compactions = stats.compactions;
  return result;
}

TEST(MvStoreDeterminism, DoubleRunConverges) {
  // The whole backend — group commit, background flush, compaction — must
  // be a pure function of the (simulated) schedule: two runs of the same
  // workload end at the same simulated instant with identical state and
  // identical background activity.
  const WorldResult a = RunSeededWorld();
  const WorldResult b = RunSeededWorld();
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.flushes, b.flushes);
  EXPECT_EQ(a.compactions, b.compactions);
  EXPECT_GT(a.flushes, 0u);
}

}  // namespace
}  // namespace ros::olfs
